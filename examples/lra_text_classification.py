"""Table-4 style workflow: train LRA-like text classifiers from scratch per mechanism.

Trains the synthetic byte-level text-classification task under full attention,
DFSS 1:2 / 2:4 and a couple of baselines, and prints the accuracy comparison.

Run with ``python examples/lra_text_classification.py [--scale smoke|default|full]``.
"""

import argparse

from repro.experiments.table4_lra import ALL_MECHANISMS, resolve_mechanism_labels, train_and_evaluate

#: Registry selectors; labels and kwargs come from the unified Table-4 catalogue.
MECHANISMS = ("full", "dfss_1:2", "dfss_2:4", "local", "linformer")


def main(scale: str = "smoke", seed: int = 0, task: str = "text") -> None:
    print(f"task={task}  scale={scale}\n")
    results = []
    for label in resolve_mechanism_labels(MECHANISMS):
        mechanism, kwargs = ALL_MECHANISMS[label]
        acc = train_and_evaluate(task, mechanism, kwargs, scale, seed)
        results.append((label, acc))
        print(f"{label:22s} accuracy = {acc:.2f}%")
    best = max(results, key=lambda r: r[1])
    print(f"\nbest mechanism: {best[0]} ({best[1]:.2f}%)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="smoke", choices=["smoke", "default", "full"])
    parser.add_argument("--task", default="text",
                        choices=["listops", "text", "retrieval", "image"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    main(args.scale, args.seed, args.task)
