"""Appendix-A.7 / Table-6 workflow: combining DFSS with Nyströmformer.

Pretrains a Nyströmformer on the synthetic pixel-sequence image task, then
finetunes it briefly with and without DFSS pruning of the two large Nyström
kernels, and also shows the forward-only combination operators
(DfssNystromformerAttention / DfssBigBirdAttention / DfssLinformerAttention).

Run with ``python examples/combine_with_nystromformer.py [--scale smoke|default|full]``.
"""

import argparse

import numpy as np

from repro import AttentionEngine
from repro.experiments.table6_nystrom_dfss import run as run_table6


def main(scale: str = "smoke", seed: int = 0) -> None:
    # 1. forward-only combination operators, constructed through the registry
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(2, 128, 64)).astype(np.float32) * 0.5
    k = rng.normal(size=(2, 128, 64)).astype(np.float32) * 0.5
    v = rng.normal(size=(2, 128, 64)).astype(np.float32)
    for engine in (
        AttentionEngine("nystromformer", num_landmarks=32),
        AttentionEngine("nystromformer_dfss", num_landmarks=32, pattern="2:4"),
        AttentionEngine("bigbird_dfss", block_size=32, pattern="2:4"),
        AttentionEngine("linformer_dfss", proj_dim=32, pattern="2:4"),
    ):
        out = engine(q, k, v)
        mech = engine.mechanism()
        print(f"{engine.spec.label:32s} output {out.shape}, "
              f"approx. error vs full attention {mech.approximation_error(q, k, v):.3f}")

    # 2. the Table-6 experiment: pretrain Nystromformer, finetune the combination
    print("\nTable-6 experiment (pretrain Nystromformer, light finetune of the combination):")
    result = run_table6(scale=scale, seed=seed)
    for row in result["rows"]:
        print(f"  {row[0]:28s} accuracy {row[1]:.2f}%")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="smoke", choices=["smoke", "default", "full"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    main(args.scale, args.seed)
