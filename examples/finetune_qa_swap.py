"""Table-2 style workflow: train a QA model densely, swap in DFSS, optionally finetune.

This is the "drop-in replacement of a pretrained model" story of the paper:
a span-extraction QA model (synthetic SQuAD stand-in) is trained under full
attention; its attention is then replaced by DFSS 1:2 / 2:4 with *no other
change*, evaluated, and finally finetuned for a few steps.

Run with ``python examples/finetune_qa_swap.py [--scale smoke|default|full]``.
"""

import argparse

from repro.data.qa import generate_qa_dataset, train_test_split
from repro.experiments.common import build_encoder, model_scale, qa_config
from repro.nn.trainer import Trainer, evaluate_span_qa
from repro.nn.transformer import SpanQAModel


def main(scale: str = "smoke", seed: int = 0) -> None:
    cfg = qa_config(scale)
    ms = model_scale(scale)
    tokens, spans = generate_qa_dataset(cfg, seed=seed)
    x_train, y_train, x_test, y_test = train_test_split(tokens, spans, seed=seed)

    print(f"synthetic QA: {len(x_train)} train / {len(x_test)} test, seq_len={cfg.seq_len}")
    encoder = build_encoder(cfg.vocab_size, cfg.seq_len, scale, mechanism="full", seed=seed)
    model = SpanQAModel(encoder, seed=seed + 1)
    print(f"model parameters: {model.num_parameters():,}")

    print("\n[1] pretraining with full attention ...")
    Trainer(model, lr=ms.lr, batch_size=ms.batch_size, seed=seed).train_steps(
        x_train, y_train, ms.train_steps
    )
    dense = evaluate_span_qa(model, x_test, y_test)
    print(f"    full attention      F1 = {100 * dense['f1']:.2f}")

    state = model.state_dict()
    for pattern in ("1:2", "2:4"):
        model.load_state_dict(state)
        encoder.set_mechanism("dfss", pattern=pattern)
        swapped = evaluate_span_qa(model, x_test, y_test)
        print(f"\n[2] swapped to Dfss {pattern} (no finetuning): F1 = {100 * swapped['f1']:.2f}")

        Trainer(model, lr=ms.lr / 3, batch_size=ms.batch_size, seed=seed + 7).train_steps(
            x_train, y_train, ms.finetune_steps
        )
        tuned = evaluate_span_qa(model, x_test, y_test)
        print(f"[3] after {ms.finetune_steps} finetuning steps:   F1 = {100 * tuned['f1']:.2f}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="smoke", choices=["smoke", "default", "full"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    main(args.scale, args.seed)
