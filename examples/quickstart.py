"""Quickstart: DFSS as a drop-in replacement for full attention (Figure 3 of the paper).

Run with ``python examples/quickstart.py``.
"""

import numpy as np

from repro.core import DfssAttention, full_attention, sddmm_nm
from repro.core.theory import speedup_dfss
from repro.gpusim import AttentionConfig, attention_speedup


def main() -> None:
    rng = np.random.default_rng(0)
    batch, heads, seq, dim = 2, 4, 256, 64
    q = rng.normal(size=(batch, heads, seq, dim)).astype(np.float32)
    k = rng.normal(size=(batch, heads, seq, dim)).astype(np.float32)
    v = rng.normal(size=(batch, heads, seq, dim)).astype(np.float32)

    # --- the three lines a user changes (Figure 3) -------------------------
    # before: out = softmax(q @ k.T / sqrt(d)) @ v
    out_full = full_attention(q, k, v)
    # after:
    attn = DfssAttention(pattern="2:4", dtype="bfloat16")
    out_dfss = attn(q, k, v)
    # -----------------------------------------------------------------------

    rel_err = np.linalg.norm(out_dfss - out_full) / np.linalg.norm(out_full)
    print(f"output shape                : {out_dfss.shape}")
    print(f"relative error vs full attn : {rel_err:.4f}")

    # the compressed representation the kernel writes to memory
    scores = sddmm_nm(q[0, 0], k[0, 0], pattern="2:4", dtype="bfloat16")
    print(f"compressed nonzeros shape   : {scores.values.shape} (dense was {scores.dense_shape})")
    print(f"metadata stream shape       : {scores.packed_metadata().shape} (uint16 blocks)")
    print(f"attention-matrix compression: {scores.compression_ratio():.2f}x")

    # what the A100 performance model predicts for this configuration
    cfg = AttentionConfig(seq_len=seq, head_dim=dim, num_heads=heads, dtype="bfloat16")
    print(f"modelled attention speedup  : {attention_speedup('dfss', cfg):.2f}x "
          f"(asymptotic traffic bound {speedup_dfss():.2f}x, paper band 1.27-1.89x)")


if __name__ == "__main__":
    main()
