"""Quickstart: DFSS as a drop-in replacement for full attention (Figure 3 of the paper).

Run with ``python examples/quickstart.py``.
"""

import numpy as np

import repro
from repro.core import sddmm_nm
from repro.core.theory import speedup_dfss
from repro.gpusim import attention_speedup
from repro.gpusim.attention_latency import AttentionConfig


def main() -> None:
    rng = np.random.default_rng(0)
    batch, heads, seq, dim = 2, 4, 256, 64
    q = rng.normal(size=(batch, heads, seq, dim)).astype(np.float32)
    k = rng.normal(size=(batch, heads, seq, dim)).astype(np.float32)
    v = rng.normal(size=(batch, heads, seq, dim)).astype(np.float32)

    # --- the one line a user changes (Figure 3) ----------------------------
    # before: out = softmax(q @ k.T / sqrt(d)) @ v
    out_full = repro.attention(q, k, v, mechanism="full")
    # after:
    out_dfss = repro.attention(q, k, v, mechanism="dfss_2:4", dtype="bfloat16")
    # -----------------------------------------------------------------------

    rel_err = np.linalg.norm(out_dfss - out_full) / np.linalg.norm(out_full)
    print(f"output shape                : {out_dfss.shape}")
    print(f"relative error vs full attn : {rel_err:.4f}")

    # the same mechanism as a reusable engine, with introspection
    engine = repro.AttentionEngine("dfss", pattern="2:4", dtype="bfloat16")
    info = engine.describe()
    flags = {key: info[key] for key in
             ("trainable", "produces_mask", "compressed", "supports_block_mask")}
    print(f"engine                      : {engine!r} flags={flags}")
    print(f"registered mechanisms       : {', '.join(repro.available_mechanisms())}")

    # the compressed representation the kernel writes to memory
    scores = sddmm_nm(q[0, 0], k[0, 0], pattern="2:4", dtype="bfloat16")
    print(f"compressed nonzeros shape   : {scores.values.shape} (dense was {scores.dense_shape})")
    print(f"metadata stream shape       : {scores.packed_metadata().shape} (uint16 blocks)")
    print(f"attention-matrix compression: {scores.compression_ratio():.2f}x")

    # what the A100 performance model predicts for this configuration
    cfg = AttentionConfig(seq_len=seq, head_dim=dim, num_heads=heads, dtype="bfloat16")
    print(f"modelled attention speedup  : {attention_speedup('dfss', cfg):.2f}x "
          f"(asymptotic traffic bound {speedup_dfss():.2f}x, paper band 1.27-1.89x)")


if __name__ == "__main__":
    main()
