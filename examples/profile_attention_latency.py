"""Figure-5 / Figure-14 style profiling with the A100 performance model.

Prints the per-stage attention latency breakdown (normalised to the dense
transformer) and the end-to-end speedup grid for DFSS and the efficient
attention baselines.

Run with ``python examples/profile_attention_latency.py``.
"""

from repro.gpusim.attention_latency import AttentionConfig, latency_breakdown_table
from repro.gpusim.end_to_end import LayerConfig, end_to_end_speedup
from repro.gpusim.memory import memory_reduction
from repro.utils.formatting import format_table


def main() -> None:
    mechanisms = ("full", "dfss", "performer", "reformer", "routing",
                  "sinkhorn", "nystromformer")

    print("Attention latency normalised to the dense transformer (bfloat16, h=4, d=64)\n")
    rows = []
    for n in (256, 512, 1024, 2048, 4096):
        table = latency_breakdown_table(
            AttentionConfig(seq_len=n, dtype="bfloat16"), mechanisms=mechanisms
        )
        for mech in mechanisms:
            e = table[mech]
            rows.append([n, mech, e["overhead"], e["qk"], e["softmax"], e["av"], e["total"]])
    print(format_table(["seq", "mechanism", "overhead", "QK^T", "softmax", "AV", "total"], rows))

    print("\nEnd-to-end speedup and peak-memory reduction of DFSS\n")
    rows = []
    for n in (512, 1024, 2048, 4096):
        cfg = LayerConfig(seq_len=n, num_heads=4, ffn_hidden=256, dtype="bfloat16")
        rows.append([n, end_to_end_speedup("dfss", cfg), memory_reduction("dfss", cfg)])
    print(format_table(["seq", "e2e speedup", "memory reduction"], rows))


if __name__ == "__main__":
    main()
