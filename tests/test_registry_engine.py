"""Tests for the unified mechanism registry and the `repro.engine` façade.

Round-trip coverage: every registered spec must construct through the new
engine AND match the legacy ``create_mechanism`` / ``make_attention_core``
factories bit-for-bit on tie-exact lattice inputs, the legacy entry points
must emit ``DeprecationWarning`` while preserving behaviour, and unknown
keyword arguments must keep raising ``TypeError``.
"""

import warnings

import numpy as np
import pytest

import repro
from repro import registry
from repro.baselines.base import MECHANISM_REGISTRY, create_mechanism
from repro.engine import AttentionConfig, AttentionEngine
from repro.nn.attention_layer import DfssCore, make_attention_core
from repro.nn.autograd import Tensor

TABLE4_NAMES = (
    "full", "local", "sparse_transformer", "longformer", "linformer", "reformer",
    "sinkhorn", "synthesizer", "bigbird", "linear_transformer", "performer",
    "routing", "nystromformer", "dfss",
)

ALL_NAMES = registry.available_mechanisms()
TRAINABLE_NAMES = registry.available_mechanisms(trainable=True)


def _lattice_qkv(batch=(2,), seq=32, d=16, seed=0):
    """Tie-exact inputs: small multiples of 1/2, head dim a power of four."""
    rng = np.random.default_rng(seed)
    shape = tuple(batch) + (seq, d)
    return tuple(
        (rng.integers(-2, 3, size=shape) / 2).astype(np.float32) for _ in range(3)
    )


def _legacy(fn, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return fn(*args, **kwargs)


class TestCatalogue:
    def test_every_table4_mechanism_enumerated_with_flags(self):
        names = repro.available_mechanisms()
        for name in TABLE4_NAMES:
            assert name in names, name
            info = repro.describe_mechanism(name)
            for flag in ("trainable", "produces_mask", "compressed", "supports_block_mask"):
                assert isinstance(info[flag], bool), (name, flag)

    def test_registry_matches_legacy_mechanism_registry(self):
        assert set(ALL_NAMES) == set(MECHANISM_REGISTRY)

    def test_capability_filters(self):
        # the Appendix-A.7 combo mechanisms gained trainable cores with the
        # layout-generic compressed op
        trainable = registry.available_mechanisms(trainable=True)
        assert "bigbird_dfss" in trainable and "linformer_dfss" in trainable
        compressed = registry.available_mechanisms(compressed=True)
        assert "dfss" in compressed
        # every mask-based mechanism now trains through the compressed path
        for name in ("topk", "local", "sparse_transformer", "longformer",
                     "bigbird", "reformer", "routing", "sinkhorn"):
            assert name in compressed, name
        assert "full" not in compressed
        assert set(registry.available_mechanisms(produces_mask=True)) <= set(ALL_NAMES)
        block = registry.available_mechanisms(supports_block_mask=True)
        assert "dfss" in block and "full" not in block

    def test_aliases_resolve(self):
        assert registry.canonical_name("transformer") == "full"
        assert registry.canonical_name("dense") == "full"
        assert registry.canonical_name("fixed") == "fixed_truncated"
        assert registry.canonical_name("nystrom_dfss") == "nystromformer_dfss"
        assert registry.canonical_name("dfss_2:4") == "dfss"
        assert registry.canonical_name("Transformer (full)") == "full"

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="flash"):
            registry.find_spec("flash")

    def test_experiment_table4_catalogue_uses_the_same_specs(self):
        from repro.experiments.registry import table4_mechanisms

        entries = table4_mechanisms()
        assert {e["mechanism"] for e in entries} == set(TABLE4_NAMES)
        for entry in entries:
            assert entry["trainable"], entry["mechanism"]


class TestNumpyRoundTrip:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_engine_matches_legacy_create_mechanism(self, name):
        q, k, v = _lattice_qkv(seed=1)
        engine_out = AttentionEngine(name)(q, k, v)
        legacy_out = _legacy(create_mechanism, name)(q, k, v)
        np.testing.assert_array_equal(engine_out, legacy_out)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_engine_matches_direct_class_construction(self, name):
        q, k, v = _lattice_qkv(seed=2)
        np.testing.assert_array_equal(
            AttentionEngine(name)(q, k, v), MECHANISM_REGISTRY[name]()(q, k, v)
        )

    def test_one_shot_attention_facade(self):
        q, k, v = _lattice_qkv(seed=3)
        out = repro.attention(q, k, v, mechanism="dfss_2:4")
        ref = repro.attention(q, k, v, mechanism="dfss", pattern="2:4")
        np.testing.assert_array_equal(out, ref)
        assert out.shape == q.shape


class TestCoreRoundTrip:
    @pytest.mark.parametrize("name", TRAINABLE_NAMES)
    def test_engine_core_matches_legacy_factory(self, name):
        qa, ka, va = (Tensor(a) for a in _lattice_qkv(batch=(2, 2), seed=4))
        qb, kb, vb = (Tensor(a) for a in _lattice_qkv(batch=(2, 2), seed=4))
        engine_core = AttentionEngine(name, seq_len_hint=32).core()
        legacy_core = _legacy(make_attention_core, name, seq_len_hint=32)
        out_a = engine_core(qa, ka, va)
        out_b = legacy_core(qb, kb, vb)
        np.testing.assert_array_equal(out_a.data, out_b.data)
        mask_a, mask_b = engine_core.last_mask(), legacy_core.last_mask()
        if mask_a is not None or mask_b is not None:
            np.testing.assert_array_equal(mask_a, mask_b)

    def test_untrainable_mechanism_core_raises(self):
        spec = registry.MechanismSpec(
            name="untrainable", label="untrainable", description="",
            config_cls=registry.MechanismConfig,
        )
        with pytest.raises(ValueError, match="not trainable"):
            spec.build_core(registry.MechanismConfig())

    def test_combo_mechanism_cores_train(self):
        # bigbird_dfss / linformer_dfss gained trainable cores (ROADMAP item)
        for name in ("bigbird_dfss", "linformer_dfss"):
            core = AttentionEngine(name, seq_len_hint=32).core()
            q, k, v = (Tensor(a, requires_grad=True)
                       for a in _lattice_qkv(batch=(2, 2), seed=11))
            out = core(q, k, v)
            out.sum().backward()
            assert np.all(np.isfinite(out.data)), name
            assert q.grad is not None and np.all(np.isfinite(q.grad)), name

    def test_pattern_suffix_and_explicit_kwarg(self):
        core = registry.make_core("dfss_2:4")
        assert isinstance(core, DfssCore) and core.pattern.name == "2:4"
        core = registry.make_core("dfss_2:4", pattern="1:2")
        assert core.pattern.name == "1:2"  # explicit kwarg beats the suffix
        core = registry.make_core("dfss")
        assert core.pattern.name == "2:4"  # legacy default

    def test_backend_forwarded_into_core_config(self):
        core = AttentionEngine("dfss", backend="reference").core()
        assert core.backend == "reference"
        # an explicit backend in the mechanism options wins over the
        # engine-level one
        cfg = AttentionConfig(mechanism="dfss", backend="reference",
                              options={"backend": "fast"})
        core = AttentionEngine.from_config(cfg).core()
        assert core.backend == "fast"

    def test_engine_backend_does_not_break_numpy_forward(self):
        # regression: the engine-level backend is scoped via use_backend, not
        # injected into the config, so the numpy mechanism (whose constructor
        # has no backend parameter on the DFSS spec) still builds and runs
        q, k, v = _lattice_qkv(seed=8)
        engine = AttentionEngine("dfss", pattern="2:4", backend="reference")
        out_ref = engine(q, k, v)
        out_fast = AttentionEngine("dfss", pattern="2:4", backend="fast")(q, k, v)
        np.testing.assert_allclose(out_ref, out_fast, atol=1e-6)  # backend parity


class TestDeprecationWrappers:
    def test_create_mechanism_warns_and_preserves_output(self):
        q, k, v = _lattice_qkv(seed=5)
        with pytest.warns(DeprecationWarning, match="create_mechanism"):
            mech = create_mechanism("dfss", pattern="2:4")
        np.testing.assert_array_equal(
            mech(q, k, v), AttentionEngine("dfss", pattern="2:4")(q, k, v)
        )

    def test_make_attention_core_warns_and_preserves_output(self):
        qa, ka, va = (Tensor(a) for a in _lattice_qkv(seed=6))
        qb, kb, vb = (Tensor(a) for a in _lattice_qkv(seed=6))
        with pytest.warns(DeprecationWarning, match="make_attention_core"):
            core = make_attention_core("dfss_2:4")
        np.testing.assert_array_equal(
            core(qa, ka, va).data, AttentionEngine("dfss_2:4").core()(qb, kb, vb).data
        )

    def test_legacy_error_types_preserved(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                create_mechanism("flash_attention")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                make_attention_core("local", definitely_not_a_kwarg=1)

    def test_multi_head_layer_does_not_warn(self):
        from repro.nn.attention_layer import MultiHeadSelfAttention

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            layer = MultiHeadSelfAttention(model_dim=16, num_heads=2, mechanism="dfss_2:4")
            layer.set_mechanism("full")


class TestKwargValidation:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_unknown_kwargs_raise_type_error(self, name):
        with pytest.raises(TypeError, match="definitely_not_a_kwarg"):
            AttentionEngine(name, definitely_not_a_kwarg=1)

    def test_side_specific_kwargs_rejected_on_the_other_side(self):
        # dtype is numpy-mechanism-only for DFSS; the legacy core factory
        # raised TypeError for it and the registry must too
        with pytest.raises(TypeError, match="dtype"):
            registry.make_core("dfss", dtype="bfloat16")
        # path/backend are core-only
        with pytest.raises(TypeError, match="path"):
            registry.make_mechanism("dfss", path="dense")

    def test_config_value_validation(self):
        with pytest.raises(ValueError):
            AttentionEngine("fixed_truncated", density=0.0)
        with pytest.raises(ValueError):
            AttentionEngine("dfss", path="warp")
        with pytest.raises(ValueError):
            AttentionEngine("linformer", proj_dim=-3)


class TestEngineSurface:
    def test_from_config_round_trip(self):
        cfg = AttentionConfig(mechanism="dfss", backend="reference",
                              options={"pattern": "1:2"})
        engine = AttentionEngine.from_config(cfg)
        assert engine.name == "dfss"
        assert engine.config.pattern == "1:2"
        assert engine.backend == "reference"

    def test_describe_contains_flags_and_config(self):
        info = AttentionEngine("dfss_1:2", backend="reference").describe()
        assert info["name"] == "dfss"
        assert info["compressed"] is True and info["trainable"] is True
        assert info["config"]["pattern"] == "1:2"
        assert info["backend"] == "reference"

    def test_engine_backend_context_manager(self):
        from repro.core.backend import resolve_backend

        engine = AttentionEngine("dfss", backend="reference")
        # the ambient default honours $REPRO_BACKEND (the CI backend matrix
        # sets it), so compare against whatever it resolves to
        ambient = resolve_backend(None)
        assert ambient != "reference"
        with engine:
            assert resolve_backend(None) == "reference"
            with engine:  # re-entrant
                assert resolve_backend(None) == "reference"
            assert resolve_backend(None) == "reference"
        assert resolve_backend(None) == ambient

    def test_attention_mask_introspection(self):
        q, k, _ = _lattice_qkv(seed=7)
        mask = AttentionEngine("dfss", pattern="2:4").attention_mask(q, k)
        assert mask.dtype == bool and mask.mean() == pytest.approx(0.5)
