"""Tests for the training-step (backward-pass) latency and memory models."""

import pytest

from repro.gpusim import (
    AMPERE_A100,
    AttentionConfig,
    training_attention_latency,
    training_attention_speedup,
    training_memory_reduction,
    training_peak_memory,
)
from repro.gpusim import LayerConfig
from repro.gpusim.ops import attention_bwd_nm_ops, sddmm_masked_nm, spmm_t_nm

CFG = AttentionConfig(seq_len=1024, num_heads=8, head_dim=64, batch_size=4)
LAYER = LayerConfig(seq_len=1024, num_heads=8, head_dim=64, batch_size=4)


class TestBackwardTraffic:
    def test_backward_kernel_sequence(self):
        names = [op.name for op in attention_bwd_nm_ops(4, 1024, 1024, 64, "float32")]
        assert names == ["spmm_t_dv", "sddmm_dp", "softmax_bwd", "spmm_dq", "spmm_t_dk"]

    def test_transposed_spmm_writes_dense_rows(self):
        op = spmm_t_nm(1, 1024, 1024, 64, "float32")
        dense_out_bytes = 1024 * 64 * 4
        assert op.bytes_written == dense_out_bytes

    def test_masked_sddmm_writes_only_nonzeros(self):
        op = sddmm_masked_nm(1, 1024, 1024, 64, "float32")
        assert op.bytes_written == (1024 * 1024 // 2) * 4  # n^2/2 kept values

    def test_backward_traffic_scales_with_seq_len(self):
        small = sum(
            op.latency(AMPERE_A100)
            for op in attention_bwd_nm_ops(1, 2048, 2048, 64, "float32")
        )
        large = sum(
            op.latency(AMPERE_A100)
            for op in attention_bwd_nm_ops(1, 8192, 8192, 64, "float32")
        )
        # the n^2 traffic terms dominate once past launch overhead: a 4x
        # longer sequence costs well over 4x
        assert large > 8 * small


class TestTrainingLatency:
    def test_total_is_forward_plus_backward(self):
        lat = training_attention_latency("dfss", CFG)
        assert lat.total == pytest.approx(lat.forward.total + lat.backward)
        assert lat.backward == pytest.approx(
            sum(op.latency(AMPERE_A100) for op in lat.backward_kernels)
        )

    def test_dfss_training_faster_than_dense(self):
        speedup = training_attention_speedup("dfss", CFG)
        assert 1.0 < speedup < 3.0

    def test_backward_costs_more_than_forward(self):
        # the backward runs ~2x the forward's matmul traffic for both models
        for mechanism in ("transformer", "dfss"):
            lat = training_attention_latency(mechanism, CFG)
            assert lat.backward > lat.forward.total

    def test_unmodelled_mechanism_raises(self):
        with pytest.raises(ValueError, match="no training backward model"):
            training_attention_latency("performer", CFG)


class TestTrainingMemory:
    def test_training_memory_reduction_band(self):
        reduction = training_memory_reduction("dfss", LAYER)
        assert 1.2 < reduction < 2.0

    def test_training_needs_more_than_inference(self):
        from repro.gpusim import attention_peak_memory

        assert training_peak_memory("dfss", LAYER) > attention_peak_memory(
            "dfss", LAYER
        )
