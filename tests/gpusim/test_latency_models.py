"""Tests for the attention / end-to-end latency and memory models.

These tests assert the *qualitative* reproduction targets from the paper:
DFSS is consistently ~1.3-1.9x faster than dense attention at every sequence
length, the linear-attention baselines lose badly at short sequences and win
at 4096, the end-to-end speedup lands in the 1.08-1.52x band, and the memory
reduction lands near the 1.41-1.82x band.
"""

import pytest

from repro.gpusim.attention_latency import (
    ATTENTION_MECHANISMS,
    AttentionConfig,
    attention_latency,
    attention_speedup,
    latency_breakdown_table,
)
from repro.gpusim.device import AMPERE_A100, TURING_T4
from repro.gpusim.end_to_end import (
    LayerConfig,
    end_to_end_breakdown,
    end_to_end_latency,
    end_to_end_speedup,
)
from repro.gpusim.memory import (
    attention_peak_memory,
    end_to_end_peak_memory,
    memory_reduction,
    memory_table,
)

SEQ_LENS = (256, 512, 1024, 2048, 4096)


class TestAttentionConfig:
    def test_effective_batch_from_token_budget(self):
        cfg = AttentionConfig(seq_len=1024, num_heads=4, token_budget=1 << 17)
        assert cfg.effective_batch == (1 << 17) // 1024 * 4

    def test_explicit_batch_size(self):
        cfg = AttentionConfig(seq_len=1024, num_heads=8, batch_size=2)
        assert cfg.effective_batch == 16


class TestAttentionLatency:
    def test_unknown_mechanism_raises(self):
        with pytest.raises(ValueError):
            attention_latency("flash", AttentionConfig(seq_len=512))

    def test_breakdown_total_is_sum_of_stages(self):
        lat = attention_latency("dfss", AttentionConfig(seq_len=1024))
        assert lat.total == pytest.approx(lat.overhead + lat.qk + lat.softmax + lat.av)

    def test_dense_has_no_overhead_stage(self):
        lat = attention_latency("transformer", AttentionConfig(seq_len=1024))
        assert lat.overhead == 0.0

    def test_dfss_has_no_overhead_stage(self):
        # "completely eliminates the dynamic pruning overhead"
        lat = attention_latency("dfss", AttentionConfig(seq_len=1024))
        assert lat.overhead == 0.0

    def test_baselines_have_overhead(self):
        for mech in ("performer", "reformer", "routing", "sinkhorn", "nystromformer"):
            lat = attention_latency(mech, AttentionConfig(seq_len=1024))
            assert lat.overhead > 0.0, mech

    @pytest.mark.parametrize("dtype", ["float32", "bfloat16"])
    @pytest.mark.parametrize("seq_len", SEQ_LENS)
    def test_dfss_speedup_band_all_lengths(self, seq_len, dtype):
        # headline claim: 1.27x ~ 1.89x over full attention at arbitrary length
        s = attention_speedup("dfss", AttentionConfig(seq_len=seq_len, dtype=dtype))
        assert 1.25 <= s <= 1.95

    def test_dfss_every_stage_not_slower(self):
        cfg = AttentionConfig(seq_len=1024, dtype="float32")
        dense = attention_latency("transformer", cfg)
        dfss = attention_latency("dfss", cfg)
        assert dfss.qk <= dense.qk * 1.05
        assert dfss.softmax < dense.softmax
        assert dfss.av < dense.av

    def test_baselines_slower_at_short_sequences(self):
        cfg = AttentionConfig(seq_len=256, dtype="bfloat16")
        for mech in ("performer", "reformer", "routing", "sinkhorn", "nystromformer"):
            assert attention_speedup(mech, cfg) < 1.0, mech

    def test_linear_baselines_win_at_4096(self):
        cfg = AttentionConfig(seq_len=4096, dtype="bfloat16")
        for mech in ("performer", "sinkhorn", "nystromformer", "routing"):
            assert attention_speedup(mech, cfg) > 1.0, mech

    def test_dfss_only_mechanism_with_consistent_speedup(self):
        consistent = []
        for mech in ("dfss", "performer", "reformer", "routing", "sinkhorn", "nystromformer"):
            speedups = [
                attention_speedup(mech, AttentionConfig(seq_len=n, dtype="bfloat16"))
                for n in SEQ_LENS
            ]
            if all(s > 1.0 for s in speedups):
                consistent.append(mech)
        assert consistent == ["dfss"]

    def test_breakdown_table_normalisation(self):
        table = latency_breakdown_table(AttentionConfig(seq_len=512))
        assert table["transformer"]["total"] == pytest.approx(1.0)
        assert set(table["dfss"]) == {"overhead", "qk", "softmax", "av", "total"}

    def test_registry_covers_figure5_mechanisms(self):
        for mech in ("transformer", "dfss", "performer", "reformer", "routing",
                     "sinkhorn", "nystromformer", "topk", "fixed",
                     "local", "longformer", "bigbird"):
            assert mech in ATTENTION_MECHANISMS

    def test_topk_slower_than_dfss_at_same_config(self):
        cfg = AttentionConfig(seq_len=1024, dtype="float32")
        assert attention_speedup("topk", cfg, density=0.05) < attention_speedup("dfss", cfg)

    def test_fixed_density_crossover_against_dfss(self):
        # Eq. 8: a fixed pattern matches the DFSS efficiency at s ≈ 0.63, so it
        # is faster below that density and slower above it.
        cfg = AttentionConfig(seq_len=2048, dtype="float32")
        dfss = attention_speedup("dfss", cfg)
        assert attention_speedup("fixed", cfg, density=0.4) > dfss
        assert attention_speedup("fixed", cfg, density=0.85) < dfss

    def test_sparse_tensor_core_matters_when_compute_bound(self):
        # with (hypothetically) unlimited DRAM bandwidth the kernels become
        # compute bound and the 1.7x sparse-tensor-core throughput shows up
        cfg = AttentionConfig(seq_len=1024, dtype="bfloat16")
        fat_pipe = AMPERE_A100.with_overrides(dram_bandwidth=1e18)
        no_sparse_tc = fat_pipe.with_overrides(sparse_tensor_core_speedup=1.0)
        assert attention_speedup("dfss", cfg, device=fat_pipe) > attention_speedup(
            "dfss", cfg, device=no_sparse_tc
        )

    def test_memory_bound_speedup_insensitive_to_device(self):
        # the paper's claim is traffic-driven: a bandwidth-starved T4 sees a
        # comparable relative benefit even without a sparse tensor core
        cfg = AttentionConfig(seq_len=1024, dtype="bfloat16")
        a100 = attention_speedup("dfss", cfg, device=AMPERE_A100)
        t4 = attention_speedup("dfss", cfg, device=TURING_T4)
        assert abs(t4 - a100) / a100 < 0.15


class TestEndToEnd:
    def test_speedup_band(self):
        # paper: 1.08x ~ 1.52x end-to-end
        for n in (512, 1024, 2048, 4096):
            for heads in (4, 8):
                cfg = LayerConfig(seq_len=n, num_heads=heads, ffn_hidden=256)
                s = end_to_end_speedup("dfss", cfg)
                assert 1.05 <= s <= 1.6, (n, heads, s)

    def test_speedup_grows_with_sequence_length(self):
        speeds = [
            end_to_end_speedup("dfss", LayerConfig(seq_len=n)) for n in (512, 1024, 2048, 4096)
        ]
        assert all(b >= a for a, b in zip(speeds, speeds[1:]))

    def test_larger_hidden_dilutes_speedup(self):
        small = end_to_end_speedup("dfss", LayerConfig(seq_len=1024, ffn_hidden=256))
        large = end_to_end_speedup("dfss", LayerConfig(seq_len=1024, ffn_hidden=1024))
        assert large <= small

    def test_latency_components(self):
        lat = end_to_end_latency("dfss", LayerConfig(seq_len=1024))
        assert lat["total"] == pytest.approx(lat["attention"] + lat["others"])

    def test_breakdown_table(self):
        table = end_to_end_breakdown(LayerConfig(seq_len=1024))
        assert table["transformer"]["total"] == pytest.approx(1.0)
        assert table["dfss"]["total"] < 1.0
        assert table["dfss"]["others"] == pytest.approx(table["transformer"]["others"], rel=1e-6)

    def test_others_dominate_at_short_sequences(self):
        # Figure 15: at n <= 1024 the non-attention part is > 50% of latency
        lat = end_to_end_latency("transformer", LayerConfig(seq_len=512))
        assert lat["others"] > 0.5 * lat["total"]

    def test_other_speedup_composes(self):
        cfg = LayerConfig(seq_len=1024)
        plain = end_to_end_speedup("dfss", cfg)
        with_weight_pruning = end_to_end_speedup("dfss", cfg, other_speedup=2.0)
        assert with_weight_pruning > plain

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            end_to_end_latency("flash", LayerConfig(seq_len=512))


class TestMemory:
    def test_dfss_reduction_band(self):
        # paper: 1.41x ~ 1.82x peak-memory reduction (attention-dominated configs)
        for n in (1024, 2048, 4096):
            cfg = LayerConfig(seq_len=n, num_heads=4, ffn_hidden=256)
            r = memory_reduction("dfss", cfg)
            assert 1.3 <= r <= 1.9, (n, r)

    def test_reduction_grows_with_sequence(self):
        rs = [memory_reduction("dfss", LayerConfig(seq_len=n)) for n in (512, 1024, 2048, 4096)]
        assert all(b >= a for a, b in zip(rs, rs[1:]))

    def test_attention_memory_ratio_is_9_16(self):
        cfg = LayerConfig(seq_len=2048)
        dense = attention_peak_memory("transformer", cfg)
        dfss = attention_peak_memory("dfss", cfg)
        assert dfss / dense == pytest.approx(0.5 + 1 / 16)

    def test_linear_mechanisms_use_less_memory_at_long_seq(self):
        cfg = LayerConfig(seq_len=4096)
        assert attention_peak_memory("performer", cfg) < attention_peak_memory("transformer", cfg)
        assert attention_peak_memory("nystromformer", cfg) < attention_peak_memory("dfss", cfg)

    def test_memory_table_normalised(self):
        table = memory_table(LayerConfig(seq_len=1024))
        assert all(0 < v for v in table.values())
        assert table["dfss"] < 1.0

    def test_end_to_end_larger_than_attention_only(self):
        cfg = LayerConfig(seq_len=1024)
        assert end_to_end_peak_memory("dfss", cfg) > attention_peak_memory("dfss", cfg)

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            attention_peak_memory("flash", LayerConfig(seq_len=512))


class TestBandMechanismModels:
    """Figure-5 grid coverage for the fixed-window mechanisms.

    ``local`` / ``longformer`` / ``bigbird`` previously had no analytical
    latency model (``latency_model=None`` left holes in the Figure-5 grid);
    these tests pin the modeled-vs-shape invariants their masks imply: banded
    cost is flat in sequence length at a fixed token budget, global tokens
    add a stripe on top of the band, and BigBird's cost responds to its
    block parameters.
    """

    MECHANISMS = ("local", "longformer", "bigbird")

    def test_registry_specs_resolve_to_models(self):
        from repro.gpusim.attention_latency import resolve_latency_model

        for name in self.MECHANISMS:
            assert resolve_latency_model(name) == name

    def test_stage_latencies_nonnegative_with_positive_total(self):
        cfg = AttentionConfig(seq_len=1024)
        for name in self.MECHANISMS:
            lat = attention_latency(name, cfg)
            assert lat.total > 0.0
            assert min(lat.overhead, lat.qk, lat.softmax, lat.av) >= 0.0
            assert lat.total == pytest.approx(
                lat.overhead + lat.qk + lat.softmax + lat.av
            )

    def test_local_flat_in_sequence_length(self):
        # at a fixed token budget the effective batch shrinks as 1/n, so a
        # fixed-width band costs the same total at every sequence length
        # while dense attention grows with n
        totals = [
            attention_latency("local", AttentionConfig(seq_len=n)).total
            for n in (512, 1024, 4096)
        ]
        assert max(totals) <= min(totals) * 1.05
        dense = [
            attention_latency("transformer", AttentionConfig(seq_len=n)).total
            for n in (512, 1024, 4096)
        ]
        assert dense[-1] > dense[0] * 2.0

    def test_longformer_global_tokens_cost_extra(self):
        cfg = AttentionConfig(seq_len=1024)
        local = attention_latency("local", cfg, window=32).total
        lf = attention_latency("longformer", cfg, window=32, num_global=1).total
        assert lf >= local
        wider = attention_latency(
            "longformer", cfg, window=32, num_global=8
        ).total
        assert wider > lf

    def test_bigbird_cost_grows_with_random_blocks(self):
        cfg = AttentionConfig(seq_len=2048)
        base = attention_latency("bigbird", cfg, num_random_blocks=1).total
        more = attention_latency("bigbird", cfg, num_random_blocks=3).total
        assert more > base

    def test_band_mechanisms_beat_dense_at_long_sequences(self):
        cfg = AttentionConfig(seq_len=4096)
        dense = attention_latency("transformer", cfg).total
        for name in self.MECHANISMS:
            assert attention_latency(name, cfg).total < dense
