"""Tests for the GPU device model and per-operator cost records."""

import pytest

from repro.gpusim import ops
from repro.gpusim.device import AMPERE_A100, TURING_T4


class TestGpuDevice:
    def test_defaults_are_a100(self):
        assert "A100" in AMPERE_A100.name
        assert AMPERE_A100.dram_bandwidth > 1e12
        assert AMPERE_A100.sparse_tensor_core_speedup > 1.0

    def test_matmul_flops_by_dtype(self):
        assert AMPERE_A100.matmul_flops("bfloat16") > AMPERE_A100.matmul_flops("float32")
        assert AMPERE_A100.matmul_flops("bfloat16", sparse=True) == pytest.approx(
            AMPERE_A100.matmul_flops("bfloat16") * AMPERE_A100.sparse_tensor_core_speedup
        )
        with pytest.raises(ValueError):
            AMPERE_A100.matmul_flops("int8")

    def test_with_overrides(self):
        dev = AMPERE_A100.with_overrides(dram_bandwidth=1.0e12)
        assert dev.dram_bandwidth == 1.0e12
        assert dev.tensor_core_flops == AMPERE_A100.tensor_core_flops

    def test_t4_has_no_sparse_tensor_core(self):
        assert TURING_T4.sparse_tensor_core_speedup == 1.0


class TestOpCost:
    def test_latency_roofline_memory_bound(self):
        op = ops.OpCost("x", flops=1e6, bytes_read=1e9, bytes_written=0, unit="fp32")
        lat = op.latency(AMPERE_A100)
        assert lat == pytest.approx(1e9 / AMPERE_A100.dram_bandwidth
                                    + AMPERE_A100.kernel_launch_overhead, rel=1e-6)

    def test_latency_roofline_compute_bound(self):
        op = ops.OpCost("x", flops=1e15, bytes_read=1e3, bytes_written=0,
                        unit="tensor", dtype="bfloat16")
        lat = op.latency(AMPERE_A100)
        assert lat == pytest.approx(1e15 / AMPERE_A100.tensor_core_flops
                                    + AMPERE_A100.kernel_launch_overhead, rel=1e-6)

    def test_bandwidth_fraction_slows_kernel(self):
        fast = ops.OpCost("x", bytes_read=1e9, unit="memory")
        slow = ops.OpCost("x", bytes_read=1e9, unit="memory", bandwidth_fraction=0.25)
        assert slow.latency(AMPERE_A100) > fast.latency(AMPERE_A100)

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError):
            ops.OpCost("x", unit="dsp").latency(AMPERE_A100)

    def test_total_latency_sums(self):
        a = ops.OpCost("a", bytes_read=1e6, unit="memory")
        b = ops.OpCost("b", bytes_read=2e6, unit="memory")
        assert ops.total_latency([a, b], AMPERE_A100) == pytest.approx(
            a.latency(AMPERE_A100) + b.latency(AMPERE_A100)
        )


class TestGemmCosts:
    def test_traffic_matches_paper_model(self):
        # QK^T: n^2 (2d/T + 1) elements for a large square GEMM
        n, d, t = 1024, 64, 128
        op = ops.gemm("qk", 1, n, n, d, dtype="float32", tile=t)
        expected_elems = n * n * (2 * d / t) + n * n
        assert op.bytes_total == pytest.approx(expected_elems * 4, rel=1e-6)

    def test_flops(self):
        op = ops.gemm("x", 2, 64, 128, 32, dtype="bfloat16")
        assert op.flops == 2 * 2 * 64 * 128 * 32

    def test_tile_quantisation_pads_small_gemms(self):
        tiny = ops.gemm("tiny", 1, 20, 20, 20, dtype="bfloat16")
        exact = ops.gemm("exact", 1, 32, 32, 32, dtype="bfloat16")
        assert tiny.flops == exact.flops
        assert tiny.bytes_total == exact.bytes_total

    def test_small_gemm_bandwidth_penalty(self):
        tiny = ops.gemm("tiny", 1, 32, 32, 64, dtype="bfloat16")
        big = ops.gemm("big", 1, 2048, 2048, 64, dtype="bfloat16")
        assert tiny.bandwidth_fraction < big.bandwidth_fraction
        assert big.bandwidth_fraction == 1.0

    def test_sddmm_writes_less_than_dense_gemm(self):
        dense = ops.gemm("qk", 1, 1024, 1024, 64, dtype="bfloat16")
        fused = ops.sddmm_nm_fused(1, 1024, 1024, 64, "bfloat16")
        assert fused.bytes_written < dense.bytes_written
        assert fused.bytes_written == pytest.approx(
            dense.bytes_written * (0.5 + 1 / 16), rel=1e-6
        )
        assert fused.bytes_read == pytest.approx(dense.bytes_read, rel=1e-6)

    def test_spmm_reads_compressed_weights(self):
        dense_av = ops.gemm("av", 1, 1024, 64, 1024, dtype="bfloat16")
        sparse_av = ops.spmm_nm(1, 1024, 1024, 64, "bfloat16")
        assert sparse_av.bytes_total < dense_av.bytes_total
        assert sparse_av.unit == "sparse_tensor"

    def test_softmax_sparse_half_traffic(self):
        dense = ops.softmax_dense(1, 512, 512, "bfloat16")
        sparse = ops.softmax_sparse_nm(1, 512, 512, "bfloat16")
        assert sparse.bytes_total == pytest.approx(dense.bytes_total / 2)

    def test_topk_and_sort_have_degraded_bandwidth(self):
        assert ops.topk_select(1, 128, 1024, 32, "float32").bandwidth_fraction < 1.0
        assert ops.sort_rows(1, 1e6, "float32").bandwidth_fraction < 1.0

    def test_framework_passes_scale_linearly(self):
        one = ops.framework_passes("glue", 1, 1e6, "bfloat16", 1.0)
        ten = ops.framework_passes("glue", 1, 1e6, "bfloat16", 10.0)
        assert ten.bytes_total == pytest.approx(10 * one.bytes_total)
        assert ten.launches == 10
