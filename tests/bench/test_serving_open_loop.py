"""Tests for the open-loop serving latency benchmark (``serving_latency``)."""

import pytest

from repro.bench import BenchShape
from repro.bench.runner import (
    ALL_BENCH_KERNELS,
    SERVING_LATENCY_KERNEL,
    run_serving_open_loop,
)

TINY = BenchShape(batch=1, heads=2, seq_len=64, head_dim=16)


def _run(**overrides):
    params = dict(
        repeats=1,
        warmup=0,
        n_requests=6,
        rate_rps=500.0,
        max_batch_size=4,
        seed=0,
        shape=TINY,
    )
    params.update(overrides)
    return run_serving_open_loop(**params)


class TestOpenLoopBenchmark:
    def test_registered_as_default_kernel(self):
        assert SERVING_LATENCY_KERNEL in ALL_BENCH_KERNELS

    def test_row_shape_and_extras(self):
        (row,) = _run()
        assert row.kernel == SERVING_LATENCY_KERNEL
        assert row.backend == "open_loop"
        assert "serve-open6@500rps" in row.shape
        assert row.parity_max_rel_err is None
        assert {
            "latency_p50_s",
            "latency_p95_s",
            "latency_p99_s",
            "deadline_s",
            "deadline_misses",
            "deadline_miss_rate",
            "offered_rate_rps",
            "requests_per_s",
        } <= set(row.extra)

    def test_latency_percentiles_ordered_and_positive(self):
        (row,) = _run()
        assert 0.0 < row.median_s
        assert row.p10_s <= row.median_s <= row.p90_s
        assert (
            row.extra["latency_p50_s"]
            <= row.extra["latency_p95_s"]
            <= row.extra["latency_p99_s"]
        )

    def test_replay_takes_at_least_the_arrival_span(self):
        from repro.serve.workload import synthetic_workload

        (row,) = _run()
        span = max(
            r.arrival_offset_s
            for r in synthetic_workload(
                6, seq_lens=(16, 32, 64), heads=1, head_dim=16,
                rate_rps=500.0, seed=0,
            )
        )
        # open loop: the wall clock includes the real-time arrival schedule
        assert row.timings_s[0] >= span

    def test_deadline_misses_count_tail_latencies(self):
        (strict,) = _run(deadline_s=0.0)
        assert strict.extra["deadline_misses"] == 6.0
        assert strict.extra["deadline_miss_rate"] == 1.0
        (loose,) = _run(deadline_s=60.0)
        assert loose.extra["deadline_misses"] == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            _run(repeats=0)
        with pytest.raises(ValueError, match="rate_rps"):
            _run(rate_rps=0.0)
