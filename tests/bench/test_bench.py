"""Tests for the benchmark runner, its JSON artifact, and the CI perf gate."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchShape,
    format_table,
    load_payload,
    results_to_payload,
    run_benchmarks,
    write_payload,
)
from repro.bench.runner import BENCH_KERNELS

REPO_ROOT = Path(__file__).resolve().parents[2]
TINY = BenchShape(batch=1, heads=2, seq_len=32, head_dim=16)


def _load_gate():
    path = REPO_ROOT / "scripts" / "check_bench_regression.py"
    spec = importlib.util.spec_from_file_location("check_bench_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tiny_results():
    return run_benchmarks(repeats=2, warmup=0, patterns=("2:4",), shape=TINY)


class TestRunner:
    def test_rows_cover_kernels_and_backends(self, tiny_results):
        combos = {(r.kernel, r.backend) for r in tiny_results}
        assert combos == {(k, b) for k in BENCH_KERNELS for b in ("reference", "fast")}

    def test_reference_rows_are_the_baseline(self, tiny_results):
        for r in tiny_results:
            if r.backend == "reference":
                assert r.speedup == 1.0
                assert r.parity_max_rel_err is None
            else:
                assert r.speedup > 0
                assert r.parity_max_rel_err is not None
                assert r.parity_max_rel_err < 1e-2

    def test_timings_are_positive(self, tiny_results):
        for r in tiny_results:
            assert 0 < r.p10_s <= r.median_s <= r.p90_s
            assert len(r.timings_s) == 2

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_benchmarks(scale="gigantic")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernels"):
            run_benchmarks(kernels=["warp_drive"], shape=TINY)


class TestReport:
    def test_payload_roundtrip(self, tiny_results, tmp_path):
        payload = results_to_payload(tiny_results, scale="smoke", repeats=2)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["shape"] == "B1xH2xL32xD16"
        assert len(payload["results"]) == len(tiny_results)
        for row in payload["results"]:
            assert set(row) == {
                "kernel", "shape", "backend", "median_s", "p10_s", "p90_s",
                "speedup", "parity_max_rel_err",
            }
        out = tmp_path / "BENCH_kernels.json"
        write_payload(out, payload)
        assert load_payload(out) == json.loads(out.read_text())

    def test_load_rejects_other_schema(self, tmp_path):
        out = tmp_path / "bad.json"
        out.write_text(json.dumps({"schema_version": 99, "results": []}))
        with pytest.raises(ValueError, match="schema_version"):
            load_payload(out)

    def test_format_table_mentions_every_kernel(self, tiny_results):
        table = format_table(tiny_results)
        for kernel in BENCH_KERNELS:
            assert kernel in table

    def test_cli_writes_artifact(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "BENCH_kernels.json"
        rc = main([
            "--shape", "1x2x32x16", "--repeats", "1", "--warmup", "0",
            "--patterns", "2:4", "--kernels", "spmm", "--output", str(out),
        ])
        assert rc == 0
        payload = load_payload(out)
        assert {row["kernel"] for row in payload["results"]} == {"spmm"}
        assert "spmm" in capsys.readouterr().out


class TestPerfGate:
    @pytest.fixture()
    def payloads(self, tiny_results):
        payload = results_to_payload(tiny_results, scale="smoke", repeats=2)
        return payload, copy.deepcopy(payload)

    def test_identical_payloads_pass(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        failures, _ = gate.check(
            fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0,
        )
        assert failures == []

    def test_parity_mismatch_fails(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        for row in fresh["results"]:
            if row["backend"] == "fast" and row["kernel"] == "spmm":
                row["parity_max_rel_err"] = 0.5
        failures, _ = gate.check(fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0)
        assert any("parity" in f for f in failures)

    def test_single_kernel_slowdown_fails(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        for row in fresh["results"]:
            if row["kernel"] == "spmm" and row["backend"] == "fast":
                # a real 10x regression moves both the median and the speedup
                row["median_s"] *= 10.0
                row["speedup"] /= 10.0
        failures, _ = gate.check(fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0)
        assert any("slowdown" in f or "speedup" in f for f in failures)

    def test_uniform_machine_slowdown_passes(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        for row in fresh["results"]:
            row["median_s"] *= 3.0
            row["p10_s"] *= 3.0
            row["p90_s"] *= 3.0
        failures, _ = gate.check(
            fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0,
        )
        assert failures == []

    def test_missing_row_fails_coverage(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        fresh["results"] = [r for r in fresh["results"] if r["kernel"] != "sddmm_nm"]
        failures, _ = gate.check(fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0)
        assert any("coverage" in f for f in failures)

    def test_speedup_collapse_fails(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        for row in fresh["results"]:
            if row["backend"] == "fast":
                row["speedup"] = 0.1
        failures, _ = gate.check(fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0)
        assert any("speedup" in f for f in failures)

    def test_e2e_floor(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        for row in fresh["results"]:
            if row["kernel"] == "attention_e2e" and row["backend"] == "fast":
                row["speedup"] = 2.0
        failures, _ = gate.check(fresh, base, min_e2e_speedup=3.0, min_train_speedup=0.0)
        assert any("e2e floor" in f for f in failures)

    def test_train_floor(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        for row in fresh["results"]:
            if row["kernel"] == "attention_train_step" and row["backend"] == "fast":
                row["speedup"] = 1.2
        failures, _ = gate.check(
            fresh, base, min_e2e_speedup=0.0, min_train_speedup=2.0
        )
        assert any("train floor" in f for f in failures)

    def test_train_floor_requires_rows(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        fresh["results"] = [
            r for r in fresh["results"] if r["kernel"] != "attention_train_step"
        ]
        failures, _ = gate.check(
            fresh, fresh, min_e2e_speedup=0.0, min_train_speedup=2.0
        )
        assert any("train floor" in f for f in failures)

    @staticmethod
    def _matrix_rows(mechanism, sparse_speedup):
        shape = f"B1xH2xL32xD16/{mechanism}"
        dense = {
            "kernel": "attention_train_matrix", "shape": shape,
            "backend": "dense", "median_s": 0.01, "p10_s": 0.01,
            "p90_s": 0.01, "speedup": 1.0, "parity_max_rel_err": None,
        }
        sparse = dict(dense, backend="sparse", speedup=sparse_speedup,
                      parity_max_rel_err=1e-7)
        return [dense, sparse]

    def test_matrix_floor_binds_band_masks(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        fresh["results"] += self._matrix_rows("local", 0.8)
        base["results"] += self._matrix_rows("local", 0.8)
        failures, _ = gate.check(fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0)
        assert any("train matrix floor" in f for f in failures)

    def test_matrix_floor_ignores_data_dependent_masks(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        extra = self._matrix_rows("local", 1.2) + self._matrix_rows("routing", 0.7)
        fresh["results"] += extra
        base["results"] += copy.deepcopy(extra)
        failures, _ = gate.check(fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0)
        assert failures == []

    def test_matrix_floor_requires_band_rows(self, payloads):
        gate = _load_gate()
        base, fresh = payloads  # the fixture payload has no matrix rows at all
        failures, _ = gate.check(fresh, fresh, min_e2e_speedup=0.0, min_train_speedup=0.0)
        assert any("train matrix floor" in f for f in failures)

    def test_regime_sensitive_oracles_exempt_from_timing_diffs(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        shape = "B1xH2xL32xD16/longformer-w16"
        for speedup, payload in ((12.0, base), (5.0, fresh)):
            ref_med = 0.002 * speedup
            payload["results"] += [
                {"kernel": "sddmm_csr", "shape": shape, "backend": "reference",
                 "median_s": ref_med, "p10_s": ref_med, "p90_s": ref_med,
                 "speedup": 1.0, "parity_max_rel_err": None},
                {"kernel": "sddmm_csr", "shape": shape, "backend": "fast",
                 "median_s": 0.002, "p10_s": 0.002, "p90_s": 0.002,
                 "speedup": speedup, "parity_max_rel_err": 1e-7},
            ]
        # a 2.4x reference regime shift (and the speedup drop it induces on
        # the fast row) must not fail; the fast row's own median is unchanged
        failures, _ = gate.check(
            fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0,
        )
        assert failures == []
        # ...but a genuine fast-row median regression still fails
        for row in fresh["results"]:
            if row["kernel"] == "sddmm_csr" and row["backend"] == "fast":
                row["median_s"] *= 10.0
        failures, _ = gate.check(
            fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0,
        )
        assert any("sddmm_csr" in f and "slowdown" in f for f in failures)

    def test_new_rows_warn_and_skip_instead_of_failing(self, payloads):
        gate = _load_gate()
        base, fresh = payloads
        # rows with no baseline counterpart: diff checks skipped with a
        # warning (absolute floors still apply), never a KeyError/failure
        fresh["results"] += self._matrix_rows("local", 1.5)
        warnings = []
        failures, _ = gate.check(
            fresh, base, min_e2e_speedup=0.0, min_train_speedup=0.0,
            warnings=warnings,
        )
        assert failures == []
        assert any("no baseline entry" in w for w in warnings)

    def test_committed_baseline_is_valid(self):
        gate = _load_gate()
        payload = gate.load(str(REPO_ROOT / "benchmarks" / "baseline_kernels.json"))
        rows = gate.index_rows(payload)
        assert rows, "baseline has no rows"
        e2e = [r for (k, _, b), r in rows.items() if k == "attention_e2e" and b == "fast"]
        assert e2e and all(r["speedup"] >= 3.0 for r in e2e)
        train = [
            r for (k, _, b), r in rows.items()
            if k == "attention_train_step" and b == "fast"
        ]
        assert train and all(r["speedup"] >= 2.0 for r in train)
        failures, factor = gate.check(payload, payload)
        assert failures == [] and factor == 1.0


class TestServingBench:
    @pytest.fixture(scope="class")
    def serving_results(self):
        from repro.bench.runner import run_serving_benchmark

        return run_serving_benchmark(repeats=2, warmup=1, shape=TINY, seed=0)

    def test_rows_and_backends(self, serving_results):
        assert [r.backend for r in serving_results] == ["sequential", "batched"]
        assert all(r.kernel == "serving_throughput" for r in serving_results)

    def test_batched_bitwise_parity_with_sequential(self, serving_results):
        sequential, batched = serving_results
        assert sequential.parity_max_rel_err is None
        assert batched.parity_max_rel_err == 0.0

    def test_latency_and_throughput_extras(self, serving_results):
        for row in serving_results:
            extra = row.extra
            assert extra["requests_per_s"] > 0
            assert (
                0
                <= extra["latency_p50_s"]
                <= extra["latency_p95_s"]
                <= extra["latency_p99_s"]
            )

    def test_speedup_is_throughput_ratio(self, serving_results):
        sequential, batched = serving_results
        assert sequential.speedup == 1.0
        assert batched.speedup == pytest.approx(
            batched.extra["requests_per_s"] / sequential.extra["requests_per_s"],
            rel=1e-9,
        )

    def test_payload_rows_carry_extras(self, serving_results):
        payload = results_to_payload(serving_results, scale="smoke", repeats=2)
        for row in payload["results"]:
            assert set(row) == {
                "kernel", "shape", "backend", "median_s", "p10_s", "p90_s",
                "speedup", "parity_max_rel_err", "requests_per_s",
                "latency_p50_s", "latency_p95_s", "latency_p99_s",
            }

    def test_unknown_serving_backend_rejected(self):
        from repro.bench.runner import run_serving_benchmark

        with pytest.raises(ValueError, match="unknown serving backends"):
            run_serving_benchmark(shape=TINY, backends=("sequential", "warp"))


class TestServeGate:
    @staticmethod
    def _serving_rows(speedup):
        shape = "B1xH2xL32xD16/serve-mix12"
        sequential = {
            "kernel": "serving_throughput", "shape": shape,
            "backend": "sequential", "median_s": 0.01, "p10_s": 0.01,
            "p90_s": 0.01, "speedup": 1.0, "parity_max_rel_err": None,
            "requests_per_s": 1200.0, "latency_p50_s": 1e-3,
            "latency_p95_s": 2e-3, "latency_p99_s": 3e-3,
        }
        batched = dict(sequential, backend="batched", speedup=speedup,
                       parity_max_rel_err=0.0)
        return [sequential, batched]

    def test_serve_floor_fires_below_threshold(self):
        gate = _load_gate()
        payload = {"schema_version": 1, "results": self._serving_rows(1.2)}
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0, min_serve_speedup=1.5,
        )
        assert any("serve throughput floor" in f for f in failures)

    def test_serve_floor_passes_above_threshold(self):
        gate = _load_gate()
        payload = {"schema_version": 1, "results": self._serving_rows(2.0)}
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0, min_serve_speedup=1.5,
        )
        assert failures == []

    def test_serving_parity_must_be_exactly_zero(self):
        # a tiny-but-nonzero parity error would pass the generic 1e-2
        # tolerance; the serving contract is bitwise, so the gate must fail
        gate = _load_gate()
        rows = self._serving_rows(2.0)
        rows[1]["parity_max_rel_err"] = 1e-6
        payload = {"schema_version": 1, "results": rows}
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0, min_serve_speedup=1.5,
        )
        assert any("exact bitwise parity" in f for f in failures)

    def test_serve_floor_requires_rows(self):
        gate = _load_gate()
        payload = {"schema_version": 1, "results": []}
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0, min_serve_speedup=1.5,
        )
        assert any("serve throughput floor" in f and "no " in f for f in failures)

    def test_serve_floor_defaults_off_in_check(self):
        # baseline-only payloads (no serving rows) must stay valid for
        # check() callers that predate the serving benchmark; the CLI is
        # what turns the floor on (default 1.5)
        gate = _load_gate()
        payload = {"schema_version": 1, "results": []}
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0,
        )
        assert failures == []

    def test_committed_baseline_meets_serve_floor(self):
        gate = _load_gate()
        payload = gate.load(str(REPO_ROOT / "benchmarks" / "baseline_kernels.json"))
        rows = gate.index_rows(payload)
        serving = [
            r for (k, _, b), r in rows.items()
            if k == "serving_throughput" and b == "batched"
        ]
        assert serving, "baseline has no serving_throughput batched rows"
        assert all(r["speedup"] >= 1.5 for r in serving)
        assert all(r["parity_max_rel_err"] == 0.0 for r in serving)


class TestFusedBench:
    @pytest.fixture(scope="class")
    def fused_results(self):
        from repro.bench.runner import run_fused_benchmarks

        return run_fused_benchmarks(repeats=2, warmup=0, patterns=("2:4",), shape=TINY)

    def test_rows_cover_both_arms(self, fused_results):
        combos = {(r.kernel, r.backend) for r in fused_results}
        assert combos == {
            (k, arm)
            for k in ("attention_fused", "attention_fused_train")
            for arm in ("staged", "fused")
        }

    def test_fused_arm_is_bitwise_identical_to_staged(self, fused_results):
        for r in fused_results:
            if r.backend == "staged":
                assert r.speedup == 1.0 and r.parity_max_rel_err is None
            else:
                assert r.parity_max_rel_err == 0.0

    def test_kernel_subset(self):
        from repro.bench.runner import run_fused_benchmarks

        rows = run_fused_benchmarks(
            repeats=1, warmup=0, patterns=("2:4",), shape=TINY,
            kernels=["attention_fused"],
        )
        assert {r.kernel for r in rows} == {"attention_fused"}

    def test_unknown_kernel_rejected(self):
        from repro.bench.runner import run_fused_benchmarks

        with pytest.raises(ValueError, match="unknown"):
            run_fused_benchmarks(shape=TINY, kernels=["warp_drive"])


class TestFusedAndSoftmaxGate:
    @staticmethod
    def _fused_rows(kernel, speedup, parity=0.0):
        shape = "B1xH2xL32xD16/2:4"
        staged = {
            "kernel": kernel, "shape": shape, "backend": "staged",
            "median_s": 0.01, "p10_s": 0.01, "p90_s": 0.01,
            "speedup": 1.0, "parity_max_rel_err": None,
        }
        fused = dict(staged, backend="fused", speedup=speedup,
                     parity_max_rel_err=parity)
        return [staged, fused]

    def _payload(self, speedup=1.2, parity=0.0):
        rows = (
            self._fused_rows("attention_fused", speedup, parity)
            + self._fused_rows("attention_fused_train", speedup, parity)
        )
        return {"schema_version": 1, "results": rows}

    def test_fused_floor_fires_below_threshold(self):
        gate = _load_gate()
        payload = self._payload(speedup=0.9)
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0, min_fused_speedup=1.0,
        )
        assert sum("fused floor" in f for f in failures) == 2

    def test_fused_floor_passes_at_parity_or_better(self):
        gate = _load_gate()
        payload = self._payload(speedup=1.0)
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0, min_fused_speedup=1.0,
        )
        assert failures == []

    def test_fused_parity_must_be_exactly_zero(self):
        # 1e-7 would sail under the generic 1e-2 tolerance; the fused plan
        # runs the same kernels as staged, so any difference is a bug
        gate = _load_gate()
        payload = self._payload(speedup=1.2, parity=1e-7)
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0,
        )
        assert sum("bitwise-identical to staged" in f for f in failures) == 2

    def test_fused_floor_requires_rows(self):
        gate = _load_gate()
        payload = {"schema_version": 1, "results": []}
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0, min_fused_speedup=1.0,
        )
        assert sum("fused floor" in f and "no " in f for f in failures) == 2

    @staticmethod
    def _softmax_rows(kernel, speedup):
        shape = "B1xH2xL32xD16/2:4"
        reference = {
            "kernel": kernel, "shape": shape, "backend": "reference",
            "median_s": 0.01, "p10_s": 0.01, "p90_s": 0.01,
            "speedup": 1.0, "parity_max_rel_err": None,
        }
        fast = dict(reference, backend="fast", speedup=speedup,
                    parity_max_rel_err=1e-7)
        return [reference, fast]

    def test_softmax_floor_binds_both_layouts(self):
        gate = _load_gate()
        rows = (
            self._softmax_rows("masked_softmax", 0.7)
            + self._softmax_rows("masked_softmax_csr", 1.4)
        )
        payload = {"schema_version": 1, "results": rows}
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0, min_softmax_speedup=1.0,
        )
        # the N:M row is below the floor, the CSR row above it
        assert any(
            "softmax floor" in f and "masked_softmax " in f for f in failures
        )
        assert not any("masked_softmax_csr" in f for f in failures)

    def test_new_floors_default_off_in_check(self):
        # synthetic payloads without the new rows must stay valid for
        # check() callers with default arguments; the CLI turns the floors on
        gate = _load_gate()
        payload = {"schema_version": 1, "results": []}
        failures, _ = gate.check(
            payload, payload, min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0,
        )
        assert failures == []


class TestMulticoreBench:
    @pytest.fixture(scope="class")
    def multicore_results(self):
        from repro.bench.runner import run_multicore_benchmarks

        return run_multicore_benchmarks(
            repeats=2, warmup=0, patterns=("2:4",), shape=TINY,
            workers=2, scaling=(2,),
        )

    def test_rows_cover_both_arms_and_the_scaling_sweep(self, multicore_results):
        from repro.bench.runner import (
            MULTICORE_BENCH_KERNELS,
            MULTICORE_SCALING_KERNEL,
        )

        combos = {(r.kernel, r.backend) for r in multicore_results}
        expected = {
            (k, b)
            for k in MULTICORE_BENCH_KERNELS
            for b in ("fast", "multicore")
        } | {(MULTICORE_SCALING_KERNEL, "w1"), (MULTICORE_SCALING_KERNEL, "w2")}
        assert combos == expected

    def test_multicore_rows_bitwise_parity_and_workers_column(
        self, multicore_results
    ):
        for r in multicore_results:
            if r.backend == "multicore":
                # exact 0.0, not merely small: the tiles run the same kernels
                assert r.parity_max_rel_err == 0.0
                assert r.extra == {"workers": 2.0}
            elif r.backend == "fast":
                assert r.speedup == 1.0
                assert r.parity_max_rel_err is None

    def test_scaling_rows_carry_worker_counts(self, multicore_results):
        from repro.bench.runner import MULTICORE_SCALING_KERNEL

        rows = {
            r.backend: r
            for r in multicore_results
            if r.kernel == MULTICORE_SCALING_KERNEL
        }
        assert rows["w1"].speedup == 1.0
        assert rows["w1"].extra == {"workers": 1.0}
        assert rows["w2"].extra == {"workers": 2.0}

    def test_payload_rows_carry_workers_column(self, multicore_results):
        payload = results_to_payload(multicore_results, scale="smoke", repeats=2)
        rows = [
            row for row in payload["results"] if row["backend"] == "multicore"
        ]
        assert rows
        assert all(row["workers"] == 2.0 for row in rows)


class TestMulticoreGate:
    @staticmethod
    def _row(kernel, backend, speedup, parity=0.0, workers=None):
        row = {
            "kernel": kernel, "shape": "B4xH8xL512xD64/1:2",
            "backend": backend, "median_s": 0.01, "p10_s": 0.01,
            "p90_s": 0.01, "speedup": speedup, "parity_max_rel_err": parity,
        }
        if workers is not None:
            row["workers"] = workers
        return row

    def _check(self, rows, **kwargs):
        gate = _load_gate()
        warnings = []
        failures, _ = gate.check(
            {"schema_version": 1, "results": rows},
            {"schema_version": 1, "results": []},
            min_e2e_speedup=0.0, min_train_speedup=0.0,
            min_matrix_speedup=0.0, warnings=warnings, **kwargs,
        )
        return failures, warnings

    def test_floor_binds_rows_with_a_parallel_pool(self):
        failures, _ = self._check(
            [
                self._row("attention_multicore", "multicore", 1.1, workers=2.0),
                self._row(
                    "attention_multicore_train", "multicore", 1.5, workers=2.0
                ),
            ],
            min_multicore_speedup=1.3,
        )
        assert any("multicore floor" in f and "1.10x" in f for f in failures)
        assert not any("attention_multicore_train" in f for f in failures)

    def test_floor_skips_single_worker_rows_with_a_warning(self):
        failures, warnings = self._check(
            [
                self._row("attention_multicore", "multicore", 0.9, workers=1.0),
                self._row(
                    "attention_multicore_train", "multicore", 0.9, workers=1.0
                ),
            ],
            min_multicore_speedup=1.3,
        )
        assert not any("multicore floor" in f for f in failures)
        assert any("single-worker" in w for w in warnings)

    def test_bitwise_parity_required_even_on_single_worker_rows(self):
        failures, _ = self._check(
            [
                self._row(
                    "attention_multicore", "multicore", 2.0,
                    parity=1e-7, workers=1.0,
                ),
            ],
        )
        assert any(
            "parity" in f and "attention_multicore" in f for f in failures
        )

    def test_floor_requires_rows(self):
        failures, _ = self._check([], min_multicore_speedup=1.3)
        assert any(
            "no attention_multicore multicore rows" in f for f in failures
        )
