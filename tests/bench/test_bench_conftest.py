"""Tests for the benchmark harness configuration (REPRO_SCALE validation)."""

import importlib.util
from pathlib import Path

import pytest

CONFTEST = Path(__file__).resolve().parents[2] / "benchmarks" / "conftest.py"


def _load_bench_conftest(monkeypatch, scale=None):
    if scale is None:
        monkeypatch.delenv("REPRO_SCALE", raising=False)
    else:
        monkeypatch.setenv("REPRO_SCALE", scale)
    spec = importlib.util.spec_from_file_location("bench_conftest_under_test", CONFTEST)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_defaults_to_smoke(monkeypatch):
    module = _load_bench_conftest(monkeypatch)
    assert module.BENCH_SCALE == "smoke"


@pytest.mark.parametrize("scale", ["smoke", "default", "full", " Full "])
def test_valid_scales_accepted_and_normalised(monkeypatch, scale):
    module = _load_bench_conftest(monkeypatch, scale)
    assert module.BENCH_SCALE == scale.strip().lower()


@pytest.mark.parametrize("typo", ["ful", "smokey", "prod", ""])
def test_typos_rejected_with_valid_choices(monkeypatch, typo):
    with pytest.raises(pytest.UsageError, match="smoke|default|full"):
        _load_bench_conftest(monkeypatch, typo)


def test_resolver_rejects_explicit_value(monkeypatch):
    module = _load_bench_conftest(monkeypatch, "smoke")
    with pytest.raises(pytest.UsageError, match="REPRO_SCALE='ful'"):
        module.resolve_bench_scale("ful")
