"""Tests for the Chrome-trace tracer: event format, session lifecycle,
dispatch-layer wiring, and the cache statistics carried in trace metadata."""

import json

import numpy as np
import pytest

from repro.core.backend import FAST, get_kernel
from repro.core.plan import PlanKey, clear_plan_cache, get_plan, plan_cache_stats
from repro.profile import tracer as tracer_mod
from repro.profile.dag import load_trace
from repro.profile.tracer import Tracer, current_tracer, is_tracing, trace

REQUIRED_COMPLETE_FIELDS = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
REQUIRED_INSTANT_FIELDS = {"name", "cat", "ph", "s", "ts", "pid", "tid", "args"}


def _record_fused_step(pattern="2:4", shape=(1, 2, 64, 32), seed=0):
    """Trace one fused DFSS forward+backward step; returns the tracer."""
    from repro.nn.autograd import parameter
    from repro.nn.sparse_attention import dfss_sparse_attention

    rng = np.random.default_rng(seed)
    q = parameter(rng.standard_normal(shape, dtype=np.float32))
    k = parameter(rng.standard_normal(shape, dtype=np.float32))
    v = parameter(rng.standard_normal(shape, dtype=np.float32))
    clear_plan_cache()
    with trace() as active:
        with active.span("train_step", "step"):
            out, _ = dfss_sparse_attention(q, k, v, pattern=pattern)
            out.sum().backward()
    return active


class TestSessionLifecycle:
    def test_disabled_by_default(self):
        assert current_tracer() is None
        assert not is_tracing()

    def test_trace_context_installs_and_uninstalls(self):
        with trace() as active:
            assert current_tracer() is active
            assert is_tracing()
        assert current_tracer() is None

    def test_start_while_active_raises(self):
        with trace():
            with pytest.raises(RuntimeError, match="already active"):
                tracer_mod.start_trace()

    def test_stop_without_active_raises(self):
        with pytest.raises(RuntimeError, match="no trace session"):
            tracer_mod.stop_trace()

    def test_uninstalls_even_when_body_raises(self):
        with pytest.raises(ValueError):
            with trace():
                raise ValueError("boom")
        assert current_tracer() is None

    def test_write_on_stop(self, tmp_path):
        path = tmp_path / "t.trace.json"
        with trace(str(path)) as active:
            active.instant("tick")
        payload = load_trace(str(path))
        assert payload["traceEvents"][0]["name"] == "tick"


class TestEventFormat:
    def test_complete_event_fields(self):
        tracer = Tracer()
        with tracer.span("op", "kernel", backend="fast"):
            pass
        (event,) = tracer.events
        assert REQUIRED_COMPLETE_FIELDS <= set(event)
        assert event["ph"] == "X"
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
        assert event["args"]["backend"] == "fast"
        assert event["args"]["phase"] == "fwd"

    def test_instant_event_fields(self):
        tracer = Tracer()
        tracer.instant("plan_cache_hit", mechanism="dfss")
        (event,) = tracer.events
        assert REQUIRED_INSTANT_FIELDS <= set(event)
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["args"]["mechanism"] == "dfss"

    def test_payload_is_json_serialisable_chrome_trace(self):
        tracer = Tracer()
        with tracer.span("op"):
            tracer.instant("hit")
        payload = json.loads(json.dumps(tracer.payload()))
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert "metadata" in payload

    def test_phase_scope_stamps_and_restores(self):
        tracer = Tracer()
        with tracer.span("fwd_op"):
            pass
        with tracer.phase_scope("bwd"):
            with tracer.span("bwd_op"):
                pass
        with tracer.span("fwd_again"):
            pass
        phases = [e["args"]["phase"] for e in tracer.events]
        assert phases == ["fwd", "bwd", "fwd"]

    def test_label_scope_merges_and_nests(self):
        tracer = Tracer()
        with tracer.label_scope(mechanism="dfss"):
            with tracer.label_scope(shape_class="1x64"):
                tracer.instant("inner")
            tracer.instant("outer")
        inner, outer = tracer.events
        assert inner["args"]["mechanism"] == "dfss"
        assert inner["args"]["shape_class"] == "1x64"
        assert "shape_class" not in outer["args"]

    def test_timestamps_consistent_with_durations(self):
        """Every span lies inside the session and dur matches its bounds."""
        active = _record_fused_step()
        spans = [e for e in active.events if e["ph"] == "X"]
        assert spans
        for event in spans:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        step = next(e for e in spans if e["cat"] == "step")
        for event in spans:
            if event["cat"] == "kernel":
                assert event["ts"] >= step["ts"]
                assert event["ts"] + event["dur"] <= step["ts"] + step["dur"] + 1e-6


class TestDispatchWiring:
    def test_get_kernel_returns_raw_function_when_disabled(self):
        fn = get_kernel("spmm", FAST)
        assert get_kernel("spmm", FAST) is fn
        assert not hasattr(fn, "__wrapped__")

    def test_get_kernel_wraps_while_tracing(self):
        raw = get_kernel("spmm", FAST)
        with trace():
            wrapped = get_kernel("spmm", FAST)
            assert wrapped is not raw
            assert wrapped.__wrapped__ is raw
        assert get_kernel("spmm", FAST) is raw

    def test_fused_step_records_pipeline_kernels(self):
        active = _record_fused_step()
        names = {e["name"] for e in active.events if e.get("cat") == "kernel"}
        assert {"sddmm_nm", "masked_softmax", "spmm"} <= names

    def test_backward_kernels_stamped_bwd(self):
        active = _record_fused_step()
        kernels = [e for e in active.events if e.get("cat") == "kernel"]
        phases = {e["args"]["phase"] for e in kernels}
        assert phases == {"fwd", "bwd"}

    def test_plan_kernel_events_carry_mechanism_labels(self):
        active = _record_fused_step()
        event = next(
            e for e in active.events
            if e.get("cat") == "kernel" and e["name"] == "sddmm_nm"
        )
        assert event["args"]["mechanism"].startswith("dfss")
        assert event["args"]["pipeline"] == "fused"
        assert "shape_class" in event["args"]


class TestCacheStats:
    def test_plan_cache_stats_shape(self):
        clear_plan_cache()
        key = PlanKey("dfss_2:4", "nm", FAST, "float32", (16, 16, 8))
        get_plan(key)
        get_plan(key)
        stats = plan_cache_stats()
        assert stats == {"size": 1, "hits": 1, "misses": 1, "evictions": 0}

    def test_plan_cache_instants_and_metadata(self):
        clear_plan_cache()
        key = PlanKey("dfss_2:4", "nm", FAST, "float32", (16, 16, 8))
        with trace() as active:
            get_plan(key)
            get_plan(key)
        names = [e["name"] for e in active.events if e.get("cat") == "cache"]
        assert names.count("plan_cache_miss") == 1
        assert names.count("plan_cache_hit") == 1
        stats = active.metadata["plan_cache"]
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_session_hook_clears_plan_cache_at_both_ends(self):
        key = PlanKey("dfss_2:4", "nm", FAST, "float32", (16, 16, 8))
        get_plan(key)
        with trace():
            assert plan_cache_stats()["size"] == 0  # cleared at start
            get_plan(key)
        assert plan_cache_stats()["size"] == 0  # cleared at stop

    def test_structure_cache_session_totals_in_metadata(self):
        from repro.serve import serve
        from repro.serve.workload import synthetic_workload

        requests = synthetic_workload(6, seq_lens=(32, 64), head_dim=16, seed=0)
        with trace() as active:
            serve(requests, max_batch_size=4)
        stats = active.metadata["structure_cache"]
        assert set(stats) == {"hits", "misses", "evictions"}
        assert stats["misses"] >= 1

    def test_metadata_provider_failure_is_contained(self):
        name = "test_failing_provider"
        tracer_mod.register_metadata_provider(
            name, lambda: (_ for _ in ()).throw(RuntimeError("nope"))
        )
        try:
            with trace() as active:
                pass
            assert "provider failed" in active.metadata[name]
        finally:
            tracer_mod._METADATA_PROVIDERS.pop(name, None)
