"""Smoke tests for ``python -m repro.profile`` — the commands CI runs."""

import json

import pytest

from repro.profile.__main__ import main

# Pin the fast backend: these tests assert replay-accuracy and event-sequence
# properties of the single-core plan; a multicore $REPRO_BACKEND tiles stages
# across worker lanes the replay cannot model on an oversubscribed runner.
TINY = ["--shape", "1", "2", "64", "32", "--warmup", "1", "--backend", "fast"]


class TestTrain:
    def test_train_check_passes(self, capsys):
        assert main(["train", *TINY, "--check"]) == 0
        out = capsys.readouterr().out
        assert "replay self-check OK" in out
        assert "Per-kernel attribution" in out

    def test_train_writes_valid_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "train.trace.json"
        assert main(["train", *TINY, "--trace", str(path), "--check"]) == 0
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert {"kernel", "step"} <= cats
        assert "plan_cache" in payload["metadata"]

    def test_train_what_ifs(self, capsys):
        assert main(
            ["train", *TINY, "--gpusim", "--scale-phase", "bwd=0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "What-if" in out
        assert "Gpusim replay" in out

    def test_bad_scale_pair_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", *TINY, "--scale-phase", "bwd"])


class TestServe:
    def test_serve_check_passes(self, capsys):
        assert main(
            ["serve", "--requests", "6", "--batch-size", "4", "--check"]
        ) == 0
        assert "replay self-check OK" in capsys.readouterr().out


class TestReport:
    def test_report_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "step.trace.json"
        assert main(["train", *TINY, "--trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "Step 'train_step'" in out
        assert "replay self-check OK" in out

    def test_report_unknown_step_fails(self, tmp_path):
        path = tmp_path / "step.trace.json"
        assert main(["train", *TINY, "--trace", str(path)]) == 0
        with pytest.raises(ValueError, match="recorded steps"):
            main(["report", str(path), "--step", "nope"])


class TestOverhead:
    def test_overhead_runs(self, capsys):
        assert main(["overhead", *TINY, "--repeats", "2"]) == 0
        assert "tracing overhead" in capsys.readouterr().out
