"""Tests for DAG reconstruction, critical-path analysis, and the replayer."""

import numpy as np
import pytest

from repro.core.plan import clear_plan_cache
from repro.profile.dag import OpDag, OpNode, StepSpan, build_dag, critical_path, load_trace
from repro.profile.replay import gpusim_cost_fn, replay
from repro.profile.report import format_report, kernel_attribution, phase_attribution
from repro.profile.tracer import trace


def _record_step_payload(shape=(1, 2, 64, 32), pattern="2:4", seed=0):
    from repro.core.backend import use_backend
    from repro.nn.autograd import parameter
    from repro.nn.sparse_attention import dfss_sparse_attention

    rng = np.random.default_rng(seed)
    q = parameter(rng.standard_normal(shape, dtype=np.float32))
    k = parameter(rng.standard_normal(shape, dtype=np.float32))
    v = parameter(rng.standard_normal(shape, dtype=np.float32))
    clear_plan_cache()
    # These tests assert the exact one-kernel-per-stage event sequence of the
    # single-core fast plan; pin it so a multicore REPRO_BACKEND (which tiles
    # stages into several kernel events) doesn't change the recorded trace.
    with use_backend("fast"), trace() as active:
        # warm-up outside the step span so the recorded step is steady state
        out, _ = dfss_sparse_attention(q, k, v, pattern=pattern)
        out.sum().backward()
        with active.span("train_step", "step"):
            out, _ = dfss_sparse_attention(q, k, v, pattern=pattern)
            out.sum().backward()
    return active.payload()


def _hand_built_dag():
    """A diamond DAG on two lanes with a known longest path.

    Lane (1, 0):  a[dur 10] --gap 2--> b[dur 5] --gap 0--> c[dur 20]
    Lane (1, 1):  d[dur 40]

    Longest path is a->b->c: 10 + 2 + 5 + 0 + 20 = 37.
    """
    nodes = [
        OpNode(index=0, name="a", start_us=0.0, dur_us=10.0, pid=1, tid=0),
        OpNode(index=1, name="b", start_us=12.0, dur_us=5.0, pid=1, tid=0, phase="bwd"),
        OpNode(index=2, name="c", start_us=17.0, dur_us=20.0, pid=1, tid=0, phase="bwd"),
        OpNode(index=3, name="d", start_us=0.0, dur_us=40.0, pid=1, tid=1),
    ]
    edges = {0: [(1, 2.0)], 1: [(2, 0.0)], 2: [], 3: []}
    step = StepSpan(name="step", start_us=0.0, dur_us=45.0)
    return OpDag(nodes=nodes, edges=edges, step=step)


class TestLoadTrace:
    def test_rejects_payload_without_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            load_trace({"metadata": {}})

    def test_passes_dict_through(self):
        payload = {"traceEvents": []}
        assert load_trace(payload)["traceEvents"] == []


class TestBuildDag:
    def test_deterministic(self):
        payload = _record_step_payload()
        first = build_dag(payload)
        second = build_dag(payload)
        assert [n.name for n in first.nodes] == [n.name for n in second.nodes]
        assert first.edges == second.edges
        assert first.step == second.step

    def test_only_kernels_inside_step_become_nodes(self):
        payload = _record_step_payload()
        dag = build_dag(payload)
        # the warm-up iteration ran the same kernels outside the span
        all_kernels = [
            e for e in payload["traceEvents"]
            if e.get("cat") == "kernel" and e.get("ph") == "X"
        ]
        assert len(dag.nodes) < len(all_kernels)
        names = [n.name for n in dag.nodes]
        assert names == ["sddmm_nm", "masked_softmax", "spmm", "attention_bwd"]

    def test_indices_topological_and_starts_ordered(self):
        dag = build_dag(_record_step_payload())
        for u, successors in dag.edges.items():
            for v, gap in successors:
                assert v > u
                assert gap >= 0.0
        starts = [n.start_us for n in dag.nodes]
        assert starts == sorted(starts)

    def test_phases_recovered(self):
        dag = build_dag(_record_step_payload())
        assert [n.phase for n in dag.nodes] == ["fwd", "fwd", "fwd", "bwd"]

    def test_named_step_selection_and_error(self):
        payload = _record_step_payload()
        assert build_dag(payload, step="train_step").step.name == "train_step"
        with pytest.raises(ValueError, match="recorded steps: train_step"):
            build_dag(payload, step="nope")

    def test_lead_tail_bracket_the_step(self):
        dag = build_dag(_record_step_payload())
        assert dag.lead_us >= 0.0 and dag.tail_us >= 0.0
        kernel_span = max(n.end_us for n in dag.nodes) - min(
            n.start_us for n in dag.nodes
        )
        assert dag.lead_us + kernel_span + dag.tail_us == pytest.approx(
            dag.measured_us, rel=1e-9
        )


class TestCriticalPath:
    def test_hand_built_dag(self):
        length, path = critical_path(_hand_built_dag())
        assert length == pytest.approx(40.0)  # lane d wins: 40 > 37
        assert path == [3]

    def test_cost_override_reroutes_the_path(self):
        dag = _hand_built_dag()
        # shrink d so the chain a->b->c becomes the longest path
        costs = {0: 10.0, 1: 5.0, 2: 20.0, 3: 1.0}
        length, path = critical_path(dag, costs)
        assert length == pytest.approx(37.0)
        assert path == [0, 1, 2]

    def test_empty_dag(self):
        assert critical_path(OpDag(nodes=[], edges={})) == (0.0, [])


class TestReplay:
    def test_self_check_reconstructs_measured_wall(self):
        dag = build_dag(_record_step_payload())
        result = replay(dag)
        assert result.measured_us == pytest.approx(dag.measured_us)
        # lead + chain make-span + tail is an identity on a single-lane trace
        assert result.rel_error is not None
        assert result.rel_error < 0.10  # the acceptance gate; actually ~0
        assert result.rel_error == pytest.approx(0.0, abs=1e-9)

    def test_accepts_payload_directly(self):
        payload = _record_step_payload()
        assert replay(payload).predicted_us > 0.0

    def test_phase_scale_shrinks_prediction(self):
        dag = build_dag(_record_step_payload())
        base = replay(dag)
        faster = replay(dag, phase_scale={"bwd": 0.5})
        assert faster.predicted_us < base.predicted_us

    def test_kernel_scale_zero_removes_that_kernel_cost(self):
        dag = _hand_built_dag()
        result = replay(dag, kernel_scale={"d": 0.0})
        assert result.cost_us[3] == 0.0
        assert result.path_us == pytest.approx(37.0)

    def test_hand_built_prediction(self):
        # lead = 0, make-span = max(37, 40) = 40, tail = 45 - 40 = 5
        result = replay(_hand_built_dag())
        assert result.makespan_us == pytest.approx(40.0)
        assert result.predicted_us == pytest.approx(45.0)

    def test_gpusim_cost_fn_substitutes_modelled_kernels(self):
        dag = build_dag(_record_step_payload())
        cost = gpusim_cost_fn()
        modelled = {n.name: cost(n) for n in dag.nodes}
        assert all(v is not None and v > 0.0 for v in modelled.values())
        simulated = replay(dag, cost_fn=cost)
        assert simulated.predicted_us > 0.0
        assert simulated.predicted_us != pytest.approx(replay(dag).predicted_us)

    def test_gpusim_cost_fn_keeps_unmodelled_kernels(self):
        node = OpNode(index=0, name="mystery", start_us=0.0, dur_us=7.0, pid=0, tid=0)
        assert gpusim_cost_fn()(node) is None


class TestReport:
    def test_attribution_tables(self):
        dag = build_dag(_record_step_payload())
        kernels = kernel_attribution(dag)
        assert {r["kernel"] for r in kernels} == {
            "sddmm_nm", "masked_softmax", "spmm", "attention_bwd"
        }
        assert sum(r["share"] for r in kernels) == pytest.approx(1.0)
        phases = phase_attribution(dag)
        assert [r["phase"] for r in phases] == ["bwd", "fwd"]
        assert sum(r["share"] for r in phases) == pytest.approx(1.0)

    def test_format_report_sections(self):
        payload = _record_step_payload()
        dag = build_dag(payload)
        text = format_report(dag, replay(dag))
        assert "Step 'train_step'" in text
        assert "Per-kernel attribution" in text
        assert "Per-phase attribution" in text
        assert "Critical path" in text
        assert "plan_cache:" in text
