"""Tests for the deadline-aware serving engine and the ``repro.serve`` facade."""

import asyncio

import numpy as np
import pytest

import repro
from repro.serve import AttentionServer, ServeRequest, StructureCache, serve


def _request(rng, mechanism="local", options=None, heads=1, seq=32, d=16, **kw):
    options = {"window": 4} if options is None else options
    shape = (heads, seq, d) if heads else (seq, d)
    return ServeRequest(
        q=rng.standard_normal(shape, dtype=np.float32),
        k=rng.standard_normal(shape, dtype=np.float32),
        v=rng.standard_normal(shape, dtype=np.float32),
        mechanism=mechanism,
        options=options,
        **kw,
    )


class TestServeRequest:
    def test_k_v_default_to_q(self):
        q = np.zeros((4, 8), dtype=np.float32)
        request = ServeRequest(q=q)
        assert request.k is request.q and request.v is request.k
        assert request.seq_len == 4 and request.head_dim == 8

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2-D"):
            ServeRequest(q=np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError, match="leading dimensions"):
            ServeRequest(
                q=np.zeros((2, 4, 8), dtype=np.float32),
                k=np.zeros((3, 4, 8), dtype=np.float32),
            )
        with pytest.raises(ValueError, match="head dimension"):
            ServeRequest(
                q=np.zeros((4, 8), dtype=np.float32),
                k=np.zeros((4, 16), dtype=np.float32),
            )
        with pytest.raises(ValueError, match="sequence length"):
            ServeRequest(
                q=np.zeros((4, 8), dtype=np.float32),
                k=np.zeros((6, 8), dtype=np.float32),
                v=np.zeros((5, 8), dtype=np.float32),
            )


class TestScheduler:
    def test_single_request_batch(self):
        rng = np.random.default_rng(0)
        results = serve([_request(rng, request_id="only")])
        assert len(results) == 1
        assert results[0].request_id == "only"
        assert results[0].batched is True
        assert results[0].batch_requests == 1
        assert results[0].latency_s >= 0.0

    def test_mixed_batch_bitwise_equals_sequential(self):
        """Acceptance shape: >= 3 mechanisms across >= 2 sequence lengths."""
        rng = np.random.default_rng(1)
        requests = [
            _request(rng, "local", {"window": 4}, seq=32, request_id="a"),
            _request(rng, "longformer", {"window": 4, "num_global": 2}, seq=64,
                     request_id="b"),
            _request(rng, "bigbird", {"block_size": 16}, seq=32, request_id="c"),
            _request(rng, "dfss_2:4", {}, seq=64, request_id="d"),
            _request(rng, "local", {"window": 4}, seq=32, request_id="e"),
        ]
        batched = serve(requests, max_batch_size=8)
        assert {r.request_id for r in batched} == {"a", "b", "c", "d", "e"}
        assert all(r.batched and r.batch_requests == len(requests) for r in batched)
        for request, result in zip(requests, batched):
            solo = serve([request], max_batch_size=1)[0]
            assert result.output.tobytes() == solo.output.tobytes()

    def test_fully_masked_request_in_batch(self):
        rng = np.random.default_rng(2)
        masked = _request(rng, mask=np.zeros((32, 32), dtype=bool), request_id="m")
        results = serve([_request(rng), masked, _request(rng)])
        out = results[1].output
        assert results[1].mechanism == "mask"
        assert np.all(out == 0.0)
        solo = serve([masked], max_batch_size=1)[0]
        assert out.tobytes() == solo.output.tobytes()

    def test_deadline_expiry_flushes_under_fake_clock(self):
        t = {"now": 100.0}
        server = AttentionServer(
            max_batch_size=8, max_wait_s=0.5, clock=lambda: t["now"]
        )
        rng = np.random.default_rng(3)
        server.enqueue(_request(rng))
        server.enqueue(_request(rng))
        assert server.step() == []  # deadline 100.5 not reached
        assert server.pending_count == 2
        t["now"] = 100.4
        assert server.step() == []
        t["now"] = 100.6
        results = server.step()
        assert len(results) == 2
        assert results[0].batch_requests == 2
        assert server.pending_count == 0

    def test_per_request_wait_overrides_server_deadline(self):
        t = {"now": 0.0}
        server = AttentionServer(max_batch_size=8, max_wait_s=10.0, clock=lambda: t["now"])
        rng = np.random.default_rng(4)
        server.enqueue(_request(rng, max_wait_s=0.1))
        t["now"] = 0.2
        assert len(server.step()) == 1

    def test_full_queue_executes_before_deadline(self):
        t = {"now": 0.0}
        server = AttentionServer(max_batch_size=2, max_wait_s=60.0, clock=lambda: t["now"])
        rng = np.random.default_rng(5)
        server.enqueue(_request(rng))
        assert server.step() == []
        server.enqueue(_request(rng))
        results = server.step()  # clock never advanced: size trigger, not deadline
        assert len(results) == 2 and results[0].batch_requests == 2

    def test_non_batchable_executes_immediately_as_solo(self):
        t = {"now": 0.0}
        server = AttentionServer(max_batch_size=8, max_wait_s=60.0, clock=lambda: t["now"])
        rng = np.random.default_rng(6)
        server.enqueue(_request(rng, mechanism="linformer", options={}, seq=64))
        results = server.step()  # solo queues never wait for batchmates
        assert len(results) == 1
        assert results[0].batched is False
        assert results[0].batch_requests == 1

    def test_stats_and_cache_accounting(self):
        server = AttentionServer()
        rng = np.random.default_rng(7)
        first = server.enqueue(_request(rng))
        second = server.enqueue(_request(rng))
        distinct = server.enqueue(_request(rng, seq=64))
        server.drain()
        assert first.result.cache_hit is False
        assert second.result.cache_hit is True
        assert distinct.result.cache_hit is False
        stats = server.stats()
        assert stats["served_requests"] == 3
        assert stats["served_batches"] == 1
        assert stats["coalesced_requests"] == 3
        assert stats["pending"] == 0
        assert stats["structure_cache"] == {
            "hits": 1, "misses": 2, "evictions": 0, "entries": 2, "size": 2,
        }

    def test_shared_structure_cache_across_servers(self):
        cache = StructureCache()
        rng = np.random.default_rng(8)
        serve([_request(rng)], structure_cache=cache)
        results = serve([_request(rng)], structure_cache=cache)
        assert results[0].cache_hit is True

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            AttentionServer(max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            AttentionServer(max_wait_s=-1.0)

    def test_serve_returns_results_in_request_order(self):
        rng = np.random.default_rng(9)
        requests = [
            _request(rng, request_id=f"r{i}", seq=32 if i % 2 else 64)
            for i in range(6)
        ]
        results = serve(requests, max_batch_size=4)
        assert [r.request_id for r in results] == [f"r{i}" for i in range(6)]


class TestAsyncServer:
    def test_submit_and_aclose(self):
        async def scenario():
            rng = np.random.default_rng(10)
            async with AttentionServer(max_batch_size=4, max_wait_s=1e-3) as server:
                results = await asyncio.gather(
                    *(server.submit(_request(rng, request_id=f"r{i}")) for i in range(3))
                )
                return server, results

        server, results = asyncio.run(scenario())
        assert {r.request_id for r in results} == {"r0", "r1", "r2"}
        assert server.served_requests == 3
        assert server.pending_count == 0

    def test_aclose_flushes_pending(self):
        async def scenario():
            server = AttentionServer(max_batch_size=8, max_wait_s=3600.0)
            rng = np.random.default_rng(11)
            pending = server.enqueue(_request(rng))
            await server.aclose()
            return pending

        pending = asyncio.run(scenario())
        assert pending.result is not None


class TestFacade:
    def test_module_is_callable(self):
        rng = np.random.default_rng(12)
        results = repro.serve([_request(rng, request_id="via-module")])
        assert results[0].request_id == "via-module"

    def test_top_level_exports(self):
        assert repro.AttentionServer is AttentionServer
        assert repro.ServeRequest is ServeRequest
        for name in ("serve", "AttentionServer", "ServeRequest", "ServeResult"):
            assert name in repro.__all__
