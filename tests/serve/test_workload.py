"""Tests for the synthetic serving workload generator and the structure cache."""

import numpy as np
import pytest

from repro.serve import DEFAULT_MIX, StructureCache, synthetic_workload


class TestSyntheticWorkload:
    def test_deterministic_in_seed(self):
        a = synthetic_workload(8, seed=3)
        b = synthetic_workload(8, seed=3)
        for x, y in zip(a, b):
            assert x.mechanism == y.mechanism
            assert x.q.tobytes() == y.q.tobytes()
            assert x.arrival_offset_s == y.arrival_offset_s
        c = synthetic_workload(8, seed=4)
        assert any(x.q.tobytes() != y.q.tobytes() for x, y in zip(a, c))

    def test_arrivals_are_monotone(self):
        requests = synthetic_workload(32, seed=0)
        arrivals = [r.arrival_offset_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0.0

    def test_zero_rate_disables_gaps(self):
        requests = synthetic_workload(4, rate_rps=0.0)
        assert all(r.arrival_offset_s == 0.0 for r in requests)

    def test_mix_and_lengths_covered(self):
        requests = synthetic_workload(64, seq_lens=(32, 64), seed=1)
        assert {r.mechanism for r in requests} == {m for m, _ in DEFAULT_MIX}
        assert {r.seq_len for r in requests} == {32, 64}
        assert all(r.q.dtype == np.float32 for r in requests)
        assert all(r.request_id == f"r{i}" for i, r in enumerate(requests))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="n_requests"):
            synthetic_workload(-1)


class TestStructureCache:
    def test_miss_builds_once_then_hits(self):
        cache = StructureCache()
        calls = []
        for _ in range(3):
            value = cache.get("key", lambda: calls.append(1) or "built")
        assert value == "built"
        assert len(calls) == 1
        assert cache.stats() == {
            "hits": 2, "misses": 1, "evictions": 0, "entries": 1, "size": 1,
        }

    def test_lru_eviction_respects_recency(self):
        cache = StructureCache(max_entries=2)
        cache.get("a", lambda: "A")
        cache.get("b", lambda: "B")
        cache.get("a", lambda: "A")   # refresh a
        cache.get("c", lambda: "C")   # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert len(cache) == 2

    def test_clear_resets_counters(self):
        cache = StructureCache()
        cache.get("a", lambda: "A")
        cache.get("a", lambda: "A")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "entries": 0, "size": 0,
        }

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            StructureCache(max_entries=0)
