"""Bitwise-isolation and correctness tests for the ragged serving kernels."""

import numpy as np
import pytest

from repro.core.layout import SequenceSegments
from repro.core.padded_csr import PaddedCSRMatrix
from repro.serve.executor import (
    grouped_attention,
    ragged_attention,
    ragged_masked_softmax,
    ragged_sddmm,
    ragged_spmm,
)


def _band_structure(n, half_width):
    mask = np.triu(np.tril(np.ones((n, n), dtype=bool), half_width), -half_width)
    return PaddedCSRMatrix.from_mask(mask)


def _qkv(rng, *shape):
    return tuple(rng.standard_normal(shape, dtype=np.float32) for _ in range(3))


def _dense_reference(q, k, v, structure, scale=None):
    """float64 masked softmax attention, the numerical ground truth."""
    scale = 1.0 / np.sqrt(q.shape[-1]) if scale is None else scale
    mask = structure.to_mask()
    scores = (q.astype(np.float64) @ k.astype(np.float64).T) * scale
    scores = np.where(mask, scores, -np.inf)
    peak = np.max(scores, axis=-1, keepdims=True)
    exp = np.where(mask, np.exp(scores - np.where(np.isfinite(peak), peak, 0.0)), 0.0)
    denom = exp.sum(-1, keepdims=True)
    probs = np.divide(exp, denom, out=np.zeros_like(exp), where=denom > 0)
    return probs @ v.astype(np.float64)


class TestStagedKernels:
    def test_pipeline_matches_dense_reference(self):
        rng = np.random.default_rng(0)
        st = _band_structure(48, 4)
        q, k, v = _qkv(rng, 48, 16)
        out = ragged_spmm(ragged_masked_softmax(ragged_sddmm(q, k, st), st), st, v)
        ref = _dense_reference(q, k, v, st)
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-5)

    def test_fully_masked_rows_are_exact_zero(self):
        rng = np.random.default_rng(1)
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, :3] = True  # one live row, seven fully masked
        st = PaddedCSRMatrix.from_mask(mask)
        q, k, v = _qkv(rng, 8, 4)
        out = ragged_spmm(ragged_masked_softmax(ragged_sddmm(q, k, st), st), st, v)
        assert np.all(out[1:] == 0.0)
        assert np.any(out[0] != 0.0)

    def test_shape_validation(self):
        rng = np.random.default_rng(2)
        st = _band_structure(8, 1)
        q, k, _ = _qkv(rng, 8, 4)
        with pytest.raises(ValueError, match="do not match q rows"):
            ragged_sddmm(q[:4], k, st)
        with pytest.raises(ValueError, match="k shape"):
            ragged_sddmm(q, k[:4], st)


class TestFusedKernels:
    def test_fused_agrees_with_staged(self):
        rng = np.random.default_rng(3)
        st = _band_structure(64, 5)
        q, k, v = _qkv(rng, 64, 32)
        staged = ragged_spmm(
            ragged_masked_softmax(ragged_sddmm(q, k, st), st), st, v
        )
        fused = ragged_attention(q, k, v, st)
        np.testing.assert_allclose(fused, staged, rtol=0, atol=1e-5)

    def test_route_identity_grouped_blocked_g1(self):
        """grouped slice == blocked 2-D == grouped g=1, bitwise."""
        rng = np.random.default_rng(4)
        st = _band_structure(48, 3)
        g = 5
        q3, k3, v3 = _qkv(rng, g, 48, 16)
        out_g = grouped_attention(q3, k3, v3, st)
        for i in range(g):
            solo = ragged_attention(q3[i], k3[i], v3[i], st)
            g1 = grouped_attention(q3[i : i + 1], k3[i : i + 1], v3[i : i + 1], st)[0]
            assert out_g[i].tobytes() == solo.tobytes()
            assert out_g[i].tobytes() == g1.tobytes()

    def test_block_diagonal_concat_matches_solo_bitwise(self):
        """The serving coalesce path: mixed lengths, per-sequence blocks."""
        rng = np.random.default_rng(5)
        lens = [32, 48, 24, 48]
        structures = [_band_structure(n, 4) for n in lens]
        parts = [_qkv(rng, n, 16) for n in lens]
        cat = PaddedCSRMatrix.concat_ragged(structures)
        layout = SequenceSegments.from_lengths(lens)
        row_blocks = [
            (layout.row_offsets[i], layout.row_offsets[i + 1])
            for i in range(len(layout))
        ]
        key_blocks = [
            (layout.key_offsets[i], layout.key_offsets[i + 1])
            for i in range(len(layout))
        ]
        out = ragged_attention(
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
            cat,
            row_blocks=row_blocks,
            key_blocks=key_blocks,
        )
        for i, part in enumerate(layout.split_rows(out)):
            solo = ragged_attention(*parts[i], structures[i])
            assert part.tobytes() == solo.tobytes()

    def test_fused_fully_masked_rows_are_exact_zero(self):
        rng = np.random.default_rng(6)
        mask = np.zeros((16, 16), dtype=bool)
        mask[:4, :4] = True
        st = PaddedCSRMatrix.from_mask(mask)
        q, k, v = _qkv(rng, 16, 8)
        out = ragged_attention(q, k, v, st)
        assert np.all(out[4:] == 0.0)
        g_out = grouped_attention(q[None], k[None], v[None], st)
        assert g_out[0].tobytes() == out.tobytes()

    def test_explicit_scale(self):
        rng = np.random.default_rng(7)
        st = _band_structure(16, 2)
        q, k, v = _qkv(rng, 16, 8)
        default = ragged_attention(q, k, v, st)
        explicit = ragged_attention(q, k, v, st, scale=1.0 / np.sqrt(8))
        assert default.tobytes() == explicit.tobytes()
        assert not np.array_equal(ragged_attention(q, k, v, st, scale=1.0), default)

    def test_mismatched_key_blocks_rejected(self):
        rng = np.random.default_rng(8)
        st = _band_structure(16, 2)
        q, k, v = _qkv(rng, 16, 8)
        with pytest.raises(ValueError, match="key blocks"):
            ragged_attention(
                q, k, v, st, row_blocks=[(0, 8), (8, 16)], key_blocks=[(0, 16)]
            )


class TestGroupedPlan:
    def test_memoised_on_the_structure(self):
        from repro.serve.executor import grouped_plan

        st = _band_structure(32, 3)
        plan = grouped_plan(st)
        assert grouped_plan(st) is plan
        # with_values siblings share the structure cache by reference, so
        # the compiled plan survives value rebinds (the serving hot loop)
        sibling = st.with_values(st.values * 2.0)
        assert grouped_plan(sibling) is plan

    def test_plan_call_bitwise_equals_grouped_attention(self):
        from repro.serve.executor import grouped_plan

        rng = np.random.default_rng(9)
        st = _band_structure(40, 4)
        q3, k3, v3 = _qkv(rng, 3, 40, 16)
        scale = 1.0 / np.sqrt(16.0)
        via_plan = grouped_plan(st)(q3 * np.float32(scale), k3, v3)
        assert via_plan.tobytes() == grouped_attention(q3, k3, v3, st).tobytes()

    def test_zero_width_structure(self):
        from repro.serve.executor import grouped_plan

        st = PaddedCSRMatrix.from_mask(np.zeros((8, 8), dtype=bool))
        rng = np.random.default_rng(10)
        q3, k3, v3 = _qkv(rng, 2, 8, 4)
        out = grouped_plan(st)(q3, k3, v3)
        assert out.shape == (2, 8, 4) and np.all(out == 0.0)
