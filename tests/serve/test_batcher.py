"""Tests for request preparation, structure caching, and ragged coalescing."""

import numpy as np
import pytest

from repro.engine import AttentionEngine
from repro.serve import (
    ServeRequest,
    StructureCache,
    prepare_request,
    run_ragged_batch,
    structure_cache_key,
)


def _request(rng, mechanism="local", options=None, heads=2, seq=32, d=16, **kw):
    options = {"window": 4} if options is None else options
    shape = (heads, seq, d)
    return ServeRequest(
        q=rng.standard_normal(shape, dtype=np.float32),
        k=rng.standard_normal(shape, dtype=np.float32),
        v=rng.standard_normal(shape, dtype=np.float32),
        mechanism=mechanism,
        options=options,
        **kw,
    )


def _prepare(request, cache):
    engine = (
        None
        if request.mask is not None
        else AttentionEngine(request.mechanism, _options=dict(request.options))
    )
    return prepare_request(request, engine, cache)


class TestPrepareRequest:
    def test_static_mask_cache_miss_then_hit(self):
        rng = np.random.default_rng(0)
        cache = StructureCache()
        first = _prepare(_request(rng), cache)
        assert first.cache_hit is False
        assert cache.stats() == {
            "hits": 0, "misses": 1, "evictions": 0, "entries": 1, "size": 1,
        }
        second = _prepare(_request(rng), cache)
        assert second.cache_hit is True
        assert cache.stats() == {
            "hits": 1, "misses": 1, "evictions": 0, "entries": 1, "size": 1,
        }
        # every segment of every request shares the one cached structure
        shared = {id(s.structure) for p in (first, second) for s in p.segments}
        assert len(shared) == 1

    def test_different_lengths_use_different_cache_entries(self):
        rng = np.random.default_rng(1)
        cache = StructureCache()
        _prepare(_request(rng, seq=32), cache)
        prepared = _prepare(_request(rng, seq=64), cache)
        assert prepared.cache_hit is False
        assert len(cache) == 2

    def test_content_dependent_mechanism_skips_cache(self):
        rng = np.random.default_rng(2)
        cache = StructureCache()
        prepared = _prepare(_request(rng, mechanism="dfss_2:4", options={}), cache)
        assert prepared.batchable
        assert prepared.cache_hit is None
        assert len(cache) == 0
        # per-segment structures: content differs per head slice
        assert len({id(s.structure) for s in prepared.segments}) == len(
            prepared.segments
        )

    def test_non_batchable_mechanism_falls_back_to_engine(self):
        rng = np.random.default_rng(3)
        cache = StructureCache()
        prepared = _prepare(
            _request(rng, mechanism="linformer", options={}, seq=64), cache
        )
        assert not prepared.batchable
        assert prepared.segments == []
        assert prepared.engine is not None

    def test_custom_2d_mask_shares_one_structure(self):
        rng = np.random.default_rng(4)
        cache = StructureCache()
        mask = np.tri(32, dtype=bool)
        prepared = _prepare(_request(rng, mask=mask), cache)
        assert prepared.mechanism == "mask"
        assert prepared.batchable
        assert len({id(s.structure) for s in prepared.segments}) == 1

    def test_custom_mask_shape_mismatch_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError, match="mask trailing shape"):
            _prepare(_request(rng, mask=np.ones((8, 8), dtype=bool)), StructureCache())


class TestStructureCacheKey:
    def test_same_config_same_key(self):
        a = AttentionEngine("local", _options={"window": 4})
        b = AttentionEngine("local", _options={"window": 4})
        assert structure_cache_key("local", a.config, 32, 32) == structure_cache_key(
            "local", b.config, 32, 32
        )

    def test_config_and_length_distinguish_keys(self):
        a = AttentionEngine("local", _options={"window": 4})
        b = AttentionEngine("local", _options={"window": 8})
        base = structure_cache_key("local", a.config, 32, 32)
        assert base != structure_cache_key("local", b.config, 32, 32)
        assert base != structure_cache_key("local", a.config, 64, 64)
        assert base != structure_cache_key("longformer", a.config, 32, 32)


class TestRunRaggedBatch:
    def test_batch_output_bitwise_equals_solo(self):
        rng = np.random.default_rng(6)
        cache = StructureCache()
        requests = [
            _request(rng, "local", {"window": 4}, seq=32),
            _request(rng, "longformer", {"window": 4, "num_global": 2}, seq=64),
            _request(rng, "dfss_2:4", {}, seq=32),
            _request(rng, "local", {"window": 4}, seq=32),  # cache/group mate
        ]
        prepared = [_prepare(r, cache) for r in requests]
        batch_outputs = run_ragged_batch(prepared)
        for request, out in zip(requests, batch_outputs):
            solo = run_ragged_batch([_prepare(request, StructureCache())])[0]
            assert out.shape == request.q.shape[:-1] + (request.v.shape[-1],)
            assert out.tobytes() == solo.tobytes()

    def test_empty_batch(self):
        assert run_ragged_batch([]) == []

    def test_2d_request_keeps_2d_output(self):
        rng = np.random.default_rng(7)
        request = ServeRequest(
            q=rng.standard_normal((32, 16), dtype=np.float32),
            mechanism="local",
            options={"window": 4},
        )
        out = run_ragged_batch([_prepare(request, StructureCache())])[0]
        assert out.shape == (32, 16)


class TestCachedStructureCarriesPlan:
    def test_static_mask_cache_entry_is_precompiled(self):
        rng = np.random.default_rng(42)
        cache = StructureCache()
        prepared = _prepare(_request(rng), cache)
        structure = prepared.segments[0].structure
        # the cache-fill lambda compiles the grouped plan at enqueue time, so
        # the flush never pays the lane-geometry setup
        assert "grouped_plan" in structure._shared
        from repro.serve.executor import grouped_plan

        plan = structure._shared["grouped_plan"]
        assert grouped_plan(structure) is plan
        # a second request hits the cache and reuses the same compiled plan
        again = _prepare(_request(rng), cache)
        assert again.segments[0].structure._shared["grouped_plan"] is plan
