"""Deprecation of the top-level staged kernel entry points the plan subsumes.

``repro.core.softmax_spmm`` and ``repro.core.dfss_attention_bwd`` warn once
per process and forward to their submodule homes; importing them from the
submodules directly stays silent.
"""

import warnings

import pytest

import repro.core


def _reset_warn_once(name):
    repro.core._WARNED_STAGED.discard(name)


class TestDeprecatedStagedEntryPoints:
    @pytest.mark.parametrize(
        "name, home",
        [
            ("softmax_spmm", "repro.core.spmm"),
            ("dfss_attention_bwd", "repro.core.attention_grad"),
        ],
    )
    def test_warns_once_and_forwards(self, name, home):
        import importlib

        _reset_warn_once(name)
        with pytest.warns(DeprecationWarning, match=name):
            attr = getattr(repro.core, name)
        assert attr is getattr(importlib.import_module(home), name)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert getattr(repro.core, name) is attr  # second access is silent

    def test_submodule_imports_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core.attention_grad import dfss_attention_bwd  # noqa: F401
            from repro.core.spmm import softmax_spmm  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="warp_drive"):
            repro.core.warp_drive

    def test_deprecated_names_stay_in_all(self):
        # ``from repro.core import *`` keeps working for both names
        assert "softmax_spmm" in repro.core.__all__
        assert "dfss_attention_bwd" in repro.core.__all__
