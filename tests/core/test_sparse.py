"""Tests for the NMSparseMatrix container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import PATTERN_1_2, PATTERN_2_4
from repro.core.pruning import nm_prune_mask
from repro.core.sparse import NMSparseMatrix


def _random_sparse(shape=(16, 32), pattern=PATTERN_2_4, dtype="float32", seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=shape).astype(np.float32)
    return dense, NMSparseMatrix.from_dense(dense, pattern, dtype=dtype)


class TestConstruction:
    def test_from_dense_shapes(self):
        dense, sp = _random_sparse((16, 32))
        assert sp.rows == 16
        assert sp.dense_cols == 32
        assert sp.kept_cols == 16
        assert sp.dense_shape == (16, 32)
        assert sp.batch_shape == ()

    def test_batched(self):
        dense, sp = _random_sparse((2, 3, 8, 16))
        assert sp.batch_shape == (2, 3)
        assert sp.dense_shape == (2, 3, 8, 16)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            NMSparseMatrix(
                values=np.zeros((4, 8)),
                indices=np.zeros((4, 6), dtype=np.int8),
                pattern=PATTERN_2_4,
                dense_cols=16,
            )

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            NMSparseMatrix(
                values=np.zeros((4, 10)),
                indices=np.zeros((4, 10), dtype=np.int8),
                pattern=PATTERN_2_4,
                dense_cols=16,
            )

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            NMSparseMatrix(
                values=np.zeros((4, 8)),
                indices=np.full((4, 8), 5, dtype=np.int8),
                pattern=PATTERN_2_4,
                dense_cols=16,
            )


class TestRoundTrip:
    def test_to_dense_matches_masked_original(self):
        dense, sp = _random_sparse((16, 32))
        mask = nm_prune_mask(dense, PATTERN_2_4)
        recon = sp.to_dense()
        np.testing.assert_allclose(recon, np.where(mask, dense, 0.0), atol=0)

    def test_to_mask(self):
        dense, sp = _random_sparse((8, 16))
        mask = sp.to_mask()
        np.testing.assert_array_equal(mask, nm_prune_mask(dense, PATTERN_2_4))

    def test_bfloat16_values_on_grid(self):
        dense, sp = _random_sparse((8, 16), dtype="bfloat16", seed=3)
        from repro.core.precision import to_bfloat16

        np.testing.assert_array_equal(sp.values, to_bfloat16(sp.values))

    def test_column_indices_within_bounds(self):
        dense, sp = _random_sparse((8, 16))
        cols = sp.column_indices()
        assert cols.min() >= 0 and cols.max() < 16
        # strictly increasing within each row for 2:4 (2 kept per group of 4)
        assert np.all(np.diff(cols, axis=-1) > 0)

    def test_with_values(self):
        dense, sp = _random_sparse((8, 16))
        doubled = sp.with_values(sp.values * 2)
        np.testing.assert_allclose(doubled.to_dense(), sp.to_dense() * 2)
        with pytest.raises(ValueError):
            sp.with_values(np.zeros((8, 4)))


class TestFootprint:
    def test_compression_ratio_2_4_bf16(self):
        # nonzeros: n^2/2 * 2B, metadata: n^2/4 groups... -> ratio = 32/18 ≈ 1.78
        dense, sp = _random_sparse((128, 128), PATTERN_2_4, dtype="bfloat16")
        assert sp.dense_nbytes() == 128 * 128 * 2
        assert sp.nonzeros_nbytes() == 128 * 64 * 2
        assert sp.metadata_nbytes() == 128 * 32 * 4 // 8
        assert sp.compression_ratio() == pytest.approx(16 / 9, rel=1e-6)

    def test_compression_ratio_1_2_fp32(self):
        dense, sp = _random_sparse((128, 128), PATTERN_1_2, dtype="float32")
        # paper: n^2 * 32b -> n^2/2 * 32b + n^2/16 * 32b
        assert sp.nonzeros_nbytes() == 128 * 64 * 4
        assert sp.metadata_nbytes() == 128 * 64 * 4 // 8
        expected = 1.0 / (0.5 + 1.0 / 16.0)
        assert sp.compression_ratio() == pytest.approx(expected, rel=1e-6)

    def test_memory_reduction_in_paper_band(self):
        # paper: 1.41x ~ 1.82x attention-matrix memory reduction
        _, sp24 = _random_sparse((256, 256), PATTERN_2_4, dtype="bfloat16")
        _, sp12 = _random_sparse((256, 256), PATTERN_1_2, dtype="float32")
        assert 1.4 < sp24.compression_ratio() < 2.0
        assert 1.4 < sp12.compression_ratio() < 2.0


class TestPackedMetadata:
    def test_shape_and_dtype(self):
        dense, sp = _random_sparse((64, 64))
        packed = sp.packed_metadata()
        assert packed.dtype == np.uint16
        # 64 cols -> 16 groups -> 4 blocks per row
        assert packed.shape == (64, 4)

    def test_pads_partial_tiles(self):
        dense, sp = _random_sparse((40, 32))
        packed = sp.packed_metadata()
        assert packed.shape[0] == 64  # padded to the next multiple of 32

    def test_roundtrip_through_decode(self):
        from repro.core import metadata as meta

        dense, sp = _random_sparse((32, 64))
        packed = sp.packed_metadata(reorder=True)
        nib = meta.unpack_metadata(packed, reordered=True)[:32, :16]
        np.testing.assert_array_equal(nib, sp.group_nibbles())


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.sampled_from(["1:2", "2:4"]),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_dense_roundtrip_preserves_kept_entries(rows, groups, pattern, seed):
    rng = np.random.default_rng(seed)
    from repro.core.patterns import resolve_pattern

    pat = resolve_pattern(pattern)
    dense = rng.normal(size=(rows, groups * pat.m)).astype(np.float32)
    sp = NMSparseMatrix.from_dense(dense, pat)
    recon = sp.to_dense()
    mask = nm_prune_mask(dense, pat)
    np.testing.assert_allclose(recon[mask], dense[mask])
    assert np.all(recon[~mask] == 0.0)
