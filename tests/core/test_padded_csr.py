"""Tests for the padded-CSR compressed layout and the layout-generic kernels.

The layout is exercised exactly the way the mask-based sparse training path
uses it: compress a boolean mask, write scores through ``sddmm_csr``, softmax
over the stored lanes, contract with ``spmm``/``spmm_t``, and differentiate
with the shared analytic backward — all against the dense masked oracle.
"""

import numpy as np
import pytest

from repro.core.attention_grad import masked_attention_bwd
from repro.core.backend import FAST, REFERENCE, get_kernel
from repro.core.padded_csr import PaddedCSRMatrix
from repro.core.sddmm import MASKED_SCORE, sddmm_csr, sddmm_masked
from repro.core.softmax import masked_dense_softmax, sparse_softmax
from repro.core.spmm import spmm, spmm_t

BACKENDS = [REFERENCE, FAST]


def _random_mask(shape, density=0.3, seed=0, dead_row=None):
    rng = np.random.default_rng(seed)
    mask = rng.random(shape) < density
    mask[..., -1, :] = True  # at least one full-ish row to vary widths
    if dead_row is not None:
        mask[..., dead_row, :] = False
    return mask


def _qkv(batch=(2, 3), seq=16, d=8, seed=0):
    rng = np.random.default_rng(seed)
    return tuple(
        rng.normal(size=tuple(batch) + (seq, d)).astype(np.float32) for _ in range(3)
    )


class TestLayout:
    def test_from_mask_round_trips_the_mask(self):
        mask = _random_mask((2, 3, 16, 16), seed=1, dead_row=3)
        st = PaddedCSRMatrix.from_mask(mask)
        np.testing.assert_array_equal(st.to_mask(), mask)
        np.testing.assert_array_equal(st.row_lengths(), mask.sum(-1))
        assert st.width == int(mask.sum(-1).max())

    def test_ragged_rows_and_dead_rows(self):
        mask = np.zeros((4, 8), dtype=bool)
        mask[0, :5] = True
        mask[1, [1, 6]] = True
        mask[3] = True  # full row
        st = PaddedCSRMatrix.from_mask(mask)
        assert st.width == 8
        np.testing.assert_array_equal(st.lengths, [5, 2, 0, 8])
        # valid columns ascend; padding lanes are clamped in range
        np.testing.assert_array_equal(st.cols[1, :2], [1, 6])
        assert st.cols.min() >= 0 and st.cols.max() < 8
        np.testing.assert_array_equal(st.to_mask(), mask)

    def test_all_masked_matrix_has_width_one(self):
        st = PaddedCSRMatrix.from_mask(np.zeros((3, 7), dtype=bool))
        assert st.width == 1
        assert not st.to_mask().any()

    def test_scatter_never_clobbers_column_zero(self):
        # regression: padding lanes are clamped to column 0 — a row that
        # legitimately stores column 0 must survive the scatter
        mask = np.zeros((2, 6), dtype=bool)
        mask[0, 0] = True          # one-entry row, stores column 0
        mask[1] = True             # full row forces width 6 (5 padding lanes
        st = PaddedCSRMatrix.from_mask(mask)
        vals = st.with_values(np.arange(st.values.size, dtype=np.float32).reshape(st.values.shape) + 1.0)
        dense = vals.to_dense(0.0)
        assert dense[0, 0] == vals.values[0, 0]
        np.testing.assert_array_equal(dense[0, 1:], 0.0)

    def test_to_dense_fill_value(self):
        mask = _random_mask((4, 8), seed=2)
        st = PaddedCSRMatrix.from_dense(np.ones((4, 8), np.float32), mask)
        dense = st.to_dense(-7.0)
        np.testing.assert_array_equal(dense[mask], 1.0)
        np.testing.assert_array_equal(dense[~mask], -7.0)

    def test_from_dense_gathers_masked_entries(self):
        rng = np.random.default_rng(3)
        dense = rng.normal(size=(2, 8, 8)).astype(np.float32)
        mask = _random_mask((2, 8, 8), seed=3)
        st = PaddedCSRMatrix.from_dense(dense, mask, pad_value=0.0)
        np.testing.assert_array_equal(st.to_dense(0.0), np.where(mask, dense, 0.0))

    def test_with_values_shares_structure_and_validates_shape(self):
        st = PaddedCSRMatrix.from_mask(_random_mask((3, 8), seed=4))
        new = st.with_values(np.full(st.values.shape, 2.0, np.float32))
        assert new.cols is st.cols
        with pytest.raises(ValueError, match="shape"):
            st.with_values(np.zeros((3, st.width + 1), np.float32))

    def test_broadcast_to_prepends_batch_dims(self):
        st = PaddedCSRMatrix.from_mask(_random_mask((8, 8), seed=5))
        batched = st.broadcast_to((2, 3))
        assert batched.batch_shape == (2, 3)
        assert batched.dense_shape == (2, 3, 8, 8)
        np.testing.assert_array_equal(batched.to_mask()[1, 2], st.to_mask())

    def test_gather_scatter_are_inverse_on_valid_lanes(self):
        mask = _random_mask((2, 8, 8), seed=6, dead_row=2)
        st = PaddedCSRMatrix.from_mask(mask)
        rng = np.random.default_rng(7)
        vals = np.where(st.valid_lanes(), rng.normal(size=st.values.shape), 0.0).astype(np.float32)
        dense = st.scatter_compressed(vals)
        back = st.with_values(vals).gather_dense(dense)
        valid = st.valid_lanes()
        np.testing.assert_array_equal(back[valid], vals[valid])

    def test_memory_accounting(self):
        mask = np.zeros((8, 64), dtype=bool)
        mask[:, :8] = True
        st = PaddedCSRMatrix.from_mask(mask)
        assert st.nonzeros_nbytes() == 8 * 8 * 4
        assert st.nbytes() == st.nonzeros_nbytes() + st.metadata_nbytes()
        assert st.compression_ratio() > 1.0
        assert st.density == pytest.approx(8 / 64)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="lengths"):
            PaddedCSRMatrix(
                values=np.zeros((2, 3), np.float32),
                cols=np.zeros((2, 3), np.int32),
                lengths=np.full((2,), 4, np.int32),
                dense_cols=8,
            )
        with pytest.raises(ValueError, match="columns"):
            PaddedCSRMatrix(
                values=np.zeros((2, 3), np.float32),
                cols=np.full((2, 3), 9, np.int32),
                lengths=np.full((2,), 3, np.int32),
                dense_cols=8,
            )


class TestKernelsOnPaddedCSR:
    """Every registry kernel must agree with the dense masked oracle on CSR."""

    def _pipeline(self, backend, seed=0):
        q, k, v = _qkv(seed=seed)
        mask = _random_mask(q.shape[:-1] + (k.shape[-2],), seed=seed, dead_row=3)
        st = PaddedCSRMatrix.from_mask(mask)
        scale = 1.0 / np.sqrt(q.shape[-1])
        dense_scores = np.matmul(q, np.swapaxes(k, -1, -2)) * scale
        return q, k, v, mask, st, scale, dense_scores

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sddmm_csr_matches_dense_scores(self, backend):
        q, k, v, mask, st, scale, dense_scores = self._pipeline(backend, seed=10)
        scores = sddmm_csr(q, k, st, backend=backend)
        np.testing.assert_allclose(
            scores.to_dense(0.0), np.where(mask, dense_scores, 0.0), atol=1e-5
        )
        # padding lanes carry the masked-score sentinel
        valid = scores.valid_lanes()
        assert (scores.values[~valid] == MASKED_SCORE).all()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_softmax_matches_masked_dense_softmax(self, backend):
        q, k, v, mask, st, scale, dense_scores = self._pipeline(backend, seed=11)
        probs = sparse_softmax(sddmm_csr(q, k, st, backend=backend), backend=backend)
        np.testing.assert_allclose(
            probs.to_dense(0.0), masked_dense_softmax(dense_scores, mask), atol=1e-6
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spmm_and_spmm_t_match_dense(self, backend):
        q, k, v, mask, st, scale, dense_scores = self._pipeline(backend, seed=12)
        probs = sparse_softmax(sddmm_csr(q, k, st, backend=backend), backend=backend)
        weights = masked_dense_softmax(dense_scores, mask)
        np.testing.assert_allclose(
            spmm(probs, v, backend=backend), np.matmul(weights, v), atol=1e-5
        )
        np.testing.assert_allclose(
            spmm_t(probs, v, backend=backend),
            np.matmul(np.swapaxes(weights, -1, -2), v),
            atol=1e-5,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sddmm_masked_zeroes_padding_lanes(self, backend):
        q, k, v, mask, st, scale, dense_scores = self._pipeline(backend, seed=13)
        out = sddmm_masked(q, k, st, backend=backend)
        valid = out.valid_lanes()
        np.testing.assert_array_equal(out.values[~valid], 0.0)
        np.testing.assert_allclose(
            out.to_dense(0.0),
            np.where(mask, np.matmul(q, np.swapaxes(k, -1, -2)), 0.0),
            atol=1e-4,
        )

    def test_backward_backends_agree(self):
        q, k, v, mask, st, scale, dense_scores = self._pipeline(FAST, seed=14)
        probs = sparse_softmax(sddmm_csr(q, k, st))
        g = np.random.default_rng(15).normal(size=q.shape).astype(np.float32)
        ref = masked_attention_bwd(probs, q, k, v, g, scale, backend=REFERENCE)
        fast = masked_attention_bwd(probs, q, k, v, g, scale, backend=FAST)
        for a, b in zip(ref, fast):
            np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_fused_softmax_spmm_matches_unfused(self):
        q, k, v, mask, st, scale, dense_scores = self._pipeline(FAST, seed=16)
        scores = sddmm_csr(q, k, st)
        fused = get_kernel("softmax_spmm", FAST)(scores, v)
        unfused = spmm(sparse_softmax(scores), v)
        np.testing.assert_allclose(fused, unfused, atol=1e-5)
