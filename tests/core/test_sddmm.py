"""Tests for the SDDMM with fused N:M pruning epilogue."""

import numpy as np
import pytest

from repro.core.blocked_ell import sliding_window_mask
from repro.core.patterns import PATTERN_1_2, PATTERN_2_4
from repro.core.pruning import nm_prune_mask
from repro.core.sddmm import SddmmTraffic, sddmm_dense, sddmm_nm, sddmm_nm_tiled


def _qk(seq=64, d=32, batch=None, seed=0):
    rng = np.random.default_rng(seed)
    shape = (seq, d) if batch is None else tuple(batch) + (seq, d)
    return (
        rng.normal(size=shape).astype(np.float32),
        rng.normal(size=shape).astype(np.float32),
    )


class TestSddmmDense:
    def test_matches_reference(self):
        q, k = _qk()
        out = sddmm_dense(q, k)
        ref = q @ k.T / np.sqrt(32)
        assert np.abs(out - ref).max() < 1e-2

    def test_custom_scale(self):
        q, k = _qk()
        out = sddmm_dense(q, k, scale=1.0)
        ref = q @ k.T
        assert np.abs(out - ref).max() < 5e-2

    def test_batched_shape(self):
        q, k = _qk(batch=(2, 3))
        out = sddmm_dense(q, k)
        assert out.shape == (2, 3, 64, 64)

    def test_mismatched_batch_raises(self):
        q, _ = _qk(batch=(2,))
        _, k = _qk(batch=(3,))
        with pytest.raises(ValueError):
            sddmm_dense(q, k)


class TestSddmmNM:
    def test_equals_prune_of_dense(self):
        q, k = _qk()
        dense = sddmm_dense(q, k)
        sp = sddmm_nm(q, k, pattern=PATTERN_2_4)
        mask = nm_prune_mask(dense, PATTERN_2_4)
        np.testing.assert_allclose(sp.to_dense(), np.where(mask, dense, 0.0), atol=1e-6)

    def test_default_pattern_follows_dtype(self):
        q, k = _qk()
        assert sddmm_nm(q, k, dtype="float32").pattern == PATTERN_1_2
        assert sddmm_nm(q, k, dtype="bfloat16").pattern == PATTERN_2_4

    def test_batched(self):
        q, k = _qk(batch=(2, 4), seq=32, d=16)
        sp = sddmm_nm(q, k, pattern=PATTERN_2_4)
        assert sp.dense_shape == (2, 4, 32, 32)
        assert sp.values.shape == (2, 4, 32, 16)

    def test_rejects_feature_mismatch(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(16, 32)).astype(np.float32)
        k = rng.normal(size=(16, 48)).astype(np.float32)
        with pytest.raises(ValueError):
            sddmm_nm(q, k)

    def test_block_mask_zeroes_outside_blocks(self):
        q, k = _qk(seq=64, d=16)
        mask = sliding_window_mask(64, block_size=16, window_blocks=0)
        sp = sddmm_nm(q, k, pattern=PATTERN_2_4, block_mask=mask)
        dense = sp.to_dense()
        block_dense = mask.dense_mask(64, 64)
        # every surviving *finite, non-sentinel* score lies inside the block mask
        outside = dense[~block_dense]
        assert np.all((outside == 0.0) | (outside <= -1e29))


class TestSddmmTiled:
    @pytest.mark.parametrize("pattern", [PATTERN_1_2, PATTERN_2_4])
    def test_matches_untiled(self, pattern):
        q, k = _qk(seq=96, d=48, seed=3)
        ref = sddmm_nm(q, k, pattern=pattern)
        tiled = sddmm_nm_tiled(q, k, pattern=pattern, mtile=32, ntile=32, ktile=16)
        np.testing.assert_allclose(tiled.values, ref.values, atol=1e-4)
        np.testing.assert_array_equal(tiled.indices, ref.indices)

    def test_rejects_batched_input(self):
        q, k = _qk(batch=(2,))
        with pytest.raises(ValueError):
            sddmm_nm_tiled(q, k)

    def test_traffic_counts(self):
        q, k = _qk(seq=64, d=32)
        traffic = SddmmTraffic()
        sddmm_nm_tiled(
            q, k, pattern=PATTERN_2_4, mtile=32, ntile=32, ktile=32, traffic=traffic
        )
        # reads: for each of the (2x2) output tiles, Q tile (32x32) + K tile (32x32)
        # floats at 4 bytes each -> 4 tiles * 2 * 1024 * 4 bytes
        assert traffic.bytes_read == 4 * 2 * 32 * 32 * 4
        # writes: nonzeros (64*32 floats) + metadata (64*16 groups * 0.5 byte)
        assert traffic.bytes_written == 64 * 32 * 4 + 64 * 16 // 2
        assert traffic.total == traffic.bytes_read + traffic.bytes_written

    def test_write_traffic_half_of_dense(self):
        # the epilogue writes ~1/2 + 1/16 of what a dense GEMM would write
        q, k = _qk(seq=128, d=64)
        traffic = SddmmTraffic()
        sddmm_nm_tiled(q, k, pattern=PATTERN_1_2, traffic=traffic)
        dense_write = 128 * 128 * 4
        assert traffic.bytes_written < 0.6 * dense_write
        assert traffic.bytes_written > 0.5 * dense_write
