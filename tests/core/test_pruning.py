"""Tests (incl. property-based) for the dynamic N:M selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.patterns import NMPattern, PATTERN_1_2, PATTERN_2_4
from repro.core.pruning import (
    density_of_mask,
    global_column_indices,
    nm_compress,
    nm_decompress,
    nm_group_topn_indices,
    nm_prune_dense,
    nm_prune_mask,
)


class TestGroupTopN:
    def test_simple_2_4(self):
        x = np.array([[1.0, 4.0, 2.0, 3.0, -1.0, -3.0, -2.0, -4.0]], dtype=np.float32)
        idx = nm_group_topn_indices(x, PATTERN_2_4)
        # group 0: values 1,4,2,3 -> keep indices 1 (4.0) and 3 (3.0), sorted -> [1, 3]
        np.testing.assert_array_equal(idx[0, 0], [1, 3])
        # group 1: values -1,-3,-2,-4 -> keep -1 (idx 0) and -2 (idx 2)
        np.testing.assert_array_equal(idx[0, 1], [0, 2])

    def test_simple_1_2(self):
        x = np.array([[5.0, -1.0, 2.0, 7.0]], dtype=np.float32)
        idx = nm_group_topn_indices(x, PATTERN_1_2)
        np.testing.assert_array_equal(idx[0], [[0], [1]])

    def test_magnitude_criterion(self):
        x = np.array([[1.0, -4.0, 2.0, 3.0]], dtype=np.float32)
        idx_val = nm_group_topn_indices(x, PATTERN_2_4, criterion="value")
        idx_mag = nm_group_topn_indices(x, PATTERN_2_4, criterion="magnitude")
        np.testing.assert_array_equal(idx_val[0, 0], [2, 3])  # 2.0 and 3.0
        np.testing.assert_array_equal(idx_mag[0, 0], [1, 3])  # -4.0 and 3.0

    def test_tie_break_prefers_lower_index(self):
        x = np.array([[2.0, 2.0, 2.0, 2.0]], dtype=np.float32)
        idx = nm_group_topn_indices(x, PATTERN_2_4)
        np.testing.assert_array_equal(idx[0, 0], [0, 1])
        idx12 = nm_group_topn_indices(np.array([[3.0, 3.0]], dtype=np.float32), PATTERN_1_2)
        np.testing.assert_array_equal(idx12[0, 0], [0])

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            nm_group_topn_indices(np.zeros((2, 7)), PATTERN_2_4)

    def test_invalid_criterion(self):
        with pytest.raises(ValueError):
            nm_group_topn_indices(np.zeros((2, 8)), PATTERN_2_4, criterion="l2")


class TestMaskAndDense:
    def test_mask_density_exact(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 64)).astype(np.float32)
        for pattern, expect in [(PATTERN_1_2, 0.5), (PATTERN_2_4, 0.5), (NMPattern(1, 4), 0.25)]:
            mask = nm_prune_mask(x, pattern)
            assert density_of_mask(mask) == pytest.approx(expect)

    def test_mask_per_group_count(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(8, 32)).astype(np.float32)
        mask = nm_prune_mask(x, PATTERN_2_4)
        per_group = mask.reshape(8, 8, 4).sum(axis=-1)
        assert np.all(per_group == 2)

    def test_prune_dense_keeps_largest(self):
        x = np.array([[10.0, 1.0, 5.0, 7.0]], dtype=np.float32)
        out = nm_prune_dense(x, PATTERN_2_4)
        np.testing.assert_array_equal(out, [[10.0, 0.0, 0.0, 7.0]])

    def test_prune_dense_custom_fill(self):
        x = np.array([[10.0, 1.0, 5.0, 7.0]], dtype=np.float32)
        out = nm_prune_dense(x, PATTERN_2_4, fill_value=-np.inf)
        assert out[0, 1] == -np.inf and out[0, 2] == -np.inf

    def test_batched_shapes(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 8, 16)).astype(np.float32)
        mask = nm_prune_mask(x, PATTERN_2_4)
        assert mask.shape == x.shape


class TestCompressDecompress:
    def test_roundtrip_positions(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 16)).astype(np.float32)
        vals, idx = nm_compress(x, PATTERN_2_4)
        dense = nm_decompress(vals, idx, PATTERN_2_4, cols=16)
        mask = nm_prune_mask(x, PATTERN_2_4)
        np.testing.assert_allclose(dense[mask], x[mask])
        assert np.all(dense[~mask] == 0)

    def test_compressed_width(self):
        x = np.zeros((4, 32), dtype=np.float32)
        vals, idx = nm_compress(x, PATTERN_2_4)
        assert vals.shape == (4, 16) and idx.shape == (4, 16)
        vals12, _ = nm_compress(x, PATTERN_1_2)
        assert vals12.shape == (4, 16)

    def test_decompress_validates_shapes(self):
        with pytest.raises(ValueError):
            nm_decompress(np.zeros((4, 8)), np.zeros((4, 7)), PATTERN_2_4, cols=16)
        with pytest.raises(ValueError):
            nm_decompress(np.zeros((4, 9)), np.zeros((4, 9)), PATTERN_2_4, cols=16)

    def test_global_column_indices(self):
        x = np.array([[1.0, 9.0, 8.0, 2.0, 1.0, 2.0, 3.0, 4.0]], dtype=np.float32)
        _, idx = nm_compress(x, PATTERN_2_4)
        cols = global_column_indices(idx, PATTERN_2_4, cols=8)
        np.testing.assert_array_equal(cols[0], [1, 2, 6, 7])

    def test_values_preserved_exactly(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(4, 8)).astype(np.float32)
        vals, idx = nm_compress(x, PATTERN_1_2)
        groups = x.reshape(4, 4, 2)
        expected = groups.max(axis=-1)
        np.testing.assert_allclose(vals, expected.reshape(4, 4))


# ----------------------------------------------------------------- properties
@st.composite
def score_matrices(draw):
    rows = draw(st.integers(min_value=1, max_value=12))
    groups = draw(st.integers(min_value=1, max_value=12))
    m = draw(st.sampled_from([2, 4, 8]))
    n = draw(st.integers(min_value=1, max_value=m - 1))
    data = draw(
        arrays(
            dtype=np.float32,
            shape=(rows, groups * m),
            elements=st.floats(-100, 100, width=32),
        )
    )
    return data, NMPattern(n, m)


@settings(max_examples=60, deadline=None)
@given(score_matrices())
def test_property_mask_keeps_exactly_n_per_group(case):
    x, pattern = case
    mask = nm_prune_mask(x, pattern)
    per_group = mask.reshape(x.shape[0], -1, pattern.m).sum(axis=-1)
    assert np.all(per_group == pattern.n)


@settings(max_examples=60, deadline=None)
@given(score_matrices())
def test_property_kept_values_dominate_dropped(case):
    x, pattern = case
    mask = nm_prune_mask(x, pattern)
    groups = x.reshape(x.shape[0], -1, pattern.m)
    gmask = mask.reshape(groups.shape)
    kept_min = np.where(gmask, groups, np.inf).min(axis=-1)
    dropped_max = np.where(~gmask, groups, -np.inf).max(axis=-1)
    assert np.all(kept_min >= dropped_max)


@settings(max_examples=60, deadline=None)
@given(score_matrices())
def test_property_compress_decompress_roundtrip(case):
    x, pattern = case
    vals, idx = nm_compress(x, pattern)
    dense = nm_decompress(vals, idx, pattern, cols=x.shape[-1])
    mask = nm_prune_mask(x, pattern)
    np.testing.assert_allclose(dense, np.where(mask, x, 0.0), rtol=0, atol=0)


@settings(max_examples=60, deadline=None)
@given(score_matrices())
def test_property_indices_sorted_and_in_range(case):
    x, pattern = case
    _, idx = nm_compress(x, pattern)
    assert idx.min() >= 0 and idx.max() < pattern.m
    grouped = idx.reshape(x.shape[0], -1, pattern.n)
    assert np.all(np.diff(grouped.astype(np.int16), axis=-1) > 0)
