"""Tests for dense, masked and sparse softmax."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.patterns import PATTERN_2_4
from repro.core.softmax import (
    dense_softmax,
    masked_dense_softmax,
    sparse_softmax,
    sparse_softmax_streaming,
)
from repro.core.sparse import NMSparseMatrix


class TestDenseSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 32)).astype(np.float32)
        w = dense_softmax(x)
        np.testing.assert_allclose(w.sum(axis=-1), 1.0, atol=1e-6)

    def test_matches_scipy(self):
        from scipy.special import softmax as scipy_softmax

        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 16)).astype(np.float32)
        np.testing.assert_allclose(dense_softmax(x), scipy_softmax(x, axis=-1), atol=1e-6)

    def test_large_logits_stable(self):
        x = np.array([[1e4, 1e4 - 1.0, 0.0]], dtype=np.float32)
        w = dense_softmax(x)
        assert np.all(np.isfinite(w))
        assert w[0, 0] > w[0, 1] > w[0, 2]

    def test_shift_invariance(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 8)).astype(np.float32)
        np.testing.assert_allclose(dense_softmax(x), dense_softmax(x + 100.0), atol=1e-5)


class TestMaskedSoftmax:
    def test_masked_positions_zero(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 8)).astype(np.float32)
        mask = np.zeros((4, 8), dtype=bool)
        mask[:, :3] = True
        w = masked_dense_softmax(x, mask)
        assert np.all(w[:, 3:] == 0)
        np.testing.assert_allclose(w.sum(axis=-1), 1.0, atol=1e-6)

    def test_fully_masked_row_is_zero(self):
        x = np.ones((2, 4), dtype=np.float32)
        mask = np.zeros((2, 4), dtype=bool)
        w = masked_dense_softmax(x, mask)
        assert np.all(w == 0)
        assert np.all(np.isfinite(w))


class TestSparseSoftmax:
    def _sparse_scores(self, shape=(8, 32), seed=0):
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=shape).astype(np.float32)
        return dense, NMSparseMatrix.from_dense(dense, PATTERN_2_4)

    def test_rows_sum_to_one(self):
        _, sp = self._sparse_scores()
        w = sparse_softmax(sp)
        np.testing.assert_allclose(w.values.sum(axis=-1), 1.0, atol=1e-6)

    def test_equivalent_to_masked_dense(self):
        dense, sp = self._sparse_scores()
        w_sparse = sparse_softmax(sp).to_dense()
        w_dense = masked_dense_softmax(dense, sp.to_mask())
        np.testing.assert_allclose(w_sparse, w_dense, atol=1e-6)

    def test_structure_preserved(self):
        _, sp = self._sparse_scores()
        w = sparse_softmax(sp)
        np.testing.assert_array_equal(w.indices, sp.indices)
        assert w.pattern == sp.pattern and w.dense_cols == sp.dense_cols

    def test_masked_sentinel_entries_get_zero_weight(self):
        dense = np.full((4, 8), -1e30, dtype=np.float32)
        dense[:, :2] = 1.0
        sp = NMSparseMatrix.from_dense(dense, PATTERN_2_4)
        w = sparse_softmax(sp)
        recon = w.to_dense()
        assert np.all(recon[:, 4:] == 0)
        np.testing.assert_allclose(recon[:, :2].sum(axis=-1), 1.0, atol=1e-6)

    def test_streaming_matches_oneshot(self):
        _, sp = self._sparse_scores(shape=(64, 64), seed=7)
        a = sparse_softmax(sp)
        b = sparse_softmax_streaming(sp, chunk_rows=7)
        np.testing.assert_allclose(a.values, b.values, atol=1e-7)

    def test_batched(self):
        rng = np.random.default_rng(9)
        dense = rng.normal(size=(2, 3, 8, 16)).astype(np.float32)
        sp = NMSparseMatrix.from_dense(dense, PATTERN_2_4)
        w = sparse_softmax(sp)
        np.testing.assert_allclose(w.values.sum(axis=-1), 1.0, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        dtype=np.float32,
        shape=st.tuples(
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=1, max_value=8).map(lambda g: g * 4),
        ),
        elements=st.floats(-50, 50, width=32),
    )
)
def test_property_sparse_softmax_rows_normalised(dense):
    sp = NMSparseMatrix.from_dense(dense, PATTERN_2_4)
    w = sparse_softmax(sp)
    np.testing.assert_allclose(w.values.sum(axis=-1), 1.0, atol=1e-5)
    assert np.all(w.values >= 0)
