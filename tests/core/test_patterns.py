"""Tests for N:M pattern descriptions."""

import pytest

from repro.core.patterns import (
    NMPattern,
    PATTERN_1_2,
    PATTERN_2_4,
    default_pattern_for_dtype,
    pattern_pair_shapes,
    resolve_pattern,
)


class TestNMPattern:
    def test_density_1_2(self):
        assert PATTERN_1_2.density == 0.5
        assert PATTERN_1_2.sparsity == 0.5

    def test_density_2_4(self):
        assert PATTERN_2_4.density == 0.5

    def test_density_general(self):
        assert NMPattern(1, 4).density == 0.25
        assert NMPattern(3, 4).density == 0.75

    def test_invalid_n_ge_m(self):
        with pytest.raises(ValueError):
            NMPattern(2, 2)
        with pytest.raises(ValueError):
            NMPattern(4, 2)

    def test_invalid_nonpositive(self):
        with pytest.raises(ValueError):
            NMPattern(0, 2)
        with pytest.raises(ValueError):
            NMPattern(1, 0)

    def test_name(self):
        assert PATTERN_2_4.name == "2:4"
        assert NMPattern(4, 8).name == "4:8"

    def test_metadata_bits_standard_patterns(self):
        assert PATTERN_1_2.metadata_bits_per_group == 4
        assert PATTERN_2_4.metadata_bits_per_group == 4

    def test_metadata_fraction_matches_paper(self):
        # "the metadata is only 1/16 of the original dense matrix in terms of bits"
        assert PATTERN_2_4.metadata_fraction(element_bits=16) == pytest.approx(1 / 16)
        assert PATTERN_1_2.metadata_fraction(element_bits=32) == pytest.approx(1 / 16)

    def test_validate_length(self):
        PATTERN_2_4.validate_length(128)
        with pytest.raises(ValueError):
            PATTERN_2_4.validate_length(130)

    def test_groups_and_kept(self):
        assert PATTERN_2_4.groups(128) == 32
        assert PATTERN_2_4.kept(128) == 64
        assert PATTERN_1_2.kept(128) == 64
        assert NMPattern(1, 4).kept(128) == 32

    def test_hashable_and_frozen(self):
        assert hash(NMPattern(2, 4)) == hash(PATTERN_2_4)
        with pytest.raises(Exception):
            PATTERN_2_4.n = 3  # frozen dataclass


class TestResolvePattern:
    def test_from_string(self):
        assert resolve_pattern("2:4") == PATTERN_2_4
        assert resolve_pattern("1:2") == PATTERN_1_2
        assert resolve_pattern("4:8") == NMPattern(4, 8)

    def test_from_alias(self):
        assert resolve_pattern("2_4") == PATTERN_2_4

    def test_from_tuple(self):
        assert resolve_pattern((1, 4)) == NMPattern(1, 4)
        assert resolve_pattern([2, 4]) == PATTERN_2_4

    def test_identity(self):
        assert resolve_pattern(PATTERN_1_2) is PATTERN_1_2

    def test_invalid_string(self):
        with pytest.raises(ValueError):
            resolve_pattern("dense")

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            resolve_pattern(3.5)


class TestDefaults:
    def test_float32_defaults_to_1_2(self):
        assert default_pattern_for_dtype("float32") == PATTERN_1_2
        assert default_pattern_for_dtype("float") == PATTERN_1_2

    def test_bfloat16_defaults_to_2_4(self):
        assert default_pattern_for_dtype("bfloat16") == PATTERN_2_4
        assert default_pattern_for_dtype("float16") == PATTERN_2_4

    def test_unknown_dtype(self):
        with pytest.raises(ValueError):
            default_pattern_for_dtype("int8")

    def test_pair_shapes(self):
        assert pattern_pair_shapes(256, 512, PATTERN_2_4) == (256, 256)
