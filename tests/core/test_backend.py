"""Tests for the kernel backend registry and its dispatch rules."""

import numpy as np
import pytest

from repro.core import backend
from repro.core.backend import (
    FAST,
    REFERENCE,
    available_backends,
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_backend,
    use_backend,
)
from repro.core.sddmm import sddmm_nm
from repro.core.softmax import sparse_softmax

# Importing the kernel modules above populates the registry.
EXPECTED_KERNELS = ("masked_softmax", "nm_prune_mask", "sddmm_nm", "softmax_spmm", "spmm")


class TestRegistry:
    def test_all_kernels_registered(self):
        assert set(EXPECTED_KERNELS) <= set(available_kernels())

    @pytest.mark.parametrize("kernel", EXPECTED_KERNELS)
    def test_both_backends_registered(self, kernel):
        assert set(available_backends(kernel)) >= {REFERENCE, FAST}

    def test_get_kernel_returns_callables(self):
        for kernel in EXPECTED_KERNELS:
            assert callable(get_kernel(kernel, REFERENCE))
            assert callable(get_kernel(kernel, FAST))

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("flash_attention")

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="reference"):
            get_kernel("spmm", backend="cuda")

    def test_register_new_backend(self):
        sentinel = object()

        @register_kernel("spmm", "testprobe")
        def probe(weights, v):
            return sentinel

        try:
            assert get_kernel("spmm", "testprobe")(None, None) is sentinel
            assert "testprobe" in available_backends("spmm")
        finally:
            del backend._REGISTRY["spmm"]["testprobe"]


class TestResolution:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(backend.ENV_VAR, raising=False)
        assert resolve_backend() == FAST

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_VAR, "reference")
        assert resolve_backend() == REFERENCE

    def test_env_var_typo_rejected_with_choices(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_VAR, "fats")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend()

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_VAR, "reference")
        assert resolve_backend("fast") == FAST

    def test_names_are_normalised(self):
        assert resolve_backend("  Fast ") == FAST

    def test_use_backend_overrides_and_restores(self, monkeypatch):
        monkeypatch.delenv(backend.ENV_VAR, raising=False)
        with use_backend(REFERENCE):
            assert resolve_backend() == REFERENCE
            # explicit argument still wins inside the context
            assert resolve_backend(FAST) == FAST
        assert resolve_backend() == FAST

    def test_use_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            with use_backend("gpu"):
                pass  # pragma: no cover

    def test_use_backend_restores_after_exception(self, monkeypatch):
        monkeypatch.delenv(backend.ENV_VAR, raising=False)
        with pytest.raises(RuntimeError):
            with use_backend(REFERENCE):
                raise RuntimeError("boom")
        assert resolve_backend() == FAST


class TestDispatchIntegration:
    def test_env_var_routes_sparse_softmax(self, monkeypatch):
        calls = []

        @register_kernel("masked_softmax", "testprobe")
        def probe(scores):
            calls.append(scores)
            return scores

        try:
            monkeypatch.setenv(backend.ENV_VAR, "testprobe")
            sentinel = object()
            assert sparse_softmax(sentinel) is sentinel
            assert calls == [sentinel]
        finally:
            del backend._REGISTRY["masked_softmax"]["testprobe"]

    def test_sddmm_backend_argument(self, monkeypatch):
        monkeypatch.delenv(backend.ENV_VAR, raising=False)
        rng = np.random.default_rng(0)
        q = rng.normal(size=(16, 8)).astype(np.float32)
        k = rng.normal(size=(16, 8)).astype(np.float32)
        ref = sddmm_nm(q, k, pattern="2:4", backend=REFERENCE)
        fast = sddmm_nm(q, k, pattern="2:4", backend=FAST)
        np.testing.assert_array_equal(ref.indices, fast.indices)
        np.testing.assert_allclose(ref.values, fast.values, atol=1e-6)


class TestErrorMessages:
    """get_kernel failures must name every registered kernel/backend (PR 8)."""

    def test_unknown_kernel_lists_registered_names(self):
        with pytest.raises(KeyError) as exc:
            get_kernel("flash_attention")
        msg = str(exc.value)
        for kernel in EXPECTED_KERNELS:
            assert kernel in msg

    def test_unknown_kernel_suggests_close_matches(self):
        with pytest.raises(KeyError, match="did you mean"):
            get_kernel("spm")
        with pytest.raises(KeyError, match="sddmm_nm"):
            get_kernel("sddmm_mn")

    def test_missing_backend_lists_available_and_selection_paths(self):
        @register_kernel("refonly_probe", REFERENCE)
        def probe(x):
            return x  # pragma: no cover - never dispatched

        try:
            with pytest.raises(ValueError) as exc:
                get_kernel("refonly_probe", backend=FAST)
            msg = str(exc.value)
            assert "refonly_probe" in msg
            assert "reference" in msg  # what it does have
            assert "backend=" in msg and "REPRO_BACKEND" in msg  # how to pick
        finally:
            del backend._REGISTRY["refonly_probe"]
