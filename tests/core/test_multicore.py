"""Tests for the multicore tiled backend.

Bitwise parity with ``fast`` is the contract, not a tolerance: every kernel
in the fused chain is per-leading-slice independent, so tiling the flattened
batch×head dimension must never perturb a bit — forward and backward, N:M
and ragged CSR, thread and process pools, and the grouped serving path.
The pool itself must start lazily, degenerate to inline execution at one
worker, survive env reconfiguration, and put each tile on its own worker
lane in a Chrome trace.
"""

import numpy as np
import pytest

from repro.core.attention import dfss_attention
from repro.core.backend import FAST, MULTICORE, use_backend
from repro.core.multicore import (
    MODE_ENV_VAR,
    WORKERS_ENV_VAR,
    WorkerPool,
    get_pool,
    resolve_mode,
    resolve_worker_count,
    slice_costs,
    tile_slices,
)
from repro.nn.autograd import Tensor
from repro.nn.sparse_attention import dfss_sparse_attention
from repro.profile.tracer import trace

SHAPE = (3, 2, 64, 32)


@pytest.fixture
def two_workers(monkeypatch):
    """Force a two-worker pool so the tiled paths execute even on one core."""
    monkeypatch.setenv(WORKERS_ENV_VAR, "2")
    yield
    # monkeypatch restores the env; the shared pool re-resolves it (and
    # rebuilds if needed) on its next run, so no manual cleanup is required


def _qkv(shape=SHAPE, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal(shape).astype(np.float32),
        rng.standard_normal(shape).astype(np.float32),
        rng.standard_normal(shape).astype(np.float32),
    )


class TestTileSlices:
    def test_degenerate_inputs_collapse_to_one_slice(self):
        assert tile_slices(1, 8) == [slice(0, 1)]
        assert tile_slices(8, 1) == [slice(0, 8)]
        assert tile_slices(0, 4) == [slice(0, 0)]

    def test_uniform_slices_partition_the_batch(self):
        slices = tile_slices(16, 2)
        assert slices[0].start == 0 and slices[-1].stop == 16
        for a, b in zip(slices, slices[1:]):
            assert a.stop == b.start
        # oversubscribed beyond the worker count, bounded by the batch
        assert 2 <= len(slices) <= 16

    def test_cost_balancing_isolates_a_heavy_index(self):
        costs = np.array([100.0, 1, 1, 1, 1, 1, 1, 1])
        slices = tile_slices(8, 2, costs)
        assert slices[0] == slice(0, 1)  # the heavy index gets its own tile
        assert slices[0].start == 0 and slices[-1].stop == 8
        for a, b in zip(slices, slices[1:]):
            assert a.stop == b.start

    def test_cost_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            tile_slices(8, 2, np.ones(5))

    def test_zero_costs_fall_back_to_uniform(self):
        assert tile_slices(8, 2, np.zeros(8)) == tile_slices(8, 2)

    def test_slice_costs(self):
        costs = np.arange(8, dtype=float)
        slices = [slice(0, 4), slice(4, 8)]
        assert slice_costs(slices, costs) == [6.0, 22.0]
        assert slice_costs(slices, None) is None


class TestWorkerPoolLifecycle:
    def test_lazy_start_and_clean_shutdown(self, two_workers):
        pool = WorkerPool()
        assert not pool.started
        assert pool.run([lambda: 1]) == [1]  # single thunk: inline, no pool
        assert not pool.started
        assert pool.run([lambda: 1, lambda: 2]) == [1, 2]
        assert pool.started
        pool.shutdown()
        assert not pool.started
        pool.shutdown()  # idempotent

    def test_one_worker_degenerates_inline(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "1")
        pool = WorkerPool()
        thunks = [(lambda i=i: i) for i in range(4)]
        assert pool.run(thunks) == [0, 1, 2, 3]
        assert not pool.started

    def test_results_keep_input_order_despite_cost_ordering(self, two_workers):
        pool = WorkerPool()
        thunks = [(lambda i=i: i) for i in range(8)]
        assert pool.run(thunks, costs=list(range(8))) == list(range(8))
        pool.shutdown()

    def test_executor_reused_across_runs(self, two_workers):
        pool = WorkerPool()
        pool.run([lambda: 1, lambda: 2])
        executor = pool._executor
        pool.run([lambda: 3, lambda: 4])
        assert pool._executor is executor
        pool.shutdown()

    def test_worker_count_change_rebuilds_pool(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        pool = WorkerPool()
        pool.run([lambda: 1, lambda: 2])
        executor = pool._executor
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert pool.workers == 3
        pool.run([lambda: 1, lambda: 2])
        assert pool._executor is not executor
        pool.shutdown()

    def test_exceptions_propagate(self, two_workers):
        pool = WorkerPool()

        def boom():
            raise RuntimeError("tile failed")

        with pytest.raises(RuntimeError, match="tile failed"):
            pool.run([lambda: 1, boom])
        pool.shutdown()

    def test_resolve_worker_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_worker_count() >= 1
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert resolve_worker_count() == 3
        assert resolve_worker_count(2) == 2  # explicit arg beats the env
        assert resolve_worker_count(0) == 1  # floored at one
        monkeypatch.setenv(WORKERS_ENV_VAR, "garbage")
        with pytest.raises(ValueError):
            resolve_worker_count()

    def test_resolve_mode(self, monkeypatch):
        monkeypatch.delenv(MODE_ENV_VAR, raising=False)
        assert resolve_mode() == "thread"
        monkeypatch.setenv(MODE_ENV_VAR, "process")
        assert resolve_mode() == "process"
        with pytest.raises(ValueError):
            resolve_mode("fibers")


class TestBitwiseParity:
    @pytest.mark.parametrize("pattern", ["1:2", "2:4"])
    def test_nm_forward(self, two_workers, pattern):
        q, k, v = _qkv()
        fast = dfss_attention(q, k, v, pattern=pattern, backend=FAST)
        tiled = dfss_attention(q, k, v, pattern=pattern, backend=MULTICORE)
        assert np.array_equal(fast, tiled)

    @pytest.mark.parametrize("pattern", ["1:2", "2:4"])
    def test_nm_train_step(self, two_workers, pattern):
        q, k, v = _qkv()
        arms = {}
        for backend in (FAST, MULTICORE):
            qt = Tensor(q, requires_grad=True)
            kt = Tensor(k, requires_grad=True)
            vt = Tensor(v, requires_grad=True)
            out, _ = dfss_sparse_attention(
                qt, kt, vt, pattern=pattern, backend=backend
            )
            out.sum().backward()
            arms[backend] = (out.data, qt.grad, kt.grad, vt.grad)
        for fast_arr, tiled_arr in zip(arms[FAST], arms[MULTICORE]):
            assert np.array_equal(fast_arr, tiled_arr)

    def test_ragged_csr_forward(self, two_workers):
        from repro.baselines.longformer import longformer_mask
        from repro.core.padded_csr import PaddedCSRMatrix
        from repro.core.plan import plan_for_structure

        q, k, v = _qkv()
        # band + global mask: ragged row lengths exercise the cost-balanced
        # tile scheduler (the global row is full-width, band rows narrow)
        mask = longformer_mask(SHAPE[-2], SHAPE[-2], 8, 1)
        structure = PaddedCSRMatrix.from_mask(mask).broadcast_to(q.shape[:-2])
        arms = {}
        for backend in (FAST, MULTICORE):
            plan = plan_for_structure(structure, backend)
            arms[backend] = plan.forward(
                q, k, v, structure=structure, scale=0.125
            )
        assert np.array_equal(arms[FAST], arms[MULTICORE])

    def test_ragged_csr_train_step(self, two_workers):
        from repro.registry import make_core

        q, k, v = _qkv()
        arms = {}
        for backend in (FAST, MULTICORE):
            core = make_core(
                "longformer", seq_len_hint=SHAPE[-2], path="sparse",
                backend=backend,
            )
            qt = Tensor(q, requires_grad=True)
            kt = Tensor(k, requires_grad=True)
            vt = Tensor(v, requires_grad=True)
            out = core(qt, kt, vt)
            out.sum().backward()
            arms[backend] = (out.data, qt.grad, kt.grad, vt.grad)
        for fast_arr, tiled_arr in zip(arms[FAST], arms[MULTICORE]):
            assert np.array_equal(fast_arr, tiled_arr)

    def test_grouped_serving_parity(self, two_workers):
        from repro.baselines.longformer import longformer_mask
        from repro.core.padded_csr import PaddedCSRMatrix
        from repro.serve.executor import grouped_attention

        rng = np.random.default_rng(7)
        g, rows, d = 6, 32, 16
        structure = PaddedCSRMatrix.from_mask(longformer_mask(rows, rows, 4, 1))
        q3 = rng.standard_normal((g, rows, d)).astype(np.float32)
        k3 = rng.standard_normal((g, rows, d)).astype(np.float32)
        v3 = rng.standard_normal((g, rows, d)).astype(np.float32)
        with use_backend(FAST):
            stacked = grouped_attention(q3, k3, v3, structure)
        with use_backend(MULTICORE):
            tiled = grouped_attention(q3, k3, v3, structure)
        assert np.array_equal(stacked, tiled)

    def test_workers_one_is_exactly_the_fast_plan(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "1")
        q, k, v = _qkv()
        fast = dfss_attention(q, k, v, pattern="1:2", backend=FAST)
        inline = dfss_attention(q, k, v, pattern="1:2", backend=MULTICORE)
        assert np.array_equal(fast, inline)


class TestProcessMode:
    def test_forward_parity(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        q, k, v = _qkv()
        fast = dfss_attention(q, k, v, pattern="1:2", backend=FAST)
        monkeypatch.setenv(MODE_ENV_VAR, "process")
        try:
            tiled = dfss_attention(q, k, v, pattern="1:2", backend=MULTICORE)
        finally:
            get_pool().shutdown()  # join the child processes promptly
        assert np.array_equal(fast, tiled)


class TestTraceIntegration:
    def test_tiles_land_on_multiple_named_worker_lanes(self, two_workers):
        q, k, v = _qkv((4, 2, 64, 32))
        with trace() as active:
            dfss_attention(q, k, v, pattern="1:2", backend=MULTICORE)
        payload = active.payload()
        tiles = [
            e for e in payload["traceEvents"] if e.get("name") == "mc_tile"
        ]
        assert tiles, "no mc_tile spans recorded"
        assert len({e["tid"] for e in tiles}) >= 2
        for event in tiles:
            assert {"stage", "tile", "rows", "shape", "workers"} <= set(
                event["args"]
            )
            assert event["args"]["workers"] == 2
        lane_names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert any(name.startswith("repro-mc") for name in lane_names)
