"""Tests for the DFSS vs Performer MSE analysis (Appendix A.5)."""

import numpy as np
import pytest

from repro.core.mse import (
    mse_comparison_curve,
    mse_dfss_monte_carlo,
    mse_dfss_theory,
    mse_performer_bound,
    mse_performer_monte_carlo,
    softmax_kernel,
)


class TestSoftmaxKernel:
    def test_value(self):
        q = np.ones(4)
        k = np.ones(4)
        assert softmax_kernel(q, k) == pytest.approx(np.exp(4 / 2.0))

    def test_batched(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(10, 8))
        k = rng.normal(size=(10, 8))
        out = softmax_kernel(q, k)
        assert out.shape == (10,)
        assert np.all(out > 0)


class TestTheory:
    def test_dfss_mse_decreases_for_large_kernel_values(self):
        d, qn = 64, 8.0
        small = mse_dfss_theory(0.5, qn, d)
        large = mse_dfss_theory(20.0, qn, d)
        # relative error (MSE / SM^2) shrinks for large kernel values
        assert large / 20.0**2 < small / 0.5**2

    def test_dfss_mse_vanishes_as_sm_to_zero(self):
        # MSE <= SM^2, so it vanishes (quadratically) as the kernel value -> 0
        assert mse_dfss_theory(1e-4, 8.0, 64) <= 1e-8
        assert mse_dfss_theory(1e-6, 8.0, 64) <= 1e-12

    def test_performer_bound_blows_up_for_large_sm(self):
        d, qn, m = 64, 8.0, 266
        small = mse_performer_bound(0.5, qn, qn, d, m)
        large = mse_performer_bound(20.0, qn, qn, d, m)
        assert large / 20.0**2 > small / 0.5**2

    def test_dfss_beats_performer_on_large_edges(self):
        d, qn, m = 64, 8.0, 266
        sm = 10.0
        assert mse_dfss_theory(sm, qn, d) < mse_performer_bound(sm, qn, qn, d, m)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mse_dfss_theory(-1.0, 8.0, 64)
        with pytest.raises(ValueError):
            mse_dfss_theory(1.0, 0.0, 64)
        with pytest.raises(ValueError):
            mse_performer_bound(0.0, 8.0, 8.0, 64, 64)

    def test_comparison_curve_keys_and_shapes(self):
        curve = mse_comparison_curve(d=64, num_features=266)
        assert set(curve) == {"sm", "dfss", "performer_bound"}
        assert curve["dfss"].shape == curve["sm"].shape


class TestMonteCarlo:
    def test_dfss_monte_carlo_matches_theory(self):
        rng = np.random.default_rng(1)
        d = 16
        q = rng.normal(size=d)
        k = rng.normal(size=d)
        mse_mc, sm = mse_dfss_monte_carlo(q, k, trials=50000, seed=2)
        expected = mse_dfss_theory(sm, float(np.linalg.norm(q)), d)
        assert mse_mc == pytest.approx(expected, rel=0.15, abs=1e-4)

    def test_performer_monte_carlo_within_bound(self):
        rng = np.random.default_rng(3)
        d = 16
        q = rng.normal(size=d) * 0.5
        k = rng.normal(size=d) * 0.5
        mse_mc, sm = mse_performer_monte_carlo(q, k, num_features=32, trials=100, seed=4)
        bound = mse_performer_bound(
            sm, float(np.linalg.norm(q)), float(np.linalg.norm(k)), d, 32
        )
        assert mse_mc <= bound * 1.5 + 1e-6

    def test_monte_carlo_unbiased_kernel_value(self):
        rng = np.random.default_rng(5)
        d = 8
        q = rng.normal(size=d) * 0.3
        k = rng.normal(size=d) * 0.3
        _, sm1 = mse_dfss_monte_carlo(q, k, trials=10, seed=0)
        _, sm2 = mse_performer_monte_carlo(q, k, num_features=8, trials=5, seed=0)
        assert sm1 == pytest.approx(sm2)
