"""Tests for reduced-precision emulation."""

import numpy as np
import pytest

from repro.core.precision import (
    dtype_bytes,
    quantize,
    simulate_tensor_core_matmul,
    to_bfloat16,
    to_float16,
    to_tfloat32,
)


class TestBfloat16:
    def test_exactly_representable_values_unchanged(self):
        # powers of two and small integers are exactly representable in bf16
        x = np.array([0.0, 1.0, -2.0, 0.5, 256.0, -1024.0], dtype=np.float32)
        np.testing.assert_array_equal(to_bfloat16(x), x)

    def test_rounding_error_within_bf16_ulp(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000).astype(np.float32)
        y = to_bfloat16(x)
        # bf16 has 8 bits of precision -> relative error <= 2^-8
        rel = np.abs(y - x) / np.maximum(np.abs(x), 1e-30)
        assert np.max(rel) <= 2.0**-8

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100).astype(np.float32)
        once = to_bfloat16(x)
        np.testing.assert_array_equal(to_bfloat16(once), once)

    def test_preserves_nan_inf(self):
        x = np.array([np.nan, np.inf, -np.inf], dtype=np.float32)
        y = to_bfloat16(x)
        assert np.isnan(y[0]) and np.isposinf(y[1]) and np.isneginf(y[2])

    def test_coarser_than_tf32(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=10000).astype(np.float32)
        err_bf16 = np.abs(to_bfloat16(x) - x).mean()
        err_tf32 = np.abs(to_tfloat32(x) - x).mean()
        assert err_bf16 > err_tf32


class TestTfloat32AndFloat16:
    def test_tf32_error_bound(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=1000).astype(np.float32)
        rel = np.abs(to_tfloat32(x) - x) / np.maximum(np.abs(x), 1e-30)
        assert np.max(rel) <= 2.0**-11

    def test_float16_matches_numpy(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=100).astype(np.float32)
        np.testing.assert_array_equal(
            to_float16(x), x.astype(np.float16).astype(np.float32)
        )


class TestQuantize:
    def test_float32_is_copy(self):
        x = np.arange(10, dtype=np.float32)
        y = quantize(x, "float32")
        np.testing.assert_array_equal(x, y)
        y[0] = 99
        assert x[0] == 0  # no aliasing

    def test_unknown_dtype_raises(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(3), "int4")

    def test_dtype_bytes(self):
        assert dtype_bytes("float32") == 4
        assert dtype_bytes("bfloat16") == 2
        with pytest.raises(ValueError):
            dtype_bytes("fp8")


class TestTensorCoreMatmul:
    def test_close_to_fp32_reference(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(64, 32)).astype(np.float32)
        b = rng.normal(size=(32, 48)).astype(np.float32)
        ref = a @ b
        out = simulate_tensor_core_matmul(a, b, "float32")
        assert np.abs(out - ref).max() / np.abs(ref).max() < 1e-2

    def test_bf16_noisier_than_tf32(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(128, 64)).astype(np.float32)
        b = rng.normal(size=(64, 128)).astype(np.float32)
        ref = a @ b
        err_tf32 = np.abs(simulate_tensor_core_matmul(a, b, "float32") - ref).mean()
        err_bf16 = np.abs(simulate_tensor_core_matmul(a, b, "bfloat16") - ref).mean()
        assert err_bf16 >= err_tf32

    def test_batched(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(3, 16, 8)).astype(np.float32)
        b = rng.normal(size=(3, 8, 16)).astype(np.float32)
        out = simulate_tensor_core_matmul(a, b, "float32")
        assert out.shape == (3, 16, 16)

    def test_invalid_dtype(self):
        with pytest.raises(ValueError):
            simulate_tensor_core_matmul(np.eye(4), np.eye(4), "int8")
