"""Tests for the hybrid blocked-ELL coarse sparsity masks."""

import numpy as np
import pytest

from repro.core.blocked_ell import (
    BlockedEllMask,
    bigbird_mask,
    full_mask,
    global_tokens_mask,
    sliding_window_mask,
)


class TestBlockedEllMask:
    def test_dense_mask_shape(self):
        mask = sliding_window_mask(seq_len=64, block_size=16)
        dense = mask.dense_mask(64, 64)
        assert dense.shape == (64, 64)
        assert dense.dtype == bool

    def test_diagonal_always_present_in_window(self):
        mask = sliding_window_mask(seq_len=128, block_size=32, window_blocks=0)
        dense = mask.dense_mask(128, 128)
        assert np.all(np.diag(dense))

    def test_window_width(self):
        mask = sliding_window_mask(seq_len=128, block_size=32, window_blocks=1)
        # interior block-row keeps exactly 3 blocks
        assert (mask.block_columns[1] >= 0).sum() == 3
        # edge rows keep 2
        assert (mask.block_columns[0] >= 0).sum() == 2

    def test_invalid_divisibility(self):
        with pytest.raises(ValueError):
            sliding_window_mask(seq_len=100, block_size=32)
        mask = sliding_window_mask(seq_len=64, block_size=16)
        with pytest.raises(ValueError):
            mask.dense_mask(100, 64)

    def test_density(self):
        mask = sliding_window_mask(seq_len=256, block_size=64, window_blocks=0)
        assert mask.density(total_block_cols=4) == pytest.approx(0.25)

    def test_out_of_range_block_column(self):
        bad = BlockedEllMask(block_size=16, block_columns=np.array([[5], [0]]))
        with pytest.raises(ValueError):
            bad.dense_mask(32, 32)

    def test_iter_blocks(self):
        mask = sliding_window_mask(seq_len=64, block_size=32, window_blocks=0)
        assert sorted(mask.iter_blocks()) == [(0, 0), (1, 1)]


class TestGlobalTokens:
    def test_first_block_row_is_dense(self):
        mask = global_tokens_mask(seq_len=128, block_size=32, num_global_blocks=1)
        dense = mask.dense_mask(128, 128)
        assert np.all(dense[:32, :])  # global rows attend everywhere
        assert np.all(dense[:, :32])  # everything attends to global tokens

    def test_diagonal_kept(self):
        mask = global_tokens_mask(seq_len=128, block_size=32, num_global_blocks=1)
        dense = mask.dense_mask(128, 128)
        assert np.all(np.diag(dense))


class TestBigBird:
    def test_contains_window_and_global(self):
        mask = bigbird_mask(
            seq_len=256, block_size=32, window_blocks=1, num_global_blocks=1,
            num_random_blocks=1, seed=0,
        )
        dense = mask.dense_mask(256, 256)
        assert np.all(np.diag(dense))
        assert np.all(dense[:, :32])

    def test_random_blocks_reproducible(self):
        a = bigbird_mask(256, 32, num_random_blocks=2, seed=42)
        b = bigbird_mask(256, 32, num_random_blocks=2, seed=42)
        np.testing.assert_array_equal(a.block_columns, b.block_columns)

    def test_density_increases_with_random_blocks(self):
        a = bigbird_mask(512, 64, num_random_blocks=0, seed=0)
        b = bigbird_mask(512, 64, num_random_blocks=3, seed=0)
        assert b.density(8) >= a.density(8)


class TestFullMask:
    def test_full_mask_is_all_true(self):
        mask = full_mask(seq_len=64, block_size=16)
        assert np.all(mask.dense_mask(64, 64))
        assert mask.density(4) == pytest.approx(1.0)
