"""Parity tests: the fast backend must reproduce the reference backend.

Inputs are drawn from a coarse integer lattice (values ``j/8`` with small
``j``) so every intermediate product and partial sum is exactly representable
in float32: scores computed by the tiled reference kernel and the batched
fast kernel are then bit-identical, which makes the N:M *selections* (not
just the values) deterministic and exactly comparable — including genuine
ties inside a group, where both backends must keep the lower index.
"""

import numpy as np
import pytest

from repro.core.attention import dfss_attention
from repro.core.backend import FAST, REFERENCE, get_kernel
from repro.core.blocked_ell import sliding_window_mask
from repro.core.pruning import (
    nm_compress,
    nm_compress_fast,
    nm_prune_mask,
    nm_prune_mask_fast,
)
from repro.core.sddmm import sddmm_nm
from repro.core.softmax import sparse_softmax
from repro.core.spmm import spmm

PATTERNS = ["1:2", "2:4"]
#: Leading batch shapes, deliberately ragged: scalar, flat, nested, odd sizes.
BATCH_SHAPES = [(), (1,), (3,), (2, 3), (5,)]


def _lattice(shape, seed=0, denom=8, span=16):
    rng = np.random.default_rng(seed)
    return (rng.integers(-span, span + 1, size=shape) / denom).astype(np.float32)


def _qkv(batch, seq=64, d=32, seed=0):
    shape = tuple(batch) + (seq, d)
    return (
        _lattice(shape, seed=seed),
        _lattice(shape, seed=seed + 1),
        _lattice(shape, seed=seed + 2),
    )


class TestCompressFast:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("criterion", ["value", "magnitude"])
    def test_bitwise_equal_including_ties(self, pattern, criterion):
        # a tiny lattice guarantees many exact ties within groups
        x = _lattice((7, 9, 24), seed=3, denom=2, span=3)
        ref_vals, ref_idx = nm_compress(x, pattern, criterion)
        fast_vals, fast_idx = nm_compress_fast(x, pattern, criterion)
        np.testing.assert_array_equal(ref_idx, fast_idx)
        np.testing.assert_array_equal(ref_vals, fast_vals)

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_sentinel_and_infinite_scores(self, pattern):
        x = _lattice((4, 8, 16), seed=5)
        x[0, 0, :4] = -1e30  # blocked-ELL sentinel
        x[1, 2, 0] = np.inf
        x[2, 3, 4:6] = -np.inf
        ref_vals, ref_idx = nm_compress(x, pattern)
        fast_vals, fast_idx = nm_compress_fast(x, pattern)
        np.testing.assert_array_equal(ref_idx, fast_idx)
        np.testing.assert_array_equal(ref_vals, fast_vals)

    def test_generic_pattern_falls_back(self):
        x = _lattice((5, 12), seed=7)
        ref = nm_compress(x, "2:6")
        fast = nm_compress_fast(x, "2:6")
        np.testing.assert_array_equal(ref[0], fast[0])
        np.testing.assert_array_equal(ref[1], fast[1])

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_prune_mask_fast_matches(self, pattern):
        x = _lattice((3, 6, 32), seed=9, denom=2, span=3)
        np.testing.assert_array_equal(
            nm_prune_mask(x, pattern), nm_prune_mask_fast(x, pattern)
        )


class TestSddmmParity:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("batch", BATCH_SHAPES)
    def test_backends_bitwise_equal(self, pattern, batch):
        q, k, _ = _qkv(batch)
        ref = sddmm_nm(q, k, pattern=pattern, backend=REFERENCE)
        fast = sddmm_nm(q, k, pattern=pattern, backend=FAST)
        assert ref.dense_shape == fast.dense_shape
        np.testing.assert_array_equal(ref.indices, fast.indices)
        np.testing.assert_array_equal(ref.values, fast.values)

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_ragged_seq_smaller_than_tile(self, pattern):
        # L=96 < the reference kernel's 128-wide tiles, L % 4 == 0
        q, k, _ = _qkv((2,), seq=96, d=24, seed=11)
        ref = sddmm_nm(q, k, pattern=pattern, backend=REFERENCE)
        fast = sddmm_nm(q, k, pattern=pattern, backend=FAST)
        np.testing.assert_array_equal(ref.indices, fast.indices)
        np.testing.assert_array_equal(ref.values, fast.values)

    def test_block_mask_parity(self):
        q, k, _ = _qkv((2,), seq=64, d=16, seed=13)
        mask = sliding_window_mask(64, block_size=16, window_blocks=1)
        ref = sddmm_nm(q, k, pattern="2:4", block_mask=mask, backend=REFERENCE)
        fast = sddmm_nm(q, k, pattern="2:4", block_mask=mask, backend=FAST)
        np.testing.assert_array_equal(ref.indices, fast.indices)
        np.testing.assert_array_equal(ref.values, fast.values)

    def test_magnitude_criterion_parity(self):
        q, k, _ = _qkv((3,), seq=32, d=16, seed=17)
        ref = sddmm_nm(q, k, pattern="2:4", criterion="magnitude", backend=REFERENCE)
        fast = sddmm_nm(q, k, pattern="2:4", criterion="magnitude", backend=FAST)
        np.testing.assert_array_equal(ref.indices, fast.indices)


class TestSoftmaxSpmmParity:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("batch", BATCH_SHAPES)
    def test_masked_softmax_backends_agree(self, pattern, batch):
        q, k, _ = _qkv(batch, seed=19)
        scores = sddmm_nm(q, k, pattern=pattern)
        ref = sparse_softmax(scores, backend=REFERENCE)
        fast = sparse_softmax(scores, backend=FAST)
        np.testing.assert_allclose(fast.values, ref.values, atol=1e-7)
        np.testing.assert_array_equal(fast.indices, ref.indices)

    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("batch", BATCH_SHAPES)
    def test_spmm_backends_agree(self, pattern, batch):
        q, k, v = _qkv(batch, seed=23)
        weights = sparse_softmax(sddmm_nm(q, k, pattern=pattern))
        ref = spmm(weights, v, backend=REFERENCE)
        fast = spmm(weights, v, backend=FAST)
        np.testing.assert_allclose(fast, ref, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_fused_softmax_spmm_matches_unfused(self, pattern):
        q, k, v = _qkv((2, 3), seed=29)
        scores = sddmm_nm(q, k, pattern=pattern)
        unfused = spmm(sparse_softmax(scores), v)
        for backend in (REFERENCE, FAST):
            fused = get_kernel("softmax_spmm", backend)(scores, v)
            np.testing.assert_allclose(fused, unfused, rtol=1e-5, atol=1e-6)

    def test_fused_with_fully_masked_rows(self):
        # a zero-window block mask leaves some rows fully at the sentinel;
        # those rows must come out exactly zero from both backends
        q, k, v = _qkv((), seq=64, d=16, seed=31)
        mask = sliding_window_mask(64, block_size=16, window_blocks=0)
        scores = sddmm_nm(q, k, pattern="2:4", block_mask=mask)
        ref = get_kernel("softmax_spmm", REFERENCE)(scores, v)
        fast = get_kernel("softmax_spmm", FAST)(scores, v)
        np.testing.assert_allclose(fast, ref, atol=1e-6)


class TestEndToEndParity:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("batch", [(), (2,), (2, 3)])
    def test_dfss_attention_backends_agree(self, pattern, batch):
        q, k, v = _qkv(batch, seed=37)
        ref = dfss_attention(q, k, v, pattern=pattern, backend=REFERENCE)
        fast = dfss_attention(q, k, v, pattern=pattern, backend=FAST)
        np.testing.assert_allclose(fast, ref, rtol=1e-5, atol=1e-6)

    def test_return_weights_path(self):
        q, k, v = _qkv((2,), seed=41)
        out_ref, w_ref = dfss_attention(q, k, v, pattern="2:4", return_weights=True,
                                        backend=REFERENCE)
        out_fast, w_fast = dfss_attention(q, k, v, pattern="2:4", return_weights=True,
                                          backend=FAST)
        np.testing.assert_array_equal(w_ref.indices, w_fast.indices)
        np.testing.assert_allclose(w_ref.values, w_fast.values, atol=1e-7)
        np.testing.assert_allclose(out_ref, out_fast, rtol=1e-5, atol=1e-6)

    def test_env_var_dispatch_end_to_end(self, monkeypatch):
        from repro.core import backend as backend_mod

        q, k, v = _qkv((2,), seed=43)
        monkeypatch.setenv(backend_mod.ENV_VAR, "reference")
        via_env = dfss_attention(q, k, v, pattern="2:4")
        monkeypatch.delenv(backend_mod.ENV_VAR)
        explicit = dfss_attention(q, k, v, pattern="2:4", backend=REFERENCE)
        np.testing.assert_array_equal(via_env, explicit)
