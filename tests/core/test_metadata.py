"""Tests for the sparse-tensor-core metadata encoding (Figure 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metadata as meta
from repro.core.patterns import PATTERN_1_2, PATTERN_2_4, NMPattern


class TestNibbleEncoding:
    def test_all_2_4_pairs_match_figure6b(self):
        # Figure 6(b) enumerates the legal nibbles
        expected = {
            (0, 1): 0x4,
            (0, 2): 0x8,
            (0, 3): 0xC,
            (1, 2): 0x9,
            (1, 3): 0xD,
            (2, 3): 0xE,
        }
        for pair, nibble in expected.items():
            got = meta.encode_group_nibbles(np.array([[pair]]), PATTERN_2_4)
            assert got[0, 0] == nibble

    def test_1_2_nibbles(self):
        got0 = meta.encode_group_nibbles(np.array([[[0]]]), PATTERN_1_2)
        got1 = meta.encode_group_nibbles(np.array([[[1]]]), PATTERN_1_2)
        assert got0[0, 0] == 0x4 and got1[0, 0] == 0xE

    def test_decode_inverts_encode_2_4(self):
        pairs = np.array([[(0, 1), (1, 3), (2, 3), (0, 2)]])
        nib = meta.encode_group_nibbles(pairs, PATTERN_2_4)
        back = meta.decode_group_nibbles(nib, PATTERN_2_4)
        np.testing.assert_array_equal(back, pairs)

    def test_decode_inverts_encode_1_2(self):
        idx = np.array([[[0], [1], [1], [0]]])
        nib = meta.encode_group_nibbles(idx, PATTERN_1_2)
        back = meta.decode_group_nibbles(nib, PATTERN_1_2)
        np.testing.assert_array_equal(back, idx)

    def test_rejects_descending_indices(self):
        with pytest.raises(ValueError):
            meta.encode_group_nibbles(np.array([[(1, 0)]]), PATTERN_2_4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            meta.encode_group_nibbles(np.array([[(0, 4)]]), PATTERN_2_4)
        with pytest.raises(ValueError):
            meta.encode_group_nibbles(np.array([[[2]]]), PATTERN_1_2)

    def test_rejects_unsupported_pattern(self):
        with pytest.raises(ValueError):
            meta.encode_group_nibbles(np.array([[(0, 1, 2)]]), NMPattern(3, 8))

    def test_decode_rejects_illegal_nibble(self):
        with pytest.raises(ValueError):
            meta.decode_group_nibbles(np.array([[0x5]]), PATTERN_1_2)


class TestBlockPacking:
    def test_pack_four_nibbles_per_block(self):
        nib = np.array([[0x4, 0x8, 0xC, 0xE]], dtype=np.uint8)
        blocks = meta.pack_nibbles_to_blocks(nib)
        assert blocks.shape == (1, 1)
        assert blocks[0, 0] == 0x4 | (0x8 << 4) | (0xC << 8) | (0xE << 12)

    def test_unpack_inverts_pack(self):
        rng = np.random.default_rng(0)
        nib = rng.choice([0x4, 0x8, 0xC, 0x9, 0xD, 0xE], size=(8, 16)).astype(np.uint8)
        np.testing.assert_array_equal(
            meta.unpack_blocks_to_nibbles(meta.pack_nibbles_to_blocks(nib)), nib
        )

    def test_pack_requires_multiple_of_four(self):
        with pytest.raises(ValueError):
            meta.pack_nibbles_to_blocks(np.zeros((2, 6), dtype=np.uint8))


class TestRowInterleave:
    def test_formula_matches_eq9(self):
        rows = np.arange(64)
        dst = meta.interleave_rows(rows)
        expected = (rows // 32) * 32 + (rows % 8) * 4 + (rows % 32) // 8
        np.testing.assert_array_equal(dst, expected)

    def test_is_permutation_within_tile(self):
        dst = meta.interleave_rows(np.arange(32))
        assert sorted(dst.tolist()) == list(range(32))

    def test_examples_from_figure6(self):
        # row 1 -> 4, row 8 -> 1, row 9 -> 5 within the first tile
        assert meta.interleave_rows(np.array([0]))[0] == 0
        assert meta.interleave_rows(np.array([1]))[0] == 4
        assert meta.interleave_rows(np.array([8]))[0] == 1
        assert meta.interleave_rows(np.array([31]))[0] == 31


class TestTileReordering:
    def test_reorder_restore_roundtrip(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 2**16, size=(32, 8)).astype(np.uint16)
        reordered = meta.reorder_metadata_tile(blocks)
        np.testing.assert_array_equal(meta.restore_metadata_tile(reordered), blocks)

    def test_reorder_changes_layout(self):
        blocks = np.arange(32 * 4, dtype=np.uint16).reshape(32, 4)
        reordered = meta.reorder_metadata_tile(blocks)
        assert not np.array_equal(reordered, blocks)

    def test_requires_32_rows(self):
        with pytest.raises(ValueError):
            meta.reorder_metadata_tile(np.zeros((16, 4), dtype=np.uint16))

    def test_subdiagonal_swap_is_involution(self):
        rng = np.random.default_rng(2)
        blocks = rng.integers(0, 2**16, size=(32, 6)).astype(np.uint16)
        once = meta._swap_subdiagonal(blocks)
        np.testing.assert_array_equal(meta._swap_subdiagonal(once), blocks)


class TestFullPacking:
    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(3)
        nib = rng.choice([0x4, 0x8, 0xC, 0x9, 0xD, 0xE], size=(64, 32)).astype(np.uint8)
        packed = meta.pack_metadata(nib, reorder=True)
        assert packed.dtype == np.uint16
        assert packed.shape == (64, 8)
        np.testing.assert_array_equal(meta.unpack_metadata(packed, reordered=True), nib)

    def test_pack_without_reorder(self):
        rng = np.random.default_rng(4)
        nib = rng.choice([0x4, 0xE], size=(32, 8)).astype(np.uint8)
        packed = meta.pack_metadata(nib, reorder=False)
        np.testing.assert_array_equal(meta.unpack_metadata(packed, reordered=False), nib)

    def test_pack_requires_tile_rows(self):
        with pytest.raises(ValueError):
            meta.pack_metadata(np.zeros((20, 8), dtype=np.uint8), reorder=True)

    def test_metadata_nbytes(self):
        # 128x128 matrix, 2:4: 32 groups per row, 4 bits each -> 16 bytes/row
        assert meta.metadata_nbytes(128, 128, PATTERN_2_4) == 128 * 16
        assert meta.metadata_nbytes(128, 128, PATTERN_1_2) == 128 * 32


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_metadata_packing_bijective(tiles, block_col_pairs, seed):
    rng = np.random.default_rng(seed)
    nib = rng.choice(
        [0x4, 0x8, 0xC, 0x9, 0xD, 0xE], size=(32 * tiles, 8 * block_col_pairs)
    )
    nib = nib.astype(np.uint8)
    packed = meta.pack_metadata(nib, reorder=True)
    np.testing.assert_array_equal(meta.unpack_metadata(packed, reordered=True), nib)


def test_pack_metadata_rejects_odd_block_columns():
    nib = np.full((32, 4), 0x4, dtype=np.uint8)  # only one 16-bit block per row
    with pytest.raises(ValueError):
        meta.pack_metadata(nib, reorder=True)
