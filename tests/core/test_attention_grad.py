"""Parity tests for the backward-pass kernels of the sparse attention op.

Like ``test_backend_parity``, inputs are drawn from coarse lattices so every
intermediate is exactly representable in float32 and the reference and fast
backends are exactly (or near-bitwise) comparable, ties included.
"""

import numpy as np
import pytest

from repro.core.attention_grad import masked_attention_bwd, softmax_grad_compressed
from repro.core.backend import FAST, REFERENCE
from repro.core.sddmm import sddmm_masked, sddmm_nm
from repro.core.softmax import sparse_softmax
from repro.core.spmm import spmm, spmm_t

PATTERNS = ["1:2", "2:4"]
BATCH_SHAPES = [(), (3,), (2, 3)]


def _lattice(shape, seed=0, denom=8, span=16):
    rng = np.random.default_rng(seed)
    return (rng.integers(-span, span + 1, size=shape) / denom).astype(np.float32)


def _problem(batch, seq=64, d=32, pattern="2:4", seed=0):
    shape = tuple(batch) + (seq, d)
    q = _lattice(shape, seed=seed)
    k = _lattice(shape, seed=seed + 1)
    v = _lattice(shape, seed=seed + 2)
    g = _lattice(shape, seed=seed + 3)
    probs = sparse_softmax(sddmm_nm(q, k, pattern=pattern))
    return q, k, v, g, probs


class TestSpmmT:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("batch", BATCH_SHAPES)
    def test_backends_agree(self, pattern, batch):
        _, _, _, g, probs = _problem(batch, pattern=pattern)
        ref = spmm_t(probs, g, backend=REFERENCE)
        fast = spmm_t(probs, g, backend=FAST)
        np.testing.assert_allclose(fast, ref, rtol=1e-5, atol=1e-6)

    def test_matches_dense_transpose(self):
        _, _, _, g, probs = _problem((2,), pattern="2:4", seed=5)
        dense = probs.to_dense(0.0)
        expected = np.matmul(np.swapaxes(dense, -1, -2), g)
        for backend in (REFERENCE, FAST):
            np.testing.assert_allclose(
                spmm_t(probs, g, backend=backend), expected, rtol=1e-5, atol=1e-6
            )

    def test_shape_validation(self):
        _, _, _, g, probs = _problem((2,), pattern="2:4")
        with pytest.raises(ValueError, match="rows"):
            spmm_t(probs, g[..., :-1, :])


class TestSddmmMasked:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("batch", BATCH_SHAPES)
    def test_backends_agree(self, pattern, batch):
        _, _, v, g, probs = _problem(batch, pattern=pattern, seed=7)
        ref = sddmm_masked(g, v, probs, backend=REFERENCE)
        fast = sddmm_masked(g, v, probs, backend=FAST)
        np.testing.assert_array_equal(ref.indices, fast.indices)
        np.testing.assert_allclose(fast.values, ref.values, rtol=1e-5, atol=1e-6)

    def test_matches_dense_restriction(self):
        _, _, v, g, probs = _problem((3,), pattern="1:2", seed=9)
        dense = np.matmul(g, np.swapaxes(v, -1, -2))
        restricted = np.take_along_axis(dense, probs.column_indices(), axis=-1)
        for backend in (REFERENCE, FAST):
            out = sddmm_masked(g, v, probs, backend=backend)
            np.testing.assert_allclose(out.values, restricted, rtol=1e-5, atol=1e-6)

    def test_structure_is_preserved(self):
        _, _, v, g, probs = _problem((), pattern="2:4", seed=11)
        out = sddmm_masked(g, v, probs)
        np.testing.assert_array_equal(out.indices, probs.indices)
        assert out.dense_cols == probs.dense_cols

    def test_feature_dim_validation(self):
        _, _, v, g, probs = _problem((2,), pattern="2:4")
        with pytest.raises(ValueError, match="feature dims"):
            sddmm_masked(g[..., :-1], v, probs)


class TestSoftmaxGrad:
    def test_zero_rows_give_zero_gradient(self):
        probs = np.zeros((4, 8), dtype=np.float32)
        d_probs = np.ones_like(probs)
        np.testing.assert_array_equal(softmax_grad_compressed(probs, d_probs), 0.0)

    def test_matches_dense_jacobian(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(5, 6)).astype(np.float32)
        p = np.exp(logits) / np.exp(logits).sum(axis=-1, keepdims=True)
        dp = rng.normal(size=p.shape).astype(np.float32)
        expected = np.einsum(
            "ri,rij->rj",
            dp,
            np.einsum("ri,ij->rij", p, np.eye(6, dtype=np.float32))
            - np.einsum("ri,rj->rij", p, p),
        )
        np.testing.assert_allclose(
            softmax_grad_compressed(p, dp), expected, rtol=1e-4, atol=1e-6
        )


class TestFusedBackward:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("batch", BATCH_SHAPES)
    def test_backends_agree(self, pattern, batch):
        q, k, v, g, probs = _problem(batch, pattern=pattern, seed=13)
        scale = 0.25
        ref = masked_attention_bwd(probs, q, k, v, g, scale, backend=REFERENCE)
        fast = masked_attention_bwd(probs, q, k, v, g, scale, backend=FAST)
        for r, f in zip(ref, fast):
            np.testing.assert_allclose(f, r, rtol=1e-5, atol=1e-6)

    def test_out_hint_matches_plain_path(self):
        q, k, v, g, probs = _problem((2,), pattern="2:4", seed=17)
        scale = 0.25
        out = spmm(probs, v)
        plain = masked_attention_bwd(probs, q, k, v, g, scale, backend=FAST)
        hinted = masked_attention_bwd(probs, q, k, v, g, scale, out=out, backend=FAST)
        for p, h in zip(plain, hinted):
            np.testing.assert_allclose(h, p, rtol=1e-5, atol=1e-6)

    def test_dropout_keep_mask_applied(self):
        q, k, v, g, probs = _problem((2,), pattern="2:4", seed=19)
        scale = 0.25
        rng = np.random.default_rng(0)
        keep = (rng.random(probs.values.shape) >= 0.5).astype(np.float32) * 2.0
        ref = masked_attention_bwd(
            probs, q, k, v, g, scale, drop_keep=keep, backend=REFERENCE
        )
        fast = masked_attention_bwd(
            probs, q, k, v, g, scale, drop_keep=keep, backend=FAST
        )
        for r, f in zip(ref, fast):
            np.testing.assert_allclose(f, r, rtol=1e-5, atol=1e-6)
        plain = masked_attention_bwd(probs, q, k, v, g, scale, backend=FAST)
        assert not np.allclose(fast[2], plain[2])


class TestScatterCache:
    def test_cache_opt_in_and_reuse(self):
        _, _, _, _, probs = _problem((2,), pattern="2:4")
        uncached = probs.to_scattered()
        assert probs.to_scattered() is not uncached  # no memo without cache=True
        cached = probs.to_scattered(cache=True)
        assert probs.to_scattered() is cached
        np.testing.assert_array_equal(cached, probs.to_dense(0.0))

    def test_with_values_does_not_share_scatter(self):
        _, _, _, _, probs = _problem((2,), pattern="2:4")
        cached = probs.to_scattered(cache=True)
        doubled = probs.with_values(probs.values * 2.0)
        np.testing.assert_array_equal(doubled.to_scattered(), cached * 2.0)
