"""Tests for the public attention API (full_attention / dfss_attention / DfssAttention)."""

import numpy as np

from repro.core.attention import (
    DfssAttention,
    attention_weight_matrices,
    dfss_attention,
    full_attention,
)
from repro.core.blocked_ell import sliding_window_mask
from repro.core.patterns import PATTERN_1_2, PATTERN_2_4
from repro.core.softmax import masked_dense_softmax
from repro.core.pruning import nm_prune_mask
from repro.core.sddmm import sddmm_dense


def _qkv(batch=(2, 4), seq=64, d=32, seed=0):
    rng = np.random.default_rng(seed)
    shape = tuple(batch) + (seq, d)
    return (
        rng.normal(size=shape).astype(np.float32),
        rng.normal(size=shape).astype(np.float32),
        rng.normal(size=shape).astype(np.float32),
    )


class TestFullAttention:
    def test_output_shape(self):
        q, k, v = _qkv()
        assert full_attention(q, k, v).shape == q.shape

    def test_weights_rows_sum_to_one(self):
        q, k, v = _qkv(batch=())
        _, w = full_attention(q, k, v, return_weights=True)
        np.testing.assert_allclose(w.sum(axis=-1), 1.0, atol=1e-5)

    def test_uniform_keys_give_mean_of_v(self):
        # identical keys -> uniform attention -> output is the mean of V rows
        rng = np.random.default_rng(1)
        q = rng.normal(size=(8, 16)).astype(np.float32)
        k = np.ones((8, 16), dtype=np.float32)
        v = rng.normal(size=(8, 16)).astype(np.float32)
        out = full_attention(q, k, v)
        np.testing.assert_allclose(out, np.tile(v.mean(axis=0), (8, 1)), atol=1e-4)

    def test_mask_argument(self):
        q, k, v = _qkv(batch=())
        mask = np.tril(np.ones((64, 64), dtype=bool))
        out, w = full_attention(q, k, v, mask=mask, return_weights=True)
        assert np.all(w[~mask] == 0)


class TestDfssAttention:
    def test_output_shape(self):
        q, k, v = _qkv()
        assert dfss_attention(q, k, v, pattern="2:4").shape == q.shape

    def test_equivalent_to_masked_full_attention(self):
        # DFSS == full attention computed over the pruned score matrix
        q, k, v = _qkv(batch=(), seq=32, d=16)
        scores = sddmm_dense(q, k)
        mask = nm_prune_mask(scores, PATTERN_2_4)
        expected = masked_dense_softmax(scores, mask) @ v
        out = dfss_attention(q, k, v, pattern="2:4")
        np.testing.assert_allclose(out, expected, atol=1e-5)

    def test_peaked_attention_exact(self):
        # when attention is sharply peaked, dropping the N:M losers changes nothing
        n, d = 16, 16
        q = np.eye(n, d, dtype=np.float32) * 30.0
        k = np.eye(n, d, dtype=np.float32) * 30.0
        rng = np.random.default_rng(2)
        v = rng.normal(size=(n, d)).astype(np.float32)
        out_full = full_attention(q, k, v)
        out_dfss = dfss_attention(q, k, v, pattern="2:4")
        np.testing.assert_allclose(out_dfss, out_full, atol=1e-3)

    def test_better_than_random_mask(self):
        # DFSS keeps the largest scores, so it approximates full attention better
        # than dropping the same number of entries at random.
        q, k, v = _qkv(batch=(), seq=128, d=64, seed=5)
        ref = full_attention(q, k, v)
        dfss = dfss_attention(q, k, v, pattern="2:4")
        rng = np.random.default_rng(0)
        scores = sddmm_dense(q, k)
        rand_scores = rng.normal(size=scores.shape).astype(np.float32)
        rand_mask = nm_prune_mask(rand_scores, PATTERN_2_4)
        rand_out = masked_dense_softmax(scores, rand_mask) @ v
        err_dfss = np.linalg.norm(dfss - ref)
        err_rand = np.linalg.norm(rand_out - ref)
        assert err_dfss < err_rand

    def test_1_2_and_2_4_patterns_differ(self):
        q, k, v = _qkv(batch=(), seq=32, d=16, seed=3)
        a = dfss_attention(q, k, v, pattern="1:2")
        b = dfss_attention(q, k, v, pattern="2:4")
        assert not np.allclose(a, b)

    def test_return_weights_structure(self):
        q, k, v = _qkv(batch=(), seq=32, d=16)
        out, w = dfss_attention(q, k, v, pattern="2:4", return_weights=True)
        assert w.dense_shape == (32, 32)
        np.testing.assert_allclose(w.values.sum(axis=-1), 1.0, atol=1e-5)

    def test_block_mask_combination(self):
        q, k, v = _qkv(batch=(), seq=64, d=16)
        mask = sliding_window_mask(64, block_size=16, window_blocks=1)
        out = dfss_attention(q, k, v, pattern="2:4", block_mask=mask)
        assert out.shape == (64, 16)
        assert np.all(np.isfinite(out))


class TestDfssAttentionObject:
    def test_callable_and_shape(self):
        attn = DfssAttention(pattern="2:4", dtype="bfloat16")
        q, k, v = _qkv(batch=(2, 2), seq=32, d=16)
        assert attn(q, k, v).shape == q.shape

    def test_default_pattern_from_dtype(self):
        assert DfssAttention(dtype="float32").pattern == PATTERN_1_2
        assert DfssAttention(dtype="bfloat16").pattern == PATTERN_2_4

    def test_approximation_error_small_for_peaked(self):
        n, d = 32, 32
        q = np.eye(n, d, dtype=np.float32) * 20.0
        attn = DfssAttention(pattern="2:4")
        rng = np.random.default_rng(0)
        v = rng.normal(size=(n, d)).astype(np.float32)
        assert attn.approximation_error(q, q, v) < 1e-3

    def test_approximation_error_bounded_for_random(self):
        q, k, v = _qkv(batch=(), seq=128, d=64)
        err = DfssAttention(pattern="2:4").approximation_error(q, k, v)
        assert 0.0 <= err < 1.0


class TestAttentionWeightMatrices:
    def test_shapes_and_sparsity(self):
        q, k, v = _qkv(batch=(), seq=32, d=16)
        full_w, dfss_w = attention_weight_matrices(q, k, v, pattern="2:4")
        assert full_w.shape == dfss_w.shape == (32, 32)
        # DFSS keeps exactly half the entries
        assert (dfss_w > 0).mean() <= 0.5 + 1e-6
        # rows of both sum to one
        np.testing.assert_allclose(full_w.sum(-1), 1.0, atol=1e-5)
        np.testing.assert_allclose(dfss_w.sum(-1), 1.0, atol=1e-5)

    def test_dfss_weights_upper_bound_full(self):
        # surviving DFSS weights are >= the corresponding full-attention weights
        # (same numerator, smaller denominator after pruning)
        q, k, v = _qkv(batch=(), seq=32, d=16, seed=9)
        full_w, dfss_w = attention_weight_matrices(q, k, v, pattern="2:4")
        kept = dfss_w > 0
        assert np.all(dfss_w[kept] >= full_w[kept] - 1e-6)
