"""Tests for the attention-lottery-ticket quality metric Q_p (Prop. 4.2)."""

import numpy as np
import pytest

from repro.core.lottery import (
    fixed_mask,
    frobenius_retention,
    nm_mask,
    qp_1_2_theory,
    qp_2_4_lower_bound,
    qp_empirical,
    qp_empirical_from_scores,
    qp_fixed_theory,
    qp_nm_monte_carlo,
    qp_topk_theory,
    topk_crossover_pstd,
    topk_mask,
)
from repro.core.patterns import PATTERN_1_2, PATTERN_2_4


class TestTheory:
    def test_qp_fixed_equals_density(self):
        assert qp_fixed_theory(0.3) == 0.3
        assert qp_fixed_theory(1.0) == 1.0

    def test_qp_topk_upper_bounds_others(self):
        # Top-K is the oracle at a given density
        for p in (1.0, 2.0, 3.0):
            assert qp_topk_theory(0.5, p) >= qp_1_2_theory(p) - 1e-9
            assert qp_topk_theory(0.5, p) >= qp_fixed_theory(0.5)

    def test_qp_1_2_exceeds_fixed_at_half_density(self):
        # Prop 4.2: Q_p(1:2) > Q_p(fix)|s=0.5 = 0.5 for p*sigma > 0
        for p in (0.5, 1.0, 2.0, 5.0):
            assert qp_1_2_theory(p) > 0.5

    def test_qp_1_2_value_p1(self):
        # (1 + erf(0.5)) / 2 ≈ 0.7602
        assert qp_1_2_theory(1.0) == pytest.approx(0.76025, abs=1e-4)

    def test_qp_1_2_monotone_in_p(self):
        values = [qp_1_2_theory(p) for p in (0.5, 1, 2, 4, 8)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_qp_1_2_saturates_near_one(self):
        # paper: Q_p(1:2) at p*sigma = 7 ≈ 0.9999996
        assert qp_1_2_theory(7.0) == pytest.approx(1.0, abs=1e-5)

    def test_qp_topk_limits(self):
        assert qp_topk_theory(1.0, 1.0) == 1.0
        assert qp_topk_theory(1e-6, 1.0) < 0.01

    def test_qp_topk_invalid_density(self):
        with pytest.raises(ValueError):
            qp_topk_theory(0.0, 1.0)
        with pytest.raises(ValueError):
            qp_topk_theory(1.5, 1.0)

    def test_2_4_lower_bound_equals_1_2(self):
        assert qp_2_4_lower_bound(2.0) == qp_1_2_theory(2.0)

    def test_topk_crossover_near_seven(self):
        # paper: at the efficiency-matched density (~0.02) the crossover is p*sigma ≈ 7
        cross = topk_crossover_pstd(0.02)
        assert 6.0 < cross < 8.5


class TestMonteCarlo:
    def test_1_2_matches_theory(self):
        for p in (1.0, 2.0):
            mc = qp_nm_monte_carlo("1:2", p, rows=512, cols=1024, seed=0)
            assert mc == pytest.approx(qp_1_2_theory(p), abs=0.02)

    def test_2_4_at_least_1_2(self):
        for p in (1.0, 2.0):
            mc24 = qp_nm_monte_carlo("2:4", p, rows=512, cols=1024, seed=1)
            assert mc24 >= qp_1_2_theory(p) - 0.01


class TestEmpirical:
    def _attention(self, n=128, seed=0, sigma=1.0):
        rng = np.random.default_rng(seed)
        scores = rng.normal(0.0, sigma, size=(n, n)).astype(np.float64)
        w = np.exp(scores - scores.max(-1, keepdims=True))
        return scores, w / w.sum(-1, keepdims=True)

    def test_full_mask_gives_one(self):
        _, a = self._attention()
        assert qp_empirical(a, np.ones_like(a, dtype=bool), 2.0) == pytest.approx(1.0)

    def test_empty_denominator_handled(self):
        a = np.zeros((2, 4))
        assert np.isfinite(qp_empirical(a, np.ones_like(a, dtype=bool), 2.0))

    def test_ordering_topk_nm_fixed(self):
        scores, a = self._attention(n=256, seed=2)
        p = 2.0
        q_topk = qp_empirical(a, topk_mask(scores, 0.5), p)
        q_nm = qp_empirical(a, nm_mask(scores, PATTERN_1_2), p)
        q_fix = qp_empirical(a, fixed_mask(a.shape, 0.5), p)
        assert q_topk >= q_nm >= q_fix

    def test_empirical_matches_theory_for_gaussian_scores(self):
        scores, a = self._attention(n=512, seed=3)
        got = qp_empirical(a, nm_mask(scores, PATTERN_1_2), 1.0)
        assert got == pytest.approx(qp_1_2_theory(1.0), abs=0.03)

    def test_from_scores_equals_from_weights(self):
        scores, a = self._attention(n=64, seed=4)
        mask = nm_mask(scores, PATTERN_2_4)
        assert qp_empirical_from_scores(scores, mask, 2.0) == pytest.approx(
            qp_empirical(a, mask, 2.0), abs=1e-9
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            qp_empirical(np.ones((4, 4)), np.ones((4, 5), dtype=bool), 1.0)


class TestMasks:
    def test_topk_mask_density(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(32, 100))
        mask = topk_mask(scores, 0.1)
        np.testing.assert_array_equal(mask.sum(-1), 10)

    def test_fixed_mask_kinds(self):
        trunc = fixed_mask((4, 100), 0.25, kind="truncate")
        assert trunc[:, :25].all() and not trunc[:, 25:].any()
        strided = fixed_mask((4, 100), 0.25, kind="strided")
        assert strided[:, ::4].all()
        with pytest.raises(ValueError):
            fixed_mask((4, 100), 0.25, kind="banded")

    def test_frobenius_retention_bounds(self):
        rng = np.random.default_rng(1)
        a = np.abs(rng.normal(size=(16, 16)))
        assert frobenius_retention(a, np.ones_like(a, dtype=bool)) == 0.0
        assert frobenius_retention(a, np.zeros_like(a, dtype=bool)) == pytest.approx(1.0)
