"""Tests for the compiled plan/execute layer (:mod:`repro.core.plan`).

Covers pipeline resolution (argument > context > environment > default),
the backend plan-builder registry seam, the LRU plan cache and its
hit/miss accounting, and the :meth:`AttentionEngine.plan` façade.
"""

import numpy as np
import pytest

from repro.core.backend import (
    FAST,
    REFERENCE,
    available_plan_backends,
    get_plan_builder,
)
from repro.core.padded_csr import PaddedCSRMatrix
from repro.core.patterns import PATTERN_2_4
from repro.core.plan import (
    DEFAULT_PIPELINE,
    FUSED,
    PIPELINE_ENV_VAR,
    STAGED,
    AttentionPlan,
    PlanKey,
    build_plan,
    clear_plan_cache,
    plan_cache_stats,
    plan_for_nm,
    plan_for_structure,
    resolve_pipeline,
    use_pipeline,
)
from repro.engine import AttentionEngine


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _qkv(seq=16, d=8, seed=0):
    rng = np.random.default_rng(seed)
    return tuple(
        rng.standard_normal((seq, d), dtype=np.float32) for _ in range(3)
    )


class TestPipelineResolution:
    def test_default_is_fused(self, monkeypatch):
        monkeypatch.delenv(PIPELINE_ENV_VAR, raising=False)
        assert resolve_pipeline() == DEFAULT_PIPELINE == FUSED

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(PIPELINE_ENV_VAR, "staged")
        assert resolve_pipeline() == STAGED

    def test_context_shadows_environment(self, monkeypatch):
        monkeypatch.setenv(PIPELINE_ENV_VAR, "fused")
        with use_pipeline(STAGED):
            assert resolve_pipeline() == STAGED
        assert resolve_pipeline() == FUSED

    def test_argument_wins_over_context(self):
        with use_pipeline(STAGED):
            assert resolve_pipeline(FUSED) == FUSED

    def test_contexts_nest_and_restore(self):
        with use_pipeline(STAGED):
            with use_pipeline(FUSED):
                assert resolve_pipeline() == FUSED
            assert resolve_pipeline() == STAGED

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            resolve_pipeline("warp")
        with pytest.raises(ValueError, match="unknown pipeline"):
            with use_pipeline("warp"):
                pass  # pragma: no cover


class TestPlanBuilders:
    def test_both_backends_register_builders(self):
        assert set(available_plan_backends()) >= {REFERENCE, FAST}

    def test_fast_builds_fused_reference_builds_staged(self):
        key = PlanKey("dfss_2:4", "nm", FAST, "float32", (16, 16, 8))
        assert build_plan(key).fused is True
        ref_key = PlanKey("dfss_2:4", "nm", REFERENCE, "float32", (16, 16, 8))
        assert build_plan(ref_key).fused is False

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_plan_builder("warp")

    def test_unknown_layout_rejected(self):
        key = PlanKey("dfss_2:4", "blocked", FAST, "float32", (16, 16, 8))
        with pytest.raises(ValueError, match="unknown plan layout"):
            AttentionPlan(key, fused=True)

    def test_csr_plan_requires_structure_to_score(self):
        mask = np.eye(8, dtype=bool)
        structure = PaddedCSRMatrix.from_mask(mask)
        plan = plan_for_structure(structure, backend=FAST)
        q, k, _ = _qkv(seq=8, d=4)
        with pytest.raises(ValueError, match="structure"):
            plan.compute_scores(q, k)


class TestPlanCache:
    def test_same_geometry_hits(self):
        a = plan_for_nm(PATTERN_2_4, 16, 16, backend=FAST)
        b = plan_for_nm("2:4", 16, 16, backend=FAST)
        assert a is b
        stats = plan_cache_stats()
        assert stats == {"size": 1, "hits": 1, "misses": 2 - 1, "evictions": 0}

    def test_key_axes_separate_plans(self):
        base = plan_for_nm(PATTERN_2_4, 16, 16, backend=FAST)
        assert plan_for_nm(PATTERN_2_4, 32, 32, backend=FAST) is not base
        assert plan_for_nm("1:2", 16, 16, backend=FAST) is not base
        assert plan_for_nm(PATTERN_2_4, 16, 16, backend=REFERENCE) is not base
        assert plan_cache_stats()["misses"] == 4

    def test_structure_plans_share_by_geometry(self):
        mask = np.triu(np.ones((12, 12), dtype=bool), -2)
        a = plan_for_structure(PaddedCSRMatrix.from_mask(mask), backend=FAST)
        b = plan_for_structure(PaddedCSRMatrix.from_mask(mask), backend=FAST)
        assert a is b

    def test_lru_eviction_bounds_the_cache(self):
        from repro.core import plan as plan_module

        for rows in range(8, 8 + plan_module._PLAN_CACHE_MAX + 8):
            plan_for_nm(PATTERN_2_4, rows, 16, backend=FAST)
        assert plan_cache_stats()["size"] == plan_module._PLAN_CACHE_MAX
        assert plan_cache_stats()["evictions"] == 8

    def test_clear_resets_stats(self):
        plan_for_nm(PATTERN_2_4, 16, 16, backend=FAST)
        clear_plan_cache()
        assert plan_cache_stats() == {
            "size": 0, "hits": 0, "misses": 0, "evictions": 0,
        }

    def test_build_plan_is_uncached(self):
        key = PlanKey("dfss_2:4", "nm", FAST, "float32", (16, 16, 8))
        assert build_plan(key) is not build_plan(key)
        assert plan_cache_stats()["size"] == 0


class TestPlanExecution:
    def test_nm_forward_matches_dfss_attention(self):
        from repro.core.attention import dfss_attention

        q, k, v = _qkv()
        plan = plan_for_nm(PATTERN_2_4, 16, 16, backend=FAST)
        np.testing.assert_array_equal(
            plan(q, k, v, scale=0.5),
            dfss_attention(q, k, v, pattern="2:4", scale=0.5, backend=FAST),
        )

    def test_return_probs_row_sums(self):
        q, k, v = _qkv(seed=3)
        plan = plan_for_nm(PATTERN_2_4, 16, 16, backend=FAST)
        out, probs = plan(q, k, v, scale=0.5, return_probs=True)
        assert out.shape == v.shape
        np.testing.assert_allclose(probs.values.sum(-1), 1.0, atol=1e-6)

    def test_compute_probs_owned_false_preserves_scores(self):
        q, k, _ = _qkv(seed=4)
        mask = np.triu(np.ones((16, 16), dtype=bool), -4)
        structure = PaddedCSRMatrix.from_mask(mask)
        plan = plan_for_structure(structure, backend=FAST)
        scores = plan.compute_scores(q, k, structure, scale=0.5)
        before = scores.values.copy()
        probs = plan.compute_probs(scores, owned=False)
        np.testing.assert_array_equal(scores.values, before)
        assert probs.values is not scores.values

    def test_fused_compute_probs_reuses_the_score_buffer(self):
        q, k, _ = _qkv(seed=5)
        plan = plan_for_nm(PATTERN_2_4, 16, 16, backend=FAST)
        scores = plan.compute_scores(q, k, scale=0.5)
        probs = plan.compute_probs(scores)
        assert probs.values is scores.values  # in place: no intermediate


class TestEnginePlan:
    def test_dfss_engine_plans_nm(self):
        plan = AttentionEngine("dfss_2:4", backend=FAST).plan(n_q=32)
        assert plan.key.layout == "nm"
        assert plan.key.mechanism == "dfss_2:4"
        assert plan.key.shape_class[0] == 32

    def test_static_mask_engine_plans_csr_from_its_mask(self):
        engine = AttentionEngine("local", window=4)
        plan = engine.plan(n_q=24)
        assert plan.key.layout == "csr"
        assert plan.key.mechanism == "local"
        assert plan.key.shape_class[:2] == (24, 24)

    def test_engine_plan_defaults_to_seq_len_hint(self):
        engine = AttentionEngine("local", window=4, seq_len_hint=16)
        assert engine.plan().key.shape_class[0] == 16

    def test_data_dependent_engine_needs_explicit_structure(self):
        engine = AttentionEngine("topk", k=4)
        with pytest.raises(ValueError, match="structure"):
            engine.plan(n_q=16)
        structure = PaddedCSRMatrix.from_mask(np.eye(16, dtype=bool))
        plan = engine.plan(structure=structure)
        assert plan.key.layout == "csr" and plan.key.mechanism == "topk"

    def test_uncompressed_engine_rejected(self):
        with pytest.raises(ValueError, match="no compressed execution plan"):
            AttentionEngine("full").plan(n_q=16)
