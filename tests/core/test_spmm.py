"""Tests for the N:M sparse x dense multiply (SpMM)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import PATTERN_1_2, PATTERN_2_4
from repro.core.softmax import sparse_softmax
from repro.core.sparse import NMSparseMatrix
from repro.core.spmm import spmm, spmm_dense_reference, spmm_row_blocked


def _weights_and_v(shape=(16, 32), d_v=24, pattern=PATTERN_2_4, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=shape).astype(np.float32)
    sp = sparse_softmax(NMSparseMatrix.from_dense(dense, pattern))
    v = rng.normal(size=shape[:-2] + (shape[-1], d_v)).astype(np.float32)
    return sp, v


class TestSpmm:
    @pytest.mark.parametrize("pattern", [PATTERN_1_2, PATTERN_2_4])
    def test_matches_dense_reference(self, pattern):
        sp, v = _weights_and_v(pattern=pattern)
        np.testing.assert_allclose(spmm(sp, v), spmm_dense_reference(sp, v), atol=1e-5)

    def test_batched(self):
        sp, v = _weights_and_v(shape=(2, 3, 8, 16), d_v=8)
        out = spmm(sp, v)
        assert out.shape == (2, 3, 8, 8)
        np.testing.assert_allclose(out, spmm_dense_reference(sp, v), atol=1e-5)

    def test_row_blocked_matches(self):
        sp, v = _weights_and_v(shape=(64, 64), d_v=16, seed=3)
        np.testing.assert_allclose(
            spmm_row_blocked(sp, v, row_block=10), spmm(sp, v), atol=1e-6
        )

    def test_rejects_wrong_v_rows(self):
        sp, v = _weights_and_v()
        with pytest.raises(ValueError):
            spmm(sp, v[..., :-4, :])

    def test_rejects_wrong_batch(self):
        sp, _ = _weights_and_v(shape=(2, 8, 16), d_v=8)
        rng = np.random.default_rng(0)
        v_bad = rng.normal(size=(3, 16, 8)).astype(np.float32)
        with pytest.raises(ValueError):
            spmm(sp, v_bad)

    def test_identity_like_behaviour(self):
        # weight matrix with a single 1.0 per row picks out one row of V
        n = 8
        dense = np.zeros((n, n), dtype=np.float32)
        for i in range(n):
            dense[i, (i * 2) % n] = 1.0
        sp = NMSparseMatrix.from_dense(dense, PATTERN_2_4)
        v = np.arange(n * 4, dtype=np.float32).reshape(n, 4)
        out = spmm(sp, v)
        for i in range(n):
            np.testing.assert_allclose(out[i], v[(i * 2) % n])


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=16),
    st.sampled_from(["1:2", "2:4"]),
    st.integers(min_value=0, max_value=9999),
)
def test_property_spmm_equals_dense_matmul(rows, groups, d_v, pattern, seed):
    from repro.core.patterns import resolve_pattern

    pat = resolve_pattern(pattern)
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(rows, groups * pat.m)).astype(np.float32)
    sp = NMSparseMatrix.from_dense(dense, pat)
    v = rng.normal(size=(groups * pat.m, d_v)).astype(np.float32)
    np.testing.assert_allclose(spmm(sp, v), sp.to_dense() @ v, atol=1e-4)
