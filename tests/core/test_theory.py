"""Tests for the memory-traffic speedup models (Props. 4.3, Eqs. 4-8, Eq. 33)."""

import numpy as np
import pytest

from repro.core import theory


class TestTraffic:
    def test_full_attention_table5_row(self):
        n, d, t = 1024, 64, 128
        tr = theory.full_attention_traffic(n, d, t)
        assert tr.qk == n * n * (2 * d / t + 1)
        assert tr.softmax == 2 * n * n
        assert tr.av == n * d * (2 * n / t + 1)

    def test_topk_traffic_table5_row(self):
        n, d, t, s = 1024, 64, 128, 0.1
        tr = theory.topk_attention_traffic(n, s, d, t)
        assert tr.qk == n * n * (2 * d / t + 1)
        assert tr.softmax == 2 * n * n * s
        assert tr.av == n * d * (s * n + s * n / t + 1)

    def test_dfss_writes_less_than_full(self):
        full = theory.full_attention_traffic(2048)
        dfss = theory.dfss_attention_traffic(2048)
        assert dfss.qk < full.qk
        assert dfss.softmax == full.softmax / 2
        assert dfss.av < full.av

    def test_traffic_total(self):
        tr = theory.full_attention_traffic(256)
        assert tr.total == tr.qk + tr.softmax + tr.av


class TestSpeedups:
    def test_dfss_asymptotic_value(self):
        # (64*64 + 48*128) / (57*64 + 25*128) = 10240 / 6848 ≈ 1.495
        assert theory.speedup_dfss(64, 128) == pytest.approx(10240 / 6848)

    def test_dfss_speedup_in_paper_band(self):
        # paper reports 1.27-1.89x attention speedup; the pure-traffic model
        # sits inside that band for typical configurations
        for d in (32, 64, 128):
            for t in (64, 128, 256):
                s = theory.speedup_dfss(d, t)
                assert 1.2 < s < 2.0

    def test_exact_approaches_asymptotic(self):
        asym = theory.speedup_dfss()
        exact_small = theory.speedup_dfss_exact(256)
        exact_large = theory.speedup_dfss_exact(1 << 15)
        assert abs(exact_large - asym) < abs(exact_small - asym)
        assert exact_large == pytest.approx(asym, rel=1e-2)

    def test_topk_needs_tiny_density_for_speedup(self):
        # paper: s < 4.5% is necessary for any Top-K speedup at d=64, T=128
        assert theory.speedup_topk_bound(0.045) == pytest.approx(1.0, abs=0.02)
        assert theory.speedup_topk_bound(0.10) < 1.0
        assert theory.speedup_topk_bound(0.01) > 1.0

    def test_fixed_speedup_monotone_in_density(self):
        values = [theory.speedup_fixed(s) for s in (0.1, 0.3, 0.5, 0.7, 1.0)]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert theory.speedup_fixed(1.0) == pytest.approx(1.0, abs=0.01)

    def test_topk_bound_decreasing(self):
        values = [theory.speedup_topk_bound(s) for s in (0.01, 0.05, 0.2, 0.5)]
        assert all(a > b for a, b in zip(values, values[1:]))


class TestCrossovers:
    def test_topk_equal_efficiency_density_near_002(self):
        s = theory.topk_equal_efficiency_density()
        assert 0.015 < s < 0.025
        # at that density Top-K has (asymptotically) the same speedup as DFSS
        assert theory.speedup_topk_bound(s) == pytest.approx(theory.speedup_dfss(), rel=1e-6)

    def test_fixed_equal_efficiency_density_near_063(self):
        s = theory.fixed_equal_efficiency_density()
        assert 0.60 < s < 0.66
        assert theory.speedup_fixed(s) == pytest.approx(theory.speedup_dfss(), rel=1e-6)


class TestPerformer:
    def test_breakeven_length_matches_paper(self):
        # paper: speedup > 1 when n > 672
        n = theory.performer_breakeven_length()
        assert 600 < n < 750
        assert theory.speedup_performer(n) > 1.0
        assert theory.speedup_performer(n - 32) < 1.05

    def test_crossover_with_dfss_matches_paper(self):
        # paper: performer overtakes DFSS at n > 1002
        n = theory.dfss_performer_crossover_length()
        assert 900 < n < 1100

    def test_performer_speedup_grows_with_n(self):
        speeds = [theory.speedup_performer(n) for n in (256, 1024, 4096, 16384)]
        assert all(b > a for a, b in zip(speeds, speeds[1:]))

    def test_performer_slow_at_short_sequence(self):
        assert theory.speedup_performer(256) < 1.0

    def test_default_feature_count(self):
        # m = d ln d ≈ 266 for d = 64
        assert int(round(64 * np.log(64))) == 266
