"""Integration tests for the experiment harness (smoke scale throughout)."""

import pytest

from repro.experiments import get_experiment, list_experiments, run_experiment
from repro.experiments.common import model_scale, resolve_scale

SCALE = "smoke"

#: Experiments cheap enough to run inside the unit-test suite.
FAST_EXPERIMENTS = ["table5", "figure5", "figure11", "figure14", "figure15", "figure16",
                    "appendix_mse", "figure12"]
#: Experiments that train a model; exercised once each.
TRAINING_EXPERIMENTS = ["table2", "figure19"]


class TestRegistry:
    def test_every_paper_table_and_figure_present(self):
        expected = {"table1", "table2", "table3", "table4", "table5", "table6",
                    "figure5", "figure11", "figure12", "figure13", "figure14",
                    "figure15", "figure16", "figure19", "appendix_mse"}
        assert expected <= set(list_experiments())

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_resolve_scale(self):
        assert resolve_scale("smoke") == "smoke"
        with pytest.raises(ValueError):
            resolve_scale("huge")
        assert model_scale("smoke").train_steps < model_scale("full").train_steps


class TestFastExperiments:
    @pytest.mark.parametrize("key", FAST_EXPERIMENTS)
    def test_runs_and_formats(self, key):
        exp = get_experiment(key)
        result = exp.run(scale=SCALE, seed=0)
        assert result["rows"], key
        assert len(result["headers"]) == len(result["rows"][0]), key
        text = exp.format_result(result)
        assert isinstance(text, str) and len(text) > 0

    def test_figure5_dfss_band(self):
        result = run_experiment("figure5", scale=SCALE)
        assert 1.25 <= result["dfss_speedup_min"] <= result["dfss_speedup_max"] <= 1.95

    def test_figure11_crossovers(self):
        result = run_experiment("figure11", scale=SCALE)
        assert result["topk_crossover_density"] == pytest.approx(0.02, abs=0.005)
        assert result["fixed_crossover_density"] == pytest.approx(0.63, abs=0.03)

    def test_figure14_band(self):
        result = run_experiment("figure14", scale=SCALE)
        assert result["dfss_speedup_min"] > 1.0

    def test_figure16_band(self):
        result = run_experiment("figure16", scale=SCALE)
        assert result["dfss_memory_reduction_min"] > 1.2

    def test_table5_traffic_check(self):
        result = run_experiment("table5", scale=SCALE)
        assert result["sddmm_write_relative_error"] < 0.02

    def test_figure12_empirical_close_to_theory_for_nm(self):
        result = run_experiment("figure12", scale=SCALE)
        # the final row for each p holds the 1:2 / 2:4 values at density 0.5
        for row in result["rows"]:
            p, density, th_a, emp_a, th_b, emp_b = row
            if density == 0.5 and th_a == th_b:  # the N:M row
                assert emp_a == pytest.approx(th_a, abs=0.08)
                assert emp_b >= emp_a - 0.05

    def test_appendix_mse_rows_consistent(self):
        result = run_experiment("appendix_mse", scale=SCALE)
        # The Monte-Carlo estimate is a (heavily skewed) finite-sample estimate of the
        # closed form: it can be exactly zero when the losing-comparison probability is
        # tiny relative to the smoke-scale trial count, but it must never blow up past
        # the theoretical value by much, and it must be positive for at least one pair.
        positives = 0
        for sm, dfss_theory, dfss_mc, perf_mc in result["rows"]:
            assert 0.0 <= dfss_mc <= max(2.5 * dfss_theory, 1e-3)
            positives += dfss_mc > 0
        assert positives >= 1


class TestTrainingExperiments:
    @pytest.mark.parametrize("key", TRAINING_EXPERIMENTS)
    def test_runs(self, key):
        exp = get_experiment(key)
        result = exp.run(scale=SCALE, seed=0)
        assert result["rows"]
        text = exp.format_result(result)
        assert isinstance(text, str)

    def test_table4_subset_runs(self):
        result = run_experiment(
            "table4", scale=SCALE, mechanisms=["Transformer (full)", "Dfss 2:4"],
            tasks=("text",),
        )
        assert len(result["rows"]) == 2
        # accuracies are percentages
        assert all(0.0 <= row[1] <= 100.0 for row in result["rows"])

    def test_table4_rejects_unknown_mechanism(self):
        with pytest.raises(ValueError):
            run_experiment("table4", scale=SCALE, mechanisms=["FlashAttention"], tasks=("text",))
