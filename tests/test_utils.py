"""Tests for shared utilities."""

import numpy as np
import pytest

from repro.utils.formatting import format_float, format_table
from repro.utils.seeding import DEFAULT_SEED, new_rng, set_global_seed, spawn_rngs
from repro.utils.shapes import as_batched_3d, check_matmul_shapes, restore_batch_shape


class TestSeeding:
    def test_new_rng_deterministic(self):
        a = new_rng(7).integers(0, 1000, size=10)
        b = new_rng(7).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_new_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_new_rng_none(self):
        assert isinstance(new_rng(None), np.random.Generator)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(DEFAULT_SEED, 3)
        assert len(rngs) == 3
        vals = [r.integers(0, 10**9) for r in rngs]
        assert len(set(vals)) == 3

    def test_set_global_seed_returns_generator(self):
        g = set_global_seed(11)
        assert isinstance(g, np.random.Generator)


class TestShapes:
    def test_round_trip_4d(self):
        x = np.arange(2 * 3 * 4 * 5, dtype=np.float32).reshape(2, 3, 4, 5)
        flat, batch = as_batched_3d(x)
        assert flat.shape == (6, 4, 5)
        np.testing.assert_array_equal(restore_batch_shape(flat, batch), x)

    def test_2d_gets_singleton_batch(self):
        x = np.zeros((4, 5))
        flat, batch = as_batched_3d(x)
        assert flat.shape == (1, 4, 5) and batch == ()

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            as_batched_3d(np.zeros(5))

    def test_restore_rejects_non_3d(self):
        with pytest.raises(ValueError):
            restore_batch_shape(np.zeros((4, 5)), ())

    def test_check_matmul_shapes(self):
        check_matmul_shapes(np.zeros((2, 3, 4)), np.zeros((2, 4, 5)))
        with pytest.raises(ValueError):
            check_matmul_shapes(np.zeros((2, 3, 4)), np.zeros((2, 5, 6)))
        with pytest.raises(ValueError):
            check_matmul_shapes(np.zeros((2, 3, 4)), np.zeros((3, 4, 5)))
        with pytest.raises(ValueError):
            check_matmul_shapes(np.zeros(3), np.zeros((3, 4)))


class TestFormatting:
    def test_format_float(self):
        assert format_float(1.23456, 2) == "1.23"
        assert format_float("abc") == "abc"
        assert format_float(None) == "-"
        assert format_float(7) == "7"
        assert format_float(True) == "True"

    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["longer", 2.25]], digits=2)
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert all(len(l) == len(lines[0]) for l in lines[2:])

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
