"""Tests covering every baseline attention mechanism."""

import numpy as np
import pytest

import repro.baselines as B
from repro.baselines.base import MECHANISM_REGISTRY, create_mechanism
from repro.core.attention import full_attention


def _qkv(batch=(2,), seq=64, d=32, seed=0, scale=0.5, peak=0.0):
    rng = np.random.default_rng(seed)
    shape = tuple(batch) + (seq, d)
    q = rng.normal(size=shape).astype(np.float32) * scale
    k = rng.normal(size=shape).astype(np.float32) * scale
    v = rng.normal(size=shape).astype(np.float32)
    if peak:
        q = q + peak * k  # sharpen the diagonal-ish structure
    return q, k, v


ALL_MECHANISMS = sorted(MECHANISM_REGISTRY)


class TestRegistry:
    def test_table4_mechanisms_present(self):
        # every row of Table 4 has an implementation
        for name in (
            "full", "local", "sparse_transformer", "longformer", "linformer",
            "reformer", "sinkhorn", "synthesizer", "bigbird", "linear_transformer",
            "performer", "dfss",
        ):
            assert name in MECHANISM_REGISTRY, name

    def test_appendix_combinations_present(self):
        for name in ("nystromformer", "nystromformer_dfss", "bigbird_dfss", "linformer_dfss"):
            assert name in MECHANISM_REGISTRY, name

    def test_create_mechanism(self):
        mech = create_mechanism("dfss", pattern="2:4")
        assert isinstance(mech, B.DfssMechanism)
        with pytest.raises(ValueError):
            create_mechanism("flash_attention")


class TestAllMechanismsForward:
    @pytest.mark.parametrize("name", ALL_MECHANISMS)
    def test_output_shape_and_finite(self, name):
        q, k, v = _qkv(seq=64, d=32)
        mech = create_mechanism(name)
        out = mech(q, k, v)
        assert out.shape == q.shape
        assert np.all(np.isfinite(out))

    @pytest.mark.parametrize("name", ALL_MECHANISMS)
    def test_batched_4d_inputs(self, name):
        q, k, v = _qkv(batch=(2, 2), seq=32, d=16)
        out = create_mechanism(name)(q, k, v)
        assert out.shape == (2, 2, 32, 16)

    @pytest.mark.parametrize("name", ALL_MECHANISMS)
    def test_rejects_mismatched_inputs(self, name):
        q, k, v = _qkv(seq=32, d=16)
        mech = create_mechanism(name)
        with pytest.raises(ValueError):
            mech(q[..., :8], k, v)  # Q and K head dimensions differ

    @pytest.mark.parametrize(
        "name", [n for n in ALL_MECHANISMS if MECHANISM_REGISTRY[n].produces_mask]
    )
    def test_masks_have_no_empty_rows(self, name):
        q, k, v = _qkv(seq=64, d=32, seed=3)
        mask = create_mechanism(name).attention_mask(q, k)
        assert mask.dtype == bool
        assert mask.shape[-2:] == (64, 64)
        assert np.all(mask.any(axis=-1)), f"{name} produced an unattended query row"


class TestApproximationQuality:
    def test_dfss_better_than_fixed_and_synthesizer(self):
        q, k, v = _qkv(seq=128, d=64, peak=1.0, seed=5)
        err_dfss = create_mechanism("dfss", pattern="2:4").approximation_error(q, k, v)
        err_fixed = create_mechanism("fixed_truncated", density=0.5).approximation_error(q, k, v)
        err_synth = create_mechanism("synthesizer").approximation_error(q, k, v)
        assert err_dfss < err_fixed
        assert err_dfss < err_synth

    def test_topk_oracle_beats_dfss_at_same_density(self):
        q, k, v = _qkv(seq=128, d=64, peak=1.0, seed=6)
        err_topk = create_mechanism("topk", density=0.5).approximation_error(q, k, v)
        err_dfss = create_mechanism("dfss", pattern="2:4").approximation_error(q, k, v)
        assert err_topk <= err_dfss + 1e-6

    def test_dfss_mask_density_is_half(self):
        q, k, _ = _qkv(seq=64, d=32)
        mask = create_mechanism("dfss", pattern="2:4").attention_mask(q, k)
        assert mask.mean() == pytest.approx(0.5)

    def test_full_attention_zero_error(self):
        q, k, v = _qkv(seq=64, d=32)
        assert create_mechanism("full").approximation_error(q, k, v) < 1e-6

    def test_nystromformer_reasonable_approximation(self):
        q, k, v = _qkv(seq=128, d=32, scale=0.5, seed=7)
        err = create_mechanism("nystromformer", num_landmarks=32).approximation_error(q, k, v)
        assert err < 0.6

    def test_performer_correlates_with_full_attention(self):
        q, k, v = _qkv(seq=128, d=32, scale=0.3, seed=8)
        out = create_mechanism("performer", num_features=256, seed=1)(q, k, v)
        ref = full_attention(q, k, v)
        corr = np.corrcoef(out.ravel(), ref.ravel())[0, 1]
        assert corr > 0.5

    def test_linear_transformer_row_convexity(self):
        # linear attention outputs are convex combinations of V rows
        q, k, v = _qkv(seq=64, d=16, seed=9)
        out = create_mechanism("linear_transformer")(q, k, v)
        assert out.min() >= v.min() - 1e-4
        assert out.max() <= v.max() + 1e-4


class TestSpecificMechanisms:
    def test_local_window_mask_shape(self):
        from repro.baselines.fixed import local_window_mask

        mask = local_window_mask(8, 8, 1)
        assert mask[0, 0] and mask[0, 1] and not mask[0, 2]
        assert mask.sum() == 8 + 2 * 7

    def test_truncated_attention_validates_density(self):
        with pytest.raises(ValueError):
            B.TruncatedAttention(density=0.0)

    def test_topk_validates_density(self):
        with pytest.raises(ValueError):
            B.ExplicitTopKAttention(density=2.0)

    def test_topk_explicit_k(self):
        q, k, _ = _qkv(seq=64, d=16)
        mask = B.ExplicitTopKAttention(k=4).attention_mask(q, k)
        np.testing.assert_array_equal(mask.sum(-1), 4)

    def test_longformer_global_tokens(self):
        q, k, _ = _qkv(seq=64, d=16)
        mask = B.LongformerAttention(window=2, num_global=2).attention_mask(q, k)
        assert np.all(mask[..., :, :2])
        assert np.all(mask[..., :2, :])

    def test_bigbird_requires_self_attention(self):
        mech = B.BigBirdAttention()
        with pytest.raises(ValueError):
            mech._mask_2d(64, 128)

    def test_synthesizer_independent_of_queries(self):
        q1, k, v = _qkv(seq=32, d=16, seed=1)
        q2, _, _ = _qkv(seq=32, d=16, seed=2)
        mech = B.SynthesizerAttention(max_len=64, seed=0)
        np.testing.assert_allclose(mech(q1, k, v), mech(q2, k, v), atol=1e-6)

    def test_synthesizer_rejects_long_sequences(self):
        q, k, v = _qkv(seq=32, d=16)
        with pytest.raises(ValueError):
            B.SynthesizerAttention(max_len=16)(q, k, v)

    def test_linformer_projection_cached_and_seeded(self):
        a = B.LinformerAttention(proj_dim=16, seed=3)
        b = B.LinformerAttention(proj_dim=16, seed=3)
        e1, f1 = a._projections(64)
        e2, f2 = b._projections(64)
        np.testing.assert_array_equal(e1, e2)
        assert a._projections(64) is a._projections(64)

    def test_reformer_mask_symmetric_for_shared_qk(self):
        q, k, _ = _qkv(seq=64, d=16, seed=4)
        mask = B.ReformerAttention(n_buckets=8, n_hashes=2, seed=0).attention_mask(q, q)
        np.testing.assert_array_equal(mask, np.swapaxes(mask, -1, -2))

    def test_routing_clusters_partition_rows(self):
        q, k, _ = _qkv(seq=64, d=16, seed=5)
        mask = B.RoutingTransformerAttention(n_clusters=4, seed=0).attention_mask(q, k)
        # each query attends to at least itself and typically a cluster subset
        assert mask.any(-1).all()
        assert mask.mean() < 0.9

    def test_sinkhorn_block_size_fallback(self):
        mech = B.SinkhornAttention(block_size=32)
        assert mech._block_size_for(48) == 16  # falls back to a divisor

    def test_sinkhorn_mask_covers_diagonal_blocks(self):
        q, k, _ = _qkv(seq=64, d=16, seed=6)
        mask = B.SinkhornAttention(block_size=16).attention_mask(q, k)
        for b in range(4):
            assert np.all(mask[..., b * 16 : (b + 1) * 16, b * 16 : (b + 1) * 16])

    def test_nystromformer_kernels_are_row_stochastic(self):
        q, k, _ = _qkv(seq=64, d=16, seed=7)
        k1, k2, k3 = B.NystromformerAttention(num_landmarks=16).kernels(q, k)
        for kern in (k1, k2, k3):
            np.testing.assert_allclose(kern.sum(-1), 1.0, atol=1e-5)

    def test_newton_schulz_pinv_converges_on_well_conditioned_input(self):
        from repro.baselines.nystromformer import newton_schulz_pinv

        rng = np.random.default_rng(0)
        a = np.eye(16, dtype=np.float32) + 0.01 * rng.normal(size=(16, 16)).astype(np.float32)
        pinv = newton_schulz_pinv(a, iters=12)
        assert np.abs(a @ pinv - np.eye(16)).max() < 1e-3

    def test_bigbird_dfss_mask_subset_of_bigbird(self):
        q, k, _ = _qkv(seq=128, d=16, seed=8)
        combo = B.DfssBigBirdAttention(block_size=32, pattern="2:4", seed=0)
        block_mask = combo.bigbird.attention_mask(q, k)
        nm_mask = combo.attention_mask(q, k)
        assert np.all(~nm_mask | block_mask)  # nm_mask implies block_mask
        assert nm_mask.sum() < block_mask.sum()

    def test_linformer_dfss_matches_output_shape(self):
        q, k, v = _qkv(seq=64, d=32, seed=9)
        out = B.DfssLinformerAttention(proj_dim=32, pattern="2:4")(q, k, v)
        assert out.shape == q.shape and np.all(np.isfinite(out))
