"""Runtime sanitizer: guards fire on seeded violations, clean paths pass."""

import numpy as np
import pytest

from repro.analysis.sanitize import (
    MASKED_SENTINEL_THRESHOLD,
    SanitizerError,
    check_output,
    guard_input,
    sanitize_enabled,
)
from repro.core.padded_csr import PaddedCSRMatrix
from repro.core.plan import PlanKey, build_plan
from repro.core.softmax import MASKED_LOGIT_THRESHOLD
from repro.core.sparse import NMSparseMatrix
from repro.nn.autograd import Tensor
from repro.nn.sparse_attention import dfss_sparse_attention, masked_sparse_attention
from repro.serve.executor import grouped_attention, ragged_attention


@pytest.fixture
def sanitize(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


def _qkv(rows=8, cols=16, d=4, seed=0):
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((rows, d)).astype(np.float32)
    k = rng.standard_normal((cols, d)).astype(np.float32)
    v = rng.standard_normal((cols, d)).astype(np.float32)
    return q, k, v


def _nm_plan():
    key = PlanKey(
        mechanism="dfss_2:4",
        layout="nm",
        backend="fast",
        dtype="float32",
        shape_class=(8, 16, 8),
    )
    return build_plan(key)  # uncached: safe to monkey with its kernels


class TestModeSwitch:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        arr = np.ones(3, dtype=np.float32)
        assert guard_input(arr) is arr  # no wrapping when off
        bad = np.full(3, np.nan, dtype=np.float32)
        assert check_output(bad, "x") is bad  # no checking when off

    def test_truthy_values(self, monkeypatch):
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()

    def test_threshold_matches_the_softmax_constant(self):
        assert MASKED_SENTINEL_THRESHOLD == MASKED_LOGIT_THRESHOLD


class TestSeededViolations:
    def test_kernel_mutating_its_input_faults(self, sanitize):
        q, k, v = _qkv()
        plan = _nm_plan()
        probs = plan.compute_probs(plan.compute_scores(q, k, scale=0.25))

        def mutating_spmm(p, val):
            val[0, 0] = 0.0  # the seeded violation
            return np.zeros((8, val.shape[-1]), dtype=np.float32)

        plan._spmm = mutating_spmm
        with pytest.raises(ValueError, match="read-only"):
            plan.contract(probs, v)
        assert v[0, 0] != 0.0  # the caller's array survived the attempt

    def test_kernel_leaking_masked_score_detected(self, sanitize):
        q, k, v = _qkv()
        plan = _nm_plan()
        probs = plan.compute_probs(plan.compute_scores(q, k, scale=0.25))
        plan._spmm = lambda p, val: np.full((8, 4), np.float32(-1e30))
        with pytest.raises(SanitizerError, match="MASKED_SCORE sentinel"):
            plan.contract(probs, v)

    def test_kernel_leaking_nan_detected(self, sanitize):
        q, k, v = _qkv()
        plan = _nm_plan()
        probs = plan.compute_probs(plan.compute_scores(q, k, scale=0.25))
        plan._spmm = lambda p, val: np.full((8, 4), np.nan, dtype=np.float32)
        with pytest.raises(SanitizerError, match="non-finite"):
            plan.contract(probs, v)

    def test_gradient_leak_detected(self, sanitize):
        q, k, v = _qkv()
        plan = _nm_plan()
        probs = plan.compute_probs(plan.compute_scores(q, k, scale=0.25))
        plan._bwd = lambda *a: (
            np.full((8, 4), np.inf, dtype=np.float32),
            np.zeros((16, 4), dtype=np.float32),
            np.zeros((16, 4), dtype=np.float32),
        )
        with pytest.raises(SanitizerError, match="attention gradient"):
            plan.backward(probs, q, k, v, np.ones((8, 4), np.float32), 0.25)


class TestWriteOnceStructures:
    def test_padded_csr_structure_is_frozen(self, sanitize):
        mask = np.eye(8, dtype=bool)
        s = PaddedCSRMatrix.from_mask(mask)
        with pytest.raises(ValueError, match="read-only"):
            s.cols[0, 0] = 3
        with pytest.raises(ValueError, match="read-only"):
            s.lengths[0] = 5

    def test_padded_csr_caches_are_frozen(self, sanitize):
        s = PaddedCSRMatrix.from_mask(~np.eye(8, dtype=bool))
        with pytest.raises(ValueError, match="read-only"):
            s.valid_lanes()[0, 0] = False
        with pytest.raises(ValueError, match="read-only"):
            s.flat_gather_indices()[0, 0] = 7

    def test_caller_array_stays_writable(self, sanitize):
        cols = np.zeros((4, 1), dtype=np.int32)
        lengths = np.ones(4, dtype=np.int32)
        s = PaddedCSRMatrix(np.zeros((4, 1), np.float32), cols, lengths, 4)
        cols[0, 0] = 2  # the caller's copy is private and untouched
        assert s.cols[0, 0] == 0

    def test_nm_metadata_is_frozen(self, sanitize):
        dense = np.arange(32, dtype=np.float32).reshape(4, 8)
        s = NMSparseMatrix.from_dense(dense, "2:4")
        with pytest.raises(ValueError, match="read-only"):
            s.indices[0, 0] = 1
        with pytest.raises(ValueError, match="read-only"):
            s.column_indices()[0, 0] = 1

    def test_values_stay_writable_for_the_fused_plan(self, sanitize):
        # value buffers are deliberately NOT frozen: the fused plan owns and
        # reuses its score buffer in place (the waived owns-buffer sites)
        dense = np.arange(32, dtype=np.float32).reshape(4, 8)
        s = NMSparseMatrix.from_dense(dense, "2:4")
        s.values[0, 0] = 7.0
        assert s.values[0, 0] == 7.0


class TestCleanPathsUnderSanitizer:
    def test_trainable_nm_attention_forward_backward(self, sanitize):
        rng = np.random.default_rng(3)
        q = Tensor(rng.standard_normal((8, 8)).astype(np.float32), requires_grad=True)
        k = Tensor(rng.standard_normal((8, 8)).astype(np.float32), requires_grad=True)
        v = Tensor(rng.standard_normal((8, 8)).astype(np.float32), requires_grad=True)
        out, _ = dfss_sparse_attention(q, k, v, pattern="2:4")
        out.backward(np.ones_like(out.data))
        for grad in (q.grad, k.grad, v.grad):
            assert np.all(np.isfinite(grad))

    def test_trainable_masked_attention_forward_backward(self, sanitize):
        rng = np.random.default_rng(4)
        q = Tensor(rng.standard_normal((6, 8)).astype(np.float32), requires_grad=True)
        k = Tensor(rng.standard_normal((6, 8)).astype(np.float32), requires_grad=True)
        v = Tensor(rng.standard_normal((6, 8)).astype(np.float32), requires_grad=True)
        mask = np.tril(np.ones((6, 6), dtype=bool))
        out, _ = masked_sparse_attention(q, k, v, mask)
        out.backward(np.ones_like(out.data))
        assert np.all(np.isfinite(q.grad))

    def test_serving_paths_guard_and_pass(self, sanitize):
        rng = np.random.default_rng(5)
        q, k, v = _qkv(rows=8, cols=8, seed=5)
        structure = PaddedCSRMatrix.from_mask(np.tril(np.ones((8, 8), dtype=bool)))
        out = ragged_attention(q, k, v, structure)
        assert np.all(np.isfinite(out))
        q3 = rng.standard_normal((2, 8, 4)).astype(np.float32)
        k3 = rng.standard_normal((2, 8, 4)).astype(np.float32)
        v3 = rng.standard_normal((2, 8, 4)).astype(np.float32)
        out3 = grouped_attention(q3, k3, v3, structure)
        assert np.all(np.isfinite(out3))
        # user inputs were handed to the kernels read-only, not consumed
        q3[0, 0, 0] = 9.0  # still writable by the caller

    def test_guard_input_views_share_memory(self, sanitize):
        arr = np.ones(4, dtype=np.float32)
        view = guard_input(arr)
        assert view.base is arr
        assert not view.flags.writeable
        arr[0] = 2.0
        assert view[0] == 2.0
