"""Aliasing analyzer: sinks fire on fixtures, waivers inventory, repo clean."""

from pathlib import Path

from repro.analysis.aliasing import check_aliasing
from repro.analysis.runner import default_aliasing_files, repo_root

FIXTURES = Path(__file__).parent / "fixtures"
BAD_ALIASING = FIXTURES / "bad_aliasing.py"


def _findings():
    findings, _stats = check_aliasing([BAD_ALIASING], root=repo_root())
    return findings


class TestSeededViolations:
    def test_augmented_assignment_on_param(self):
        hits = [f for f in _findings() if f.rule == "AL001" and not f.waived]
        assert {f.message.split(":")[0] for f in hits} == {
            "mutates_param", "derived_alias_mutation",
        }

    def test_subscript_assignment_on_param(self):
        hits = [f for f in _findings() if f.rule == "AL002" and not f.waived]
        assert [f.message.split(":")[0] for f in hits] == ["writes_into_param"]

    def test_out_kwarg_on_param(self):
        hits = [f for f in _findings() if f.rule == "AL003" and not f.waived]
        assert [f.message.split(":")[0] for f in hits] == ["ufunc_out_on_param"]

    def test_waiver_is_inventoried_not_hidden(self):
        waived = [f for f in _findings() if f.waived]
        assert len(waived) == 1
        assert waived[0].message.startswith("waived_site")
        assert "documented intentional reuse" in waived[0].waiver_note


class TestTaintSemantics:
    def _run(self, tmp_path, body):
        mod = tmp_path / "probe.py"
        mod.write_text("import numpy as np\n" + body)
        findings, _ = check_aliasing([mod], root=tmp_path)
        return findings

    def test_top_level_fresh_rebind_kills_taint(self, tmp_path):
        findings = self._run(
            tmp_path,
            "def f(values, other):\n"
            "    flat = values[0]\n"
            "    flat = flat - np.repeat(other, 2)\n"
            "    np.exp(flat, out=flat)\n"
            "    return flat\n",
        )
        assert findings == []

    def test_conditional_rebind_keeps_taint(self, tmp_path):
        # the plan.compute_probs shape: a copy taken only on some paths means
        # the original binding may survive — must still flag
        findings = self._run(
            tmp_path,
            "def f(scores, owned):\n"
            "    buf = scores.values\n"
            "    if not owned:\n"
            "        buf = np.array(buf)\n"
            "    np.exp(buf, out=buf)\n"
            "    return buf\n",
        )
        assert [f.rule for f in findings] == ["AL003"]

    def test_view_methods_propagate_taint(self, tmp_path):
        findings = self._run(
            tmp_path,
            "def f(values):\n"
            "    flat = values.reshape(-1)\n"
            "    flat[0] = 1.0\n"
            "    return flat\n",
        )
        assert [f.rule for f in findings] == ["AL002"]

    def test_fresh_local_buffers_are_silent(self, tmp_path):
        findings = self._run(
            tmp_path,
            "def f(values):\n"
            "    out = np.empty_like(values)\n"
            "    out[0] = 1.0\n"
            "    np.exp(out, out=out)\n"
            "    out += 1.0\n"
            "    return out\n",
        )
        assert findings == []

    def test_nested_scopes_use_their_own_params(self, tmp_path):
        # closure reads are fine; the nested function's own params are tainted
        findings = self._run(
            tmp_path,
            "def outer(values):\n"
            "    def inner(own):\n"
            "        own += 1.0\n"
            "        return own\n"
            "    return inner\n",
        )
        assert [f.rule for f in findings] == ["AL001"]
        assert findings[0].message.startswith("outer.inner")


class TestRepoWaiverInventory:
    def test_hot_modules_carry_exactly_the_documented_waivers(self):
        root = repo_root()
        findings, _ = check_aliasing(default_aliasing_files(root), root=root)
        active = [f for f in findings if not f.waived]
        assert active == [], "\n".join(f.format() for f in active)
        waived = sorted((f.file, f.line) for f in findings if f.waived)
        files = {file for file, _ in waived}
        # the fused plan's in-place softmax, the two softmax cores, and the
        # multicore plan's tile-memo / caller-out sites
        assert files == {
            "src/repro/core/multicore.py",
            "src/repro/core/plan.py",
            "src/repro/core/softmax.py",
        }
        assert len(waived) == 10
