"""Kernel-contract checker: rules fire on seeded fixtures, repo stays clean."""

from pathlib import Path

from repro.analysis.contracts import check_contracts
from repro.analysis.runner import default_contract_files, repo_root

FIXTURES = Path(__file__).parent / "fixtures"
BAD_CONTRACT = FIXTURES / "bad_contract.py"


def _rules(findings):
    return sorted({f.rule for f in findings})


class TestSeededViolations:
    def _findings(self):
        findings, _stats = check_contracts([BAD_CONTRACT], root=repo_root())
        return findings

    def test_every_contract_rule_fires(self):
        assert _rules(self._findings()) == [
            "KC001", "KC002", "KC003", "KC004", "KC005", "KC006",
        ]

    def test_missing_reference_backend(self):
        [f] = [f for f in self._findings() if f.rule == "KC001"]
        assert "fixture_fastonly" in f.message
        assert "reference" in f.message

    def test_missing_fast_backend(self):
        [f] = [f for f in self._findings() if f.rule == "KC002"]
        assert "fixture_refonly" in f.message

    def test_signature_mismatch_names_both_sites(self):
        [f] = [f for f in self._findings() if f.rule == "KC003"]
        assert "fixture_mismatch" in f.message
        assert "('scores', 'values')" in f.message
        assert "('scores', 'v')" in f.message

    def test_dense_materialization_both_forms(self):
        dense = [f for f in self._findings() if f.rule == "KC004"]
        assert len(dense) == 2
        messages = " ".join(f.message for f in dense)
        assert "zeros" in messages
        assert "toarray" in messages

    def test_deprecated_import_flagged(self):
        [f] = [f for f in self._findings() if f.rule == "KC005"]
        assert "softmax_spmm" in f.message

    def test_private_internals_are_warnings(self):
        [f] = [f for f in self._findings() if f.rule == "KC006"]
        assert f.severity == "warning"
        assert "_scatter_cache" in f.message

    def test_findings_carry_file_and_line(self):
        for f in self._findings():
            assert f.file.endswith("bad_contract.py")
            assert f.line > 0


class TestCallFormRegistration:
    def test_call_form_counts_as_backend(self, tmp_path):
        # the repo registers nm_prune_mask via the call form — the collector
        # must resolve it or the whole repo would falsely fail KC001
        mod = tmp_path / "callform.py"
        mod.write_text(
            "from repro.core.backend import FAST, REFERENCE, register_kernel\n"
            "def my_ref(x, y):\n"
            "    return x\n"
            "register_kernel('callform_kernel', REFERENCE)(my_ref)\n"
            "@register_kernel('callform_kernel', FAST)\n"
            "def my_fast(x, y):\n"
            "    return x\n"
        )
        findings, stats = check_contracts([mod], root=tmp_path)
        assert [f for f in findings if f.rule in ("KC001", "KC002", "KC003")] == []
        assert stats["kernel_registrations"] == 2

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        findings, _ = check_contracts([bad], root=tmp_path)
        assert [f.rule for f in findings] == ["KC000"]


class TestRepoIsClean:
    def test_every_repo_kernel_honors_the_contract(self):
        root = repo_root()
        findings, stats = check_contracts(default_contract_files(root), root=root)
        errors = [f for f in findings if f.severity == "error"]
        assert errors == [], "\n".join(f.format() for f in errors)
        # the registry the tests exercise is fully covered by the scan
        assert stats["kernels"] >= 8
        assert stats["kernel_registrations"] >= 16
