"""CLI contract: exit codes, per-finding output, machine-readable report."""

import json
from pathlib import Path

from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestExitCodes:
    def test_repo_is_clean_under_strict(self, capsys):
        assert main(["--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_fixtures_fail(self, capsys):
        assert main([str(FIXTURES)]) == 1

    def test_strict_promotes_warnings(self, capsys):
        # bad_contract.py alone carries a KC006 warning besides its errors;
        # strict mode must fail on warnings even when errors are fixed, so
        # check the knob directly on a warnings-only file
        assert main(["--strict", str(FIXTURES)]) == 1


class TestReadableOutput:
    def test_findings_print_file_line_rule(self, capsys):
        main([str(FIXTURES / "bad_aliasing.py")])
        out = capsys.readouterr().out
        assert "bad_aliasing.py:13: [AL001] error:" in out

    def test_waiver_inventory_is_printed(self, capsys):
        main([str(FIXTURES / "bad_aliasing.py")])
        out = capsys.readouterr().out
        assert "waiver inventory (1 documented buffer-reuse sites)" in out
        assert "documented intentional reuse" in out

    def test_no_waivers_flag(self, capsys):
        main(["--no-waivers", str(FIXTURES / "bad_aliasing.py")])
        out = capsys.readouterr().out
        assert "waiver inventory" not in out


class TestJsonReport:
    def test_report_shape(self, tmp_path, capsys):
        report_path = tmp_path / "analysis_report.json"
        main(["--json", str(report_path), str(FIXTURES)])
        report = json.loads(report_path.read_text())
        assert report["version"] == 1
        assert {"findings", "waivers", "summary"} <= set(report)
        rules = {f["rule"] for f in report["findings"]}
        assert {"KC001", "KC003", "KC004", "AL001", "AL003"} <= rules
        assert len(report["waivers"]) == 1
        assert report["summary"]["errors"] == len(
            [f for f in report["findings"] if f["severity"] == "error"]
        )

    def test_repo_report_inventories_the_waivers(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(["--strict", "--json", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["findings"] == []
        assert len(report["waivers"]) == 10
        assert report["summary"]["kernels"] >= 8
