# ruff: noqa
"""Seeded kernel-contract violations for the analysis test-suite.

This module is **never imported** — the static passes parse it with ``ast``
only, so the impossible registrations below never pollute the live registry.
Every block is a deliberate violation the checker must flag; the test suite
asserts each rule fires at the expected site (and that the CLI exits nonzero
when pointed here).
"""

import numpy as np

from repro.core.backend import FAST, REFERENCE, register_kernel
from repro.core.spmm import softmax_spmm  # KC005: deprecated staged entry point


@register_kernel("fixture_fastonly", FAST)  # KC001: no reference backend
def _fastonly(a, b):
    return a @ b


@register_kernel("fixture_mismatch", REFERENCE)
def _mismatch_ref(scores, v):
    return scores, v


@register_kernel("fixture_mismatch", FAST)  # KC003: parameter names differ
def _mismatch_fast(scores, values):
    n = values.shape[0]
    tile = np.zeros((n, n), dtype=np.float32)  # KC004: dense O(n²) tile
    dense = scores.toarray()  # KC004: densifies a compressed operand
    stale = scores._scatter_cache  # KC006: private layout internals
    return tile, dense, stale


@register_kernel("fixture_refonly", REFERENCE)  # KC002: no fast backend
def _refonly(x):
    return x
