# ruff: noqa
"""Seeded aliasing/in-place violations for the analysis test-suite.

Never imported — parsed with ``ast`` only.  Each function mutates memory that
may alias a caller's array; one site carries the waiver marker so the waiver
inventory path is exercised too.
"""

import numpy as np


def mutates_param(values):
    values *= 2.0  # AL001: augmented assignment on a parameter
    return values


def writes_into_param(out, vals):
    out[:] = vals  # AL002: slice assignment into a parameter
    return out


def ufunc_out_on_param(values):
    np.exp(values, out=values)  # AL003: ufunc out= aimed at a parameter
    return values


def derived_alias_mutation(scores):
    buf = scores.values  # still the caller's memory
    buf += 1.0  # AL001: mutation through an attribute-derived alias
    return buf


def waived_site(values):
    acc = values.reshape(-1)  # view: same memory
    # repro: owns-buffer — fixture: documented intentional reuse
    acc[0] = 0.0
    return acc
