"""Tests for the Figure-3 ``dspattn`` compatibility API."""

import numpy as np
import pytest

from repro import dspattn
from repro.core.attention import dfss_attention
from repro.core.sparse import NMSparseMatrix


def _qkv(seq=64, d=32, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(seq, d)).astype(np.float32),
        rng.normal(size=(seq, d)).astype(np.float32),
        rng.normal(size=(seq, d)).astype(np.float32),
    )


class TestFigure3Api:
    def test_three_step_pipeline_matches_dfss_attention(self):
        q, k, v = _qkv()
        nonzeros, metadata = dspattn.GEMM(q, k, pattern="2:4")
        attn = dspattn.Softmax(nonzeros)
        out = dspattn.SpMM(attn, metadata, v)
        np.testing.assert_allclose(out, dfss_attention(q, k, v, pattern="2:4"), atol=1e-5)

    def test_gemm_returns_compressed_matrix_and_metadata(self):
        q, k, _ = _qkv()
        nonzeros, metadata = dspattn.GEMM(q, k, dtype="bfloat16")
        assert isinstance(nonzeros, NMSparseMatrix)
        assert nonzeros.pattern.name == "2:4"  # bfloat16 default
        assert metadata.dtype == np.uint16

    def test_softmax_type_check(self):
        with pytest.raises(TypeError):
            dspattn.Softmax(np.zeros((4, 4)))

    def test_spmm_type_and_metadata_checks(self):
        q, k, v = _qkv()
        nonzeros, metadata = dspattn.GEMM(q, k)
        attn = dspattn.Softmax(nonzeros)
        with pytest.raises(TypeError):
            dspattn.SpMM(np.zeros((4, 4)), metadata, v)
        with pytest.raises(ValueError):
            dspattn.SpMM(attn, metadata[:, :1], v)

    def test_object_wrapper(self):
        q, k, v = _qkv(seed=3)
        attn = dspattn.DynamicSparseAttention(dtype="float32")
        assert attn.pattern.name == "1:2"
        out = attn(q, k, v)
        np.testing.assert_allclose(out, dfss_attention(q, k, v, pattern="1:2"), atol=1e-5)

    def test_batched_inputs(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(2, 4, 32, 16)).astype(np.float32)
        v = rng.normal(size=(2, 4, 32, 16)).astype(np.float32)
        out = dspattn.DynamicSparseAttention(pattern="2:4")(q, q, v)
        assert out.shape == (2, 4, 32, 16)
