"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.image import ImageClsConfig, generate_image_dataset
from repro.data.listops import (
    ListOpsConfig,
    PAD,
    VOCAB_SIZE,
    evaluate_expression,
    generate_listops_dataset,
)
from repro.data.mlm import IGNORE_INDEX, MASK, SynthMLMConfig, generate_mlm_dataset
from repro.data.qa import SynthQAConfig, generate_qa_dataset, train_test_split
from repro.data.retrieval import RetrievalConfig, generate_retrieval_dataset
from repro.data.textcls import TextClsConfig, generate_textcls_dataset


class TestQA:
    def test_shapes_and_ranges(self):
        cfg = SynthQAConfig(num_examples=32, seq_len=48, vocab_size=48)
        tokens, spans = generate_qa_dataset(cfg, seed=0)
        assert tokens.shape == (32, 48) and spans.shape == (32, 2)
        assert tokens.min() >= 0 and tokens.max() < 48
        assert np.all(spans[:, 0] <= spans[:, 1])
        assert np.all(spans[:, 1] < 48)

    def test_question_contains_key_of_answer(self):
        cfg = SynthQAConfig(num_examples=16, seq_len=48, vocab_size=48)
        tokens, spans = generate_qa_dataset(cfg, seed=1)
        for seq, (start, _) in zip(tokens, spans):
            key = seq[start - 1]
            assert key == seq[1]  # question token repeats the key

    def test_deterministic_under_seed(self):
        cfg = SynthQAConfig(num_examples=8)
        a = generate_qa_dataset(cfg, seed=3)
        b = generate_qa_dataset(cfg, seed=3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SynthQAConfig(vocab_size=8, num_keys=8)
        with pytest.raises(ValueError):
            SynthQAConfig(seq_len=8)

    def test_train_test_split(self):
        tokens, spans = generate_qa_dataset(SynthQAConfig(num_examples=40), seed=0)
        xtr, ytr, xte, yte = train_test_split(tokens, spans, test_fraction=0.25, seed=0)
        assert len(xtr) == 30 and len(xte) == 10
        assert len(ytr) == 30 and len(yte) == 10


class TestMLM:
    def test_shapes_and_masking(self):
        cfg = SynthMLMConfig(num_examples=16, seq_len=32, vocab_size=32)
        tokens, targets = generate_mlm_dataset(cfg, seed=0)
        assert tokens.shape == targets.shape == (16, 32)
        masked = targets != IGNORE_INDEX
        assert 0.05 < masked.mean() < 0.3
        assert np.all(tokens[masked] == MASK)
        assert np.all(targets[masked] >= 2)

    def test_first_token_never_masked(self):
        tokens, targets = generate_mlm_dataset(SynthMLMConfig(num_examples=8), seed=1)
        assert np.all(targets[:, 0] == IGNORE_INDEX)

    def test_markov_structure_is_learnable(self):
        # consecutive-token pairs should repeat far more often than chance
        cfg = SynthMLMConfig(num_examples=32, seq_len=64, vocab_size=32, branching=2)
        tokens, _ = generate_mlm_dataset(cfg, seed=2)
        pairs = set()
        for row in tokens:
            clean = row[row != MASK]
            pairs.update(zip(clean[:-1].tolist(), clean[1:].tolist()))
        # with branching 2 the number of distinct bigrams is much smaller than 30*30
        assert len(pairs) < 0.3 * 30 * 30

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SynthMLMConfig(mask_prob=0.0)
        with pytest.raises(ValueError):
            SynthMLMConfig(branching=0)


class TestListOps:
    def test_shapes_and_labels(self):
        cfg = ListOpsConfig(num_examples=32, seq_len=64)
        tokens, labels = generate_listops_dataset(cfg, seed=0)
        assert tokens.shape == (32, 64)
        assert labels.min() >= 0 and labels.max() <= 9
        assert tokens.max() < VOCAB_SIZE

    def test_labels_match_expression_evaluation(self):
        cfg = ListOpsConfig(num_examples=24, seq_len=64, max_depth=2)
        tokens, labels = generate_listops_dataset(cfg, seed=1)
        for row, label in zip(tokens, labels):
            expr = [int(t) for t in row if t != PAD]
            assert evaluate_expression(expr) == label

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ListOpsConfig(max_args=1)


class TestTextCls:
    def test_shapes_and_label_balance(self):
        cfg = TextClsConfig(num_examples=64, seq_len=48)
        tokens, labels = generate_textcls_dataset(cfg, seed=0)
        assert tokens.shape == (64, 48)
        assert set(np.unique(labels)) <= {0, 1}
        assert 0.2 < labels.mean() < 0.8

    def test_class_phrases_present(self):
        cfg = TextClsConfig(num_examples=16, seq_len=48)
        tokens, labels = generate_textcls_dataset(cfg, seed=1)
        # documents of different classes have different token distributions
        mean0 = tokens[labels == 0].mean()
        mean1 = tokens[labels == 1].mean()
        assert mean0 != pytest.approx(mean1, abs=1e-9)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TextClsConfig(num_classes=1)


class TestRetrieval:
    def test_shapes(self):
        cfg = RetrievalConfig(num_examples=32, seq_len=48)
        pairs, labels = generate_retrieval_dataset(cfg, seed=0)
        assert pairs.shape == (32, 2, 48)
        assert set(np.unique(labels)) <= {0, 1}

    def test_positive_pairs_share_signatures(self):
        cfg = RetrievalConfig(num_examples=64, seq_len=64)
        pairs, labels = generate_retrieval_dataset(cfg, seed=1)
        overlaps_pos, overlaps_neg = [], []
        for (a, b), label in zip(pairs, labels):
            overlap = len(set(a.tolist()) & set(b.tolist()))
            (overlaps_pos if label else overlaps_neg).append(overlap)
        assert np.mean(overlaps_pos) > np.mean(overlaps_neg)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RetrievalConfig(num_topics=1)


class TestImage:
    def test_shapes_and_vocab(self):
        cfg = ImageClsConfig(num_examples=32, image_size=8, num_levels=8)
        tokens, labels = generate_image_dataset(cfg, seed=0)
        assert tokens.shape == (32, 64)
        assert tokens.min() >= 0 and tokens.max() < 8
        assert labels.max() < cfg.num_classes

    def test_classes_are_visually_distinct(self):
        cfg = ImageClsConfig(num_examples=64, image_size=12, num_classes=2, noise=0.05)
        tokens, labels = generate_image_dataset(cfg, seed=1)
        mean0 = tokens[labels == 0].mean(axis=0)
        mean1 = tokens[labels == 1].mean(axis=0)
        assert np.abs(mean0 - mean1).max() > 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ImageClsConfig(num_classes=9)
        with pytest.raises(ValueError):
            ImageClsConfig(image_size=4)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_generators_deterministic(seed):
    a1, _ = generate_textcls_dataset(TextClsConfig(num_examples=4, seq_len=32), seed=seed)
    a2, _ = generate_textcls_dataset(TextClsConfig(num_examples=4, seq_len=32), seed=seed)
    np.testing.assert_array_equal(a1, a2)
