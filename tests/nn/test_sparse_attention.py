"""Tests for the trainable sparse DFSS attention op and its nn wiring.

The gradcheck tests compare the analytic compressed backward against the
dense masked autograd path on tie-exact lattice inputs (entries are small
multiples of 1/2 and the head dim is a power of four, so the score scale is
exact and both paths select bit-identical N:M masks).
"""

import numpy as np
import pytest

from repro.core.backend import FAST, REFERENCE
from repro.core.blocked_ell import sliding_window_mask
from repro.nn import functional as F
from repro.nn.attention_layer import (
    DfssCore,
    MultiHeadSelfAttention,
    make_attention_core,
)
from repro.nn.autograd import Tensor
from repro.nn.layers import Dropout
from repro.nn.sparse_attention import dfss_sparse_attention
from repro.utils.seeding import attention_dropout_keep, hashed_uniform

PATTERNS = ["1:2", "2:4"]


def _lattice(shape, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.integers(-2, 3, size=shape) / 2).astype(np.float32)


def _tensors(batch=(2, 3), seq=32, d=16, seed=0):
    shape = tuple(batch) + (seq, d)
    return tuple(
        Tensor(_lattice(shape, seed=seed + i), requires_grad=True) for i in range(3)
    )


class TestGradcheckAgainstDensePath:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("backend", [REFERENCE, FAST])
    def test_gradients_match_dense_masked_path(self, pattern, backend):
        q1, k1, v1 = _tensors(seed=1)
        q2, k2, v2 = _tensors(seed=1)
        sparse = DfssCore(pattern, backend=backend, path="sparse")
        dense = DfssCore(pattern, backend=backend, path="dense")
        out_sparse = sparse(q1, k1, v1)
        out_dense = dense(q2, k2, v2)
        np.testing.assert_allclose(out_sparse.data, out_dense.data, atol=1e-6)
        (out_sparse * out_sparse).sum().backward()
        (out_dense * out_dense).sum().backward()
        for a, b in ((q1, q2), (k1, k2), (v1, v2)):
            assert a.grad is not None and b.grad is not None
            np.testing.assert_allclose(a.grad, b.grad, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_masks_are_identical_on_lattice_inputs(self, pattern):
        q1, k1, v1 = _tensors(seed=2)
        q2, k2, v2 = _tensors(seed=2)
        sparse = DfssCore(pattern, path="sparse")
        dense = DfssCore(pattern, path="dense")
        sparse(q1, k1, v1)
        dense(q2, k2, v2)
        np.testing.assert_array_equal(sparse.last_mask(), dense.last_mask())

    def test_finite_difference_gradcheck(self):
        # The analytic gradient treats the N:M selection as a constant of the
        # graph, so central differences are only valid at coordinates whose
        # perturbation does not flip the selection — boundary coordinates are
        # skipped explicitly.
        rng = np.random.default_rng(7)
        shape = (1, 1, 16, 8)
        arrays = [rng.normal(size=shape).astype(np.float32) for _ in range(3)]
        w = rng.normal(size=shape).astype(np.float32)

        def loss(qa, ka, va):
            q, k, v = (Tensor(a, requires_grad=True) for a in (qa, ka, va))
            out, probs = dfss_sparse_attention(q, k, v, pattern="2:4")
            val = (out * Tensor(w)).sum()
            val.backward()
            return float(val.data), (q.grad, k.grad, v.grad), probs.indices

        _, grads, base_idx = loss(*arrays)
        eps = 5e-3
        checked = 0
        for which in range(3):
            for index in [(0, 0, 3, 2), (0, 0, 11, 5), (0, 0, 7, 1)]:
                plus = [a.copy() for a in arrays]
                minus = [a.copy() for a in arrays]
                plus[which][index] += eps
                minus[which][index] -= eps
                val_p, _, idx_p = loss(*plus)
                val_m, _, idx_m = loss(*minus)
                if not (np.array_equal(idx_p, base_idx) and np.array_equal(idx_m, base_idx)):
                    continue  # perturbation crossed a selection boundary
                fd = (val_p - val_m) / (2 * eps)
                assert grads[which][index] == pytest.approx(fd, rel=5e-2, abs=2e-3)
                checked += 1
        assert checked >= 5  # most coordinates must be checkable

    def test_returned_probs_describe_the_mask(self):
        q, k, v = _tensors(seed=3)
        _, probs = dfss_sparse_attention(q, k, v, pattern="2:4")
        mask = probs.to_mask()
        assert mask.mean() == pytest.approx(0.5)
        assert mask.shape == (2, 3, 32, 32)


class TestFullyMaskedRows:
    def test_nn_masked_softmax_zeroes_dead_rows(self):
        x = Tensor(np.zeros((2, 4, 6), np.float32), requires_grad=True)
        mask = np.ones((2, 4, 6), dtype=bool)
        mask[0, 1] = False
        mask[1, 3] = False
        weights = F.masked_softmax(x, mask)
        np.testing.assert_array_equal(weights.data[0, 1], 0.0)
        np.testing.assert_array_equal(weights.data[1, 3], 0.0)
        np.testing.assert_allclose(weights.data[0, 0].sum(), 1.0, atol=1e-6)
        weights.sum().backward()
        assert np.all(np.isfinite(x.grad))
        np.testing.assert_array_equal(x.grad[0, 1], 0.0)

    def test_core_masked_dense_softmax_zeroes_dead_rows(self):
        from repro.core.softmax import masked_dense_softmax

        scores = np.random.default_rng(0).normal(size=(3, 5)).astype(np.float32)
        mask = np.ones((3, 5), dtype=bool)
        mask[2] = False
        out = masked_dense_softmax(scores, mask)
        np.testing.assert_array_equal(out[2], 0.0)
        np.testing.assert_allclose(out[:2].sum(axis=-1), 1.0, atol=1e-6)

    def test_no_uniform_leak_through_masked_core(self):
        """A mask-based core whose mask kills a row must emit zeros there."""

        class DeadRowCore(DfssCore):
            def _mask(self, scores, q, k):
                mask = super()._mask(scores, q, k)
                mask[..., 0, :] = False
                return mask

        q, k, v = _tensors(seed=4)
        core = DeadRowCore("2:4", path="dense")
        out = core(q, k, v)
        np.testing.assert_array_equal(out.data[..., 0, :], 0.0)


class TestFactoryForwarding:
    def test_backend_is_forwarded(self):
        core = make_attention_core("dfss_2:4", backend="reference")
        assert isinstance(core, DfssCore)
        assert core.backend == "reference"
        assert core.pattern.name == "2:4"

    def test_path_is_forwarded(self):
        core = make_attention_core("dfss", pattern="1:2", path="dense")
        assert core.path == "dense"
        assert core.pattern.name == "1:2"

    def test_pattern_kwarg_beats_name_suffix(self):
        core = make_attention_core("dfss_2:4", pattern="1:2")
        assert core.pattern.name == "1:2"

    @pytest.mark.parametrize("mechanism", [
        "full", "dfss_2:4", "topk", "local", "sparse_transformer", "longformer",
        "bigbird", "linformer", "linear_transformer", "performer",
        "nystromformer", "synthesizer", "reformer",
    ])
    def test_unconsumed_kwargs_raise(self, mechanism):
        with pytest.raises(TypeError):
            make_attention_core(mechanism, definitely_not_a_kwarg=1)

    def test_invalid_path_rejected(self):
        with pytest.raises(ValueError, match="path"):
            DfssCore("2:4", path="warp")


class TestDropoutPlacement:
    def test_sparse_dropout_is_identity_in_eval(self):
        layer = MultiHeadSelfAttention(
            model_dim=16, num_heads=2, mechanism="dfss_2:4", dropout=0.5, seed=0
        )
        layer.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(2, 8, 16)).astype(np.float32))
        out1 = layer(x).data.copy()
        out2 = layer(x).data
        np.testing.assert_array_equal(out1, out2)

    def test_train_dropout_perturbs_attention_not_output_activations(self):
        layer = MultiHeadSelfAttention(
            model_dim=16, num_heads=2, mechanism="dfss_2:4", dropout=0.5, seed=0
        )
        x = Tensor(np.random.default_rng(1).normal(size=(2, 8, 16)).astype(np.float32))
        out1 = layer(x).data.copy()
        out2 = layer(x).data
        # dropout on the attention probabilities re-randomises between calls
        assert not np.allclose(out1, out2)

    def test_train_dropout_gradients_flow(self):
        for mechanism in ("dfss_2:4", "full", "topk"):
            layer = MultiHeadSelfAttention(
                model_dim=16, num_heads=2, mechanism=mechanism, dropout=0.3, seed=0
            )
            x = Tensor(
                np.random.default_rng(2).normal(size=(2, 8, 16)).astype(np.float32),
                requires_grad=True,
            )
            layer(x).sum().backward()
            for name, p in layer.named_parameters():
                assert p.grad is not None and np.all(np.isfinite(p.grad)), name

    def test_resid_dropout_knob(self):
        layer = MultiHeadSelfAttention(
            model_dim=16, num_heads=2, mechanism="full", resid_dropout=0.5, seed=0
        )
        x = Tensor(np.ones((1, 4, 16), np.float32))
        out1 = layer(x).data.copy()
        out2 = layer(x).data
        assert not np.allclose(out1, out2)  # residual dropout active in training
        layer.eval()
        out3 = layer(x).data.copy()
        out4 = layer(x).data
        np.testing.assert_array_equal(out3, out4)

    @pytest.mark.parametrize("mechanism", [
        "linear_transformer", "performer", "linformer", "nystromformer",
        "synthesizer",
    ])
    def test_kernel_and_lowrank_mechanisms_still_get_dropout(self, mechanism):
        layer = MultiHeadSelfAttention(
            model_dim=16, num_heads=2, mechanism=mechanism, dropout=0.5, seed=0,
            max_len=8,
        )
        x = Tensor(np.random.default_rng(5).normal(size=(2, 8, 16)).astype(np.float32))
        out1 = layer(x).data.copy()
        out2 = layer(x).data
        assert not np.allclose(out1, out2), mechanism  # dropout active in training
        layer.eval()
        np.testing.assert_array_equal(layer(x).data, layer(x).data)

    def test_sparse_op_requires_seeded_rng_for_dropout(self):
        q, k, v = _tensors(seed=6)
        with pytest.raises(ValueError, match="dropout_rng"):
            dfss_sparse_attention(q, k, v, dropout_p=0.5, training=True)

    def test_core_swap_reattaches_dropout(self):
        layer = MultiHeadSelfAttention(
            model_dim=16, num_heads=2, mechanism="full", dropout=0.4, seed=0
        )
        layer.set_mechanism("dfss", pattern="2:4")
        assert layer.core.attn_dropout is layer.attn_dropout


class TestDropoutLayoutIndependence:
    """Seeded dropout must agree between the sparse op and the dense escape hatch."""

    def _cores(self, p=0.5, seed=42, backend=None):
        sparse = DfssCore("2:4", path="sparse", backend=backend)
        dense = DfssCore("2:4", path="dense", backend=backend)
        sparse.attn_dropout = Dropout(p, seed=seed)
        dense.attn_dropout = Dropout(p, seed=seed)
        return sparse, dense

    @pytest.mark.parametrize("backend", [REFERENCE, FAST])
    def test_seeded_paths_bit_comparable_under_dropout(self, backend):
        sparse, dense = self._cores(backend=backend)
        for step in range(3):  # alignment must survive several steps
            q1, k1, v1 = _tensors(seed=10 + step)
            q2, k2, v2 = _tensors(seed=10 + step)
            out_s = sparse(q1, k1, v1)
            out_d = dense(q2, k2, v2)
            np.testing.assert_allclose(out_s.data, out_d.data, atol=1e-6)
            (out_s * out_s).sum().backward()
            (out_d * out_d).sum().backward()
            for a, b in ((q1, q2), (k1, k2), (v1, v2)):
                np.testing.assert_allclose(a.grad, b.grad, rtol=1e-5, atol=1e-6)

    def test_both_paths_consume_one_draw_per_call(self):
        sparse, dense = self._cores()
        q1, k1, v1 = _tensors(seed=20)
        q2, k2, v2 = _tensors(seed=20)
        sparse(q1, k1, v1)
        dense(q2, k2, v2)
        # generators advanced identically -> next draws agree
        assert (sparse.attn_dropout.rng.integers(1 << 62)
                == dense.attn_dropout.rng.integers(1 << 62))

    def test_dropout_actually_drops(self):
        sparse, _ = self._cores(p=0.5)
        q, k, v = _tensors(seed=21)
        out1 = sparse(q, k, v).data.copy()
        out2 = sparse(q, k, v).data
        assert not np.allclose(out1, out2)  # re-randomised between calls

    def test_eval_mode_is_identity_on_both_paths(self):
        sparse, dense = self._cores()
        sparse.attn_dropout.training = False
        dense.attn_dropout.training = False
        q1, k1, v1 = _tensors(seed=22)
        q2, k2, v2 = _tensors(seed=22)
        np.testing.assert_allclose(
            sparse(q1, k1, v1).data, dense(q2, k2, v2).data, atol=1e-6
        )

    def test_full_layer_paths_match_with_dropout(self):
        # Through the projections the scores are not tie-exact, so the two
        # paths can pick different N:M survivors at fp ties (~1e-4 output
        # noise, present without dropout too).  A *misaligned* dropout mask
        # would instead zero/double different entries and produce O(1)
        # differences, so the tight bound below still proves alignment.
        outs = []
        for path in ("sparse", "dense"):
            layer = MultiHeadSelfAttention(
                model_dim=16, num_heads=2, mechanism="dfss_2:4", dropout=0.4,
                seed=0, path=path,
            )
            x = Tensor(_lattice((2, 8, 16), seed=23))
            outs.append(layer(x).data)
        np.testing.assert_allclose(outs[0], outs[1], atol=5e-3)

    def test_hashed_uniform_is_position_keyed(self):
        positions = np.arange(64, dtype=np.uint64).reshape(8, 8)
        full = hashed_uniform(123, positions)
        subset = hashed_uniform(123, positions[::2, 1::3])
        np.testing.assert_array_equal(full[::2, 1::3], subset)
        assert not np.array_equal(full, hashed_uniform(124, positions))
        assert 0.0 <= full.min() and full.max() < 1.0

    def test_attention_dropout_keep_scales_and_validates(self):
        keep = attention_dropout_keep(7, 0.5, np.arange(10_000, dtype=np.uint64))
        assert set(np.unique(keep)) == {0.0, 2.0}
        assert keep.mean() == pytest.approx(1.0, abs=0.05)
        with pytest.raises(ValueError):
            attention_dropout_keep(7, 1.0, np.arange(4, dtype=np.uint64))


class TestBlockMaskTrainableOp:
    """The trainable op accepts the blocked-ELL coarse mask (ROADMAP item)."""

    def _block_mask(self, seq=32):
        return sliding_window_mask(seq_len=seq, block_size=8, window_blocks=1)

    def test_masked_positions_carry_zero_probability(self):
        q, k, v = _tensors(seed=30)
        block = self._block_mask()
        _, probs = dfss_sparse_attention(q, k, v, pattern="2:4", block_mask=block)
        dense_probs = probs.to_dense(0.0)
        outside = ~block.dense_mask(32, 32)
        np.testing.assert_array_equal(dense_probs[..., outside], 0.0)

    @pytest.mark.parametrize("backend", [REFERENCE, FAST])
    # block_size=2 puts a block boundary INSIDE every 2:4 group: the dense
    # path must exclude blocked scores before the N:M selection (promoting
    # allowed runners-up), exactly like the sddmm_nm epilogue
    @pytest.mark.parametrize("block_size", [8, 2])
    def test_sparse_path_matches_dense_path_with_block_mask(self, backend, block_size):
        block = sliding_window_mask(seq_len=32, block_size=block_size, window_blocks=1)
        q1, k1, v1 = _tensors(seed=31)
        q2, k2, v2 = _tensors(seed=31)
        sparse = DfssCore("2:4", path="sparse", backend=backend, block_mask=block)
        dense = DfssCore("2:4", path="dense", backend=backend, block_mask=block)
        out_s = sparse(q1, k1, v1)
        out_d = dense(q2, k2, v2)
        np.testing.assert_allclose(out_s.data, out_d.data, atol=1e-6)
        (out_s * out_s).sum().backward()
        (out_d * out_d).sum().backward()
        for a, b in ((q1, q2), (k1, k2), (v1, v2)):
            np.testing.assert_allclose(a.grad, b.grad, rtol=1e-5, atol=1e-6)

    def test_mechanism_mask_excludes_before_selection(self):
        # the numpy DfssMechanism must agree with dfss_attention's epilogue
        # on block boundaries that do not align with N:M groups
        from repro.baselines.dfss import DfssMechanism
        from repro.core.attention import dfss_attention

        rng = np.random.default_rng(40)
        q = (rng.integers(-2, 3, size=(2, 32, 16)) / 2).astype(np.float32)
        k = (rng.integers(-2, 3, size=(2, 32, 16)) / 2).astype(np.float32)
        v = rng.normal(size=(2, 32, 16)).astype(np.float32)
        block = sliding_window_mask(seq_len=32, block_size=2, window_blocks=1)
        mech = DfssMechanism(pattern="2:4", block_mask=block)
        _, weights = dfss_attention(q, k, v, pattern="2:4", block_mask=block,
                                    return_weights=True)
        kernel_mask = weights.to_dense(0.0) > 0
        mech_mask = mech.attention_mask(q, k)
        # every position the kernel assigns weight must be in the mask
        assert not (kernel_mask & ~mech_mask).any()

    def test_last_mask_respects_block_mask(self):
        block = self._block_mask()
        q, k, v = _tensors(seed=32)
        core = DfssCore("2:4", path="sparse", block_mask=block)
        core(q, k, v)
        mask = core.last_mask()
        assert not mask[..., ~block.dense_mask(32, 32)].any()

    def test_engine_forwards_block_mask_to_core(self):
        from repro.engine import AttentionEngine

        block = self._block_mask()
        core = AttentionEngine("dfss", pattern="2:4", block_mask=block).core()
        assert core.block_mask is block

    def test_block_mask_with_dropout(self):
        block = self._block_mask()
        q, k, v = _tensors(seed=33)
        core = DfssCore("2:4", path="sparse", block_mask=block)
        core.attn_dropout = Dropout(0.3, seed=5)
        out = core(q, k, v)
        assert np.all(np.isfinite(out.data))
        out.sum().backward()
        assert np.all(np.isfinite(q.grad))


class TestSparseIsTheDefaultTrainingPath:
    def test_mha_dfss_uses_sparse_op(self):
        layer = MultiHeadSelfAttention(model_dim=16, num_heads=2, mechanism="dfss_2:4")
        assert isinstance(layer.core, DfssCore)
        assert layer.core.path == "sparse"
        x = Tensor(np.random.default_rng(3).normal(size=(2, 8, 16)).astype(np.float32))
        layer(x)
        assert layer.core._last_structure is not None  # compressed, not dense autograd

    def test_training_step_reduces_loss(self):
        from repro.nn.optim import SGD

        layer = MultiHeadSelfAttention(model_dim=16, num_heads=2, mechanism="dfss_2:4",
                                       seed=0)
        opt = SGD(layer.parameters(), lr=0.05)
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(2, 8, 16)).astype(np.float32))
        target = rng.normal(size=(2, 8, 16)).astype(np.float32)
        losses = []
        for _ in range(8):
            layer.zero_grad()
            diff = layer(x) - Tensor(target)
            loss = (diff * diff).mean()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]
