"""Tests for the trainable multi-head attention layer and its mechanism cores."""

import numpy as np
import pytest

from repro.nn.attention_layer import (
    DfssCore,
    FullCore,
    MultiHeadSelfAttention,
    make_attention_core,
)
from repro.nn.autograd import Tensor

MECHANISMS = [
    "full", "dfss_1:2", "dfss_2:4", "topk", "local", "sparse_transformer",
    "fixed_truncated", "longformer", "bigbird", "reformer", "routing", "sinkhorn",
    "linformer", "linear_transformer", "performer", "nystromformer",
    "nystromformer_dfss", "synthesizer",
]


def _qkv(batch=2, heads=2, seq=16, d=8, seed=0):
    rng = np.random.default_rng(seed)
    mk = lambda: Tensor(rng.normal(size=(batch, heads, seq, d)).astype(np.float32),
                        requires_grad=True)
    return mk(), mk(), mk()


class TestCores:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_forward_shape_and_backward(self, mechanism):
        core = make_attention_core(mechanism, seq_len_hint=16)
        q, k, v = _qkv()
        out = core(q, k, v)
        assert out.shape == (2, 2, 16, 8)
        assert np.all(np.isfinite(out.data))
        out.sum().backward()
        assert v.grad is not None and np.all(np.isfinite(v.grad))

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            make_attention_core("flash")

    def test_dfss_core_matches_masked_full(self):
        q, k, v = _qkv(seed=3)
        dfss_out = DfssCore("2:4")(q, k, v)
        full_out = FullCore()(q, k, v)
        # outputs differ (pruning) but stay correlated
        assert not np.allclose(dfss_out.data, full_out.data)
        corr = np.corrcoef(dfss_out.data.ravel(), full_out.data.ravel())[0, 1]
        assert corr > 0.5

    def test_dfss_core_mask_density(self):
        q, k, v = _qkv(seed=4)
        core = DfssCore("2:4")
        core(q, k, v)
        assert core.last_mask().mean() == pytest.approx(0.5)

    def test_full_core_rows_sum_to_one_through_v_identity(self):
        q, k, _ = _qkv(seed=5)
        ones = Tensor(np.ones((2, 2, 16, 1), np.float32))
        out = FullCore()(q, k, ones)
        np.testing.assert_allclose(out.data, 1.0, atol=1e-5)

    def test_mechanism_gradients_flow_to_queries(self):
        for mechanism in ("dfss_2:4", "performer", "nystromformer", "linformer"):
            q, k, v = _qkv(seed=6)
            out = make_attention_core(mechanism, seq_len_hint=16)(q, k, v)
            (out * out).sum().backward()
            assert q.grad is not None and np.abs(q.grad).sum() > 0, mechanism


class TestMultiHeadSelfAttention:
    def test_forward_shape(self):
        layer = MultiHeadSelfAttention(model_dim=32, num_heads=4, mechanism="dfss_2:4", seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 16, 32)).astype(np.float32))
        out = layer(x)
        assert out.shape == (2, 16, 32)

    def test_invalid_head_split(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(model_dim=30, num_heads=4)

    def test_set_mechanism_preserves_weights(self):
        layer = MultiHeadSelfAttention(model_dim=16, num_heads=2, mechanism="full", seed=0)
        w_before = layer.q_proj.weight.data.copy()
        layer.set_mechanism("dfss", pattern="1:2")
        assert layer.mechanism == "dfss"
        np.testing.assert_array_equal(layer.q_proj.weight.data, w_before)

    def test_output_changes_with_mechanism(self):
        layer = MultiHeadSelfAttention(model_dim=16, num_heads=2, mechanism="full", seed=0)
        layer.eval()
        x = Tensor(np.random.default_rng(1).normal(size=(1, 12, 16)).astype(np.float32))
        out_full = layer(x).data.copy()
        layer.set_mechanism("dfss", pattern="2:4")
        out_dfss = layer(x).data
        assert not np.allclose(out_full, out_dfss)

    def test_synthesizer_registers_trainable_table(self):
        layer = MultiHeadSelfAttention(model_dim=16, num_heads=2, mechanism="synthesizer",
                                       seed=0, max_len=32)
        names = [n for n, _ in layer.named_parameters()]
        assert any("core_weight" in n for n in names)
        layer.set_mechanism("full")
        names = [n for n, _ in layer.named_parameters()]
        assert not any("core_weight" in n for n in names)

    def test_backward_produces_gradients_for_all_projections(self):
        layer = MultiHeadSelfAttention(model_dim=16, num_heads=2, mechanism="dfss_2:4", seed=0)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 8, 16)).astype(np.float32))
        layer(x).sum().backward()
        for name, p in layer.named_parameters():
            assert p.grad is not None, name
