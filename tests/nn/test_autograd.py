"""Tests (incl. numerical gradient checks) for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.autograd import Tensor, concatenate, parameter, stack


def numerical_grad(f, x, eps=1e-3):
    """Central-difference gradient of a scalar-valued function of an ndarray."""
    grad = np.zeros_like(x)
    for idx in np.ndindex(x.shape):
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        grad[idx] = (f(xp) - f(xm)) / (2 * eps)
    return grad


def check_gradients(build, x, tol=2e-2):
    """Compare autograd and numerical gradients of ``sum(build(Tensor(x)))``."""
    t = Tensor(x, requires_grad=True)
    out = build(t)
    out.sum().backward()
    num = numerical_grad(lambda arr: float(build(Tensor(arr)).sum().item()), x)
    np.testing.assert_allclose(t.grad, num, atol=tol, rtol=tol)


RNG = np.random.default_rng(0)


class TestBasicOps:
    def test_add_mul_broadcast(self):
        x = RNG.normal(size=(3, 4)).astype(np.float32)
        b = RNG.normal(size=(4,)).astype(np.float32)
        check_gradients(lambda t: (t + Tensor(b)) * 2.0 + t * t, x)

    def test_sub_div(self):
        x = RNG.normal(size=(3, 3)).astype(np.float32) + 3.0
        check_gradients(lambda t: (t - 1.0) / (t + 2.0), x)

    def test_pow(self):
        x = np.abs(RNG.normal(size=(4,))).astype(np.float32) + 0.5
        check_gradients(lambda t: t**3, x)

    def test_matmul(self):
        x = RNG.normal(size=(3, 4)).astype(np.float32)
        w = RNG.normal(size=(4, 5)).astype(np.float32)
        check_gradients(lambda t: t @ Tensor(w), x)

    def test_batched_matmul(self):
        x = RNG.normal(size=(2, 3, 4)).astype(np.float32)
        w = RNG.normal(size=(2, 4, 3)).astype(np.float32)
        check_gradients(lambda t: t @ Tensor(w), x)

    def test_matmul_grad_wrt_second_operand(self):
        a = RNG.normal(size=(3, 4)).astype(np.float32)
        w = RNG.normal(size=(4, 2)).astype(np.float32)
        check_gradients(lambda t: Tensor(a) @ t, w)

    def test_exp_log_sqrt_tanh_sigmoid(self):
        x = np.abs(RNG.normal(size=(5,))).astype(np.float32) + 0.5
        check_gradients(lambda t: t.exp(), x)
        check_gradients(lambda t: t.log(), x)
        check_gradients(lambda t: t.sqrt(), x)
        check_gradients(lambda t: t.tanh(), x)
        check_gradients(lambda t: t.sigmoid(), x)

    def test_relu_and_erf(self):
        x = RNG.normal(size=(8,)).astype(np.float32) + 0.05
        check_gradients(lambda t: t.relu(), x)
        check_gradients(lambda t: t.erf(), x)

    def test_reductions(self):
        x = RNG.normal(size=(3, 4)).astype(np.float32)
        check_gradients(lambda t: t.sum(axis=1), x)
        check_gradients(lambda t: t.mean(axis=0), x)
        check_gradients(lambda t: t.sum(), x)

    def test_max_reduction(self):
        x = RNG.normal(size=(3, 5)).astype(np.float32)
        check_gradients(lambda t: t.max(axis=-1), x)

    def test_reshape_transpose_swapaxes(self):
        x = RNG.normal(size=(2, 3, 4)).astype(np.float32)
        check_gradients(lambda t: t.reshape(6, 4) @ Tensor(np.ones((4, 2), np.float32)), x)
        check_gradients(lambda t: t.transpose(1, 0, 2).sum(axis=0), x)
        check_gradients(lambda t: t.swapaxes(-1, -2).sum(axis=1), x)

    def test_getitem(self):
        x = RNG.normal(size=(4, 5)).astype(np.float32)
        check_gradients(lambda t: t[1:3, ::2], x)

    def test_getitem_integer_array(self):
        x = RNG.normal(size=(6, 3)).astype(np.float32)
        ids = np.array([0, 2, 2, 5])
        t = Tensor(x, requires_grad=True)
        t[ids].sum().backward()
        expected = np.zeros_like(x)
        np.add.at(expected, ids, 1.0)
        np.testing.assert_allclose(t.grad, expected)

    def test_masked_fill(self):
        x = RNG.normal(size=(3, 4)).astype(np.float32)
        mask = RNG.random((3, 4)) > 0.5
        t = Tensor(x, requires_grad=True)
        t.masked_fill(mask, -5.0).sum().backward()
        np.testing.assert_allclose(t.grad, (~mask).astype(np.float32))

    def test_concatenate_and_stack(self):
        a = Tensor(RNG.normal(size=(2, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 3)).astype(np.float32), requires_grad=True)
        concatenate([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))
        a.zero_grad(); b.zero_grad()
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))


class TestGraphMechanics:
    def test_gradient_accumulates_on_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_detach_stops_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x.detach() * 3.0 + x).backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_no_grad_tracking_for_constants(self):
        x = Tensor(np.ones(3))
        y = x * 2.0
        assert not y.requires_grad and y._backward is None

    def test_parameter_helper(self):
        p = parameter(np.zeros(3), name="w")
        assert p.requires_grad and p.name == "w"

    def test_deep_chain_does_not_hit_recursion_limit(self):
        x = Tensor(np.ones(4), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(4))

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float32, (3, 4), elements=st.floats(-3, 3, width=32)),
    arrays(np.float32, (4, 2), elements=st.floats(-3, 3, width=32)),
)
def test_property_matmul_grad_matches_formula(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta @ tb).sum().backward()
    ones = np.ones((3, 2), dtype=np.float32)
    np.testing.assert_allclose(ta.grad, ones @ b.T, atol=1e-4)
    np.testing.assert_allclose(tb.grad, a.T @ ones, atol=1e-4)
