"""Gradcheck parity of the padded-CSR sparse training path, per mechanism.

Every mask-based mechanism now trains through
:func:`repro.nn.sparse_attention.masked_sparse_attention` by default; the
dense masked autograd formulation is retained as ``path="dense"`` and acts as
the oracle here.  Inputs are tie-exact lattices (small multiples of 1/2 with
a power-of-four head dim) so data-dependent masks select identically on both
paths and outputs/gradients agree to float tolerance.
"""

import numpy as np
import pytest

from repro.core.backend import FAST, REFERENCE
from repro.nn.attention_layer import (
    BigBirdDfssCore,
    LinformerDfssCore,
    MaskedScoreCore,
    StaticMaskCore,
)
from repro.nn.autograd import Tensor
from repro.nn.layers import Dropout
from repro.nn.sparse_attention import masked_sparse_attention
from repro.registry import available_mechanisms, make_core

#: every previously dense-only mask-based mechanism that must now train
#: through the compressed padded-CSR (or N:M) path
MASK_MECHANISMS = (
    "topk",
    "local",
    "sparse_transformer",
    "fixed_truncated",
    "longformer",
    "bigbird",
    "reformer",
    "routing",
    "sinkhorn",
)


def _lattice(shape, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.integers(-2, 3, size=shape) / 2).astype(np.float32)


def _tensors(batch=(2, 3), seq=32, d=16, seed=0):
    shape = tuple(batch) + (seq, d)
    return tuple(
        Tensor(_lattice(shape, seed=seed + i), requires_grad=True) for i in range(3)
    )


class TestPerMechanismGradcheckParity:
    @pytest.mark.parametrize("mechanism", MASK_MECHANISMS)
    @pytest.mark.parametrize("backend", [REFERENCE, FAST])
    def test_sparse_matches_dense_masked_path(self, mechanism, backend):
        q1, k1, v1 = _tensors(seed=1)
        q2, k2, v2 = _tensors(seed=1)
        sparse = make_core(mechanism, seq_len_hint=32, path="sparse", backend=backend)
        dense = make_core(mechanism, seq_len_hint=32, path="dense", backend=backend)
        out_s = sparse(q1, k1, v1)
        out_d = dense(q2, k2, v2)
        np.testing.assert_allclose(out_s.data, out_d.data, atol=1e-6, err_msg=mechanism)
        (out_s * out_s).sum().backward()
        (out_d * out_d).sum().backward()
        for a, b in ((q1, q2), (k1, k2), (v1, v2)):
            assert a.grad is not None and b.grad is not None
            np.testing.assert_allclose(
                a.grad, b.grad, rtol=1e-5, atol=1e-6, err_msg=mechanism
            )

    @pytest.mark.parametrize("mechanism", MASK_MECHANISMS)
    def test_masks_agree_between_paths(self, mechanism):
        q1, k1, v1 = _tensors(seed=2)
        q2, k2, v2 = _tensors(seed=2)
        sparse = make_core(mechanism, seq_len_hint=32, path="sparse")
        dense = make_core(mechanism, seq_len_hint=32, path="dense")
        sparse(q1, k1, v1)
        dense(q2, k2, v2)
        np.testing.assert_array_equal(sparse.last_mask(), dense.last_mask())

    def test_every_compressed_mask_mechanism_is_covered(self):
        # the sweep above must cover what the registry advertises (minus the
        # DFSS-family mechanisms, which tests/nn/test_sparse_attention.py pins)
        advertised = set(
            available_mechanisms(trainable=True, produces_mask=True, compressed=True)
        )
        assert advertised - {"dfss", "bigbird_dfss"} == set(MASK_MECHANISMS)
        assert len(MASK_MECHANISMS) >= 5  # acceptance: at least 5 mechanisms


class TestEdgeCases:
    class DeadRowCore(StaticMaskCore):
        """Local-window mask with one fully masked query row."""

        def __init__(self, path):
            def mask_fn(nq, nk):
                from repro.baselines.fixed import local_window_mask

                mask = local_window_mask(nq, nk, 4)
                mask[0, :] = False
                return mask

            super().__init__(mask_fn, "dead_row", path=path)

    def test_fully_masked_row_zero_output_and_gradients(self):
        q, k, v = _tensors(seed=3)
        core = self.DeadRowCore(path="sparse")
        out = core(q, k, v)
        np.testing.assert_array_equal(out.data[..., 0, :], 0.0)
        (out * out).sum().backward()
        assert np.all(np.isfinite(q.grad))
        # a dead query row contributes no gradient to its query vector
        np.testing.assert_array_equal(q.grad[..., 0, :], 0.0)

    def test_fully_masked_row_parity_with_dense(self):
        q1, k1, v1 = _tensors(seed=4)
        q2, k2, v2 = _tensors(seed=4)
        out_s = self.DeadRowCore(path="sparse")(q1, k1, v1)
        out_d = self.DeadRowCore(path="dense")(q2, k2, v2)
        np.testing.assert_allclose(out_s.data, out_d.data, atol=1e-6)
        out_s.sum().backward()
        out_d.sum().backward()
        for a, b in ((q1, q2), (k1, k2), (v1, v2)):
            np.testing.assert_allclose(a.grad, b.grad, rtol=1e-5, atol=1e-6)

    def test_ragged_row_lengths_parity(self):
        # a hand-built mask with strongly varying nnz per row, including
        # singleton rows and one dead row
        rng = np.random.default_rng(5)
        mask = rng.random((2, 2, 16, 16)) < 0.2
        mask[..., 3, :] = False          # dead row
        mask[..., 5, :] = True           # full row (forces maximum width)
        mask[..., 7, :] = False
        mask[..., 7, 2] = True           # singleton row
        q1, k1, v1 = _tensors(batch=(2, 2), seq=16, seed=6)
        q2, k2, v2 = _tensors(batch=(2, 2), seq=16, seed=6)
        out_s, probs = masked_sparse_attention(q1, k1, v1, mask)
        assert probs.width == 16 and probs.row_lengths().min() == 0
        scale = 1.0 / np.sqrt(q2.shape[-1])
        from repro.core.softmax import masked_dense_softmax

        weights = masked_dense_softmax(
            np.matmul(q2.data, np.swapaxes(k2.data, -1, -2)) * scale, mask
        )
        np.testing.assert_allclose(
            out_s.data, np.matmul(weights, v2.data), atol=1e-5
        )
        out_s.sum().backward()
        assert all(np.all(np.isfinite(t.grad)) for t in (q1, k1, v1))

    def test_2d_mask_broadcasts_over_batch(self):
        q, k, v = _tensors(seed=7)
        from repro.baselines.fixed import local_window_mask

        mask2d = local_window_mask(32, 32, 4)
        out, probs = masked_sparse_attention(q, k, v, mask2d)
        assert out.shape == q.shape
        assert probs.batch_shape == (2, 3)

    def test_dropout_requires_seeded_rng(self):
        q, k, v = _tensors(seed=8)
        mask = np.ones((32, 32), dtype=bool)
        with pytest.raises(ValueError, match="dropout_rng"):
            masked_sparse_attention(q, k, v, mask, dropout_p=0.5, training=True)


class TestDropoutLayoutIndependence:
    """Seeded dropout must agree between the CSR sparse op and the dense path."""

    def _cores(self, mechanism="local", p=0.5, seed=42):
        sparse = make_core(mechanism, seq_len_hint=32, path="sparse")
        dense = make_core(mechanism, seq_len_hint=32, path="dense")
        sparse.attn_dropout = Dropout(p, seed=seed)
        dense.attn_dropout = Dropout(p, seed=seed)
        return sparse, dense

    @pytest.mark.parametrize("mechanism", ["local", "topk", "longformer"])
    def test_seeded_paths_comparable_under_dropout(self, mechanism):
        sparse, dense = self._cores(mechanism)
        for step in range(2):
            q1, k1, v1 = _tensors(seed=20 + step)
            q2, k2, v2 = _tensors(seed=20 + step)
            out_s = sparse(q1, k1, v1)
            out_d = dense(q2, k2, v2)
            np.testing.assert_allclose(out_s.data, out_d.data, atol=1e-6)
            (out_s * out_s).sum().backward()
            (out_d * out_d).sum().backward()
            for a, b in ((q1, q2), (k1, k2), (v1, v2)):
                # atol absorbs float-order noise amplified by the 1/(1-p)
                # dropout scaling; a misaligned mask would differ at O(1)
                np.testing.assert_allclose(a.grad, b.grad, rtol=1e-5, atol=5e-6)

    def test_dropout_actually_drops(self):
        sparse, _ = self._cores()
        q, k, v = _tensors(seed=25)
        out1 = sparse(q, k, v).data.copy()
        out2 = sparse(q, k, v).data
        assert not np.allclose(out1, out2)

    def test_eval_mode_is_identity(self):
        sparse, dense = self._cores()
        sparse.attn_dropout.training = False
        dense.attn_dropout.training = False
        q1, k1, v1 = _tensors(seed=26)
        q2, k2, v2 = _tensors(seed=26)
        np.testing.assert_allclose(
            sparse(q1, k1, v1).data, dense(q2, k2, v2).data, atol=1e-6
        )


class TestSparseIsTheDefaultPath:
    @pytest.mark.parametrize("mechanism", MASK_MECHANISMS)
    def test_default_core_path_is_sparse(self, mechanism):
        core = make_core(mechanism, seq_len_hint=32)
        assert isinstance(core, MaskedScoreCore)
        assert core.path == "sparse"

    def test_static_mask_structure_is_cached_across_steps(self):
        core = make_core("local", seq_len_hint=32)
        q, k, v = _tensors(seed=30)
        core(q, k, v)
        first = next(iter(core._csr_cache.values()))
        core(*_tensors(seed=31))
        assert next(iter(core._csr_cache.values())) is first

    def test_invalid_path_rejected(self):
        with pytest.raises(ValueError, match="path"):
            make_core("local", path="warp")

    def test_numpy_mechanism_rejects_core_only_kwargs(self):
        from repro.registry import make_mechanism

        with pytest.raises(TypeError, match="path"):
            make_mechanism("local", path="dense")

    def test_training_step_reduces_loss(self):
        from repro.nn.attention_layer import MultiHeadSelfAttention
        from repro.nn.optim import SGD

        layer = MultiHeadSelfAttention(
            model_dim=16, num_heads=2, mechanism="local", seed=0
        )
        opt = SGD(layer.parameters(), lr=0.05)
        rng = np.random.default_rng(8)
        x = Tensor(rng.normal(size=(2, 8, 16)).astype(np.float32))
        target = rng.normal(size=(2, 8, 16)).astype(np.float32)
        losses = []
        for _ in range(8):
            layer.zero_grad()
            diff = layer(x) - Tensor(target)
            loss = (diff * diff).mean()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]


class TestComboCores:
    """bigbird_dfss / linformer_dfss gained trainable cores (ROADMAP item)."""

    def test_bigbird_dfss_parity_with_dense_path(self):
        q1, k1, v1 = _tensors(seed=40)
        q2, k2, v2 = _tensors(seed=40)
        sparse = make_core("bigbird_dfss", seq_len_hint=32, block_size=8)
        dense = make_core("bigbird_dfss", seq_len_hint=32, block_size=8, path="dense")
        assert isinstance(sparse, BigBirdDfssCore)
        out_s = sparse(q1, k1, v1)
        out_d = dense(q2, k2, v2)
        np.testing.assert_allclose(out_s.data, out_d.data, atol=1e-6)
        (out_s * out_s).sum().backward()
        (out_d * out_d).sum().backward()
        for a, b in ((q1, q2), (k1, k2), (v1, v2)):
            np.testing.assert_allclose(a.grad, b.grad, rtol=1e-5, atol=1e-6)

    def test_bigbird_dfss_mask_respects_block_mask(self):
        q, k, v = _tensors(seed=41)
        core = make_core("bigbird_dfss", seq_len_hint=32, block_size=8,
                         num_random_blocks=0)
        core(q, k, v)
        allowed = core.block_mask.dense_mask(32, 32)
        mask = core.last_mask()
        assert not mask[..., ~allowed].any()

    def test_linformer_dfss_trains_and_matches_dense_path(self):
        # the projection is random-normal, so the N:M scores are not
        # tie-exact: the sparse op's tf32-emulated SDDMM rounds differently
        # from the dense path's fp32 matmul (~1e-4 relative), hence the
        # looser tolerances — a wrong mask or misrouted gradient would show
        # up as O(1) differences
        q1, k1, v1 = _tensors(seed=42)
        q2, k2, v2 = _tensors(seed=42)
        sparse = make_core("linformer_dfss", seq_len_hint=32, proj_dim=16)
        dense = make_core("linformer_dfss", seq_len_hint=32, proj_dim=16, path="dense")
        assert isinstance(sparse, LinformerDfssCore)
        out_s = sparse(q1, k1, v1)
        out_d = dense(q2, k2, v2)
        np.testing.assert_allclose(out_s.data, out_d.data, atol=5e-3)
        (out_s * out_s).sum().backward()
        (out_d * out_d).sum().backward()
        for a, b in ((q1, q2), (k1, k2), (v1, v2)):
            np.testing.assert_allclose(a.grad, b.grad, atol=2e-2)

    def test_linformer_dfss_projection_rounds_to_pattern_groups(self):
        core = LinformerDfssCore(proj_dim=15, pattern="2:4")
        proj = core._projection(32)
        assert proj.shape[0] % 4 == 0

    def test_combo_cores_are_trainable_in_registry(self):
        trainable = available_mechanisms(trainable=True)
        assert "bigbird_dfss" in trainable and "linformer_dfss" in trainable
