"""Tests for the transformer models, heads and the training loop."""

import numpy as np
import pytest

from repro.data.mlm import IGNORE_INDEX, SynthMLMConfig, generate_mlm_dataset
from repro.data.qa import SynthQAConfig, generate_qa_dataset
from repro.nn.trainer import (
    Trainer,
    evaluate_classification,
    evaluate_mlm,
    evaluate_span_qa,
    exact_match,
    iterate_minibatches,
    run_seeded_trials,
    span_f1,
)
from repro.nn.transformer import (
    DualSequenceClassifier,
    MaskedLanguageModel,
    SequenceClassifier,
    SpanQAModel,
    TransformerEncoder,
    sinusoidal_positions,
)


def _tiny_encoder(vocab=24, seq=16, mechanism="full", seed=0):
    return TransformerEncoder(
        vocab_size=vocab, max_len=seq, model_dim=16, num_heads=2, num_layers=1,
        ffn_dim=32, mechanism=mechanism, seed=seed,
    )


class TestEncoder:
    def test_positions_shape_and_range(self):
        table = sinusoidal_positions(32, 16)
        assert table.shape == (32, 16)
        assert np.abs(table).max() <= 1.0 + 1e-6

    def test_forward_shape(self):
        enc = _tiny_encoder()
        ids = np.random.default_rng(0).integers(0, 24, size=(2, 16))
        out = enc(ids)
        assert out.shape == (2, 16, 16)

    def test_rejects_bad_inputs(self):
        enc = _tiny_encoder()
        with pytest.raises(ValueError):
            enc(np.zeros((2, 32), dtype=np.int64))  # longer than max_len
        with pytest.raises(ValueError):
            enc(np.zeros(16, dtype=np.int64))  # not 2-D

    def test_set_mechanism_propagates_to_all_layers(self):
        enc = TransformerEncoder(24, 16, model_dim=16, num_heads=2, num_layers=3,
                                 ffn_dim=32, mechanism="full", seed=0)
        enc.set_mechanism("dfss", pattern="2:4")
        assert all(l.attention.mechanism == "dfss" for l in enc.layers)
        assert enc.mechanism == "dfss"

    def test_attention_weight_matrices(self):
        enc = _tiny_encoder(mechanism="dfss_2:4")
        ids = np.random.default_rng(1).integers(0, 24, size=(2, 16))
        maps = enc.attention_weight_matrices(ids)
        assert len(maps) == 1
        assert maps[0].shape == (2, 2, 16, 16)
        np.testing.assert_allclose(maps[0].sum(-1), 1.0, atol=1e-4)
        # DFSS maps have at most 50% nonzeros
        assert (maps[0] > 1e-9).mean() <= 0.5 + 1e-6

    def test_state_dict_roundtrip(self):
        enc1 = _tiny_encoder(seed=0)
        enc2 = _tiny_encoder(seed=99)
        enc2.load_state_dict(enc1.state_dict())
        ids = np.random.default_rng(2).integers(0, 24, size=(1, 16))
        np.testing.assert_allclose(enc1(ids).data, enc2(ids).data, atol=1e-6)


class TestHeads:
    def test_sequence_classifier(self):
        model = SequenceClassifier(_tiny_encoder(), num_classes=3, seed=0)
        ids = np.random.default_rng(0).integers(0, 24, size=(4, 16))
        labels = np.array([0, 1, 2, 1])
        logits = model(ids)
        assert logits.shape == (4, 3)
        loss = model.loss(ids, labels)
        loss.backward()
        assert np.isfinite(loss.item())
        assert model.predict(ids).shape == (4,)

    def test_dual_classifier(self):
        model = DualSequenceClassifier(_tiny_encoder(), num_classes=2, seed=0)
        pairs = np.random.default_rng(1).integers(0, 24, size=(3, 2, 16))
        labels = np.array([0, 1, 0])
        assert model(pairs).shape == (3, 2)
        assert np.isfinite(model.loss(pairs, labels).item())
        with pytest.raises(ValueError):
            model(np.zeros((3, 16), dtype=np.int64))

    def test_span_qa_model(self):
        model = SpanQAModel(_tiny_encoder(), seed=0)
        ids = np.random.default_rng(2).integers(0, 24, size=(3, 16))
        spans = np.array([[2, 4], [5, 7], [0, 1]])
        start, end = model(ids)
        assert start.shape == (3, 16) and end.shape == (3, 16)
        assert np.isfinite(model.loss(ids, spans).item())
        preds = model.predict(ids)
        assert preds.shape == (3, 2)
        assert np.all(preds[:, 1] >= preds[:, 0])  # valid spans

    def test_mlm_model(self):
        model = MaskedLanguageModel(_tiny_encoder(), seed=0)
        tokens, targets = generate_mlm_dataset(
            SynthMLMConfig(num_examples=4, seq_len=16, vocab_size=24), seed=0
        )
        logits = model(tokens)
        assert logits.shape == (4, 16, 24)
        assert np.isfinite(model.loss(tokens, targets, ignore_index=IGNORE_INDEX).item())


class TestTrainerAndMetrics:
    def test_minibatch_iteration_covers_everything(self):
        x = np.arange(10)[:, None]
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_minibatches(x, y, 3, rng=np.random.default_rng(0)):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_span_f1_and_exact_match(self):
        preds = np.array([[2, 4], [5, 6]])
        golds = np.array([[2, 4], [7, 8]])
        assert span_f1(preds, golds) == pytest.approx(0.5)
        assert exact_match(preds, golds) == pytest.approx(0.5)
        assert span_f1(np.array([[1, 3]]), np.array([[2, 4]])) == pytest.approx(2 / 3, abs=1e-6)

    def test_trainer_reduces_loss_on_separable_task(self):
        rng = np.random.default_rng(0)
        x0 = rng.integers(0, 12, size=(24, 16))
        x1 = rng.integers(12, 24, size=(24, 16))
        x = np.concatenate([x0, x1])
        y = np.array([0] * 24 + [1] * 24)
        model = SequenceClassifier(_tiny_encoder(mechanism="dfss_2:4"), num_classes=2, seed=0)
        trainer = Trainer(model, lr=3e-3, batch_size=16, seed=0)
        result = trainer.train_steps(x, y, max_steps=30)
        assert result.steps == 30
        assert result.losses[-1] < result.losses[0]
        assert evaluate_classification(model, x, y) > 0.9

    def test_evaluate_span_qa_and_mlm(self):
        cfg = SynthQAConfig(num_examples=8, seq_len=32, vocab_size=32)
        tokens, spans = generate_qa_dataset(cfg, seed=0)
        qa = SpanQAModel(_tiny_encoder(vocab=32, seq=32), seed=0)
        metrics = evaluate_span_qa(qa, tokens, spans)
        assert set(metrics) == {"f1", "exact_match"}
        assert 0.0 <= metrics["f1"] <= 1.0

        mlm_tokens, mlm_targets = generate_mlm_dataset(
            SynthMLMConfig(num_examples=6, seq_len=16, vocab_size=24), seed=0
        )
        mlm = MaskedLanguageModel(_tiny_encoder(), seed=0)
        metrics = evaluate_mlm(mlm, mlm_tokens, mlm_targets)
        assert metrics["perplexity"] >= 1.0

    def test_run_seeded_trials(self):
        stats = run_seeded_trials(lambda s: float(s % 3), seeds=[0, 1, 2, 3])
        assert stats["n"] == 4
        assert stats["mean"] == pytest.approx(np.mean([0, 1, 2, 0]))
        assert stats["ci95"] >= 0.0
