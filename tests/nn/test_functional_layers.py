"""Tests for functional ops, layers and optimisers."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn.autograd import Tensor
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Sequential
from repro.nn.optim import SGD, Adam, AdamW, WarmupInverseSquareRoot, clip_grad_norm


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 8)).astype(np.float32))
        w = F.softmax(x)
        np.testing.assert_allclose(w.data.sum(-1), 1.0, atol=1e-6)

    def test_masked_softmax_zeroes_masked(self):
        x = Tensor(np.zeros((2, 4), np.float32))
        mask = np.array([[True, True, False, False], [True, False, False, False]])
        w = F.masked_softmax(x, mask)
        assert np.all(w.data[~mask] < 1e-6)
        np.testing.assert_allclose(w.data.sum(-1), 1.0, atol=1e-5)

    def test_log_softmax_consistency(self):
        x = Tensor(np.random.default_rng(1).normal(size=(3, 5)).astype(np.float32))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data + 1e-12), atol=1e-5
        )

    def test_gelu_known_values(self):
        x = Tensor(np.array([0.0, 1.0, -1.0], dtype=np.float32))
        out = F.gelu(x).data
        np.testing.assert_allclose(out, [0.0, 0.8413447, -0.15865529], atol=1e-5)

    def test_layer_norm_statistics(self):
        x = Tensor(np.random.default_rng(2).normal(2.0, 3.0, size=(4, 16)).astype(np.float32))
        out = F.layer_norm(x, Tensor(np.ones(16)), Tensor(np.zeros(16)))
        np.testing.assert_allclose(out.data.mean(-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.data.std(-1), 1.0, atol=1e-2)

    def test_dropout_train_and_eval(self):
        rng = np.random.default_rng(3)
        x = Tensor(np.ones((100, 100), np.float32))
        dropped = F.dropout(x, 0.5, rng, training=True)
        assert 0.3 < (dropped.data == 0).mean() < 0.7
        same = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_array_equal(same.data, x.data)
        with pytest.raises(ValueError):
            F.dropout(x, 1.0, rng)

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0, -1.0], [0.0, 3.0, 0.0]], np.float32),
                        requires_grad=True)
        targets = np.array([0, 1])
        loss = F.cross_entropy(logits, targets)
        probs = np.exp(logits.data) / np.exp(logits.data).sum(-1, keepdims=True)
        expected = -np.log(probs[[0, 1], [0, 1]]).mean()
        assert loss.item() == pytest.approx(expected, abs=1e-5)
        loss.backward()
        assert logits.grad.shape == logits.shape

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.zeros((3, 4), np.float32), requires_grad=True)
        targets = np.array([1, -100, 2])
        loss = F.cross_entropy(logits, targets, ignore_index=-100)
        assert loss.item() == pytest.approx(np.log(4.0), abs=1e-5)

    def test_embedding_requires_integer_ids(self):
        with pytest.raises(TypeError):
            F.embedding(Tensor(np.zeros((4, 2))), np.array([0.5]))

    def test_accuracy_and_perplexity(self):
        assert F.accuracy(np.array([[1.0, 0.0], [0.0, 1.0]]), np.array([0, 1])) == 1.0
        assert F.perplexity_from_loss(0.0) == 1.0
        assert F.perplexity_from_loss(100.0) < np.inf


class TestLayers:
    def test_linear_shapes_and_grads(self):
        layer = Linear(8, 4, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 8)).astype(np.float32))
        out = layer(x)
        assert out.shape == (3, 4)
        out.sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None

    def test_linear_without_bias(self):
        layer = Linear(8, 4, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup_and_range_check(self):
        emb = Embedding(10, 4, seed=0)
        out = emb(np.array([[1, 2], [3, 9]]))
        assert out.shape == (2, 2, 4)
        with pytest.raises(ValueError):
            emb(np.array([[10]]))

    def test_layernorm_module(self):
        ln = LayerNorm(8)
        out = ln(Tensor(np.random.default_rng(1).normal(size=(2, 8)).astype(np.float32)))
        np.testing.assert_allclose(out.data.mean(-1), 0.0, atol=1e-5)

    def test_dropout_module_respects_eval(self):
        drop = Dropout(0.5, seed=0)
        x = Tensor(np.ones((50, 50), np.float32))
        drop.train()
        assert (drop(x).data == 0).any()
        drop.eval()
        np.testing.assert_array_equal(drop(x).data, x.data)
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_sequential(self):
        model = Sequential(Linear(4, 8, seed=0), Linear(8, 2, seed=1))
        out = model(Tensor(np.zeros((3, 4), np.float32)))
        assert out.shape == (3, 2)
        assert len(model.parameters()) == 4

    def test_module_named_parameters_and_state_dict(self):
        model = Sequential(Linear(4, 4, seed=0), LayerNorm(4))
        names = dict(model.named_parameters())
        assert "layer0.weight" in names and "layer1.bias" in names
        state = model.state_dict()
        model2 = Sequential(Linear(4, 4, seed=5), LayerNorm(4))
        model2.load_state_dict(state)
        np.testing.assert_array_equal(model2.state_dict()["layer0.weight"], state["layer0.weight"])

    def test_load_state_dict_validates(self):
        model = Sequential(Linear(4, 4, seed=0))
        with pytest.raises(ValueError):
            model.load_state_dict({"bogus": np.zeros(1)})


class TestOptim:
    def _quadratic_problem(self):
        w = Tensor(np.array([5.0, -3.0], np.float32), requires_grad=True)
        return w

    def test_sgd_converges_on_quadratic(self):
        w = self._quadratic_problem()
        opt = SGD([w], lr=0.1, momentum=0.9)
        for _ in range(200):
            loss = (w * w).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.abs(w.data).max() < 1e-2

    def test_adam_converges_on_quadratic(self):
        w = self._quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            loss = (w * w).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.abs(w.data).max() < 1e-2

    def test_adamw_decay_shrinks_weights(self):
        w = Tensor(np.ones(4, np.float32) * 2.0, requires_grad=True)
        opt = AdamW([w], lr=0.01, weight_decay=0.1)
        for _ in range(50):
            loss = (w * 0.0).sum()  # zero gradient; only decay acts
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.all(np.abs(w.data) < 2.0)

    def test_clip_grad_norm(self):
        w = Tensor(np.ones(4, np.float32), requires_grad=True)
        (w * 100.0).sum().backward()
        norm = clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-5)

    def test_optimizer_rejects_empty(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_warmup_schedule(self):
        w = Tensor(np.ones(1), requires_grad=True)
        opt = SGD([w], lr=1.0)
        sched = WarmupInverseSquareRoot(opt, base_lr=1.0, warmup_steps=10)
        lrs = [sched.step() for _ in range(30)]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[9] == pytest.approx(1.0)
        assert lrs[-1] < 1.0
