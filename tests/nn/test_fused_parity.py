"""Bitwise fused-vs-staged parity of the compiled AttentionPlan pipeline.

The fused plan calls the *same* registered kernel functions and the same
softmax core as the staged three-kernel path; it differs only in
pre-resolved dispatch and in-place buffer reuse — both bit-exact
transformations.  These tests hold that claim to ``assert_array_equal``
(not allclose) across every mechanism with a compressed execution path,
including ragged row lengths, fully-masked rows, dropout, precomputed
Top-K score buffers, and the fused backward.
"""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.core.plan import FUSED, STAGED, use_pipeline
from repro.nn.sparse_attention import dfss_sparse_attention, masked_sparse_attention
from repro.registry import available_mechanisms, find_spec, make_core

#: Every mechanism whose spec advertises a compressed execution path; the
#: fused plan must be invisible to all of them.
COMPRESSED_MECHANISMS = tuple(
    name for name in available_mechanisms() if find_spec(name).compressed
)


def _lattice(shape, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.integers(-2, 3, size=shape) / 2).astype(np.float32)


def _tensors(batch=(2,), seq=32, d=16, seed=0):
    shape = tuple(batch) + (seq, d)
    return tuple(
        Tensor(_lattice(shape, seed=seed + i), requires_grad=True) for i in range(3)
    )


def _run_core(mechanism, pipeline, seed=1):
    """One fwd+bwd pass of the mechanism's trainable core under ``pipeline``."""
    q, k, v = _tensors(seed=seed)
    try:
        core = make_core(mechanism, seq_len_hint=32, path="sparse")
    except TypeError:  # hybrid cores without a path switch are already sparse
        core = make_core(mechanism, seq_len_hint=32)
    with use_pipeline(pipeline):
        out = core(q, k, v)
        (out * out).sum().backward()
    return out.data, q.grad, k.grad, v.grad


class TestMechanismMatrix:
    def test_the_matrix_is_not_empty(self):
        assert {"dfss", "topk", "longformer", "bigbird"} <= set(
            COMPRESSED_MECHANISMS
        )

    @pytest.mark.parametrize("mechanism", COMPRESSED_MECHANISMS)
    def test_fused_bitwise_equals_staged(self, mechanism):
        staged = _run_core(mechanism, STAGED)
        fused = _run_core(mechanism, FUSED)
        for name, a, b in zip(("out", "dq", "dk", "dv"), staged, fused):
            assert a is not None and b is not None
            np.testing.assert_array_equal(a, b, err_msg=f"{mechanism}:{name}")


class TestRaggedAndFullyMaskedRows:
    @staticmethod
    def _ragged_mask(seq=24):
        # ragged band + global columns, with two fully-masked rows
        mask = np.triu(np.tril(np.ones((seq, seq), dtype=bool), 3), -6)
        mask[:, :2] = True
        mask[5] = False
        mask[17] = False
        return mask

    def _run(self, pipeline, dropout=0.0, seed=3):
        q, k, v = _tensors(batch=(2,), seq=24, d=16, seed=seed)
        kwargs = {}
        if dropout:
            kwargs = dict(
                dropout_p=dropout,
                dropout_rng=np.random.default_rng(123),
                training=True,
            )
        out, probs = masked_sparse_attention(
            q, k, v, self._ragged_mask(), pipeline=pipeline, **kwargs
        )
        (out * out).sum().backward()
        return (out.data, q.grad, k.grad, v.grad), probs

    def test_ragged_rows_bitwise(self):
        staged, _ = self._run(STAGED)
        fused, _ = self._run(FUSED)
        for a, b in zip(staged, fused):
            np.testing.assert_array_equal(a, b)

    def test_fully_masked_rows_get_exactly_zero_weight(self):
        (out, *_), probs = self._run(FUSED)
        dense = probs.to_dense(0.0)
        assert np.all(dense[:, 5] == 0.0) and np.all(dense[:, 17] == 0.0)
        assert np.all(out[:, 5] == 0.0) and np.all(out[:, 17] == 0.0)

    def test_dropout_bitwise_under_the_same_seed(self):
        staged, _ = self._run(STAGED, dropout=0.25)
        fused, _ = self._run(FUSED, dropout=0.25)
        for a, b in zip(staged, fused):
            np.testing.assert_array_equal(a, b)


class TestDfssDropoutParity:
    def _run(self, pipeline, seed=7):
        q, k, v = _tensors(seed=seed)
        out, _ = dfss_sparse_attention(
            q, k, v, pattern="2:4", pipeline=pipeline,
            dropout_p=0.25, dropout_rng=np.random.default_rng(99), training=True,
        )
        (out * out).sum().backward()
        return out.data, q.grad, k.grad, v.grad

    def test_nm_dropout_bitwise(self):
        for a, b in zip(self._run(STAGED), self._run(FUSED)):
            np.testing.assert_array_equal(a, b)


class TestPrescoredTopK:
    def test_topk_caller_score_buffer_survives_the_fused_softmax(self):
        # Top-K hands its precomputed compressed scores to the op; the fused
        # in-place softmax must copy (owned=False), never overwrite them
        from repro.core.sddmm import sddmm_csr
        from repro.core.padded_csr import PaddedCSRMatrix

        q, k, v = _tensors(batch=(), seq=16, d=16, seed=11)
        mask = np.triu(np.ones((16, 16), dtype=bool), -4)
        structure = PaddedCSRMatrix.from_mask(mask)
        scores = sddmm_csr(q.data, k.data, structure, scale=0.25)
        before = scores.values.copy()
        out, probs = masked_sparse_attention(
            q, k, v, structure, scale=0.25, scores=scores, pipeline=FUSED
        )
        np.testing.assert_array_equal(scores.values, before)
        staged_out, _ = masked_sparse_attention(
            Tensor(q.data), Tensor(k.data), Tensor(v.data),
            structure, scale=0.25, scores=scores, pipeline=STAGED,
        )
        np.testing.assert_array_equal(out.data, staged_out.data)


class TestFusedGradcheck:
    def test_finite_difference_gradcheck_on_the_fused_backward(self):
        # central differences are valid only where the perturbation does not
        # flip the N:M selection; boundary coordinates are skipped explicitly
        rng = np.random.default_rng(7)
        shape = (1, 1, 16, 8)
        arrays = [rng.normal(size=shape).astype(np.float32) for _ in range(3)]
        w = rng.normal(size=shape).astype(np.float32)

        def loss(qa, ka, va):
            q, k, v = (Tensor(a, requires_grad=True) for a in (qa, ka, va))
            out, probs = dfss_sparse_attention(q, k, v, pattern="2:4",
                                               pipeline=FUSED)
            val = (out * Tensor(w)).sum()
            val.backward()
            return float(val.data), (q.grad, k.grad, v.grad), probs.indices

        _, grads, base_idx = loss(*arrays)
        eps = 5e-3
        checked = 0
        for which in range(3):
            for index in [(0, 0, 3, 2), (0, 0, 11, 5), (0, 0, 7, 1)]:
                plus = [a.copy() for a in arrays]
                minus = [a.copy() for a in arrays]
                plus[which][index] += eps
                minus[which][index] -= eps
                val_p, _, idx_p = loss(*plus)
                val_m, _, idx_m = loss(*minus)
                if not (
                    np.array_equal(idx_p, base_idx)
                    and np.array_equal(idx_m, base_idx)
                ):
                    continue  # perturbation crossed a selection boundary
                fd = (val_p - val_m) / (2 * eps)
                assert grads[which][index] == pytest.approx(fd, rel=5e-2, abs=2e-3)
                checked += 1
        assert checked >= 5  # most coordinates must be checkable
