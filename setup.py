"""Setuptools shim so `pip install -e .` works without the `wheel` package installed.

All project metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (`--no-use-pep517`) on offline machines.
"""

from setuptools import setup

setup()
