"""Package metadata for the DFSS reproduction.

Kept in setup.py (rather than a ``[project]`` table) so the legacy editable
install path (``pip install -e . --no-use-pep517``) works on offline machines
without the ``wheel`` package; pyproject.toml carries the build-system
declaration and tool configuration.
"""

from setuptools import find_packages, setup

setup(
    name="dfss-repro",
    version="0.2.0",
    description=(
        "NumPy reproduction of DFSS: dynamic N:M fine-grained structured "
        "sparse attention (PPoPP'23), with reference and fast kernel backends"
    ),
    long_description=(
        "Algorithm-level reproduction of 'Dynamic N:M Fine-grained Structured "
        "Sparse Attention Mechanism' (conf_ppopp_ChenQQ0DX23): fused "
        "SDDMM + N:M pruning, sparse softmax, SpMM, baselines, an analytical "
        "GPU performance model, experiment and benchmark harnesses."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy>=1.22", "scipy>=1.9"],
    extras_require={
        "dev": [
            "pytest>=7",
            "hypothesis>=6",
            "ruff>=0.4",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3 :: Only",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
