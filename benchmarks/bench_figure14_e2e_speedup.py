"""Figure 14: end-to-end speedup grid (dtype x heads x hidden x sequence length)."""

from repro.experiments.registry import get_experiment


def test_bench_figure14_e2e_speedup(benchmark, bench_scale):
    exp = get_experiment("figure14")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    # paper band: 1.08x ~ 1.52x end-to-end speedup for DFSS
    assert 1.05 <= result["dfss_speedup_min"]
    assert result["dfss_speedup_max"] <= 1.6
    # DFSS delivers end-to-end speedup in *every* configuration (the paper's
    # "only method that delivers end-to-end speedup under all configurations")
    mech_index = result["headers"].index("dfss")
    assert all(row[mech_index] > 1.0 for row in result["rows"])
