"""Figure 5: attention latency breakdown across mechanisms, dtypes and sequence lengths."""

from repro.experiments.registry import get_experiment


def test_bench_figure5_latency(benchmark, bench_scale):
    exp = get_experiment("figure5")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    # headline claim: DFSS speedup lies in the paper's 1.27x ~ 1.89x band
    assert 1.25 <= result["dfss_speedup_min"] <= result["dfss_speedup_max"] <= 1.95
    # DFSS is the only mechanism with total < 1 at every sequence length
    totals = {}
    for dtype, n, mech, *_, total in result["rows"]:
        totals.setdefault(mech, []).append(total)
    consistent = [m for m, t in totals.items() if all(x < 1.0 for x in t)]
    assert consistent == ["dfss"]
