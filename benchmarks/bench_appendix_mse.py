"""Appendix A.5: MSE of the DFSS estimator vs Performer's positive softmax kernel."""

from repro.experiments.registry import get_experiment


def test_bench_appendix_mse(benchmark, bench_scale):
    exp = get_experiment("appendix_mse")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    rows = sorted(result["rows"], key=lambda r: r[0])  # sort by kernel value
    # on the largest kernel value in the sweep, DFSS has lower MSE than Performer
    largest = rows[-1]
    assert largest[2] <= largest[3] * 1.2
    # the theory curve confirms the Performer bound blows up for large SM values
    curve = result["curve"]
    assert curve["performer_bound"][-1] > curve["dfss"][-1]
