"""Tables 1-2: span-QA F1 before/after the attention swap (with / without finetuning)."""

from repro.experiments.registry import get_experiment


def test_bench_table1_2_qa(benchmark, bench_scale):
    exp = get_experiment("table2")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    dense = dict((row[0], row) for row in result["rows"])["Transformer (full)"]
    for label in ("Dfss 1:2", "Dfss 2:4"):
        row = dict((r[0], r) for r in result["rows"])[label]
        # reproduction target: DFSS stays close to dense F1 (paper: within ~1 sigma)
        assert row[2] >= dense[2] - 15.0, f"{label} lost too much F1 after finetuning"
