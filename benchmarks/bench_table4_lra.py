"""Table 4: LRA-style accuracy of the dense transformer, DFSS and baselines.

At the default (smoke) benchmark scale a representative subset of mechanisms
is trained; ``REPRO_SCALE=full`` trains the whole Table-4 roster.
"""


from repro.experiments.registry import get_experiment


def test_bench_table4_lra(benchmark, bench_scale):
    exp = get_experiment("table4")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    rows = {r[0]: r for r in result["rows"]}
    dense_avg = rows["Transformer (full)"][-1]
    dfss_avgs = [rows[label][-1] for label in ("Dfss 1:2", "Dfss 2:4")]
    # reproduction target: DFSS average accuracy is on par with the dense model
    # (paper: 51.41 / 51.67 vs 51.21); generous tolerance at synthetic scale.
    assert max(dfss_avgs) >= dense_avg - 12.0
