"""Figure 15: end-to-end latency breakdown (attention vs other components)."""

from repro.experiments.registry import get_experiment


def test_bench_figure15_e2e_breakdown(benchmark, bench_scale):
    exp = get_experiment("figure15")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    for row in result["rows"]:
        heads, hidden, n, dense_attn, dense_others, dfss_attn, dfss_others, speedup = row
        # the non-attention part is untouched by DFSS
        assert abs(dense_others - dfss_others) < 1e-9
        # Figure 15: at short/moderate lengths the "others" are a large share of
        # the latency (the paper quotes >70% at n<=1024 on hardware; the
        # memory-bound analytical model puts them >50% at 512, >30% at 1024)
        if n <= 512:
            assert dense_others > 0.5
        elif n <= 1024:
            assert dense_others > 0.3
        assert speedup > 1.0
