"""Table 6 (Appendix A.7): Nystromformer + DFSS accuracy after light finetuning."""

from repro.experiments.registry import get_experiment


def test_bench_table6_nystrom_dfss(benchmark, bench_scale):
    exp = get_experiment("table6")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    rows = {r[0]: r for r in result["rows"]}
    base = rows["Nystromformer"][1]
    combo_best = max(rows["Nystromformer + Dfss 1:2"][1], rows["Nystromformer + Dfss 2:4"][1])
    # reproduction target: the combination stays competitive with plain Nystromformer
    assert combo_best >= base - 15.0
