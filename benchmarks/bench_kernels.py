"""Microbenchmarks of the core DFSS kernels (SDDMM+prune, sparse softmax, SpMM).

These do not correspond to a single paper table; they time the NumPy
reference kernels so regressions in the algorithmic implementation are
caught, and they report the compressed-matrix footprint reduction (the
quantity behind the paper's memory claims).
"""

import numpy as np
import pytest

import repro
from repro.core.sddmm import sddmm_nm
from repro.core.softmax import sparse_softmax
from repro.core.spmm import spmm

SEQ_LEN = 256
HEAD_DIM = 64


@pytest.fixture(scope="module")
def qkv():
    rng = np.random.default_rng(0)
    shape = (4, SEQ_LEN, HEAD_DIM)
    return tuple(rng.normal(size=shape).astype(np.float32) for _ in range(3))


def test_bench_sddmm_nm(benchmark, qkv):
    q, k, _ = qkv
    sp = benchmark(lambda: sddmm_nm(q, k, pattern="2:4"))
    assert sp.values.shape == (4, SEQ_LEN, SEQ_LEN // 2)
    print(f"\ncompression ratio: {sp.compression_ratio():.2f}x")


def test_bench_sparse_softmax(benchmark, qkv):
    q, k, _ = qkv
    sp = sddmm_nm(q, k, pattern="2:4")
    out = benchmark(lambda: sparse_softmax(sp))
    np.testing.assert_allclose(out.values.sum(-1), 1.0, atol=1e-5)


def test_bench_spmm(benchmark, qkv):
    q, k, v = qkv
    weights = sparse_softmax(sddmm_nm(q, k, pattern="2:4"))
    out = benchmark(lambda: spmm(weights, v))
    assert out.shape == v.shape


def test_bench_full_attention_reference(benchmark, qkv):
    q, k, v = qkv
    out = benchmark(lambda: repro.attention(q, k, v, mechanism="full"))
    assert out.shape == v.shape


def test_bench_dfss_attention_pipeline(benchmark, qkv):
    q, k, v = qkv
    out = benchmark(lambda: repro.attention(q, k, v, mechanism="dfss_2:4"))
    assert out.shape == v.shape
