"""Figure 16: peak memory allocation normalised to the dense transformer."""

from repro.experiments.registry import get_experiment


def test_bench_figure16_memory(benchmark, bench_scale):
    exp = get_experiment("figure16")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    # paper band: 1.41x ~ 1.82x memory reduction; the analytical model lands
    # slightly wider because its non-attention activation set is approximate
    assert 1.25 <= result["dfss_memory_reduction_min"]
    assert result["dfss_memory_reduction_max"] <= 1.9
