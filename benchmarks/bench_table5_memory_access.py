"""Table 5 (Appendix): per-stage memory-access counts and the SDDMM traffic check."""

from repro.experiments.registry import get_experiment


def test_bench_table5_memory_access(benchmark, bench_scale):
    exp = get_experiment("table5")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    # the tiled kernel's write traffic must match the (1/2 + 1/16) n^2 model
    assert result["sddmm_write_relative_error"] < 0.02
