"""Table 3: masked-LM perplexity of full attention vs DFSS, with/without finetuning."""

from repro.experiments.registry import get_experiment


def test_bench_table3_mlm(benchmark, bench_scale):
    exp = get_experiment("table3")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    rows = {r[0]: r for r in result["rows"]}
    for corpus in ("wikitext2-like", "wikitext103-like"):
        dense = rows[f"Transformer (full) [{corpus}]"]
        for label in ("Dfss 1:2", "Dfss 2:4"):
            sparse = rows[f"{label} [{corpus}]"]
            # reproduction target: perplexity on par with the dense transformer
            assert sparse[1] <= dense[1] * 1.25, (corpus, label)
