"""Figure 13: Q_p (p=6.5) vs task accuracy across sparse patterns."""

from repro.experiments.registry import get_experiment


def test_bench_figure13_qp_vs_accuracy(benchmark, bench_scale):
    exp = get_experiment("figure13")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    rows = {r[0]: r for r in result["rows"]}
    # the dynamic patterns achieve high Q_p at 50% density
    assert rows["Dfss 1:2"][1] > rows["Fixed s=0.50"][1]
    assert rows["Dfss 2:4"][1] > rows["Fixed s=0.50"][1]
