"""Figure 11: theoretical vs modelled speedup of Top-K / fixed / 1:2 sparsity vs density."""

from repro.experiments.registry import get_experiment


def test_bench_figure11_speedup_density(benchmark, bench_scale):
    exp = get_experiment("figure11")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    # crossover densities quoted in the paper: ~0.02 for Top-K, ~0.63 for fixed
    assert 0.015 <= result["topk_crossover_density"] <= 0.025
    assert 0.60 <= result["fixed_crossover_density"] <= 0.66
    # where Top-K could in principle be competitive (low density), the modelled
    # speedup stays below the theoretical bound; at any practical density it
    # never reaches a speedup over full attention (Proposition 4.3's point)
    for row in result["rows"]:
        density, topk_theory, topk_model = row[0], row[1], row[2]
        if density <= 0.1:
            assert topk_model <= topk_theory * 1.05, density
        if density >= 0.05:
            assert topk_model < 1.0, density
