"""Figure 12: lottery-ticket quality Q_p vs density (theory and empirical)."""

from repro.experiments.registry import get_experiment


def test_bench_figure12_qp(benchmark, bench_scale):
    exp = get_experiment("figure12")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    for row in result["rows"]:
        p, density, theory_a, emp_a, theory_b, emp_b = row
        # Top-K rows: the oracle dominates the fixed pattern at the same density
        assert emp_a >= emp_b - 0.05, (p, density)
