"""Shared configuration for the benchmark harness.

Benchmarks default to the "smoke" experiment scale so the whole suite runs on
a CPU-only box in minutes; export ``REPRO_SCALE=default`` or ``full`` to run
the larger configurations the paper uses.  Each benchmark prints the
regenerated table so the numbers can be compared against EXPERIMENTS.md.
"""

import os

import pytest

#: Scales the harness understands, smallest first.
VALID_SCALES = ("smoke", "default", "full")


def resolve_bench_scale(raw=None):
    """Validate a ``REPRO_SCALE`` value, rejecting typos loudly.

    A typo like ``REPRO_SCALE=ful`` used to fall through and silently run
    whatever string it was set to; now it aborts collection with the list of
    valid scales.
    """
    if raw is None:
        raw = os.environ.get("REPRO_SCALE", "smoke")
    value = str(raw).strip().lower()
    if value not in VALID_SCALES:
        raise pytest.UsageError(
            f"invalid REPRO_SCALE={raw!r}: expected one of {'|'.join(VALID_SCALES)}"
        )
    return value


#: Scale used by the benchmark harness (overridable via the environment).
BENCH_SCALE = resolve_bench_scale()


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return BENCH_SCALE


def pytest_report_header(config):
    return f"repro benchmark scale: {BENCH_SCALE} (set REPRO_SCALE to change)"
