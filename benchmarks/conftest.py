"""Shared configuration for the benchmark harness.

Benchmarks default to the "smoke" experiment scale so the whole suite runs on
a CPU-only box in minutes; export ``REPRO_SCALE=default`` or ``full`` to run
the larger configurations the paper uses.  Each benchmark prints the
regenerated table so the numbers can be compared against EXPERIMENTS.md.
"""

import os

import pytest

#: Scale used by the benchmark harness (overridable via the environment).
BENCH_SCALE = os.environ.get("REPRO_SCALE", "smoke")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return BENCH_SCALE


def pytest_report_header(config):
    return f"repro benchmark scale: {BENCH_SCALE} (set REPRO_SCALE to change)"
