"""Ablation benches for the design choices called out in DESIGN.md.

* pruning criterion: raw value vs absolute magnitude;
* N:M ratio sweep beyond the hardware-supported 1:2 / 2:4;
* hybrid blocked-ELL + N:M vs pure N:M at long sequence length;
* where to prune (post-QKᵀ epilogue vs an oracle predictor before QKᵀ).
"""

import numpy as np

import repro
# criterion= is an ablation-only knob of the raw kernel pipeline, not a
# registry config field, so that one bench stays on the core API
from repro.core.attention import dfss_attention
from repro.core.blocked_ell import sliding_window_mask
from repro.core.lottery import qp_nm_monte_carlo
from repro.core.patterns import NMPattern
from repro.core.theory import speedup_dfss_exact, speedup_topk_exact
from repro.utils.seeding import new_rng


def _qkv(seq=256, d=64, seed=0):
    rng = new_rng(seed)
    q = rng.normal(size=(2, seq, d)).astype(np.float32)
    k = rng.normal(size=(2, seq, d)).astype(np.float32)
    v = rng.normal(size=(2, seq, d)).astype(np.float32)
    return q + 0.5 * k, k, v


def test_bench_ablation_pruning_criterion(benchmark):
    """Value-based selection (what the attention epilogue does) vs magnitude-based."""
    q, k, v = _qkv()
    ref = repro.attention(q, k, v, mechanism="full")

    def run():
        by_value = dfss_attention(q, k, v, pattern="2:4", criterion="value")
        by_magnitude = dfss_attention(q, k, v, pattern="2:4", criterion="magnitude")
        return by_value, by_magnitude

    by_value, by_magnitude = benchmark(run)
    err_value = np.linalg.norm(by_value - ref) / np.linalg.norm(ref)
    err_magnitude = np.linalg.norm(by_magnitude - ref) / np.linalg.norm(ref)
    print(f"\napprox error: value={err_value:.4f}  magnitude={err_magnitude:.4f}")
    # softmax is monotone in the score, so value-based selection is never worse
    assert err_value <= err_magnitude + 1e-6


def test_bench_ablation_nm_ratio_sweep(benchmark):
    """Q_p of N:M ratios beyond 1:2 / 2:4 (the paper leaves other ratios to future work)."""
    ratios = [NMPattern(1, 2), NMPattern(2, 4), NMPattern(4, 8), NMPattern(1, 4), NMPattern(2, 8)]

    def run():
        return {p.name: qp_nm_monte_carlo(p, p=2.0, rows=256, cols=512, seed=0) for p in ratios}

    quality = benchmark(run)
    print("\nQ_p(p=2) by ratio:", {k: round(v, 4) for k, v in quality.items()})
    # at equal density, larger M gives more freedom and hence better quality
    assert quality["2:4"] >= quality["1:2"]
    assert quality["4:8"] >= quality["2:4"]
    # lower density loses quality
    assert quality["1:4"] < quality["1:2"]


def test_bench_ablation_blocked_ell_hybrid(benchmark):
    """Hybrid blocked-ELL + N:M vs pure N:M at a longer sequence length."""
    q, k, v = _qkv(seq=512, d=64, seed=1)
    ref = repro.attention(q, k, v, mechanism="full")
    window = sliding_window_mask(512, block_size=128, window_blocks=1)

    def run():
        pure = repro.attention(q, k, v, mechanism="dfss_2:4")
        hybrid = repro.attention(
            q, k, v, mechanism="dfss_2:4", block_mask=window
        )
        return pure, hybrid

    pure, hybrid = benchmark(run)
    err_pure = np.linalg.norm(pure - ref) / np.linalg.norm(ref)
    err_hybrid = np.linalg.norm(hybrid - ref) / np.linalg.norm(ref)
    print(f"\napprox error: pure N:M={err_pure:.4f}  +blocked-ELL={err_hybrid:.4f}")
    # the hybrid keeps strictly less information, so its error is at least as large;
    # it buys asymptotic savings at long sequence length instead
    assert err_hybrid >= err_pure - 1e-6


def test_bench_ablation_prune_location(benchmark):
    """Pruning after QK^T (stage 1, ours) vs an oracle Top-K predictor before QK^T (stage 0).

    Stage-0 pruning would need the SDDMM to be profitable at very low density;
    the traffic model shows the required density (<2%) destroys the attention
    quality long before it reaches the DFSS speedup.
    """

    def run():
        rows = []
        for density in (0.02, 0.05, 0.5):
            rows.append((density, speedup_topk_exact(2048, density), speedup_dfss_exact(2048)))
        return rows

    rows = benchmark(run)
    print("\n(density, stage-0 top-k speedup, dfss speedup):", rows)
    # at the density where stage-0 pruning matches our speedup, the kept mass is tiny
    assert rows[0][1] >= rows[0][2] * 0.9      # 2% density roughly matches the speedup
    assert rows[-1][1] < 1.0                   # 50% density is slower than dense
