"""Figure 19: similarity of dense and DFSS attention-weight maps."""

from repro.experiments.registry import get_experiment


def test_bench_figure19_attention_maps(benchmark, bench_scale):
    exp = get_experiment("figure19")
    result = benchmark.pedantic(
        lambda: exp.run(scale=bench_scale, seed=0), rounds=1, iterations=1
    )
    print("\n" + exp.format_result(result))
    for pattern, cosine, kept_mass, upscale in result["rows"]:
        # the sparse maps keep the dominant structure of the dense maps...
        assert cosine > 0.7, pattern
        assert kept_mass > 0.5, pattern
        # ...and surviving weights are re-normalised upwards, as the paper notes
        assert upscale >= 1.0, pattern
