#!/usr/bin/env python3
"""CI perf gate: diff a fresh BENCH_kernels.json against the committed baseline.

Usage::

    python scripts/check_bench_regression.py BENCH_kernels.json \
        benchmarks/baseline_kernels.json

Exit status 0 means "ship it"; 1 means at least one check failed:

* **parity** — any ``fast`` row whose ``parity_max_rel_err`` exceeds the
  tolerance (the backends disagree numerically: a correctness bug, never
  noise);
* **coverage** — a (kernel, shape, backend) row present in the baseline is
  missing from the fresh run;
* **median slowdown** — a row's median runtime grew by more than the
  threshold (default 30%) relative to the baseline, after normalising out
  overall machine-speed differences (the geometric mean ratio across all
  ``reference`` rows), so a uniformly slower CI box does not trip the gate
  but a single regressed kernel does;
* **speedup regression** — a ``fast`` row's speedup over ``reference`` fell
  more than the threshold below its baseline value (this ratio is
  machine-independent, making it the strongest cross-machine signal);
* **e2e floor** — the end-to-end ``attention_e2e`` fast speedup dropped
  below the absolute floor (default 3x, the repo's acceptance criterion);
* **train floor** — the fwd+bwd ``attention_train_step`` fast speedup over
  the dense autograd reference path dropped below the absolute floor
  (default 2x, the sparse-training acceptance criterion);
* **train matrix floor** — an ``attention_train_matrix`` sparse row for a
  band-style mask mechanism (local, longformer) fell below the absolute
  floor (default 1x: the compressed padded-CSR path must never train slower
  than the dense masked autograd path on band masks);
* **serve throughput floor** — the ``serving_throughput`` batched speedup
  (batched requests/sec over sequential requests/sec on the synthetic mixed
  workload) dropped below the absolute floor (CLI default 1.5x, the serving
  acceptance criterion; ``check()`` defaults it off so baseline-only
  payloads stay valid);
* **softmax floor** — a fast ``masked_softmax`` / ``masked_softmax_csr`` row
  fell below the absolute floor over the streaming reference oracle (CLI
  default 1.0x: the batched softmax must never lose to the chunked loop it
  replaces; ``check()`` defaults it off);
* **fused floor** — an ``attention_fused`` / ``attention_fused_train``
  ``fused`` row fell below the absolute floor over its ``staged`` arm (CLI
  default 1.0x: the compiled plan must never lose to the three-kernel
  staged pipeline it fuses; ``check()`` defaults it off);
* **multicore floor** — an ``attention_multicore`` /
  ``attention_multicore_train`` ``multicore`` row fell below the absolute
  floor over its single-core ``fast`` arm (CLI default 1.0x; the nightly
  default-scale run raises it to the 1.3x acceptance criterion;
  ``check()`` defaults it off).  The floor only binds rows whose
  ``workers`` column reports a pool of >= 2 — a single-core host cannot
  demonstrate a parallel speedup, so its rows are skipped with a warning
  (bitwise parity still gates them unconditionally).

Kernels in ``EXACT_PARITY_KERNELS`` (serving coalescing and the fused plan)
are held to *bitwise* parity — their parity column must be exactly 0.0, not
merely under the tolerance — because their baselines are the same kernels on
the same inputs, so any difference is a semantics change, never rounding.

Fresh rows with no baseline counterpart — newly added kernels or mechanisms —
are *skipped with a warning* rather than failing (or KeyError-ing), so adding
a benchmark does not force a same-commit baseline refresh; the refreshed
baseline picks them up on the next update.

The gather-heavy padded-CSR reference loop oracles (see
``REGIME_SENSITIVE_ORACLES``) are exempt from the cross-run timing diffs:
their per-slice loops are dominated by the host scheduling/allocator regime
(~2x bimodal across processes on shared hosts).  Parity and the fast rows'
median diffs still gate those kernels.

The script is stdlib-only so it runs anywhere, including bare CI images.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Dict, List, Optional, Tuple

Key = Tuple[str, str, str]

#: Reference rows faster than this are dominated by timer noise and Python
#: overhead; they are exempt from the median-slowdown check (the speedup and
#: parity checks still cover them).
MIN_COMPARABLE_SECONDS = 1e-4


def load(path: str) -> Dict:
    with open(path) as fh:
        payload = json.load(fh)
    version = payload.get("schema_version")
    if version != 1:
        raise SystemExit(f"{path}: unsupported schema_version {version!r} (expected 1)")
    return payload


def index_rows(payload: Dict) -> Dict[Key, Dict]:
    rows = {}
    for row in payload.get("results", []):
        rows[(row["kernel"], row["shape"], row["backend"])] = row
    return rows


def machine_factor(fresh: Dict[Key, Dict], base: Dict[Key, Dict]) -> float:
    """Geometric-mean runtime ratio of shared reference rows (fresh / base)."""
    logs: List[float] = []
    for key, fresh_row in fresh.items():
        if key[2] != "reference" or key not in base:
            continue
        if key[0] in REGIME_SENSITIVE_ORACLES:
            continue
        fresh_med, base_med = fresh_row["median_s"], base[key]["median_s"]
        if fresh_med > 0 and base_med > 0:
            logs.append(math.log(fresh_med / base_med))
    return math.exp(sum(logs) / len(logs)) if logs else 1.0


#: Mechanisms whose ``attention_train_matrix`` sparse rows are held to the
#: absolute train-matrix floor (the band-style masks of the acceptance
#: criterion; data-dependent masks fluctuate around parity on CPU).
BAND_MASK_MECHANISMS = ("local", "longformer")

#: Kernels whose *reference* loop-oracle timings are dominated by the host
#: scheduling/allocator regime rather than the code: the gather-heavy
#: per-slice loops on the ragged padded-CSR layout show a stable-within-run
#: but bimodal-across-processes ~2x spread on shared hosts, which no
#: 30%-threshold diff can straddle.  Their reference rows are exempt from the
#: cross-run slowdown diff and the machine-factor estimate, and their fast
#: rows from the speedup-drop diff (the speedup denominates on the noisy
#: oracle).  Parity and the fast rows' own median slowdown diff still gate
#: them, so a real regression in the production path is still caught.
REGIME_SENSITIVE_ORACLES = ("sddmm_csr", "spmm_csr")

#: Kernels whose non-baseline arm must be *bitwise* identical to its baseline
#: arm: serving coalescing (batched vs sequential) and the compiled fused
#: plan (fused vs staged) run the same kernels on the same inputs, so any
#: nonzero parity is a semantics change rather than rounding noise.
EXACT_PARITY_KERNELS = {
    "serving_throughput": "serving requires exact bitwise parity",
    "attention_fused": "the fused plan must be bitwise-identical to staged",
    "attention_fused_train": "the fused plan must be bitwise-identical to staged",
    "attention_multicore": "the tiled plan must be bitwise-identical to fast",
    "attention_multicore_train": "the tiled plan must be bitwise-identical to fast",
}

#: Kernels whose speedup floor only binds when the row's ``workers`` column
#: reports a pool of at least two — a single-core CI host degenerates the
#: multicore backend to inline execution and cannot demonstrate a speedup.
MULTICORE_FLOOR_KERNELS = ("attention_multicore", "attention_multicore_train")


def check(
    fresh_payload: Dict,
    base_payload: Dict,
    threshold: float = 0.30,
    parity_tol: float = 1e-2,
    min_e2e_speedup: float = 3.0,
    min_train_speedup: float = 2.0,
    min_matrix_speedup: float = 1.0,
    min_serve_speedup: float = 0.0,
    min_softmax_speedup: float = 0.0,
    min_fused_speedup: float = 0.0,
    min_multicore_speedup: float = 0.0,
    warnings: Optional[List[str]] = None,
) -> Tuple[List[str], float]:
    """Return ``(failure messages, machine factor)``; no failures means pass.

    ``warnings`` (when given) collects non-fatal notes: fresh rows that have
    no baseline counterpart are skipped with a warning instead of failing,
    so newly added kernels don't require a same-commit baseline refresh.
    """
    fresh = index_rows(fresh_payload)
    base = index_rows(base_payload)
    factor = machine_factor(fresh, base)
    failures: List[str] = []

    for key in sorted(base):
        if key not in fresh:
            failures.append(f"coverage: baseline row {key} missing from fresh results")
    for key, row in sorted(fresh.items()):
        err = row.get("parity_max_rel_err")
        if key[0] in EXACT_PARITY_KERNELS:
            # these arms run the same kernels on the same inputs as their
            # baseline arm: parity is required to be exactly zero, not small
            if err is not None and err != 0.0:
                failures.append(
                    f"parity: {key} differs from its baseline arm by "
                    f"{err:.2e} ({EXACT_PARITY_KERNELS[key[0]]})"
                )
        elif err is not None and err > parity_tol:
            failures.append(
                f"parity: {key} disagrees with reference by {err:.2e} "
                f"(tolerance {parity_tol:.0e})"
            )
        base_row = base.get(key)
        if base_row is None:
            # a newly added kernel/mechanism: skip the diff checks (the
            # absolute floors below still apply) rather than KeyError or fail
            if warnings is not None:
                warnings.append(
                    f"new row {key} has no baseline entry; slowdown/speedup "
                    f"checks skipped — refresh the baseline to start gating it"
                )
            continue
        base_med = base_row["median_s"]
        regime_bound = (
            key[0] in REGIME_SENSITIVE_ORACLES and key[2] == "reference"
        )
        if base_med >= MIN_COMPARABLE_SECONDS and base_med > 0 and not regime_bound:
            slowdown = (row["median_s"] / base_med) / factor
            if slowdown > 1.0 + threshold:
                failures.append(
                    f"slowdown: {key} median {row['median_s'] * 1e3:.2f}ms is "
                    f"{(slowdown - 1.0) * 100:.0f}% slower than baseline "
                    f"{base_med * 1e3:.2f}ms (machine-normalised, "
                    f"threshold {threshold * 100:.0f}%)"
                )
        if key[2] != "reference" and key[0] not in REGIME_SENSITIVE_ORACLES:
            base_speedup = base_row.get("speedup", 0.0)
            if base_speedup and row["speedup"] < base_speedup * (1.0 - threshold):
                failures.append(
                    f"speedup: {key} fell to {row['speedup']:.2f}x from baseline "
                    f"{base_speedup:.2f}x (more than {threshold * 100:.0f}% drop)"
                )
    floors = (
        ("attention_e2e", "fast", min_e2e_speedup, "e2e floor"),
        ("attention_train_step", "fast", min_train_speedup, "train floor"),
        ("attention_train_matrix", "sparse", min_matrix_speedup,
         "train matrix floor"),
        ("serving_throughput", "batched", min_serve_speedup,
         "serve throughput floor"),
        ("masked_softmax", "fast", min_softmax_speedup, "softmax floor"),
        ("masked_softmax_csr", "fast", min_softmax_speedup, "softmax floor"),
        ("attention_fused", "fused", min_fused_speedup, "fused floor"),
        ("attention_fused_train", "fused", min_fused_speedup, "fused floor"),
        ("attention_multicore", "multicore", min_multicore_speedup,
         "multicore floor"),
        ("attention_multicore_train", "multicore", min_multicore_speedup,
         "multicore floor"),
    )
    for kernel_name, floor_backend, floor, label in floors:
        if floor <= 0:
            continue
        rows = [
            row for (kernel, _, backend), row in sorted(fresh.items())
            if kernel == kernel_name and backend == floor_backend
        ]
        if kernel_name == "attention_train_matrix":
            # the floor binds only the band-style masks of the acceptance
            # criterion; data-dependent masks hover around parity on CPU
            rows = [
                row for row in rows
                if row["shape"].split("/")[-1] in BAND_MASK_MECHANISMS
            ]
        if kernel_name in MULTICORE_FLOOR_KERNELS and rows:
            # the floor binds only rows that actually ran a parallel pool;
            # a workers<2 row (single-core host) is skipped with a warning —
            # its bitwise parity was still checked above
            capable = [
                row for row in rows
                if float(row.get("workers") or 0.0) >= 2.0
            ]
            if not capable:
                if warnings is not None:
                    warnings.append(
                        f"{label}: every {kernel_name} row ran with a "
                        f"single-worker pool (single-core host); the "
                        f"{floor:.1f}x speedup floor is not applicable"
                    )
                continue
            rows = capable
        for row in rows:
            if row["speedup"] < floor:
                failures.append(
                    f"{label}: {kernel_name} {floor_backend} speedup "
                    f"{row['speedup']:.2f}x on {row['shape']} is below the "
                    f"{floor:.1f}x acceptance floor"
                )
        if not rows:
            # a floor that cannot find its rows must fail loudly — a silent
            # pass here is exactly how a dropped benchmark ships a regression
            failures.append(
                f"{label}: no {kernel_name} {floor_backend} rows in fresh results"
            )
    return failures, factor


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly generated BENCH_kernels.json")
    parser.add_argument("baseline", help="committed benchmarks/baseline_kernels.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional slowdown / speedup drop (default 0.30)")
    parser.add_argument("--parity-tol", type=float, default=1e-2,
                        help="max relative Frobenius error between backends (default 1e-2)")
    parser.add_argument("--min-e2e-speedup", type=float, default=3.0,
                        help="absolute floor for the fast attention_e2e speedup "
                             "(0 disables; default 3.0)")
    parser.add_argument("--min-train-speedup", type=float, default=2.0,
                        help="absolute floor for the fast attention_train_step "
                             "speedup over the dense autograd reference path "
                             "(0 disables; default 2.0)")
    parser.add_argument("--min-matrix-speedup", type=float, default=1.0,
                        help="absolute floor for attention_train_matrix sparse "
                             "rows of band-style masks (local, longformer) over "
                             "the dense masked autograd path (0 disables; "
                             "default 1.0)")
    parser.add_argument("--min-serve-throughput", type=float, default=1.5,
                        help="absolute floor for the serving_throughput batched "
                             "requests/sec ratio over sequential serving "
                             "(0 disables; default 1.5)")
    parser.add_argument("--min-softmax-speedup", type=float, default=1.0,
                        help="absolute floor for the fast masked_softmax and "
                             "masked_softmax_csr speedups over the streaming "
                             "reference oracle (0 disables; default 1.0)")
    parser.add_argument("--min-fused-speedup", type=float, default=1.0,
                        help="absolute floor for the attention_fused and "
                             "attention_fused_train fused-over-staged speedups "
                             "(0 disables; default 1.0)")
    parser.add_argument("--min-multicore-speedup", type=float, default=1.0,
                        help="absolute floor for the attention_multicore and "
                             "attention_multicore_train multicore-over-fast "
                             "speedups; only binds rows whose workers column "
                             "reports a pool >= 2 (0 disables; default 1.0; "
                             "the nightly default-scale gate uses 1.3)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="on success, overwrite the baseline with the fresh results")
    args = parser.parse_args(argv)

    fresh_payload = load(args.fresh)
    base_payload = load(args.baseline)
    warnings: List[str] = []
    failures, factor = check(
        fresh_payload,
        base_payload,
        threshold=args.threshold,
        parity_tol=args.parity_tol,
        min_e2e_speedup=args.min_e2e_speedup,
        min_train_speedup=args.min_train_speedup,
        min_matrix_speedup=args.min_matrix_speedup,
        min_serve_speedup=args.min_serve_throughput,
        min_softmax_speedup=args.min_softmax_speedup,
        min_fused_speedup=args.min_fused_speedup,
        min_multicore_speedup=args.min_multicore_speedup,
        warnings=warnings,
    )
    print(f"perf gate: {len(fresh_payload.get('results', []))} fresh rows vs "
          f"{len(base_payload.get('results', []))} baseline rows "
          f"(machine factor {factor:.2f}x)")
    for message in warnings:
        print(f"  warning: {message}")
    if failures:
        print(f"\nFAIL — {len(failures)} check(s) failed:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("PASS — no perf regressions, parity intact")
    if args.update_baseline:
        with open(args.baseline, "w") as fh:
            json.dump(fresh_payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
