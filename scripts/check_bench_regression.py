#!/usr/bin/env python3
"""CI perf gate: diff a fresh BENCH_kernels.json against the committed baseline.

Usage::

    python scripts/check_bench_regression.py BENCH_kernels.json \
        benchmarks/baseline_kernels.json

Exit status 0 means "ship it"; 1 means at least one check failed:

* **parity** — any ``fast`` row whose ``parity_max_rel_err`` exceeds the
  tolerance (the backends disagree numerically: a correctness bug, never
  noise);
* **coverage** — a (kernel, shape, backend) row present in the baseline is
  missing from the fresh run;
* **median slowdown** — a row's median runtime grew by more than the
  threshold (default 30%) relative to the baseline, after normalising out
  overall machine-speed differences (the geometric mean ratio across all
  ``reference`` rows), so a uniformly slower CI box does not trip the gate
  but a single regressed kernel does;
* **speedup regression** — a ``fast`` row's speedup over ``reference`` fell
  more than the threshold below its baseline value (this ratio is
  machine-independent, making it the strongest cross-machine signal);
* **e2e floor** — the end-to-end ``attention_e2e`` fast speedup dropped
  below the absolute floor (default 3x, the repo's acceptance criterion);
* **train floor** — the fwd+bwd ``attention_train_step`` fast speedup over
  the dense autograd reference path dropped below the absolute floor
  (default 2x, the sparse-training acceptance criterion).

The script is stdlib-only so it runs anywhere, including bare CI images.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Dict, List, Tuple

Key = Tuple[str, str, str]

#: Reference rows faster than this are dominated by timer noise and Python
#: overhead; they are exempt from the median-slowdown check (the speedup and
#: parity checks still cover them).
MIN_COMPARABLE_SECONDS = 1e-4


def load(path: str) -> Dict:
    with open(path) as fh:
        payload = json.load(fh)
    version = payload.get("schema_version")
    if version != 1:
        raise SystemExit(f"{path}: unsupported schema_version {version!r} (expected 1)")
    return payload


def index_rows(payload: Dict) -> Dict[Key, Dict]:
    rows = {}
    for row in payload.get("results", []):
        rows[(row["kernel"], row["shape"], row["backend"])] = row
    return rows


def machine_factor(fresh: Dict[Key, Dict], base: Dict[Key, Dict]) -> float:
    """Geometric-mean runtime ratio of shared reference rows (fresh / base)."""
    logs: List[float] = []
    for key, fresh_row in fresh.items():
        if key[2] != "reference" or key not in base:
            continue
        fresh_med, base_med = fresh_row["median_s"], base[key]["median_s"]
        if fresh_med > 0 and base_med > 0:
            logs.append(math.log(fresh_med / base_med))
    return math.exp(sum(logs) / len(logs)) if logs else 1.0


def check(
    fresh_payload: Dict,
    base_payload: Dict,
    threshold: float = 0.30,
    parity_tol: float = 1e-2,
    min_e2e_speedup: float = 3.0,
    min_train_speedup: float = 2.0,
) -> Tuple[List[str], float]:
    """Return ``(failure messages, machine factor)``; no failures means pass."""
    fresh = index_rows(fresh_payload)
    base = index_rows(base_payload)
    factor = machine_factor(fresh, base)
    failures: List[str] = []

    for key in sorted(base):
        if key not in fresh:
            failures.append(f"coverage: baseline row {key} missing from fresh results")
    for key, row in sorted(fresh.items()):
        err = row.get("parity_max_rel_err")
        if err is not None and err > parity_tol:
            failures.append(
                f"parity: {key} disagrees with reference by {err:.2e} "
                f"(tolerance {parity_tol:.0e})"
            )
        base_row = base.get(key)
        if base_row is None:
            continue
        base_med = base_row["median_s"]
        if base_med >= MIN_COMPARABLE_SECONDS and base_med > 0:
            slowdown = (row["median_s"] / base_med) / factor
            if slowdown > 1.0 + threshold:
                failures.append(
                    f"slowdown: {key} median {row['median_s'] * 1e3:.2f}ms is "
                    f"{(slowdown - 1.0) * 100:.0f}% slower than baseline "
                    f"{base_med * 1e3:.2f}ms (machine-normalised, "
                    f"threshold {threshold * 100:.0f}%)"
                )
        if key[2] != "reference":
            base_speedup = base_row.get("speedup", 0.0)
            if base_speedup and row["speedup"] < base_speedup * (1.0 - threshold):
                failures.append(
                    f"speedup: {key} fell to {row['speedup']:.2f}x from baseline "
                    f"{base_speedup:.2f}x (more than {threshold * 100:.0f}% drop)"
                )
    floors = (
        ("attention_e2e", min_e2e_speedup, "e2e floor"),
        ("attention_train_step", min_train_speedup, "train floor"),
    )
    for kernel_name, floor, label in floors:
        if floor <= 0:
            continue
        rows = [
            row for (kernel, _, backend), row in sorted(fresh.items())
            if kernel == kernel_name and backend == "fast"
        ]
        for row in rows:
            if row["speedup"] < floor:
                failures.append(
                    f"{label}: {kernel_name} fast speedup {row['speedup']:.2f}x on "
                    f"{row['shape']} is below the {floor:.1f}x acceptance floor"
                )
        if not rows:
            failures.append(f"{label}: no {kernel_name} fast rows in fresh results")
    return failures, factor


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly generated BENCH_kernels.json")
    parser.add_argument("baseline", help="committed benchmarks/baseline_kernels.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional slowdown / speedup drop (default 0.30)")
    parser.add_argument("--parity-tol", type=float, default=1e-2,
                        help="max relative Frobenius error between backends (default 1e-2)")
    parser.add_argument("--min-e2e-speedup", type=float, default=3.0,
                        help="absolute floor for the fast attention_e2e speedup "
                             "(0 disables; default 3.0)")
    parser.add_argument("--min-train-speedup", type=float, default=2.0,
                        help="absolute floor for the fast attention_train_step "
                             "speedup over the dense autograd reference path "
                             "(0 disables; default 2.0)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="on success, overwrite the baseline with the fresh results")
    args = parser.parse_args(argv)

    fresh_payload = load(args.fresh)
    base_payload = load(args.baseline)
    failures, factor = check(
        fresh_payload,
        base_payload,
        threshold=args.threshold,
        parity_tol=args.parity_tol,
        min_e2e_speedup=args.min_e2e_speedup,
        min_train_speedup=args.min_train_speedup,
    )
    print(f"perf gate: {len(fresh_payload.get('results', []))} fresh rows vs "
          f"{len(base_payload.get('results', []))} baseline rows "
          f"(machine factor {factor:.2f}x)")
    if failures:
        print(f"\nFAIL — {len(failures)} check(s) failed:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("PASS — no perf regressions, parity intact")
    if args.update_baseline:
        with open(args.baseline, "w") as fh:
            json.dump(fresh_payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
