"""Shared helpers for the experiment harness: scales, model builders, caching."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.data.image import ImageClsConfig
from repro.data.listops import ListOpsConfig
from repro.data.mlm import SynthMLMConfig
from repro.data.qa import SynthQAConfig
from repro.data.retrieval import RetrievalConfig
from repro.data.textcls import TextClsConfig

#: Recognised experiment scales, smallest first.
SCALES = ("smoke", "default", "full")


def resolve_scale(scale: Optional[str] = None) -> str:
    """Pick the experiment scale: explicit argument, else $REPRO_SCALE, else default."""
    value = scale or os.environ.get("REPRO_SCALE", "default")
    value = value.lower()
    if value not in SCALES:
        raise ValueError(f"unknown scale {value!r}; expected one of {SCALES}")
    return value


@dataclass(frozen=True)
class ModelScale:
    """Transformer size and training length for one experiment scale."""

    model_dim: int
    num_heads: int
    num_layers: int
    ffn_dim: int
    train_steps: int
    finetune_steps: int
    batch_size: int
    lr: float = 3e-3


_MODEL_SCALES: Dict[str, ModelScale] = {
    "smoke": ModelScale(32, 2, 1, 64, 60, 15, 16),
    "default": ModelScale(64, 4, 2, 128, 220, 40, 16),
    "full": ModelScale(64, 4, 2, 256, 600, 120, 32, lr=2e-3),
}


def model_scale(scale: str) -> ModelScale:
    return _MODEL_SCALES[resolve_scale(scale)]


# ---------------------------------------------------------------- data scales
def qa_config(scale: str) -> SynthQAConfig:
    return {
        "smoke": SynthQAConfig(num_examples=128, seq_len=48, vocab_size=48),
        "default": SynthQAConfig(num_examples=256, seq_len=64, vocab_size=64),
        "full": SynthQAConfig(num_examples=768, seq_len=128, vocab_size=96),
    }[resolve_scale(scale)]


def mlm_config(scale: str) -> SynthMLMConfig:
    return {
        "smoke": SynthMLMConfig(num_examples=96, seq_len=48, vocab_size=48),
        "default": SynthMLMConfig(num_examples=160, seq_len=64, vocab_size=64),
        "full": SynthMLMConfig(num_examples=512, seq_len=128, vocab_size=96),
    }[resolve_scale(scale)]


def listops_config(scale: str) -> ListOpsConfig:
    return {
        "smoke": ListOpsConfig(num_examples=160, seq_len=48, max_depth=2),
        "default": ListOpsConfig(num_examples=256, seq_len=64, max_depth=2),
        "full": ListOpsConfig(num_examples=768, seq_len=128, max_depth=3),
    }[resolve_scale(scale)]


def textcls_config(scale: str) -> TextClsConfig:
    return {
        "smoke": TextClsConfig(num_examples=160, seq_len=48),
        "default": TextClsConfig(num_examples=256, seq_len=64),
        "full": TextClsConfig(num_examples=768, seq_len=128),
    }[resolve_scale(scale)]


def retrieval_config(scale: str) -> RetrievalConfig:
    return {
        "smoke": RetrievalConfig(num_examples=96, seq_len=48),
        "default": RetrievalConfig(num_examples=160, seq_len=64),
        "full": RetrievalConfig(num_examples=512, seq_len=128),
    }[resolve_scale(scale)]


def image_config(scale: str) -> ImageClsConfig:
    return {
        "smoke": ImageClsConfig(num_examples=160, image_size=8),
        "default": ImageClsConfig(num_examples=256, image_size=12),
        "full": ImageClsConfig(num_examples=768, image_size=16),
    }[resolve_scale(scale)]


# ------------------------------------------------------------- model builders
def build_encoder(vocab_size: int, max_len: int, scale: str, mechanism: str = "full",
                  seed: int = 0, **mechanism_kwargs):
    """Build a :class:`~repro.nn.transformer.TransformerEncoder` at an experiment scale."""
    from repro.nn.transformer import TransformerEncoder

    ms = model_scale(scale)
    return TransformerEncoder(
        vocab_size=vocab_size,
        max_len=max_len,
        model_dim=ms.model_dim,
        num_heads=ms.num_heads,
        num_layers=ms.num_layers,
        ffn_dim=ms.ffn_dim,
        mechanism=mechanism,
        seed=seed,
        **mechanism_kwargs,
    )
