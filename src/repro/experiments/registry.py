"""Registry mapping experiment ids to their run / format functions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    appendix_mse,
    figure5_latency,
    figure11_speedup_density,
    figure12_qp,
    figure13_qp_vs_accuracy,
    figure14_15_16_end_to_end as e2e,
    figure19_attention_maps,
    table1_2_qa,
    table3_mlm,
    table4_lra,
    table5_memory_access,
    table6_nystrom_dfss,
)


@dataclass(frozen=True)
class Experiment:
    """One reproducible table or figure."""

    key: str
    description: str
    run: Callable[..., Dict]
    format_result: Callable[[Dict], str]


EXPERIMENTS: Dict[str, Experiment] = {
    "table1": Experiment("table1", "SQuAD-style F1 without finetuning (subset of table2)",
                         table1_2_qa.run, table1_2_qa.format_result),
    "table2": Experiment("table2", "SQuAD-style F1 with and without finetuning",
                         table1_2_qa.run, table1_2_qa.format_result),
    "table3": Experiment("table3", "Masked-LM perplexity with and without finetuning",
                         table3_mlm.run, table3_mlm.format_result),
    "table4": Experiment("table4", "LRA-style accuracy across attention mechanisms",
                         table4_lra.run, table4_lra.format_result),
    "table5": Experiment("table5", "Per-stage memory-access counts (Appendix A.3)",
                         table5_memory_access.run, table5_memory_access.format_result),
    "table6": Experiment("table6", "Nystromformer + DFSS combination (Appendix A.7)",
                         table6_nystrom_dfss.run, table6_nystrom_dfss.format_result),
    "figure5": Experiment("figure5", "Attention latency breakdown across mechanisms",
                          figure5_latency.run, figure5_latency.format_result),
    "figure11": Experiment("figure11", "Speedup vs density: theory and model",
                           figure11_speedup_density.run, figure11_speedup_density.format_result),
    "figure12": Experiment("figure12", "Lottery-ticket quality Q_p vs density",
                           figure12_qp.run, figure12_qp.format_result),
    "figure13": Experiment("figure13", "Q_p vs accuracy across sparse patterns",
                           figure13_qp_vs_accuracy.run, figure13_qp_vs_accuracy.format_result),
    "figure14": Experiment("figure14", "End-to-end speedup grid",
                           e2e.run_figure14, e2e.format_figure14),
    "figure15": Experiment("figure15", "End-to-end latency breakdown",
                           e2e.run_figure15, e2e.format_figure15),
    "figure16": Experiment("figure16", "Peak memory normalised to dense",
                           e2e.run_figure16, e2e.format_figure16),
    "figure19": Experiment("figure19", "Dense vs DFSS attention-map comparison",
                           figure19_attention_maps.run, figure19_attention_maps.format_result),
    "appendix_mse": Experiment("appendix_mse", "DFSS vs Performer kernel MSE (Appendix A.5)",
                               appendix_mse.run, appendix_mse.format_result),
}


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS)


def table4_mechanisms() -> List[Dict]:
    """The Table-4 mechanism catalogue, resolved through the unified registry.

    Each entry carries the display label used by the ``table4`` experiment,
    the canonical :mod:`repro.registry` name it resolves to, the
    experiment-scale kwargs, and the spec's capability flags — the same specs
    ``repro.available_mechanisms()`` enumerates, so experiment naming cannot
    drift from the construction API.
    """
    from repro.registry import find_spec

    entries = []
    for label, (name, kwargs) in table4_lra.ALL_MECHANISMS.items():
        spec = find_spec(name)
        entries.append({
            "label": label,
            "mechanism": spec.name,
            "kwargs": dict(kwargs),
            **spec.capabilities(),
        })
    return entries


def get_experiment(key: str) -> Experiment:
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {key!r}; available: {list_experiments()}")
    return EXPERIMENTS[key]


def run_experiment(key: str, scale: Optional[str] = None, seed: int = 0, **kwargs) -> Dict:
    """Run one experiment and return its structured result."""
    return get_experiment(key).run(scale=scale, seed=seed, **kwargs)
