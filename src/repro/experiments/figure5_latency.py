"""Figure 5: attention latency breakdown of seven mechanisms, two dtypes, five lengths.

Rows report the per-stage latency (overhead / QKᵀ / softmax / AV) of each
mechanism normalised to the dense transformer at the same configuration —
the same series the paper plots.  Latencies come from the analytical A100
model in :mod:`repro.gpusim`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import resolve_scale
from repro.gpusim.attention_latency import AttentionConfig, latency_breakdown_table
from repro.registry import canonical_name
from repro.utils.formatting import format_table

#: Canonical registry names of the Figure-5 mechanisms (``full`` is the dense
#: transformer the other rows are normalised against).
MECHANISMS = tuple(
    canonical_name(m)
    for m in ("full", "dfss", "performer", "reformer", "routing", "sinkhorn", "nystromformer")
)
SEQ_LENS = (256, 512, 1024, 2048, 4096)
DTYPES = ("float32", "bfloat16")


def run(scale: Optional[str] = None, seed: int = 0,
        seq_lens=SEQ_LENS, dtypes=DTYPES, head_dim: int = 64, num_heads: int = 4) -> Dict:
    scale = resolve_scale(scale)
    rows: List[List] = []
    speedups = {}
    for dtype in dtypes:
        for n in seq_lens:
            cfg = AttentionConfig(seq_len=n, head_dim=head_dim, num_heads=num_heads, dtype=dtype)
            table = latency_breakdown_table(cfg, mechanisms=MECHANISMS)
            for mech in MECHANISMS:
                entry = table[mech]
                rows.append([
                    dtype, n, mech, entry["overhead"], entry["qk"],
                    entry["softmax"], entry["av"], entry["total"],
                ])
                if mech == "dfss":
                    speedups[(dtype, n)] = 1.0 / entry["total"]
    dfss_speedups = list(speedups.values())
    return {
        "experiment": "figure5",
        "scale": scale,
        "headers": ["dtype", "seq_len", "mechanism", "overhead", "QK^T", "softmax", "AV", "total"],
        "rows": rows,
        "dfss_speedup_min": min(dfss_speedups),
        "dfss_speedup_max": max(dfss_speedups),
    }


def format_result(result: Dict) -> str:
    table = format_table(result["headers"], result["rows"], digits=3,
                         title="Figure 5 (latency normalised to the dense transformer)")
    return table + (
        f"\nDFSS attention speedup range: {result['dfss_speedup_min']:.2f}x ~ "
        f"{result['dfss_speedup_max']:.2f}x (paper: 1.27x ~ 1.89x)"
    )
