"""Table 6 (Appendix A.7): combining DFSS with Nyströmformer on the Image task.

Paper setup: a Nyströmformer is pretrained from scratch on LRA Image, then
finetuned for 1/10 of the training steps under plain Nyströmformer and under
Nyströmformer + DFSS 1:2 / 2:4; the combination matches or improves accuracy.
Here the task is the synthetic pixel-sequence dataset and the models are the
small encoders of the harness, with the same pretrain -> light-finetune
protocol (finetune budget = 1/10 of pretraining, as in the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.data.image import generate_image_dataset
from repro.data.qa import train_test_split
from repro.experiments.common import build_encoder, image_config, model_scale, resolve_scale
from repro.nn.trainer import Trainer, evaluate_classification
from repro.nn.transformer import SequenceClassifier
from repro.utils.formatting import format_table

VARIANTS = (
    ("Nystromformer", "nystromformer", {"num_landmarks": 16}),
    ("Nystromformer + Dfss 1:2", "nystromformer_dfss", {"num_landmarks": 16, "dfss_pattern": "1:2"}),
    ("Nystromformer + Dfss 2:4", "nystromformer_dfss", {"num_landmarks": 16, "dfss_pattern": "2:4"}),
)


def run(scale: Optional[str] = None, seed: int = 0) -> Dict:
    scale = resolve_scale(scale)
    cfg = image_config(scale)
    ms = model_scale(scale)
    tokens, labels = generate_image_dataset(cfg, seed=seed)
    x_train, y_train, x_test, y_test = train_test_split(tokens, labels, seed=seed)

    # pretrain a standard Nystromformer from scratch
    encoder = build_encoder(cfg.vocab_size, cfg.seq_len, scale,
                            mechanism="nystromformer", seed=seed, num_landmarks=16)
    model = SequenceClassifier(encoder, num_classes=cfg.num_classes, seed=seed + 1)
    trainer = Trainer(model, lr=ms.lr, batch_size=ms.batch_size, seed=seed)
    trainer.train_steps(x_train, y_train, ms.train_steps)
    pretrain_acc = 100.0 * evaluate_classification(model, x_test, y_test)
    pretrained = model.state_dict()

    finetune_steps = max(1, ms.train_steps // 10)
    rows: List[List] = []
    for label, mechanism, kwargs in VARIANTS:
        model.load_state_dict(pretrained)
        model.encoder.set_mechanism(mechanism, **kwargs)
        trainer_ft = Trainer(model, lr=ms.lr / 3, batch_size=ms.batch_size, seed=seed + 7)
        trainer_ft.train_steps(x_train, y_train, finetune_steps)
        acc = 100.0 * evaluate_classification(model, x_test, y_test)
        rows.append([label, acc])

    return {
        "experiment": "table6",
        "scale": scale,
        "seed": seed,
        "pretraining_accuracy": pretrain_acc,
        "headers": ["model", "accuracy after finetuning"],
        "rows": rows,
    }


def format_result(result: Dict) -> str:
    table = format_table(result["headers"], result["rows"], digits=2,
                         title=f"Table 6 (Nystromformer + Dfss, scale={result['scale']})")
    return table + f"\nPretraining accuracy (Nystromformer): {result['pretraining_accuracy']:.2f}"
