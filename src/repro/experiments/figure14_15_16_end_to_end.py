"""Figures 14, 15 and 16: end-to-end speedup, latency breakdown and peak memory.

All three come from the transformer-layer performance model
(:mod:`repro.gpusim.end_to_end`, :mod:`repro.gpusim.memory`) over the grid of
Appendix A.6: dtype x heads {4, 8} x FFN hidden {256, 512, 1024} x sequence
length {512, 1024, 2048, 4096}.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import resolve_scale
from repro.gpusim.end_to_end import LayerConfig, end_to_end_breakdown, end_to_end_speedup
from repro.gpusim.memory import end_to_end_peak_memory
from repro.registry import canonical_name
from repro.utils.formatting import format_table

#: Canonical registry names of the Appendix-A.6 mechanisms.
MECHANISMS = tuple(
    canonical_name(m)
    for m in ("dfss", "performer", "reformer", "routing", "sinkhorn", "nystromformer")
)
SEQ_LENS = (512, 1024, 2048, 4096)
HEADS = (4, 8)
HIDDENS = (256, 512, 1024)
DTYPES = ("float32", "bfloat16")


def _grid(scale: str):
    if scale == "smoke":
        return ("bfloat16",), (4,), (256,), SEQ_LENS
    if scale == "default":
        return DTYPES, (4, 8), (256, 1024), SEQ_LENS
    return DTYPES, HEADS, HIDDENS, SEQ_LENS


def run_figure14(scale: Optional[str] = None, seed: int = 0) -> Dict:
    """End-to-end speedup of every mechanism over the dense transformer (Fig. 14)."""
    scale = resolve_scale(scale)
    dtypes, heads, hiddens, seq_lens = _grid(scale)
    rows: List[List] = []
    dfss_speedups = []
    for dtype in dtypes:
        for h in heads:
            for hidden in hiddens:
                for n in seq_lens:
                    cfg = LayerConfig(seq_len=n, num_heads=h, ffn_hidden=hidden, dtype=dtype)
                    row = [dtype, h, hidden, n]
                    for mech in MECHANISMS:
                        s = end_to_end_speedup(mech, cfg)
                        row.append(s)
                        if mech == "dfss":
                            dfss_speedups.append(s)
                    rows.append(row)
    return {
        "experiment": "figure14",
        "scale": scale,
        "headers": ["dtype", "heads", "hidden", "seq_len"] + list(MECHANISMS),
        "rows": rows,
        "dfss_speedup_min": min(dfss_speedups),
        "dfss_speedup_max": max(dfss_speedups),
    }


def run_figure15(scale: Optional[str] = None, seed: int = 0) -> Dict:
    """Attention-vs-others latency split of dense vs DFSS under bfloat16 (Fig. 15)."""
    scale = resolve_scale(scale)
    _, heads, hiddens, seq_lens = _grid(scale)
    rows: List[List] = []
    for h in heads:
        for hidden in hiddens:
            for n in seq_lens:
                cfg = LayerConfig(seq_len=n, num_heads=h, ffn_hidden=hidden, dtype="bfloat16")
                table = end_to_end_breakdown(cfg, mechanisms=("full", "dfss"))
                rows.append([
                    h, hidden, n,
                    table["full"]["attention"], table["full"]["others"],
                    table["dfss"]["attention"], table["dfss"]["others"],
                    table["dfss"]["speedup"],
                ])
    return {
        "experiment": "figure15",
        "scale": scale,
        "headers": ["heads", "hidden", "seq_len", "dense attn", "dense others",
                    "dfss attn", "dfss others", "dfss speedup"],
        "rows": rows,
    }


def run_figure16(scale: Optional[str] = None, seed: int = 0) -> Dict:
    """Peak activation memory normalised to the dense transformer (Fig. 16)."""
    scale = resolve_scale(scale)
    dtypes, heads, hiddens, seq_lens = _grid(scale)
    rows: List[List] = []
    dfss_reductions = []
    for dtype in dtypes:
        for h in heads:
            for hidden in hiddens:
                for n in seq_lens:
                    cfg = LayerConfig(seq_len=n, num_heads=h, ffn_hidden=hidden, dtype=dtype)
                    dense = end_to_end_peak_memory("full", cfg)
                    row = [dtype, h, hidden, n]
                    for mech in MECHANISMS:
                        frac = end_to_end_peak_memory(mech, cfg) / dense
                        row.append(frac)
                        if mech == "dfss":
                            dfss_reductions.append(1.0 / frac)
                    rows.append(row)
    return {
        "experiment": "figure16",
        "scale": scale,
        "headers": ["dtype", "heads", "hidden", "seq_len"] + list(MECHANISMS),
        "rows": rows,
        "dfss_memory_reduction_min": min(dfss_reductions),
        "dfss_memory_reduction_max": max(dfss_reductions),
    }


def format_figure14(result: Dict) -> str:
    table = format_table(result["headers"], result["rows"], digits=2,
                         title="Figure 14 (end-to-end speedup over the dense transformer)")
    return table + (
        f"\nDFSS end-to-end speedup range: {result['dfss_speedup_min']:.2f}x ~ "
        f"{result['dfss_speedup_max']:.2f}x (paper: 1.08x ~ 1.52x)"
    )


def format_figure15(result: Dict) -> str:
    return format_table(result["headers"], result["rows"], digits=3,
                        title="Figure 15 (latency breakdown normalised to dense, bfloat16)")


def format_figure16(result: Dict) -> str:
    table = format_table(result["headers"], result["rows"], digits=3,
                         title="Figure 16 (peak memory normalised to the dense transformer)")
    return table + (
        f"\nDFSS memory reduction range: {result['dfss_memory_reduction_min']:.2f}x ~ "
        f"{result['dfss_memory_reduction_max']:.2f}x (paper: 1.41x ~ 1.82x)"
    )
