"""Table 3: masked-LM perplexity with and without finetuning after the swap.

Paper setup: RoBERTa-large on Wikitext-2 / Wikitext-103; DFSS 1:2 / 2:4 reach
the same perplexity as the dense transformer, with or without finetuning.
Here the corpus is the synthetic Markov-chain MLM task; two corpus sizes
("wikitext2-like" and "wikitext103-like") mirror the two columns.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.data.mlm import IGNORE_INDEX, SynthMLMConfig, generate_mlm_dataset
from repro.experiments.common import build_encoder, mlm_config, model_scale, resolve_scale
from repro.nn.trainer import Trainer, evaluate_mlm
from repro.nn.transformer import MaskedLanguageModel
from repro.utils.formatting import format_table

VARIANTS = (
    ("Transformer (full)", "full", {}),
    ("Dfss 1:2", "dfss", {"pattern": "1:2"}),
    ("Dfss 2:4", "dfss", {"pattern": "2:4"}),
)


def _run_corpus(corpus_name: str, cfg: SynthMLMConfig, scale: str, seed: int):
    ms = model_scale(scale)
    tokens, targets = generate_mlm_dataset(cfg, seed=seed)
    split = int(0.75 * len(tokens))
    x_train, y_train = tokens[:split], targets[:split]
    x_test, y_test = tokens[split:], targets[split:]

    encoder = build_encoder(cfg.vocab_size, cfg.seq_len, scale, mechanism="full", seed=seed)
    model = MaskedLanguageModel(encoder, seed=seed + 1)
    trainer = Trainer(model, lr=ms.lr, batch_size=ms.batch_size, seed=seed)
    trainer.train_steps(x_train, y_train, ms.train_steps)
    pretrained = model.state_dict()

    rows = []
    for label, mechanism, kwargs in VARIANTS:
        model.load_state_dict(pretrained)
        model.encoder.set_mechanism(mechanism, **kwargs)
        no_ft = evaluate_mlm(model, x_test, y_test, ignore_index=IGNORE_INDEX)
        trainer_ft = Trainer(model, lr=ms.lr / 3, batch_size=ms.batch_size, seed=seed + 7)
        trainer_ft.train_steps(x_train, y_train, ms.finetune_steps)
        with_ft = evaluate_mlm(model, x_test, y_test, ignore_index=IGNORE_INDEX)
        rows.append([f"{label} [{corpus_name}]", no_ft["perplexity"], with_ft["perplexity"]])
    return rows


def run(scale: Optional[str] = None, seed: int = 0) -> Dict:
    """Reproduce Table 3 on the synthetic Markov MLM corpora."""
    scale = resolve_scale(scale)
    base = mlm_config(scale)
    corpora = {
        "wikitext2-like": base,
        "wikitext103-like": replace(base, num_examples=base.num_examples * 2),
    }
    rows: List[List] = []
    for name, cfg in corpora.items():
        rows.extend(_run_corpus(name, cfg, scale, seed))
    return {
        "experiment": "table3",
        "scale": scale,
        "seed": seed,
        "headers": ["model [corpus]", "ppl w/o finetune", "ppl w/ finetune"],
        "rows": rows,
    }


def format_result(result: Dict) -> str:
    return format_table(
        result["headers"],
        result["rows"],
        digits=3,
        title=f"Table 3 (synthetic masked LM, scale={result['scale']})",
    )
