"""Appendix A.5: MSE of the DFSS estimator vs Performer's positive softmax kernel.

Theory curves come from Eqs. (30)-(31); Monte-Carlo points verify the DFSS
closed form and show the Performer estimator degrading on large kernel values
(the "important edges"), which is the appendix's argument for why DFSS is the
better approximation of the entries that matter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.mse import (
    mse_comparison_curve,
    mse_dfss_monte_carlo,
    mse_dfss_theory,
    mse_performer_monte_carlo,
)
from repro.experiments.common import resolve_scale
from repro.utils.formatting import format_table
from repro.utils.seeding import new_rng


def run(scale: Optional[str] = None, seed: int = 0, d: int = 32, num_features: int = 128,
        num_pairs: int = 6) -> Dict:
    scale = resolve_scale(scale)
    trials = {"smoke": 2000, "default": 10000, "full": 50000}[scale]
    perf_trials = {"smoke": 20, "default": 60, "full": 200}[scale]
    rng = new_rng(seed)
    rows: List[List] = []
    for i in range(num_pairs):
        scale_qk = 0.3 + 0.25 * i  # sweep from small to large kernel values
        q = rng.normal(size=d) * scale_qk
        k = q * 0.7 + rng.normal(size=d) * 0.2  # correlated pair -> larger SM(q, k)
        dfss_mc, sm = mse_dfss_monte_carlo(q, k, trials=trials, seed=seed + i)
        dfss_th = mse_dfss_theory(sm, float(np.linalg.norm(q)), d)
        perf_mc, _ = mse_performer_monte_carlo(
            q, k, num_features=num_features, trials=perf_trials, seed=seed + i
        )
        rows.append([sm, dfss_th, dfss_mc, perf_mc])
    curve = mse_comparison_curve(d=d, num_features=num_features)
    return {
        "experiment": "appendix_mse",
        "scale": scale,
        "headers": ["SM(q,k)", "DFSS MSE (theory)", "DFSS MSE (MC)", "Performer MSE (MC)"],
        "rows": rows,
        "curve": curve,
    }


def format_result(result: Dict) -> str:
    return format_table(result["headers"], result["rows"], digits=4,
                        title="Appendix A.5 (MSE of kernel estimators vs kernel value)")
