"""Tables 1 and 2: span-QA F1 with and without finetuning after the attention swap.

Paper setup: BERT-large finetuned on SQuAD v1.1 under full attention, then
the attention mechanism is replaced by DFSS 1:2 (float) / 2:4 (bfloat16) with
and without additional finetuning; F1 stays within one standard deviation of
the dense model.  Here the pretrained model is a small encoder trained on the
synthetic span-QA task; the swap-and-(optionally)-finetune protocol is
identical.  The numpy substrate trains in float32, so the float/bfloat16
distinction of the paper maps onto the 1:2 / 2:4 pattern choice (the dtype
effect itself is exercised by the kernel-level tests in ``repro.core``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.data.qa import generate_qa_dataset, train_test_split
from repro.experiments.common import build_encoder, model_scale, qa_config, resolve_scale
from repro.nn.trainer import Trainer, evaluate_span_qa
from repro.nn.transformer import SpanQAModel
from repro.utils.formatting import format_table

#: The mechanism variants reported in Table 2 (name, mechanism, kwargs).
VARIANTS = (
    ("Transformer (full)", "full", {}),
    ("Dfss 1:2", "dfss", {"pattern": "1:2"}),
    ("Dfss 2:4", "dfss", {"pattern": "2:4"}),
)


def _pretrain(scale: str, seed: int):
    cfg = qa_config(scale)
    ms = model_scale(scale)
    tokens, spans = generate_qa_dataset(cfg, seed=seed)
    x_train, y_train, x_test, y_test = train_test_split(tokens, spans, seed=seed)
    encoder = build_encoder(cfg.vocab_size, cfg.seq_len, scale, mechanism="full", seed=seed)
    model = SpanQAModel(encoder, seed=seed + 1)
    trainer = Trainer(model, lr=ms.lr, batch_size=ms.batch_size, seed=seed)
    trainer.train_steps(x_train, y_train, ms.train_steps)
    return model, (x_train, y_train, x_test, y_test)


def run(scale: Optional[str] = None, seed: int = 0) -> Dict:
    """Reproduce Tables 1 and 2 on the synthetic QA task."""
    scale = resolve_scale(scale)
    ms = model_scale(scale)
    model, (x_train, y_train, x_test, y_test) = _pretrain(scale, seed)
    pretrained_state = model.state_dict()

    rows: List[List] = []
    for label, mechanism, kwargs in VARIANTS:
        # --- without finetuning: swap the mechanism on the pretrained weights
        model.load_state_dict(pretrained_state)
        model.encoder.set_mechanism(mechanism, **kwargs)
        no_ft = evaluate_span_qa(model, x_test, y_test)
        # --- with finetuning: a couple of epochs, as in the paper
        trainer = Trainer(model, lr=ms.lr / 3, batch_size=ms.batch_size, seed=seed + 7)
        trainer.train_steps(x_train, y_train, ms.finetune_steps)
        with_ft = evaluate_span_qa(model, x_test, y_test)
        rows.append([label, 100.0 * no_ft["f1"], 100.0 * with_ft["f1"]])

    dense_f1 = rows[0][1]
    return {
        "experiment": "table1_2",
        "scale": scale,
        "seed": seed,
        "headers": ["model", "F1 w/o finetune", "F1 w/ finetune"],
        "rows": rows,
        "dense_f1_no_finetune": dense_f1,
        "max_drop_no_finetune": max(dense_f1 - r[1] for r in rows[1:]),
    }


def format_result(result: Dict) -> str:
    return format_table(
        result["headers"],
        result["rows"],
        digits=2,
        title=f"Tables 1-2 (synthetic span-QA, scale={result['scale']})",
    )
