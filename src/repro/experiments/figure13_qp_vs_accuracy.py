"""Figure 13: Q_p (p≈6.5) vs task accuracy across sparse patterns.

The paper shows that when the Top-K and fixed-sparsity operating points are
ordered by Q_{p=6.5}, the SQuAD F1 scores fall on a monotonically increasing
curve, and the 1:2 / 2:4 points fall on the same curve — whereas the naive
Frobenius-retention metric cannot explain the ordering.  Here the accuracy is
span-F1 of a synthetic-QA model evaluated (without finetuning) under each
mask family, and both metrics are reported.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.lottery import (
    frobenius_retention,
    qp_empirical_from_scores,
)
from repro.data.qa import generate_qa_dataset, train_test_split
from repro.experiments.common import build_encoder, model_scale, qa_config, resolve_scale
from repro.nn.trainer import Trainer, evaluate_span_qa
from repro.nn.transformer import SpanQAModel
from repro.utils.formatting import format_table

#: Operating points: (label, mechanism, kwargs) — Top-K and fixed at several
#: densities plus the dynamic 1:2 / 2:4 patterns.
OPERATING_POINTS = (
    ("Top-K s=0.05", "topk", {"density": 0.05}),
    ("Top-K s=0.15", "topk", {"density": 0.15}),
    ("Top-K s=0.30", "topk", {"density": 0.30}),
    ("Fixed s=0.25", "fixed_truncated", {"density": 0.25}),
    ("Fixed s=0.50", "fixed_truncated", {"density": 0.50}),
    ("Fixed s=0.75", "fixed_truncated", {"density": 0.75}),
    ("Dfss 1:2", "dfss", {"pattern": "1:2"}),
    ("Dfss 2:4", "dfss", {"pattern": "2:4"}),
)

P_STAR = 6.5


def run(scale: Optional[str] = None, seed: int = 0) -> Dict:
    scale = resolve_scale(scale)
    cfg = qa_config(scale)
    ms = model_scale(scale)
    tokens, spans = generate_qa_dataset(cfg, seed=seed)
    x_train, y_train, x_test, y_test = train_test_split(tokens, spans, seed=seed)
    encoder = build_encoder(cfg.vocab_size, cfg.seq_len, scale, mechanism="full", seed=seed)
    model = SpanQAModel(encoder, seed=seed + 1)
    Trainer(model, lr=ms.lr, batch_size=ms.batch_size, seed=seed).train_steps(
        x_train, y_train, ms.train_steps
    )

    # score matrices of the trained dense model (first layer) for metric evaluation
    weights = encoder.attention_weight_matrices(x_test[:4])[0]
    scores = np.log(np.maximum(weights, 1e-9)).reshape(-1, weights.shape[-2], weights.shape[-1])

    from repro.core.lottery import fixed_mask, nm_mask, topk_mask

    rows: List[List] = []
    for label, mechanism, kwargs in OPERATING_POINTS:
        if mechanism == "topk":
            mask = topk_mask(scores, kwargs["density"])
        elif mechanism == "fixed_truncated":
            mask = fixed_mask(scores.shape, kwargs["density"])
        else:
            mask = nm_mask(scores, kwargs["pattern"])
        qp = qp_empirical_from_scores(scores, mask, P_STAR)
        softmax_weights = np.exp(scores - scores.max(-1, keepdims=True))
        softmax_weights /= softmax_weights.sum(-1, keepdims=True)
        frob = frobenius_retention(softmax_weights, mask)
        encoder.set_mechanism(mechanism, **kwargs)
        f1 = 100.0 * evaluate_span_qa(model, x_test, y_test)["f1"]
        rows.append([label, qp, 1.0 - frob, f1])
        encoder.set_mechanism("full")

    # Spearman-style monotonicity between Q_p and F1
    qps = np.array([r[1] for r in rows])
    f1s = np.array([r[3] for r in rows])
    order = np.argsort(qps)
    rank_corr = float(np.corrcoef(np.argsort(np.argsort(qps)), np.argsort(np.argsort(f1s)))[0, 1])
    return {
        "experiment": "figure13",
        "scale": scale,
        "headers": ["pattern", f"Q_p (p={P_STAR})", "1 - Frobenius loss", "F1 (no finetune)"],
        "rows": rows,
        "rank_correlation_qp_f1": rank_corr,
    }


def format_result(result: Dict) -> str:
    table = format_table(result["headers"], result["rows"], digits=3,
                         title="Figure 13 (Q_p vs accuracy across sparse patterns)")
    return table + f"\nRank correlation(Q_p, F1) = {result['rank_correlation_qp_f1']:.3f}"
