"""Experiment harness: one module per table / figure of the paper.

Every experiment exposes a ``run(scale=..., seed=...)`` function returning a
dictionary with a ``rows`` list (the same rows/series the paper reports) plus
whatever intermediate data is useful, and a ``format_result(result)`` helper
that renders the table as text.  :mod:`repro.experiments.registry` maps
experiment ids ("table1", "figure5", ...) to these functions so the benchmark
harness and the command line runner share one entry point.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "list_experiments", "run_experiment"]
