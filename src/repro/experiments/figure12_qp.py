"""Figure 12: lottery-ticket quality Q_p vs density for Top-K / fixed / 1:2 / 2:4.

Solid lines in the paper are the closed forms of Proposition 4.2; box plots
are empirical values over BERT-large attention matrices on SQuAD.  Here the
empirical values are computed over the attention score matrices of a small
encoder trained on the synthetic QA task (or, at smoke scale, over Gaussian
scores, which is the proposition's own modelling assumption).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.lottery import (
    fixed_mask,
    nm_mask,
    qp_1_2_theory,
    qp_empirical_from_scores,
    qp_fixed_theory,
    qp_topk_theory,
    topk_mask,
)
from repro.experiments.common import build_encoder, model_scale, qa_config, resolve_scale
from repro.utils.formatting import format_table
from repro.utils.seeding import new_rng

P_VALUES = (1.0, 2.0, 3.0, 7.0)
DENSITIES = (0.02, 0.1, 0.2, 0.3, 0.5)


def _score_matrices(scale: str, seed: int) -> np.ndarray:
    """Attention score matrices used for the empirical box values."""
    rng = new_rng(seed)
    if resolve_scale(scale) == "smoke":
        return rng.normal(size=(8, 128, 128)).astype(np.float32)
    from repro.data.qa import generate_qa_dataset
    from repro.nn.trainer import Trainer
    from repro.nn.transformer import SpanQAModel

    cfg = qa_config(scale)
    ms = model_scale(scale)
    tokens, spans = generate_qa_dataset(cfg, seed=seed)
    encoder = build_encoder(cfg.vocab_size, cfg.seq_len, scale, mechanism="full", seed=seed)
    model = SpanQAModel(encoder, seed=seed + 1)
    Trainer(model, lr=ms.lr, batch_size=ms.batch_size, seed=seed).train_steps(
        tokens, spans, max_steps=ms.train_steps // 2
    )
    weights = encoder.attention_weight_matrices(tokens[:4])[0]  # first layer
    # convert the weight matrices back to "score-like" quantities via log
    return np.log(np.maximum(weights, 1e-9)).reshape(-1, weights.shape[-2], weights.shape[-1])


def run(scale: Optional[str] = None, seed: int = 0) -> Dict:
    scale = resolve_scale(scale)
    scores = _score_matrices(scale, seed)
    rows: List[List] = []
    for p in P_VALUES:
        for s in DENSITIES:
            emp_topk = qp_empirical_from_scores(scores, topk_mask(scores, s), p)
            emp_fixed = qp_empirical_from_scores(scores, fixed_mask(scores.shape, s), p)
            rows.append([
                p, s,
                qp_topk_theory(s, p), emp_topk,
                qp_fixed_theory(s), emp_fixed,
            ])
        emp_12 = qp_empirical_from_scores(scores, nm_mask(scores, "1:2"), p)
        emp_24 = qp_empirical_from_scores(scores, nm_mask(scores, "2:4"), p)
        rows.append([p, 0.5, qp_1_2_theory(p), emp_12, qp_1_2_theory(p), emp_24])
    return {
        "experiment": "figure12",
        "scale": scale,
        "headers": ["p", "density", "theory A", "empirical A", "theory B", "empirical B"],
        "rows": rows,
        "note": "for each p the last row holds 1:2 (A) and 2:4 (B) at density 0.5",
    }


def format_result(result: Dict) -> str:
    return format_table(result["headers"], result["rows"], digits=4,
                        title="Figure 12 (Q_p vs density; A=Top-K rows, B=fixed rows, "
                              "last row per p = 1:2 / 2:4)")
