"""Table 5 (Appendix A.3): per-stage memory-access counts of the attention variants.

The analytical formulas of Table 5 are cross-checked against the operator
cost records used by the GPU performance model and, for the SDDMM, against
the byte counts measured by the tiled reference kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core import theory
from repro.core.sddmm import SddmmTraffic, sddmm_nm_tiled
from repro.experiments.common import resolve_scale
from repro.utils.formatting import format_table
from repro.utils.seeding import new_rng


def run(scale: Optional[str] = None, seed: int = 0, seq_lens=(256, 1024, 4096),
        d: int = 64, tile: int = 128, density: float = 0.05) -> Dict:
    """Tabulate the Table-5 formulas and validate the DFSS row against the kernel."""
    scale = resolve_scale(scale)
    rows: List[List] = []
    for n in seq_lens:
        full = theory.full_attention_traffic(n, d, tile)
        topk = theory.topk_attention_traffic(n, density, d, tile)
        fixed = theory.fixed_attention_traffic(n, 0.5, d, tile)
        dfss = theory.dfss_attention_traffic(n, d, tile)
        for name, tr in (
            ("Full Attention", full),
            (f"Explicit Top-k (s={density})", topk),
            ("Fixed (s=0.5)", fixed),
            ("Dfss 1:2 / 2:4", dfss),
        ):
            rows.append([n, name, tr.qk, tr.softmax, tr.av, tr.total,
                         full.total / tr.total])

    # empirical check: the tiled SDDMM's write traffic matches (1/2 + 1/16) n^2
    rng = new_rng(seed)
    n_check = 256 if scale != "smoke" else 128
    q = rng.normal(size=(n_check, d)).astype(np.float32)
    k = rng.normal(size=(n_check, d)).astype(np.float32)
    traffic = SddmmTraffic()
    sddmm_nm_tiled(q, k, pattern="1:2", traffic=traffic)
    expected_writes = (0.5 + 1.0 / 16.0) * n_check * n_check * 4
    return {
        "experiment": "table5",
        "scale": scale,
        "headers": ["n", "mechanism", "QK^T", "Softmax", "AV", "total", "speedup"],
        "rows": rows,
        "sddmm_write_bytes_measured": traffic.bytes_written,
        "sddmm_write_bytes_expected": expected_writes,
        "sddmm_write_relative_error": abs(traffic.bytes_written - expected_writes)
        / expected_writes,
    }


def format_result(result: Dict) -> str:
    table = format_table(result["headers"], result["rows"], digits=0,
                         title="Table 5 (memory accesses per stage, in elements)")
    check = (
        f"\nSDDMM epilogue write traffic: measured {result['sddmm_write_bytes_measured']:.0f} B, "
        f"expected {result['sddmm_write_bytes_expected']:.0f} B "
        f"(rel. err {result['sddmm_write_relative_error']:.2%})"
    )
    return table + check
