"""Figure 11: theoretical vs modelled speedup of Top-K / fixed / 1:2 sparsity vs density.

The "theory" series are the closed-form expressions of Eqs. (4)-(6); the
"measured" series come from the GPU performance model, standing in for the
paper's A100 measurements.  The qualitative reproduction targets are: Top-K
stays below its theoretical bound and only beats DFSS at densities below
~0.02; the fixed pattern crosses DFSS at density ~0.63; DFSS sits at ~1.5x
independent of density.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import theory
from repro.experiments.common import resolve_scale
from repro.gpusim.attention_latency import AttentionConfig, attention_speedup
from repro.utils.formatting import format_table

DENSITIES = (0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.63, 0.7)


def run(scale: Optional[str] = None, seed: int = 0, seq_len: int = 2048,
        densities=DENSITIES, d: int = 64, tile: int = 128) -> Dict:
    scale = resolve_scale(scale)
    cfg = AttentionConfig(seq_len=seq_len, head_dim=d, dtype="float32")
    dfss_model = attention_speedup("dfss", cfg)
    rows: List[List] = []
    for s in densities:
        rows.append([
            s,
            theory.speedup_topk_bound(s, d, tile),
            attention_speedup("topk", cfg, density=s),
            theory.speedup_fixed(s, d, tile),
            attention_speedup("fixed", cfg, density=s),
            theory.speedup_dfss(d, tile),
            dfss_model,
        ])
    return {
        "experiment": "figure11",
        "scale": scale,
        "headers": ["density", "topk theory", "topk model", "fixed theory",
                    "fixed model", "dfss theory", "dfss model"],
        "rows": rows,
        "topk_crossover_density": theory.topk_equal_efficiency_density(d, tile),
        "fixed_crossover_density": theory.fixed_equal_efficiency_density(d, tile),
    }


def format_result(result: Dict) -> str:
    table = format_table(result["headers"], result["rows"], digits=3,
                         title="Figure 11 (speedup over full attention vs density)")
    return table + (
        f"\nEfficiency-matched densities: Top-K ≈ {result['topk_crossover_density']:.3f} "
        f"(paper 0.02), fixed ≈ {result['fixed_crossover_density']:.3f} (paper 0.63)"
    )
