"""Table 4: Long-Range-Arena-style accuracy of many attention mechanisms.

Paper setup: 13 efficient transformers plus the dense baseline are trained
from scratch on ListOps, Text, Retrieval and Image; DFSS 1:2 / 2:4 match the
dense transformer while several baselines fall behind.  Here the four tasks
are the synthetic stand-ins of :mod:`repro.data` and the models are small
encoders; every Table-4 mechanism is available, but the default run trains a
representative subset to keep CPU time bounded (set ``mechanisms="all"`` or
``REPRO_SCALE=full`` for the whole table).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.data.image import generate_image_dataset
from repro.data.listops import generate_listops_dataset
from repro.data.qa import train_test_split
from repro.data.retrieval import generate_retrieval_dataset
from repro.data.textcls import generate_textcls_dataset
from repro.experiments.common import (
    build_encoder,
    image_config,
    listops_config,
    model_scale,
    resolve_scale,
    retrieval_config,
    textcls_config,
)
from repro.nn.trainer import Trainer, evaluate_classification
from repro.nn.transformer import DualSequenceClassifier, SequenceClassifier
from repro.registry import canonical_name, find_spec
from repro.utils.formatting import format_table

#: Table-4 rows as (canonical registry name, experiment-scale kwargs);
#: ordering follows Table 4.  Labels come from the registry specs, so the
#: table and :func:`repro.available_mechanisms` stay in sync by construction.
TABLE4_ROWS = (
    ("full", {}),
    ("local", {"window": 8}),
    ("sparse_transformer", {"window": 4, "stride": 16}),
    ("longformer", {"window": 8, "num_global": 2}),
    ("linformer", {"proj_dim": 32}),
    ("reformer", {"n_buckets": 8, "n_hashes": 2}),
    ("sinkhorn", {"block_size": 16}),
    ("synthesizer", {}),
    ("bigbird", {"block_size": 16}),
    ("linear_transformer", {}),
    ("performer", {"num_features": 64}),
    ("routing", {"n_clusters": 8}),
    ("nystromformer", {"num_landmarks": 16}),
    ("dfss", {"pattern": "1:2"}),
    ("dfss", {"pattern": "2:4"}),
)


def _row_label(name: str, kwargs: Dict) -> str:
    spec = find_spec(name)
    if spec.name == "dfss":
        return f"{spec.label} {kwargs['pattern']}"
    return spec.label


#: Mechanism label -> (mechanism name, kwargs), labels resolved from the specs.
ALL_MECHANISMS = {_row_label(name, kwargs): (name, kwargs) for name, kwargs in TABLE4_ROWS}


def resolve_mechanism_labels(mechanisms: Iterable[str]) -> List[str]:
    """Map user-supplied mechanism selectors to Table-4 row labels.

    Accepts the row labels themselves plus anything the unified registry
    resolves (canonical names, aliases, ``dfss_2:4`` shortcuts); raises
    ``ValueError`` for selectors that match no Table-4 row.
    """
    by_canonical: Dict[str, List[str]] = {}
    for label, (name, kwargs) in ALL_MECHANISMS.items():
        by_canonical.setdefault(name, []).append(label)
    resolved = []
    for selector in mechanisms:
        if selector in ALL_MECHANISMS:
            resolved.append(selector)
            continue
        try:
            canonical = canonical_name(selector)
        except ValueError:
            canonical = None
        if canonical == "dfss":
            # a pattern-suffixed selector addresses one row, bare "dfss" both
            suffix = str(selector).lower().replace("dfss", "").strip(" _-")
            labels = [
                label
                for label in by_canonical.get("dfss", [])
                if not suffix or label.lower().endswith(suffix)
            ]
        else:
            labels = by_canonical.get(canonical, [])
        if not labels:
            raise ValueError(
                f"unknown mechanism labels: [{selector!r}]; "
                f"expected Table-4 labels {list(ALL_MECHANISMS)} or registry names"
            )
        resolved.extend(labels)
    # overlapping selectors (e.g. "dfss" + "dfss_2:4") must not train a row twice
    return list(dict.fromkeys(resolved))

#: Subset used at smoke / default scale (dense, ours, and two contrasting baselines).
DEFAULT_SUBSET = (
    "Transformer (full)",
    "Local Attention",
    "Linformer",
    "Performer",
    "Dfss 1:2",
    "Dfss 2:4",
)

TASKS = ("listops", "text", "retrieval", "image")


def _task_data(task: str, scale: str, seed: int):
    if task == "listops":
        cfg = listops_config(scale)
        tokens, labels = generate_listops_dataset(cfg, seed=seed)
        return tokens, labels, 17, cfg.seq_len, 10, "single"
    if task == "text":
        cfg = textcls_config(scale)
        tokens, labels = generate_textcls_dataset(cfg, seed=seed)
        return tokens, labels, cfg.vocab_size, cfg.seq_len, cfg.num_classes, "single"
    if task == "retrieval":
        cfg = retrieval_config(scale)
        tokens, labels = generate_retrieval_dataset(cfg, seed=seed)
        return tokens, labels, cfg.vocab_size, cfg.seq_len, 2, "dual"
    if task == "image":
        cfg = image_config(scale)
        tokens, labels = generate_image_dataset(cfg, seed=seed)
        return tokens, labels, cfg.vocab_size, cfg.seq_len, cfg.num_classes, "single"
    raise ValueError(f"unknown task {task!r}")


def train_and_evaluate(
    task: str, mechanism: str, mechanism_kwargs: Dict, scale: str, seed: int
) -> float:
    """Train one model from scratch on one task and return test accuracy (%)."""
    tokens, labels, vocab, seq_len, num_classes, mode = _task_data(task, scale, seed)
    x_train, y_train, x_test, y_test = train_test_split(tokens, labels, seed=seed)
    ms = model_scale(scale)
    encoder = build_encoder(vocab, seq_len, scale, mechanism=mechanism, seed=seed, **mechanism_kwargs)
    if mode == "dual":
        model = DualSequenceClassifier(encoder, num_classes=num_classes, seed=seed + 1)
    else:
        model = SequenceClassifier(encoder, num_classes=num_classes, seed=seed + 1)
    trainer = Trainer(model, lr=ms.lr, batch_size=ms.batch_size, seed=seed)
    trainer.train_steps(x_train, y_train, ms.train_steps)
    return 100.0 * evaluate_classification(model, x_test, y_test)


def run(
    scale: Optional[str] = None,
    seed: int = 0,
    mechanisms: Optional[Iterable[str]] = None,
    tasks: Sequence[str] = TASKS,
) -> Dict:
    """Reproduce Table 4 on the synthetic LRA-style tasks."""
    scale = resolve_scale(scale)
    if mechanisms is None:
        labels = list(ALL_MECHANISMS) if scale == "full" else list(DEFAULT_SUBSET)
    elif mechanisms == "all" or mechanisms == ["all"]:
        labels = list(ALL_MECHANISMS)
    else:
        labels = resolve_mechanism_labels(mechanisms)

    rows: List[List] = []
    for label in labels:
        mech, kwargs = ALL_MECHANISMS[label]
        accs = [train_and_evaluate(t, mech, kwargs, scale, seed) for t in tasks]
        rows.append([label] + accs + [float(np.mean(accs))])
    return {
        "experiment": "table4",
        "scale": scale,
        "seed": seed,
        "tasks": list(tasks),
        "headers": ["model"] + [t.capitalize() for t in tasks] + ["Avg"],
        "rows": rows,
    }


def format_result(result: Dict) -> str:
    return format_table(
        result["headers"],
        result["rows"],
        digits=2,
        title=f"Table 4 (synthetic LRA-style tasks, scale={result['scale']})",
    )
