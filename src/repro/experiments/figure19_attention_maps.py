"""Figure 19: visualising dense vs DFSS attention-weight matrices.

The paper plots first-layer attention maps of BERT-large under dense, 1:2 and
2:4 attention and observes (a) the sparse maps have the same qualitative
pattern and (b) surviving weights are slightly larger because the softmax
re-normalises over fewer entries.  This experiment reproduces the comparison
quantitatively on the synthetic-QA model: cosine similarity between the dense
and DFSS maps, the fraction of dense attention mass kept, and the mean
up-scaling of surviving weights.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.lottery import nm_mask
from repro.core.softmax import masked_dense_softmax
from repro.data.qa import generate_qa_dataset, train_test_split
from repro.experiments.common import build_encoder, model_scale, qa_config, resolve_scale
from repro.nn.trainer import Trainer
from repro.nn.transformer import SpanQAModel
from repro.utils.formatting import format_table

PATTERNS = ("1:2", "2:4")


def run(scale: Optional[str] = None, seed: int = 0, num_inputs: int = 2) -> Dict:
    scale = resolve_scale(scale)
    cfg = qa_config(scale)
    ms = model_scale(scale)
    tokens, spans = generate_qa_dataset(cfg, seed=seed)
    x_train, y_train, x_test, _ = train_test_split(tokens, spans, seed=seed)
    encoder = build_encoder(cfg.vocab_size, cfg.seq_len, scale, mechanism="full", seed=seed)
    model = SpanQAModel(encoder, seed=seed + 1)
    Trainer(model, lr=ms.lr, batch_size=ms.batch_size, seed=seed).train_steps(
        x_train, y_train, ms.train_steps // 2
    )

    dense_maps = encoder.attention_weight_matrices(x_test[:num_inputs])[0]
    scores = np.log(np.maximum(dense_maps, 1e-9))

    rows: List[List] = []
    attention_maps = {"dense": dense_maps}
    for pattern in PATTERNS:
        mask = nm_mask(scores, pattern)
        sparse_maps = masked_dense_softmax(scores, mask)
        attention_maps[pattern] = sparse_maps
        flat_d = dense_maps.reshape(len(dense_maps), -1)
        flat_s = sparse_maps.reshape(len(sparse_maps), -1)
        cos = float(np.mean(
            np.sum(flat_d * flat_s, -1)
            / (np.linalg.norm(flat_d, axis=-1) * np.linalg.norm(flat_s, axis=-1) + 1e-12)
        ))
        kept_mass = float((dense_maps * mask).sum() / dense_maps.sum())
        surviving = mask & (dense_maps > 0)
        upscale = float(np.mean(sparse_maps[surviving] / np.maximum(dense_maps[surviving], 1e-12)))
        rows.append([f"Dfss {pattern}", cos, kept_mass, upscale])

    return {
        "experiment": "figure19",
        "scale": scale,
        "headers": ["pattern", "cosine(dense, sparse)", "dense mass kept", "mean weight up-scale"],
        "rows": rows,
        "attention_maps": attention_maps,
    }


def format_result(result: Dict) -> str:
    return format_table(result["headers"], result["rows"], digits=3,
                        title="Figure 19 (dense vs DFSS attention maps, first layer)")
