"""Command-line runner: ``python -m repro.experiments [experiment ...]``.

Examples
--------
Run every experiment at the default scale::

    python -m repro.experiments

Run one experiment at a given scale::

    REPRO_SCALE=smoke python -m repro.experiments figure5 table2
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time

from repro.core.backend import available_backends, use_backend
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="DFSS reproduction experiment runner")
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"experiment ids to run (default: all). Available: {list_experiments()}")
    parser.add_argument("--scale", default=None, choices=["smoke", "default", "full"],
                        help="experiment scale (overrides $REPRO_SCALE)")
    parser.add_argument("--backend", default=None, choices=available_backends(),
                        help="kernel backend for every dispatched kernel "
                             "(overrides $REPRO_BACKEND; default: fast)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    args = parser.parse_args(argv)

    if args.list:
        for key in list_experiments():
            print(f"{key:14s} {EXPERIMENTS[key].description}")
        return 0

    keys = args.experiments or list_experiments()
    for key in keys:
        exp = get_experiment(key)
        start = time.time()
        # use_backend() contexts are single-use, so build one per experiment
        with use_backend(args.backend) if args.backend else contextlib.nullcontext():
            result = exp.run(scale=args.scale, seed=args.seed)
        elapsed = time.time() - start
        print(exp.format_result(result))
        print(f"[{key} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
