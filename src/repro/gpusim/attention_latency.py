"""Per-mechanism attention latency models (Figure 5 / Figure 11 substrate).

Each mechanism is described as a list of :class:`~repro.gpusim.ops.OpCost`
kernels assigned to the four categories the paper's latency-breakdown figure
uses: ``overhead`` (everything a mechanism runs that full attention does not —
hashing, sorting, clustering, landmark/feature construction), ``qk`` (the
score computation), ``softmax`` and ``av`` (the value aggregation).

The mechanism set mirrors Figure 5: the dense Transformer, DFSS ("ours"),
Performer, Reformer, Routing Transformer, Sinkhorn Transformer and
Nyströmformer, plus the explicit Top-K and fixed-density mechanisms used in
Figure 11.  The models only aim to reproduce the paper's *qualitative* shape —
who wins at which sequence length and by roughly what factor — not absolute
microseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.gpusim import ops
from repro.gpusim.device import AMPERE_A100, GpuDevice
from repro.gpusim.ops import OpCost

#: Number of sequence tokens processed per "launch" across the batch; the
#: paper sets the batch size "large enough to keep the GPU busy", which this
#: budget emulates (batch shrinks as the sequence grows).
DEFAULT_TOKEN_BUDGET = 1 << 17

STAGES = ("overhead", "qk", "softmax", "av")


@dataclass(frozen=True)
class AttentionConfig:
    """Problem size for one attention latency evaluation."""

    seq_len: int
    head_dim: int = 64
    num_heads: int = 4
    dtype: str = "bfloat16"
    batch_size: Optional[int] = None
    token_budget: int = DEFAULT_TOKEN_BUDGET

    @property
    def effective_batch(self) -> int:
        """Number of independent (batch x head) attention problems."""
        if self.batch_size is not None:
            return self.batch_size * self.num_heads
        per_seq = max(1, self.token_budget // self.seq_len)
        return per_seq * self.num_heads


@dataclass
class LatencyBreakdown:
    """Latency (seconds) of one mechanism split into the Figure-5 stages."""

    mechanism: str
    overhead: float = 0.0
    qk: float = 0.0
    softmax: float = 0.0
    av: float = 0.0
    kernels: Dict[str, List[OpCost]] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.overhead + self.qk + self.softmax + self.av

    def normalized_to(self, other: "LatencyBreakdown") -> Dict[str, float]:
        """Per-stage latency normalised to another mechanism's total."""
        ref = other.total
        return {
            "overhead": self.overhead / ref,
            "qk": self.qk / ref,
            "softmax": self.softmax / ref,
            "av": self.av / ref,
            "total": self.total / ref,
        }


def _breakdown(
    mechanism: str, staged: Dict[str, List[OpCost]], device: GpuDevice
) -> LatencyBreakdown:
    out = LatencyBreakdown(mechanism=mechanism, kernels=staged)
    for stage, kernel_list in staged.items():
        setattr(out, stage, ops.total_latency(kernel_list, device))
    return out


# ------------------------------------------------------------------ mechanisms
def _dense(cfg: AttentionConfig) -> Dict[str, List[OpCost]]:
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    return {
        "overhead": [],
        "qk": [ops.gemm("qk", b, n, n, d, dt)],
        "softmax": [ops.softmax_dense(b, n, n, dt)],
        "av": [ops.gemm("av", b, n, d, n, dt)],
    }


def _dfss(cfg: AttentionConfig) -> Dict[str, List[OpCost]]:
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    return {
        "overhead": [],  # pruning is fused into the SDDMM epilogue: zero overhead
        "qk": [ops.sddmm_nm_fused(b, n, n, d, dt)],
        "softmax": [ops.softmax_sparse_nm(b, n, n, dt)],
        "av": [ops.spmm_nm(b, n, n, d, dt)],
    }


def _topk(cfg: AttentionConfig, density: float = 0.05) -> Dict[str, List[OpCost]]:
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    k = max(1, int(density * n))
    av_elem = ops.OpCost(
        name="topk_av_gather",
        flops=2.0 * b * n * k * d,
        bytes_read=b * (n * k + n * k / ops.DEFAULT_TILE + n * d) * 4.0,
        bytes_written=b * n * d * 4.0,
        unit="fp32",
        dtype=dt,
        bandwidth_fraction=0.5,
    )
    return {
        "overhead": [ops.topk_select(b, n, n, k, dt)],
        "qk": [ops.gemm("qk", b, n, n, d, dt)],
        "softmax": [ops.elementwise("softmax_topk", b, n * k, dt, flops_per_elem=5.0)],
        "av": [av_elem],
    }


def _fixed(cfg: AttentionConfig, density: float = 0.5) -> Dict[str, List[OpCost]]:
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    cols = max(1, int(density * n))
    return {
        "overhead": [],
        "qk": [ops.gemm("qk", b, n, cols, d, dt)],
        "softmax": [ops.softmax_dense(b, n, cols, dt)],
        "av": [ops.gemm("av", b, n, d, cols, dt)],
    }


def _local(cfg: AttentionConfig, window: int = 32) -> Dict[str, List[OpCost]]:
    """Sliding-window local attention: banded extents, no per-step overhead.

    The mask is static (the serving structure cache amortises its build to
    zero), so each row touches at most ``2*window + 1`` keys and every stage
    is the dense stage with its column extent cut to the band width.
    """
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    w = min(n, 2 * window + 1)
    return {
        "overhead": [],
        "qk": [ops.gemm("band_qk", b, n, w, d, dt)],
        "softmax": [ops.softmax_dense(b, n, w, dt)],
        "av": [ops.gemm("band_av", b, n, d, w, dt)],
    }


def _longformer(
    cfg: AttentionConfig, window: int = 32, num_global: int = 1
) -> Dict[str, List[OpCost]]:
    """Longformer: the local band plus a few global tokens.

    Regular rows read ``num_global`` extra columns on top of the band; the
    ``num_global`` global rows attend to the full sequence, adding a skinny
    dense stripe whose cost grows linearly in ``n``.
    """
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    g = min(num_global, n)
    w = min(n, 2 * window + 1 + g)
    staged = {
        "overhead": [],
        "qk": [ops.gemm("band_qk", b, n, w, d, dt)],
        "softmax": [ops.softmax_dense(b, n, w, dt)],
        "av": [ops.gemm("band_av", b, n, d, w, dt)],
    }
    if g:
        staged["qk"].append(ops.gemm("global_qk", b, g, n, d, dt))
        staged["softmax"].append(ops.softmax_dense(b, g, n, dt))
        staged["av"].append(ops.gemm("global_av", b, g, d, n, dt))
    return staged


def _bigbird(
    cfg: AttentionConfig,
    block_size: int = 64,
    window_blocks: int = 1,
    num_global_blocks: int = 1,
    num_random_blocks: int = 1,
) -> Dict[str, List[OpCost]]:
    """BigBird: blocked window/global/random pattern.

    Each row block attends to ``2*window_blocks + 1`` window blocks plus the
    global and random blocks — a block-diagonal GEMM whose extent is fixed as
    ``n`` grows.  Global row blocks attend everywhere (a linear stripe, as in
    Longformer) and the random blocks pay a gather to assemble their keys.
    """
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    block = min(block_size, n)
    n_blocks = max(1, -(-n // block))
    kb = min(n_blocks, 2 * window_blocks + 1 + num_global_blocks + num_random_blocks)
    cols = kb * block
    g_rows = min(num_global_blocks * block, n)
    staged = {
        "overhead": [],
        "qk": [ops.gemm("block_qk", b * n_blocks, block, cols, d, dt)],
        "softmax": [ops.softmax_dense(b * n_blocks, block, cols, dt)],
        "av": [ops.gemm("block_av", b * n_blocks, block, d, cols, dt)],
    }
    if num_random_blocks and n_blocks > kb:
        staged["overhead"].append(
            ops.gather(
                "random_block_gather",
                b,
                float(n_blocks * num_random_blocks * block * d),
                dt,
            )
        )
    if g_rows:
        staged["qk"].append(ops.gemm("global_qk", b, g_rows, n, d, dt))
        staged["softmax"].append(ops.softmax_dense(b, g_rows, n, dt))
        staged["av"].append(ops.gemm("global_av", b, g_rows, d, n, dt))
    return staged


def _performer(cfg: AttentionConfig, framework_passes: float = 12.0) -> Dict[str, List[OpCost]]:
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    m = max(1, int(round(d * math.log(d))))  # number of random features
    overhead = [
        ops.gemm("phi_q_proj", b, n, m, d, dt),
        ops.gemm("phi_k_proj", b, n, m, d, dt),
        ops.reduction("q_sqnorm", b, n, d, dt),
        ops.reduction("k_sqnorm", b, n, d, dt),
        ops.reduction("q_rowmax", b, n, m, dt),
        ops.reduction("k_rowmax", b, n, m, dt),
        ops.elementwise("phi_q_exp", b, n * m, dt, flops_per_elem=3.0),
        ops.elementwise("phi_k_exp", b, n * m, dt, flops_per_elem=3.0),
        ops.framework_passes("unfused_glue", b, float(n * m), dt, framework_passes),
    ]
    softmax = [
        ops.reduction("phi_k_colsum", b, m, n, dt),
        ops.gemm("normalizer", b, n, 1, m, dt),
        ops.elementwise("rescale", b, n * d, dt, flops_per_elem=2.0),
    ]
    av = [
        ops.gemm("phiK_T_V", b, m, d, n, dt),
        ops.gemm("phiQ_out", b, n, d, m, dt),
    ]
    return {"overhead": overhead, "qk": [], "softmax": softmax, "av": av}


def _reformer(
    cfg: AttentionConfig, n_hashes: int = 4, chunk: int = 64, framework_passes: float = 16.0
) -> Dict[str, List[OpCost]]:
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    n_buckets = max(2, n // chunk)
    overhead = [
        ops.gemm("lsh_hash", b, n, n_hashes * n_buckets // 2, d, dt),
        ops.sort_rows(b, float(n * n_hashes), dt, launches=3),
        ops.gather("reorder_qkv", b, float(3 * n * d * n_hashes), dt),
        ops.gather("undo_sort", b, float(n * d * n_hashes), dt),
        ops.framework_passes("unfused_glue", b, float(n * d * n_hashes), dt, framework_passes),
    ]
    chunks = max(1, n // chunk) * n_hashes
    qk = [ops.gemm("chunked_qk", b * chunks, chunk, 2 * chunk, d, dt)]
    softmax = [ops.softmax_dense(b * chunks, chunk, 2 * chunk, dt)]
    av = [ops.gemm("chunked_av", b * chunks, chunk, d, 2 * chunk, dt)]
    return {"overhead": overhead, "qk": qk, "softmax": softmax, "av": av}


def _routing(
    cfg: AttentionConfig, kmeans_iters: int = 4, topk_clusters: int = 2,
    framework_passes: float = 14.0,
) -> Dict[str, List[OpCost]]:
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    n_clusters = max(2, int(round(math.sqrt(n))))
    cluster_size = max(1, n // n_clusters) * topk_clusters
    overhead = [
        ops.gemm("kmeans_assign", b * kmeans_iters, n, n_clusters, d, dt),
        ops.reduction("kmeans_update", b * kmeans_iters, n_clusters, d, dt),
        ops.topk_select(b, n, n_clusters, topk_clusters, dt),
        ops.sort_rows(b, float(n * topk_clusters), dt, launches=2),
        ops.gather("cluster_gather", b, float(2 * n * d * topk_clusters), dt),
        ops.gather("cluster_scatter", b, float(n * d * topk_clusters), dt),
        ops.framework_passes("unfused_glue", b, float(n * d), dt, framework_passes),
    ]
    qk = [ops.gemm("cluster_qk", b * n_clusters, cluster_size, cluster_size, d, dt)]
    softmax = [ops.softmax_dense(b * n_clusters, cluster_size, cluster_size, dt)]
    av = [ops.gemm("cluster_av", b * n_clusters, cluster_size, d, cluster_size, dt)]
    return {"overhead": overhead, "qk": qk, "softmax": softmax, "av": av}


def _sinkhorn(
    cfg: AttentionConfig, block: int = 64, sinkhorn_iters: int = 8,
    framework_passes: float = 14.0,
) -> Dict[str, List[OpCost]]:
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    n_blocks = max(1, n // block)
    overhead = [
        ops.reduction("block_means", b, n_blocks, block * d, dt),
        ops.gemm("block_scores", b, n_blocks, n_blocks, d, dt),
        ops.elementwise(
            "sinkhorn_norm", b, float(n_blocks * n_blocks), dt,
            flops_per_elem=4.0, launches=2 * sinkhorn_iters,
        ),
        ops.gather("block_permute", b, float(n * d), dt),
        ops.framework_passes("unfused_glue", b, float(n * d), dt, framework_passes),
    ]
    # each query block attends to its own block and the matched (sorted) block
    qk = [ops.gemm("block_qk", b * n_blocks, block, 2 * block, d, dt)]
    softmax = [ops.softmax_dense(b * n_blocks, block, 2 * block, dt)]
    av = [ops.gemm("block_av", b * n_blocks, block, d, 2 * block, dt)]
    return {"overhead": overhead, "qk": qk, "softmax": softmax, "av": av}


def _nystrom(
    cfg: AttentionConfig, landmarks: int = 64, pinv_iters: int = 6,
    framework_passes: float = 10.0,
) -> Dict[str, List[OpCost]]:
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    m = min(landmarks, n)
    overhead = [
        ops.reduction("landmark_means_q", b, m, (n // max(m, 1)) * d, dt),
        ops.reduction("landmark_means_k", b, m, (n // max(m, 1)) * d, dt),
        ops.gemm("pinv_iter", b * pinv_iters, m, m, m, dt),
        ops.elementwise("dconv_residual", b, float(n * d), dt, flops_per_elem=9.0),
        ops.framework_passes("unfused_glue", b, float(n * m), dt, framework_passes),
    ]
    qk = [
        ops.gemm("q_kl", b, n, m, d, dt),   # Q K~^T
        ops.gemm("ql_kl", b, m, m, d, dt),  # Q~ K~^T
        ops.gemm("ql_k", b, m, n, d, dt),   # Q~ K^T
    ]
    softmax = [
        ops.softmax_dense(b, n, m, dt),
        ops.softmax_dense(b, m, m, dt),
        ops.softmax_dense(b, m, n, dt),
    ]
    av = [
        ops.gemm("kernel3_v", b, m, d, n, dt),   # (m x n) @ V
        ops.gemm("kernel1_pinv", b, n, m, m, dt),
        ops.gemm("out", b, n, d, m, dt),
    ]
    return {"overhead": overhead, "qk": qk, "softmax": softmax, "av": av}


#: Mechanism registry used by the Figure-5 experiment (same ordering as the figure).
ATTENTION_MECHANISMS: Dict[str, Callable[[AttentionConfig], Dict[str, List[OpCost]]]] = {
    "transformer": _dense,
    "dfss": _dfss,
    "performer": _performer,
    "reformer": _reformer,
    "routing": _routing,
    "sinkhorn": _sinkhorn,
    "nystromformer": _nystrom,
    "topk": _topk,
    "fixed": _fixed,
    "local": _local,
    "longformer": _longformer,
    "bigbird": _bigbird,
}


def resolve_latency_model(mechanism: str) -> str:
    """Resolve a registry mechanism name/alias to its latency-model key.

    Accepts anything :func:`repro.registry.find_spec` accepts (canonical
    names, aliases, ``dfss_2:4`` shortcuts) as well as the raw model keys of
    :data:`ATTENTION_MECHANISMS`, so ``attention_latency("full", ...)`` and
    the historical ``attention_latency("transformer", ...)`` hit the same
    model.  Raises ``ValueError`` for unknown names and for mechanisms the
    analytical model does not cover.
    """
    from repro.registry import find_spec

    if mechanism in ATTENTION_MECHANISMS:
        return mechanism
    spec = find_spec(mechanism)  # ValueError on unknown names
    if spec.latency_model is None:
        raise ValueError(
            f"mechanism {spec.name!r} has no analytical latency model; "
            f"modelled mechanisms: {sorted(ATTENTION_MECHANISMS)}"
        )
    return spec.latency_model


def attention_latency(
    mechanism: str,
    config: AttentionConfig,
    device: GpuDevice = AMPERE_A100,
    **mechanism_kwargs,
) -> LatencyBreakdown:
    """Latency breakdown of one attention mechanism at one configuration."""
    model = resolve_latency_model(mechanism)
    staged = ATTENTION_MECHANISMS[model](config, **mechanism_kwargs)
    return _breakdown(mechanism, staged, device)


@dataclass
class TrainingLatency:
    """Forward + backward latency (seconds) of one training step's attention.

    The backward is modelled as the kernel sequence of the analytic
    compressed backward (``dV``/``dP``/softmax-Jacobian/``dQ``/``dK``); the
    forward reuses the inference breakdown.
    """

    mechanism: str
    forward: LatencyBreakdown
    backward_kernels: List[OpCost]
    backward: float

    @property
    def total(self) -> float:
        return self.forward.total + self.backward


def _dense_bwd_ops(cfg: AttentionConfig) -> List[OpCost]:
    b, n, d, dt = cfg.effective_batch, cfg.seq_len, cfg.head_dim, cfg.dtype
    return [
        ops.gemm("dv", b, n, d, n, dt),  # dV = Pᵀ dO
        ops.gemm("dp", b, n, n, d, dt),  # dP = dO Vᵀ
        ops.elementwise("softmax_bwd", b, float(n * n), dt, flops_per_elem=4.0, reads=2.0),
        ops.gemm("dq", b, n, d, n, dt),  # dQ = dS K
        ops.gemm("dk", b, n, d, n, dt),  # dK = dSᵀ Q
    ]


#: Backward-pass kernel models per latency-model key.  Only the mechanisms the
#: repo actually trains through the compressed pipeline are modelled.
TRAINING_BACKWARD_MODELS: Dict[str, Callable[[AttentionConfig], List[OpCost]]] = {
    "transformer": _dense_bwd_ops,
    "dfss": lambda cfg: ops.attention_bwd_nm_ops(
        cfg.effective_batch, cfg.seq_len, cfg.seq_len, cfg.head_dim, cfg.dtype
    ),
}


def training_attention_latency(
    mechanism: str,
    config: AttentionConfig,
    device: GpuDevice = AMPERE_A100,
) -> TrainingLatency:
    """Forward + backward latency of one attention training step."""
    model = resolve_latency_model(mechanism)
    builder = TRAINING_BACKWARD_MODELS.get(model)
    if builder is None:
        raise ValueError(
            f"mechanism {mechanism!r} has no training backward model; "
            f"modelled mechanisms: {sorted(TRAINING_BACKWARD_MODELS)}"
        )
    forward = attention_latency(mechanism, config, device)
    kernels = builder(config)
    return TrainingLatency(
        mechanism=mechanism,
        forward=forward,
        backward_kernels=kernels,
        backward=ops.total_latency(kernels, device),
    )


def training_attention_speedup(
    mechanism: str,
    config: AttentionConfig,
    device: GpuDevice = AMPERE_A100,
) -> float:
    """Training-step speedup of ``mechanism`` over the dense transformer."""
    dense = training_attention_latency("transformer", config, device)
    other = training_attention_latency(mechanism, config, device)
    return dense.total / other.total


def attention_speedup(
    mechanism: str,
    config: AttentionConfig,
    device: GpuDevice = AMPERE_A100,
    **mechanism_kwargs,
) -> float:
    """Speedup of ``mechanism`` over the dense transformer at ``config``."""
    dense = attention_latency("transformer", config, device)
    other = attention_latency(mechanism, config, device, **mechanism_kwargs)
    return dense.total / other.total


def latency_breakdown_table(
    config: AttentionConfig,
    mechanisms=("transformer", "dfss", "performer", "reformer", "routing", "sinkhorn", "nystromformer"),
    device: GpuDevice = AMPERE_A100,
) -> Dict[str, Dict[str, float]]:
    """Normalised per-stage latencies of several mechanisms (one Figure-5 group)."""
    dense = attention_latency("transformer", config, device)
    table = {}
    for mech in mechanisms:
        table[mech] = attention_latency(mech, config, device).normalized_to(dense)
    return table
