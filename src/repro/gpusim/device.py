"""GPU device description for the analytical performance model.

The model treats every kernel as the maximum of its compute time and its
DRAM time plus a fixed launch overhead.  That is the same "memory accesses
dominate" assumption the paper uses in Appendix A.3 ("the latency of matrix
multiplication operations, both sparse and dense, are bounded by the memory
access"), refined with a compute roofline so very compute-dense kernels (the
dense QKᵀ at large d) are not under-estimated.

The default device is an NVIDIA A100-SXM4-80GB, the GPU used in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GpuDevice:
    """Roofline-style description of a GPU.

    Attributes
    ----------
    name:
        Human-readable device name.
    dram_bandwidth:
        Sustained DRAM bandwidth in bytes/second.
    tensor_core_flops:
        Dense tensor-core throughput in FLOP/s for 16-bit inputs.
    tf32_flops:
        Tensor-core throughput for tensorfloat-32 inputs (fp32 tensors).
    fp32_flops:
        Conventional CUDA-core fp32 throughput (used for element-wise and
        reduction kernels such as softmax, top-k, sorting).
    sparse_tensor_core_speedup:
        Throughput multiplier of the sparse tensor core over the dense one for
        2:4 / 1:2 operands (the paper quotes "up to 1.7x" end-to-end for SpMM).
    kernel_launch_overhead:
        Fixed per-kernel-launch latency in seconds (driver + scheduling).
    sort_bandwidth_fraction:
        Effective fraction of DRAM bandwidth achieved by sorting / top-k /
        scatter-gather kernels; these are far from streaming-friendly, which
        is exactly why Top-K-style attention fails to get practical speedup.
    """

    name: str = "A100-SXM4-80GB"
    dram_bandwidth: float = 1.555e12
    tensor_core_flops: float = 312e12
    tf32_flops: float = 156e12
    fp32_flops: float = 19.5e12
    sparse_tensor_core_speedup: float = 1.7
    kernel_launch_overhead: float = 6.0e-6
    sort_bandwidth_fraction: float = 0.25

    def matmul_flops(self, dtype: str, sparse: bool = False) -> float:
        """Tensor-core throughput for a matmul of the given logical dtype."""
        if dtype in ("bfloat16", "float16"):
            peak = self.tensor_core_flops
        elif dtype in ("float32", "tfloat32"):
            peak = self.tf32_flops
        else:
            raise ValueError(f"unsupported dtype {dtype!r}")
        if sparse:
            peak *= self.sparse_tensor_core_speedup
        return peak

    def with_overrides(self, **kwargs) -> "GpuDevice":
        """Return a copy of the device with some attributes replaced."""
        return replace(self, **kwargs)


#: The device used throughout the paper's evaluation section.
AMPERE_A100 = GpuDevice()

#: A bandwidth-starved device useful for sensitivity studies (roughly a T4).
TURING_T4 = GpuDevice(
    name="T4",
    dram_bandwidth=0.32e12,
    tensor_core_flops=65e12,
    tf32_flops=8.1e12,
    fp32_flops=8.1e12,
    sparse_tensor_core_speedup=1.0,  # no sparse tensor core on Turing
    kernel_launch_overhead=8.0e-6,
)
