"""Peak activation-memory model (Figure 16).

The paper measures the peak memory allocation of the 4-layer LRA text
classification model under each attention mechanism.  The dominant term at
long sequence length is the attention weight matrix (``n² `` per head for the
dense transformer, compressed to ``n²/2 + n²/16`` by DFSS); the remaining
activations (QKV, FFN intermediates, embeddings) are mechanism-independent.
Only the live working set of one layer is counted (activations of previous
layers can be freed / recomputed), which is what PyTorch's peak allocation
roughly tracks during inference.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.precision import dtype_bytes
from repro.gpusim.end_to_end import LayerConfig


def _base_activations_bytes(cfg: LayerConfig) -> float:
    """Mechanism-independent activations of one layer (QKV, FFN, residuals)."""
    elem = dtype_bytes(cfg.dtype)
    b, n, dm, dff = cfg.batch_size, cfg.seq_len, cfg.model_dim, cfg.ffn_hidden
    qkv = 3 * b * n * dm * elem
    attn_out = b * n * dm * elem
    ffn_mid = b * n * dff * elem
    residuals = 2 * b * n * dm * elem
    return qkv + attn_out + ffn_mid + residuals


def attention_peak_memory(mechanism: str, cfg: LayerConfig) -> float:
    """Peak bytes attributable to the attention weight structures of one layer.

    ``mechanism`` is resolved through the unified registry
    (:func:`repro.gpusim.attention_latency.resolve_latency_model`), so
    canonical names (``full``, ``fixed_truncated``) and the historical model
    keys (``transformer``, ``fixed``) address the same entry.
    """
    from repro.gpusim.attention_latency import resolve_latency_model

    mechanism = resolve_latency_model(mechanism)
    elem = dtype_bytes(cfg.dtype)
    b, h, n, d = cfg.batch_size, cfg.num_heads, cfg.seq_len, cfg.head_dim
    heads = b * h
    if mechanism == "transformer":
        return heads * n * n * elem
    if mechanism == "dfss":
        return heads * (n * n / 2.0 + n * n / 16.0) * elem
    if mechanism == "fixed":
        return heads * n * n / 2.0 * elem
    if mechanism == "topk":
        k = max(1, int(0.05 * n))
        return heads * (n * k * elem + n * k * 4.0)  # values + int32 indices
    if mechanism == "performer":
        m = max(1, int(round(d * math.log(d))))
        return heads * (2 * n * m + m * d) * elem
    if mechanism == "reformer":
        chunk, n_hashes = 64, 2
        chunks = max(1, n // chunk) * n_hashes
        return heads * (chunks * chunk * 2 * chunk * elem + n * n_hashes * 4.0 * 2)
    if mechanism == "routing":
        n_clusters = max(2, int(round(math.sqrt(n))))
        c = max(1, n // n_clusters)
        return heads * (n_clusters * c * c * elem + n * 4.0 * 2)
    if mechanism == "sinkhorn":
        block = 64
        n_blocks = max(1, n // block)
        return heads * (n_blocks * block * 2 * block * elem + n_blocks * n_blocks * elem)
    if mechanism == "nystromformer":
        m = min(64, n)
        return heads * (2 * n * m + m * m + n * d) * elem
    raise ValueError(f"unknown mechanism {mechanism!r}")


def end_to_end_peak_memory(mechanism: str, cfg: LayerConfig) -> float:
    """Peak activation bytes of the model under ``mechanism`` (one live layer)."""
    return _base_activations_bytes(cfg) + attention_peak_memory(mechanism, cfg)


def training_peak_memory(mechanism: str, cfg: LayerConfig) -> float:
    """Peak activation bytes of one *training* layer (Table-5-style claims).

    Training keeps the forward's attention weights alive for the backward
    (the saved compressed probabilities), and the backward materialises one
    gradient tensor of the same structure (``dP``/``dS`` reuse one buffer in
    the analytic backward) plus gradients for Q, K and V.  The structural
    compression therefore pays off *twice*: both the saved probabilities and
    the probability gradient are ``n²/2 + n²/16`` instead of ``n²`` for DFSS.
    """
    from repro.gpusim.attention_latency import resolve_latency_model

    elem = dtype_bytes(cfg.dtype)
    b, n, dm = cfg.batch_size, cfg.seq_len, cfg.model_dim
    qkv_grads = 3 * b * n * dm * elem
    weights = attention_peak_memory(mechanism, cfg)
    model = resolve_latency_model(mechanism)
    # Only mechanisms trained through the compressed pipeline carry a
    # same-structure probability gradient; the others fall back to the dense
    # gradient of their attention output.
    if model in ("transformer", "dfss", "fixed", "topk"):
        weight_grads = weights
    else:
        weight_grads = b * cfg.num_heads * n * cfg.head_dim * elem
    return _base_activations_bytes(cfg) + weights + weight_grads + qkv_grads


def training_memory_reduction(mechanism: str, cfg: LayerConfig) -> float:
    """Dense training peak memory divided by ``mechanism``'s training peak."""
    dense = training_peak_memory("transformer", cfg)
    other = training_peak_memory(mechanism, cfg)
    return dense / other


def memory_reduction(mechanism: str, cfg: LayerConfig) -> float:
    """Dense-transformer peak memory divided by ``mechanism``'s peak memory."""
    dense = end_to_end_peak_memory("transformer", cfg)
    other = end_to_end_peak_memory(mechanism, cfg)
    return dense / other


def memory_table(cfg: LayerConfig, mechanisms=("dfss", "performer", "reformer", "routing", "sinkhorn", "nystromformer")) -> Dict[str, float]:
    """Peak memory of several mechanisms normalised to the dense transformer (Figure 16)."""
    dense = end_to_end_peak_memory("transformer", cfg)
    return {mech: end_to_end_peak_memory(mech, cfg) / dense for mech in mechanisms}
