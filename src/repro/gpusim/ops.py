"""Per-operator cost records for the analytical GPU model.

Every primitive used by an attention mechanism is described by an
:class:`OpCost`: the floating-point work it performs, the DRAM bytes it reads
and writes (with the tiling-reuse factors of Appendix A.3), which execution
unit it runs on, and how many kernel launches it needs.  The device then turns
an OpCost into a latency with a simple roofline:

    ``latency = max(flops / unit_throughput, bytes / effective_bandwidth)
                + launches * launch_overhead``

All builder functions take explicit problem sizes (batch, sequence length,
head dimension, ...) so mechanism models in
:mod:`repro.gpusim.attention_latency` stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.core.precision import dtype_bytes
from repro.gpusim.device import GpuDevice

#: Default GEMM thread-block tile edge (the paper's ``T``).
DEFAULT_TILE = 128


@dataclass
class OpCost:
    """Cost record of one GPU kernel (or fused kernel)."""

    name: str
    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    unit: str = "fp32"  # "tensor", "sparse_tensor", "fp32", "memory"
    dtype: str = "float32"
    launches: int = 1
    bandwidth_fraction: float = 1.0

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    def latency(self, device: GpuDevice) -> float:
        """Roofline latency of the kernel on ``device`` in seconds."""
        if self.unit == "tensor":
            compute = self.flops / device.matmul_flops(self.dtype, sparse=False)
        elif self.unit == "sparse_tensor":
            compute = self.flops / device.matmul_flops(self.dtype, sparse=True)
        elif self.unit == "fp32":
            compute = self.flops / device.fp32_flops
        elif self.unit == "memory":
            compute = 0.0
        else:
            raise ValueError(f"unknown execution unit {self.unit!r}")
        bandwidth = device.dram_bandwidth * self.bandwidth_fraction
        memory = self.bytes_total / bandwidth
        return max(compute, memory) + self.launches * device.kernel_launch_overhead


def total_latency(ops: List[OpCost], device: GpuDevice) -> float:
    """Sum of the latencies of a list of kernels."""
    return float(sum(op.latency(device) for op in ops))


# --------------------------------------------------------------------- GEMMs
def _round_up(x: int, multiple: int) -> int:
    return ((int(x) + multiple - 1) // multiple) * multiple


def gemm(
    name: str,
    batch: int,
    m: int,
    n: int,
    k: int,
    dtype: str = "float32",
    tile: int = DEFAULT_TILE,
    write_output: bool = True,
) -> OpCost:
    """Dense GEMM ``(m x k) @ (k x n)`` repeated ``batch`` times.

    DRAM traffic follows the tiled model of Appendix A.3: each operand element
    is re-read ``m/tile`` (resp. ``n/tile``) times, the output is written once.
    Two second-order effects matter for the chunked / clustered baselines,
    which issue huge batches of *tiny* GEMMs:

    * tile quantisation — output dimensions are padded to the warp-tile grid,
      so a 22x22 cluster GEMM pays for a 32x32 one;
    * occupancy / coalescing loss — GEMMs much smaller than the thread-block
      tile cannot saturate DRAM; the effective bandwidth is scaled by
      ``sqrt(m*n / tile^2)`` (floored at 1/8).
    """
    elem = dtype_bytes(dtype)
    m_pad, n_pad, k_pad = _round_up(m, 32), _round_up(n, 32), _round_up(k, 32)
    reads = (
        batch
        * (m_pad * k_pad * max(1.0, n_pad / tile) + k_pad * n_pad * max(1.0, m_pad / tile))
        * elem
    )
    writes = batch * m_pad * n_pad * elem if write_output else 0.0
    utilisation = min(1.0, max(1.0 / 8.0, (m_pad * n_pad) / float(tile * tile)) ** 0.5)
    return OpCost(
        name=name,
        flops=2.0 * batch * m_pad * n_pad * k_pad,
        bytes_read=reads,
        bytes_written=writes,
        unit="tensor",
        dtype=dtype,
        bandwidth_fraction=utilisation,
    )


def sddmm_nm_fused(
    batch: int, n_q: int, n_k: int, d: int, dtype: str, tile: int = DEFAULT_TILE
) -> OpCost:
    """Fused dense GEMM + N:M prune epilogue (the paper's SDDMM kernel).

    Reads Q and K with tiling reuse like the dense GEMM, but writes only the
    compressed nonzeros (half the dense output) plus the 1/16 metadata; the
    pruning itself happens in registers and costs no extra traffic.
    """
    elem = dtype_bytes(dtype)
    reads = batch * (n_q * d * max(1.0, n_k / tile) + d * n_k * max(1.0, n_q / tile)) * elem
    nonzeros = batch * n_q * n_k / 2.0 * elem
    metadata = batch * n_q * n_k / 16.0 * elem
    return OpCost(
        name="sddmm_nm",
        flops=2.0 * batch * n_q * n_k * d,
        bytes_read=reads,
        bytes_written=nonzeros + metadata,
        unit="tensor",
        dtype=dtype,
    )


def spmm_nm(
    batch: int, n_q: int, n_k: int, d_v: int, dtype: str, tile: int = DEFAULT_TILE
) -> OpCost:
    """SpMM of the N:M-compressed weights with dense V on the sparse tensor core."""
    elem = dtype_bytes(dtype)
    nonzeros = batch * n_q * n_k / 2.0 * elem
    metadata = batch * n_q * n_k / 16.0 * elem
    v_reads = batch * n_k * d_v * max(1.0, n_q / tile) * elem
    out = batch * n_q * d_v * elem
    return OpCost(
        name="spmm_nm",
        flops=batch * n_q * n_k * d_v,  # half the dense MACs survive
        bytes_read=nonzeros + metadata + v_reads,
        bytes_written=out,
        unit="sparse_tensor",
        dtype=dtype,
    )


def spmm_t_nm(
    batch: int, n_q: int, n_k: int, d_v: int, dtype: str, tile: int = DEFAULT_TILE
) -> OpCost:
    """Transposed SpMM ``Pᵀ @ dO`` of the training backward (``dV``, ``dK``).

    Same compressed-operand traffic as the forward SpMM — the nonzeros and
    metadata are re-read, the dense operand is read with tiling reuse over the
    *output* rows (``n_k`` of them now) — but the transposed access runs
    column-major against the row-compressed layout, so accumulation goes
    through atomics / a workspace and the effective bandwidth drops.
    """
    elem = dtype_bytes(dtype)
    nonzeros = batch * n_q * n_k / 2.0 * elem
    metadata = batch * n_q * n_k / 16.0 * elem
    dense_reads = batch * n_q * d_v * max(1.0, n_k / tile) * elem
    out = batch * n_k * d_v * elem
    return OpCost(
        name="spmm_t_nm",
        flops=batch * n_q * n_k * d_v,  # half the dense MACs survive
        bytes_read=nonzeros + metadata + dense_reads,
        bytes_written=out,
        unit="sparse_tensor",
        dtype=dtype,
        bandwidth_fraction=0.75,
    )


def sddmm_masked_nm(
    batch: int, n_q: int, n_k: int, d: int, dtype: str, tile: int = DEFAULT_TILE
) -> OpCost:
    """Masked SDDMM ``dP = (dO @ Vᵀ)`` sampled at the stored nonzeros.

    The backward reuses the forward's pruning decision, so the metadata is
    read (not recomputed or rewritten) and only the surviving half of the
    products is materialised.
    """
    elem = dtype_bytes(dtype)
    reads = (
        batch
        * (n_q * d * max(1.0, n_k / tile) + d * n_k * max(1.0, n_q / tile))
        * elem
    )
    metadata = batch * n_q * n_k / 16.0 * elem
    nonzeros = batch * n_q * n_k / 2.0 * elem
    return OpCost(
        name="sddmm_masked_nm",
        flops=2.0 * batch * n_q * n_k * d,
        bytes_read=reads + metadata,
        bytes_written=nonzeros,
        unit="tensor",
        dtype=dtype,
    )


def softmax_bwd_nm(batch: int, rows: int, cols: int, dtype: str) -> OpCost:
    """Softmax Jacobian on compressed rows: ``dS = P ⊙ (dP − Σ P ⊙ dP)``.

    Reads both compressed operands (P and dP), writes dS; a multiply, a row
    reduction, a broadcast subtract and a multiply per surviving element.
    """
    elem = dtype_bytes(dtype)
    n_elems = batch * rows * cols / 2.0
    return OpCost(
        name="softmax_bwd_nm",
        flops=4.0 * n_elems,
        bytes_read=2.0 * n_elems * elem,
        bytes_written=n_elems * elem,
        unit="fp32",
        dtype=dtype,
    )


def attention_bwd_nm_ops(
    batch: int, n_q: int, n_k: int, d: int, dtype: str, tile: int = DEFAULT_TILE
) -> List[OpCost]:
    """The kernel sequence of the fused N:M attention backward.

    ``dV = Pᵀ dO`` (transposed SpMM), ``dP`` (masked SDDMM), the compressed
    softmax Jacobian, then ``dQ = dS K`` (SpMM) and ``dK = dSᵀ Q``
    (transposed SpMM) — the compressed mirror of the five-op dense backward,
    with every matrix operand at N:M density.
    """
    return [
        replace(spmm_t_nm(batch, n_q, n_k, d, dtype, tile), name="spmm_t_dv"),
        replace(sddmm_masked_nm(batch, n_q, n_k, d, dtype, tile), name="sddmm_dp"),
        replace(softmax_bwd_nm(batch, n_q, n_k, dtype), name="softmax_bwd"),
        replace(spmm_nm(batch, n_q, n_k, d, dtype, tile), name="spmm_dq"),
        replace(spmm_t_nm(batch, n_q, n_k, d, dtype, tile), name="spmm_t_dk"),
    ]


# ------------------------------------------------------------- element-wise ops
def softmax_dense(batch: int, rows: int, cols: int, dtype: str) -> OpCost:
    """Dense softmax: read the score matrix, write the weight matrix."""
    elem = dtype_bytes(dtype)
    n_elems = batch * rows * cols
    return OpCost(
        name="softmax",
        flops=5.0 * n_elems,
        bytes_read=n_elems * elem,
        bytes_written=n_elems * elem,
        unit="fp32",
        dtype=dtype,
    )


def softmax_sparse_nm(batch: int, rows: int, cols: int, dtype: str) -> OpCost:
    """Softmax over the compressed nonzeros (half the elements of the dense one)."""
    elem = dtype_bytes(dtype)
    n_elems = batch * rows * cols / 2.0
    return OpCost(
        name="softmax_nm",
        flops=5.0 * n_elems,
        bytes_read=n_elems * elem,
        bytes_written=n_elems * elem,
        unit="fp32",
        dtype=dtype,
    )


def elementwise(name: str, batch: int, elems: float, dtype: str, flops_per_elem: float = 1.0,
                reads: float = 1.0, writes: float = 1.0, launches: int = 1) -> OpCost:
    """Generic streaming element-wise kernel touching ``elems`` elements."""
    elem = dtype_bytes(dtype)
    return OpCost(
        name=name,
        flops=flops_per_elem * batch * elems,
        bytes_read=reads * batch * elems * elem,
        bytes_written=writes * batch * elems * elem,
        unit="fp32",
        dtype=dtype,
        launches=launches,
    )


def reduction(name: str, batch: int, rows: int, cols: int, dtype: str) -> OpCost:
    """Row reduction (max / sum / mean) over a ``rows x cols`` matrix."""
    elem = dtype_bytes(dtype)
    return OpCost(
        name=name,
        flops=batch * rows * cols,
        bytes_read=batch * rows * cols * elem,
        bytes_written=batch * rows * elem,
        unit="fp32",
        dtype=dtype,
    )


# ------------------------------------------------ sorting / gathering primitives
def topk_select(batch: int, rows: int, cols: int, k: int, dtype: str) -> OpCost:
    """Per-row top-k selection; multiple passes at degraded effective bandwidth."""
    elem = dtype_bytes(dtype)
    passes = 2.0  # select + compact
    return OpCost(
        name="topk",
        flops=batch * rows * cols * 4.0,
        bytes_read=passes * batch * rows * cols * elem,
        bytes_written=batch * rows * k * elem,
        unit="fp32",
        dtype=dtype,
        bandwidth_fraction=0.25,
        launches=2,
    )


def sort_rows(batch: int, elems: float, dtype: str, launches: int = 2) -> OpCost:
    """Key-value radix sort of ``elems`` items (used by LSH / routing / sinkhorn)."""
    elem = dtype_bytes(dtype)
    passes = 4.0
    return OpCost(
        name="sort",
        flops=batch * elems * 8.0,
        bytes_read=passes * batch * elems * elem,
        bytes_written=passes * batch * elems * elem,
        unit="fp32",
        dtype=dtype,
        bandwidth_fraction=0.25,
        launches=launches,
    )


def gather(name: str, batch: int, elems: float, dtype: str) -> OpCost:
    """Gather / scatter of ``elems`` elements at reduced effective bandwidth."""
    elem = dtype_bytes(dtype)
    return OpCost(
        name=name,
        flops=0.0,
        bytes_read=batch * elems * elem,
        bytes_written=batch * elems * elem,
        unit="memory",
        dtype=dtype,
        bandwidth_fraction=0.4,
    )


def framework_passes(
    name: str, batch: int, elems: float, dtype: str, passes: float
) -> OpCost:
    """Unfused framework overhead: ``passes`` full read+write sweeps over a tensor.

    The baselines the paper benchmarks are research PyTorch implementations
    built from dozens of separate reshape / rearrange / mask / concat /
    normalisation operators, each of which launches a kernel and streams the
    whole activation through DRAM.  The paper applies ``torch.jit.script``
    "when possible", which fuses some but by no means all of these; this cost
    record models the remaining non-fused sweeps and is the main reason those
    mechanisms lose at short and moderate sequence lengths (Section 5.2).
    """
    elem = dtype_bytes(dtype)
    return OpCost(
        name=name,
        flops=batch * elems * passes,
        bytes_read=batch * elems * elem * passes,
        bytes_written=batch * elems * elem * passes,
        unit="fp32",
        dtype=dtype,
        launches=max(1, int(round(passes))),
    )
