"""Analytical A100-like GPU performance model.

This package substitutes for the paper's hardware testbed: it predicts the
latency and memory footprint of the attention mechanisms (and of whole
transformer layers) from per-kernel operator costs, using the same
memory-traffic accounting the paper uses to derive its speedup bounds
(Table 5, Propositions 4.3, Eq. 33).

* :mod:`repro.gpusim.device` — the device description (bandwidth, tensor-core
  throughput, sparse-tensor-core speedup, kernel-launch overhead);
* :mod:`repro.gpusim.ops` — per-operator cost records;
* :mod:`repro.gpusim.attention_latency` — per-mechanism attention latency
  breakdowns (Figure 5);
* :mod:`repro.gpusim.end_to_end` — transformer-layer latency model
  (Figures 14, 15);
* :mod:`repro.gpusim.memory` — peak activation memory model (Figure 16).
"""

from repro.gpusim.device import AMPERE_A100, GpuDevice
from repro.gpusim.ops import OpCost
from repro.gpusim.attention_latency import (
    ATTENTION_MECHANISMS,
    AttentionConfig,
    LatencyBreakdown,
    TrainingLatency,
    attention_latency,
    attention_speedup,
    training_attention_latency,
    training_attention_speedup,
)
from repro.gpusim.end_to_end import LayerConfig, end_to_end_latency, end_to_end_speedup
from repro.gpusim.memory import (
    attention_peak_memory,
    end_to_end_peak_memory,
    training_memory_reduction,
    training_peak_memory,
)

__all__ = [
    "AMPERE_A100",
    "GpuDevice",
    "OpCost",
    "ATTENTION_MECHANISMS",
    "AttentionConfig",
    "LatencyBreakdown",
    "TrainingLatency",
    "attention_latency",
    "attention_speedup",
    "training_attention_latency",
    "training_attention_speedup",
    "LayerConfig",
    "end_to_end_latency",
    "end_to_end_speedup",
    "attention_peak_memory",
    "end_to_end_peak_memory",
    "training_memory_reduction",
    "training_peak_memory",
]
