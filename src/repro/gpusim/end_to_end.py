"""End-to-end transformer-layer latency model (Figures 14 and 15).

The paper's end-to-end evaluation uses the 4-layer encoder of the LRA text
classification task: per layer a multi-head self-attention block (QKV
projections, the attention mechanism itself, the output projection) plus a
feed-forward network and two layer norms.  This module assembles those
components from the operator costs in :mod:`repro.gpusim.ops`, reusing the
per-mechanism attention models from
:mod:`repro.gpusim.attention_latency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.gpusim import ops
from repro.gpusim.attention_latency import AttentionConfig, attention_latency
from repro.gpusim.device import AMPERE_A100, GpuDevice
from repro.gpusim.ops import OpCost


@dataclass(frozen=True)
class LayerConfig:
    """One transformer encoder layer of the end-to-end model.

    Defaults follow Appendix A.6: head dimension 64, 4 or 8 heads, feed-forward
    hidden dimension in {256, 512, 1024}, 4 encoder layers, batch size 32.
    """

    seq_len: int
    num_heads: int = 4
    head_dim: int = 64
    ffn_hidden: int = 256
    dtype: str = "bfloat16"
    batch_size: int = 32
    num_layers: int = 4

    @property
    def model_dim(self) -> int:
        return self.num_heads * self.head_dim

    def attention_config(self) -> AttentionConfig:
        return AttentionConfig(
            seq_len=self.seq_len,
            head_dim=self.head_dim,
            num_heads=self.num_heads,
            dtype=self.dtype,
            batch_size=self.batch_size,
        )


def _other_component_kernels(cfg: LayerConfig) -> List[OpCost]:
    """Everything in a layer that is *not* the attention mechanism itself."""
    b, n, dm, dff, dt = cfg.batch_size, cfg.seq_len, cfg.model_dim, cfg.ffn_hidden, cfg.dtype
    return [
        ops.gemm("q_proj", b, n, dm, dm, dt),
        ops.gemm("k_proj", b, n, dm, dm, dt),
        ops.gemm("v_proj", b, n, dm, dm, dt),
        ops.gemm("out_proj", b, n, dm, dm, dt),
        ops.gemm("ffn_up", b, n, dff, dm, dt),
        ops.elementwise("ffn_act", b, float(n * dff), dt, flops_per_elem=8.0),
        ops.gemm("ffn_down", b, n, dm, dff, dt),
        ops.elementwise("layernorm_1", b, float(n * dm), dt, flops_per_elem=6.0),
        ops.elementwise("layernorm_2", b, float(n * dm), dt, flops_per_elem=6.0),
        ops.elementwise("residual_1", b, float(n * dm), dt, flops_per_elem=1.0),
        ops.elementwise("residual_2", b, float(n * dm), dt, flops_per_elem=1.0),
    ]


def end_to_end_latency(
    mechanism: str,
    cfg: LayerConfig,
    device: GpuDevice = AMPERE_A100,
    other_speedup: float = 1.0,
) -> Dict[str, float]:
    """Latency of ``cfg.num_layers`` encoder layers with a given attention mechanism.

    Parameters
    ----------
    other_speedup:
        Optional speedup factor applied to the non-attention components
        (static weight pruning / quantisation of the linear layers, as in the
        paper's discussion of combining DFSS with 2:4 weight sparsity).

    Returns
    -------
    Dict with keys ``attention``, ``others`` and ``total`` (seconds).
    """
    attn = attention_latency(mechanism, cfg.attention_config(), device).total
    others = ops.total_latency(_other_component_kernels(cfg), device) / other_speedup
    per_layer = attn + others
    return {
        "attention": attn * cfg.num_layers,
        "others": others * cfg.num_layers,
        "total": per_layer * cfg.num_layers,
    }


def end_to_end_speedup(
    mechanism: str,
    cfg: LayerConfig,
    device: GpuDevice = AMPERE_A100,
    other_speedup: float = 1.0,
) -> float:
    """End-to-end speedup of ``mechanism`` over the dense transformer."""
    dense = end_to_end_latency("transformer", cfg, device, other_speedup=1.0)
    fast = end_to_end_latency(mechanism, cfg, device, other_speedup=other_speedup)
    return dense["total"] / fast["total"]


def end_to_end_breakdown(
    cfg: LayerConfig,
    mechanisms=("transformer", "dfss"),
    device: GpuDevice = AMPERE_A100,
) -> Dict[str, Dict[str, float]]:
    """Attention-vs-others latency split, normalised to the dense model (Figure 15)."""
    dense = end_to_end_latency("transformer", cfg, device)
    table: Dict[str, Dict[str, float]] = {}
    for mech in mechanisms:
        lat = end_to_end_latency(mech, cfg, device)
        table[mech] = {
            "attention": lat["attention"] / dense["total"],
            "others": lat["others"] / dense["total"],
            "total": lat["total"] / dense["total"],
            "speedup": dense["total"] / lat["total"],
        }
    return table
