"""repro — reproduction of "Dynamic N:M Fine-grained Structured Sparse Attention".

Top-level convenience re-exports; see :mod:`repro.core` for the DFSS
mechanism, :mod:`repro.gpusim` for the A100-like performance model,
:mod:`repro.baselines` for comparator attention mechanisms, :mod:`repro.nn`
for the numpy transformer stack and :mod:`repro.experiments` for the
table/figure reproduction harness.
"""

from repro.core import DfssAttention, dfss_attention, full_attention, NMSparseMatrix

__version__ = "1.0.0"

__all__ = [
    "DfssAttention",
    "dfss_attention",
    "full_attention",
    "NMSparseMatrix",
    "__version__",
]
