"""repro — reproduction of "Dynamic N:M Fine-grained Structured Sparse Attention".

Public API: :func:`repro.attention` / :class:`repro.AttentionEngine` construct
and run any registered attention mechanism through the unified registry
(:mod:`repro.registry`); :func:`repro.available_mechanisms` enumerates them
with capability flags; :mod:`repro.serve` (callable as
``repro.serve(requests)``) is the request-level serving engine that coalesces
mixed mechanisms and sequence lengths into ragged batches.  See
:mod:`repro.core` for the DFSS kernels, :mod:`repro.gpusim` for the A100-like
performance model, :mod:`repro.baselines` for comparator implementations,
:mod:`repro.nn` for the numpy transformer stack and :mod:`repro.experiments`
for the table/figure reproduction harness.
"""

from repro.core import DfssAttention, dfss_attention, full_attention, NMSparseMatrix
from repro.engine import AttentionConfig, AttentionEngine, attention, available_mechanisms
from repro.registry import describe_mechanism

# the serving package imports repro.engine, so it must come after the facade
from repro import serve
from repro.serve import AttentionServer, ServeRequest, ServeResult

__version__ = "1.2.0"

__all__ = [
    # construction facade
    "attention",
    "AttentionEngine",
    "AttentionConfig",
    "available_mechanisms",
    "describe_mechanism",
    # serving engine (``repro.serve`` is itself callable)
    "serve",
    "AttentionServer",
    "ServeRequest",
    "ServeResult",
    # DFSS core
    "DfssAttention",
    "dfss_attention",
    "full_attention",
    "NMSparseMatrix",
    "__version__",
]
