"""Fixed (data-independent) sparse attention patterns.

Three members of the family the paper groups as "Fixed Sparse Patterns":

* :class:`LocalWindowAttention` — each query attends to a sliding window of
  neighbouring keys (Image Transformer / "Local Attention" row of Table 4);
* :class:`StridedSparseAttention` — local window plus strided columns
  (Child et al.'s Sparse Transformer);
* :class:`TruncatedAttention` — keep the first ``density * n`` key columns;
  this is the pattern used for the fixed-sparsity speedup measurement in
  Appendix A.4 ("simply truncate the number of columns").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.registry import (
    LocalConfig,
    StridedConfig,
    TruncatedConfig,
    register_mechanism,
)


def local_window_mask(n_q: int, n_k: int, window: int) -> np.ndarray:
    """Boolean mask keeping keys within ``window`` positions of the query."""
    rows = np.arange(n_q)[:, None]
    cols = np.arange(n_k)[None, :]
    return np.abs(rows - cols) <= window


def strided_mask(n_q: int, n_k: int, window: int, stride: int) -> np.ndarray:
    """Local window plus every ``stride``-th column (Sparse Transformer)."""
    mask = local_window_mask(n_q, n_k, window)
    mask[:, ::stride] = True
    return mask


def truncated_mask(n_q: int, n_k: int, density: float) -> np.ndarray:
    """Keep the first ``density * n_k`` columns for every query."""
    keep = max(1, int(round(density * n_k)))
    mask = np.zeros((n_q, n_k), dtype=bool)
    mask[:, :keep] = True
    return mask


class _FixedMaskAttention(AttentionMechanism):
    produces_mask = True

    def _mask_2d(self, n_q: int, n_k: int) -> np.ndarray:
        raise NotImplementedError

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        mask = self._mask_2d(q.shape[-2], k.shape[-2])
        return np.broadcast_to(mask, q.shape[:-2] + mask.shape)

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        return self.masked_attention(q, k, v, self._mask_2d(q.shape[-2], k.shape[-2]))


@register_mechanism(
    "local",
    config=LocalConfig,
    label="Local Attention",
    description="Sliding-window local attention (Image Transformer)",
    aliases=("local_window",),
    produces_mask=True,
    compressed=True,
    batchable=True,
    static_mask=True,
    latency_model="local",
)
@register
class LocalWindowAttention(_FixedMaskAttention):
    """Sliding-window attention with half-width ``window``."""

    name = "local"

    def __init__(self, window: int = 32):
        if window < 0:
            raise ValueError("window must be non-negative")
        self.window = window

    def _mask_2d(self, n_q: int, n_k: int) -> np.ndarray:
        return local_window_mask(n_q, n_k, self.window)


@register_mechanism(
    "sparse_transformer",
    config=StridedConfig,
    label="Sparse Trans.",
    description="Local + strided fixed pattern (Child et al.)",
    aliases=("strided",),
    produces_mask=True,
    compressed=True,
    batchable=True,
    static_mask=True,
)
@register
class StridedSparseAttention(_FixedMaskAttention):
    """Sparse-Transformer-style local + strided pattern."""

    name = "sparse_transformer"

    def __init__(self, window: int = 16, stride: int = 64):
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.window = window
        self.stride = stride

    def _mask_2d(self, n_q: int, n_k: int) -> np.ndarray:
        return strided_mask(n_q, n_k, self.window, self.stride)


@register_mechanism(
    "fixed_truncated",
    config=TruncatedConfig,
    label="Fixed (truncated)",
    description="Keep a fixed leading fraction of key columns (Appendix A.4)",
    aliases=("fixed", "truncated"),
    produces_mask=True,
    compressed=True,
    batchable=True,
    static_mask=True,
    latency_model="fixed",
)
@register
class TruncatedAttention(_FixedMaskAttention):
    """Keep a fixed leading fraction of key columns (Appendix A.4 fixed pattern)."""

    name = "fixed_truncated"

    def __init__(self, density: float = 0.5):
        if not 0.0 < density <= 1.0:
            raise ValueError("density must lie in (0, 1]")
        self.density = density

    def _mask_2d(self, n_q: int, n_k: int) -> np.ndarray:
        return truncated_mask(n_q, n_k, self.density)
