"""Routing Transformer attention (Roy et al.), expressed as a cluster mask.

Queries and keys are assigned to k-means centroids (spherical k-means on the
concatenated Q/K set, a few Lloyd iterations); a query attends to the keys
routed to the same centroid.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.registry import RoutingConfig, register_mechanism
from repro.utils.seeding import new_rng


def _normalise(x: np.ndarray) -> np.ndarray:
    return x / np.maximum(np.linalg.norm(x, axis=-1, keepdims=True), 1e-6)


def kmeans_assign(points: np.ndarray, n_clusters: int, iters: int, rng) -> np.ndarray:
    """Spherical k-means cluster assignment for a single (n, d) matrix."""
    n = points.shape[0]
    pts = _normalise(points.astype(np.float32))
    centroids = pts[rng.choice(n, size=min(n_clusters, n), replace=False)]
    for _ in range(iters):
        sims = pts @ centroids.T
        assign = np.argmax(sims, axis=-1)
        for c in range(centroids.shape[0]):
            members = pts[assign == c]
            if len(members):
                centroids[c] = _normalise(members.mean(axis=0))
    return np.argmax(pts @ centroids.T, axis=-1)


@register_mechanism(
    "routing",
    config=RoutingConfig,
    label="Routing Trans.",
    description="k-means routed attention (Roy et al.)",
    produces_mask=True,
    compressed=True,
    batchable=True,
    latency_model="routing",
)
@register
class RoutingTransformerAttention(AttentionMechanism):
    """k-means routed attention: attend within the shared cluster."""

    name = "routing"
    produces_mask = True

    def __init__(self, n_clusters: int = None, kmeans_iters: int = 4, seed=0):
        self.n_clusters = n_clusters
        self.kmeans_iters = kmeans_iters
        self.seed = seed

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float32)
        k = np.asarray(k, dtype=np.float32)
        batch_shape = q.shape[:-2]
        n_q, n_k = q.shape[-2], k.shape[-2]
        n_clusters = self.n_clusters or max(2, int(round(np.sqrt(n_k))))
        q2 = q.reshape(-1, n_q, q.shape[-1])
        k2 = k.reshape(-1, n_k, k.shape[-1])
        masks = np.empty((q2.shape[0], n_q, n_k), dtype=bool)
        rng = new_rng(self.seed)
        for b in range(q2.shape[0]):
            joint = np.concatenate([q2[b], k2[b]], axis=0)
            assign = kmeans_assign(joint, n_clusters, self.kmeans_iters, rng)
            q_assign, k_assign = assign[:n_q], assign[n_q:]
            masks[b] = q_assign[:, None] == k_assign[None, :]
            # guarantee non-empty rows
            if n_q == n_k:
                np.fill_diagonal(masks[b], True)
        return masks.reshape(batch_shape + (n_q, n_k))

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        return self.masked_attention(q, k, v, self.attention_mask(q, k))
