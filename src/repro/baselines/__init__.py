"""Comparator attention mechanisms (forward-pass NumPy implementations).

Every efficient-transformer baseline the paper compares against (Table 4,
Figure 5) is implemented behind the common
:class:`~repro.baselines.base.AttentionMechanism` interface so experiments can
swap mechanisms freely.  The implementations are inference-path references —
the trainable counterparts used for the accuracy experiments live in
:mod:`repro.nn.attention_layer` — and they expose the sparsity masks they
induce so the lottery-ticket quality metric can be evaluated on them.
"""

from repro.baselines.base import AttentionMechanism, MECHANISM_REGISTRY, create_mechanism
from repro.baselines.full import FullAttention
from repro.baselines.dfss import DfssMechanism
from repro.baselines.topk import ExplicitTopKAttention
from repro.baselines.fixed import (
    LocalWindowAttention,
    StridedSparseAttention,
    TruncatedAttention,
)
from repro.baselines.longformer import LongformerAttention
from repro.baselines.bigbird import BigBirdAttention
from repro.baselines.synthesizer import SynthesizerAttention
from repro.baselines.linformer import LinformerAttention
from repro.baselines.linear_transformer import LinearTransformerAttention
from repro.baselines.performer import PerformerAttention
from repro.baselines.reformer import ReformerAttention
from repro.baselines.routing import RoutingTransformerAttention
from repro.baselines.sinkhorn import SinkhornAttention
from repro.baselines.nystromformer import NystromformerAttention
from repro.baselines.combos import DfssBigBirdAttention, DfssLinformerAttention, DfssNystromformerAttention

__all__ = [
    "AttentionMechanism",
    "MECHANISM_REGISTRY",
    "create_mechanism",
    "FullAttention",
    "DfssMechanism",
    "ExplicitTopKAttention",
    "LocalWindowAttention",
    "StridedSparseAttention",
    "TruncatedAttention",
    "LongformerAttention",
    "BigBirdAttention",
    "SynthesizerAttention",
    "LinformerAttention",
    "LinearTransformerAttention",
    "PerformerAttention",
    "ReformerAttention",
    "RoutingTransformerAttention",
    "SinkhornAttention",
    "NystromformerAttention",
    "DfssBigBirdAttention",
    "DfssLinformerAttention",
    "DfssNystromformerAttention",
]
