"""The paper's DFSS mechanism wrapped in the baseline interface."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.core.attention import dfss_attention
from repro.core.blocked_ell import BlockedEllMask
from repro.core.patterns import default_pattern_for_dtype, resolve_pattern
from repro.core.pruning import nm_prune_mask
from repro.core.sddmm import sddmm_dense
from repro.registry import DfssConfig, register_mechanism


@register_mechanism(
    "dfss",
    config=DfssConfig,
    label="Dfss",
    description="Dynamic N:M fine-grained structured sparse attention (ours)",
    produces_mask=True,
    compressed=True,
    supports_block_mask=True,
    batchable=True,
    latency_model="dfss",
)
@register
class DfssMechanism(AttentionMechanism):
    """Dynamic N:M fine-grained structured sparse attention ("ours")."""

    name = "dfss"
    produces_mask = True

    def __init__(
        self,
        pattern=None,
        dtype: str = "float32",
        block_mask: Optional[BlockedEllMask] = None,
    ):
        self.dtype = dtype
        self.pattern = (
            default_pattern_for_dtype(dtype) if pattern is None else resolve_pattern(pattern)
        )
        self.block_mask = block_mask

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        return dfss_attention(
            q, k, v, pattern=self.pattern, dtype=self.dtype, block_mask=self.block_mask
        )

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        scores = sddmm_dense(q, k, dtype=self.dtype)
        if self.block_mask is not None:
            # mask scores before the N:M selection, matching the sddmm_nm
            # epilogue (a group straddling a block boundary must promote
            # allowed runners-up, not keep excluded columns)
            from repro.core.sddmm import MASKED_SCORE

            allowed = self.block_mask.dense_mask(scores.shape[-2], scores.shape[-1])
            return nm_prune_mask(np.where(allowed, scores, MASKED_SCORE), self.pattern) & allowed
        return nm_prune_mask(scores, self.pattern)
