"""The paper's DFSS mechanism wrapped in the baseline interface."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.core.attention import dfss_attention
from repro.core.blocked_ell import BlockedEllMask
from repro.core.patterns import default_pattern_for_dtype, resolve_pattern
from repro.core.pruning import nm_prune_mask
from repro.core.sddmm import sddmm_dense


@register
class DfssMechanism(AttentionMechanism):
    """Dynamic N:M fine-grained structured sparse attention ("ours")."""

    name = "dfss"
    produces_mask = True

    def __init__(
        self,
        pattern=None,
        dtype: str = "float32",
        block_mask: Optional[BlockedEllMask] = None,
    ):
        self.dtype = dtype
        self.pattern = (
            default_pattern_for_dtype(dtype) if pattern is None else resolve_pattern(pattern)
        )
        self.block_mask = block_mask

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        return dfss_attention(
            q, k, v, pattern=self.pattern, dtype=self.dtype, block_mask=self.block_mask
        )

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        scores = sddmm_dense(q, k, dtype=self.dtype)
        mask = nm_prune_mask(scores, self.pattern)
        if self.block_mask is not None:
            mask = mask & self.block_mask.dense_mask(scores.shape[-2], scores.shape[-1])
        return mask
