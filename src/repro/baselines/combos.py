"""Combinations of DFSS with existing efficient transformers (Appendix A.7).

The paper argues DFSS is orthogonal to the linear-complexity mechanisms and
shows three combinations (Figures 17 and 18):

* :class:`DfssNystromformerAttention` — the two ``n x m`` / ``m x n`` kernels
  of Nyströmformer are pruned to N:M sparsity on the fly (Table 6);
* :class:`DfssBigBirdAttention` — 1:2 / 2:4 sparsity applied inside each
  BigBird block (Figure 18 A);
* :class:`DfssLinformerAttention` — the ``Q (E K)ᵀ`` score matrix is pruned to
  N:M before the softmax and the SpMM with ``F V`` (Figure 18 B).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.baselines.bigbird import BigBirdAttention
from repro.baselines.linformer import LinformerAttention
from repro.baselines.nystromformer import NystromformerAttention, newton_schulz_pinv, segment_means
from repro.core.patterns import resolve_pattern
from repro.core.pruning import nm_prune_mask
from repro.core.sddmm import sddmm_dense, sddmm_nm
from repro.core.softmax import sparse_softmax
from repro.core.spmm import spmm
from repro.registry import (
    BigBirdDfssConfig,
    LinformerDfssConfig,
    NystromDfssConfig,
    register_mechanism,
)


@register_mechanism(
    "nystromformer_dfss",
    config=NystromDfssConfig,
    label="Nystromformer + Dfss",
    description="Nyströmformer with DFSS-pruned softmax kernels (Appendix A.7)",
    aliases=("nystrom_dfss",),
    compressed=True,
)
@register
class DfssNystromformerAttention(AttentionMechanism):
    """Nyströmformer with its two large kernels pruned to dynamic N:M sparsity.

    Note on approximation quality: without finetuning, pruning the ``n x m``
    landmark kernel to 2:4 perturbs the Nyström factorisation, and the
    (regularised) pseudo-inverse of the ``m x m`` kernel amplifies that
    perturbation, so the *untrained* forward pass is a noticeably coarser
    approximation of full attention than plain Nyströmformer.  This matches
    the paper, which always finetunes the combination (Table 6 uses 3,500
    finetuning steps); the trainable counterpart used for that experiment
    lives in :mod:`repro.nn.attention_layer`.
    """

    name = "nystromformer_dfss"
    produces_mask = False

    def __init__(self, num_landmarks: int = 32, pinv_iters: int = 6, pattern="2:4",
                 dtype: str = "float32"):
        self.base = NystromformerAttention(num_landmarks, pinv_iters)
        self.pattern = resolve_pattern(pattern)
        self.dtype = dtype

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        q = np.asarray(q, dtype=np.float32)
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        q_land = segment_means(q, self.base.num_landmarks)
        k_land = segment_means(k, self.base.num_landmarks)
        # kernel1 (n x m) and kernel3 (m x n) are computed by SDDMM + N:M prune
        sp1 = sddmm_nm(q, k_land, pattern=self.pattern, dtype=self.dtype)
        sp3 = sddmm_nm(q_land, k, pattern=self.pattern, dtype=self.dtype)
        kernel1 = sparse_softmax(sp1)
        kernel3 = sparse_softmax(sp3)
        # kernel2 is m x m (small) and stays dense
        from repro.core.softmax import dense_softmax

        scale = 1.0 / np.sqrt(q.shape[-1])
        kernel2 = dense_softmax(np.matmul(q_land, np.swapaxes(k_land, -1, -2)) * scale)
        pinv = newton_schulz_pinv(kernel2, self.base.pinv_iters)
        right = spmm(kernel3, v)  # (m x n) @ V on the sparse tensor core
        left = spmm(kernel1, pinv)  # (n x m) @ pinv on the sparse tensor core
        return np.matmul(left, right)


@register_mechanism(
    "bigbird_dfss",
    config=BigBirdDfssConfig,
    label="BigBird + Dfss",
    description="BigBird block sparsity with N:M pruning inside the blocks",
    aliases=("dfss_bigbird",),
    produces_mask=True,
    compressed=True,
    supports_block_mask=True,
)
@register
class DfssBigBirdAttention(AttentionMechanism):
    """BigBird block sparsity with N:M pruning inside the surviving blocks."""

    name = "bigbird_dfss"
    produces_mask = True

    def __init__(self, pattern="2:4", dtype: str = "float32", **bigbird_kwargs):
        self.bigbird = BigBirdAttention(**bigbird_kwargs)
        self.pattern = resolve_pattern(pattern)
        self.dtype = dtype

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        block_mask = self.bigbird.attention_mask(q, k)
        scores = sddmm_dense(q, k, dtype=self.dtype)
        masked_scores = np.where(block_mask, scores, -np.inf)
        nm = nm_prune_mask(masked_scores, self.pattern)
        return nm & block_mask

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        return self.masked_attention(q, k, v, self.attention_mask(q, k))


@register_mechanism(
    "linformer_dfss",
    config=LinformerDfssConfig,
    label="Linformer + Dfss",
    description="Linformer with the projected score matrix pruned to N:M",
    aliases=("dfss_linformer",),
    compressed=True,
)
@register
class DfssLinformerAttention(AttentionMechanism):
    """Linformer with the ``Q (E K)ᵀ`` score matrix pruned to N:M on the fly."""

    name = "linformer_dfss"
    produces_mask = False

    def __init__(self, proj_dim: int = 64, pattern="2:4", dtype: str = "float32", seed=0):
        self.linformer = LinformerAttention(proj_dim=proj_dim, seed=seed)
        self.pattern = resolve_pattern(pattern)
        self.dtype = dtype

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        n = k.shape[-2]
        e, f = self.linformer._projections(n)
        k_proj = np.matmul(e, np.asarray(k, dtype=np.float32))
        v_proj = np.matmul(f, np.asarray(v, dtype=np.float32))
        sp = sddmm_nm(np.asarray(q, dtype=np.float32), k_proj, pattern=self.pattern, dtype=self.dtype)
        weights = sparse_softmax(sp)
        return spmm(weights, v_proj)
