"""Linear Transformer attention (Katharopoulos et al.).

Replaces the softmax kernel with the feature map ``phi(x) = elu(x) + 1`` and
reorders the computation to ``phi(Q) (phi(K)ᵀ V)`` for linear complexity.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.registry import LinearTransformerConfig, register_mechanism


def elu_feature_map(x: np.ndarray) -> np.ndarray:
    """``elu(x) + 1`` feature map (strictly positive)."""
    x = np.asarray(x, dtype=np.float32)
    return np.where(x > 0, x + 1.0, np.exp(np.minimum(x, 0.0)))


@register_mechanism(
    "linear_transformer",
    config=LinearTransformerConfig,
    label="Linear Trans.",
    description="Kernelised linear attention with the elu+1 feature map",
)
@register
class LinearTransformerAttention(AttentionMechanism):
    """Kernelised linear attention with the elu+1 feature map."""

    name = "linear_transformer"
    produces_mask = False

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        phi_q = elu_feature_map(q)
        phi_k = elu_feature_map(k)
        v = np.asarray(v, dtype=np.float32)
        kv = np.matmul(np.swapaxes(phi_k, -1, -2), v)  # (..., d, d_v)
        normaliser = np.matmul(phi_q, np.sum(phi_k, axis=-2, keepdims=True).swapaxes(-1, -2))
        normaliser = np.maximum(normaliser, 1e-6)
        return np.matmul(phi_q, kv) / normaliser
