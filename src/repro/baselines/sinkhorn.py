"""Sparse Sinkhorn attention (Tay et al.), expressed as a block-matching mask.

The sequence is divided into blocks; a differentiable sorting network
(Sinkhorn normalisation over block-level scores) matches every query block
with one key block, and attention is computed within the local block plus the
matched block.  The inference-path reference below computes the block-level
score matrix from block mean embeddings, runs Sinkhorn normalisation, and
takes the hard matching.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.registry import SinkhornConfig, register_mechanism


def sinkhorn_normalise(scores: np.ndarray, iters: int = 8) -> np.ndarray:
    """Alternating row/column softmax normalisation in log space."""
    log_p = np.asarray(scores, dtype=np.float64)
    for _ in range(iters):
        log_p = log_p - np.log(np.sum(np.exp(log_p), axis=-1, keepdims=True) + 1e-12)
        log_p = log_p - np.log(np.sum(np.exp(log_p), axis=-2, keepdims=True) + 1e-12)
    return np.exp(log_p).astype(np.float32)


@register_mechanism(
    "sinkhorn",
    config=SinkhornConfig,
    label="Sinkhorn Trans.",
    description="Block-matched Sinkhorn attention (Tay et al.)",
    produces_mask=True,
    compressed=True,
    batchable=True,
    latency_model="sinkhorn",
)
@register
class SinkhornAttention(AttentionMechanism):
    """Block-local attention plus one Sinkhorn-matched block per query block."""

    name = "sinkhorn"
    produces_mask = True

    def __init__(self, block_size: int = 32, sinkhorn_iters: int = 8):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.sinkhorn_iters = sinkhorn_iters

    def _block_size_for(self, n: int) -> int:
        b = self.block_size
        while n % b != 0 and b > 1:
            b //= 2
        return max(1, b)

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float32)
        k = np.asarray(k, dtype=np.float32)
        n_q, n_k = q.shape[-2], k.shape[-2]
        if n_q != n_k:
            raise ValueError("Sinkhorn attention expects self-attention")
        block = self._block_size_for(n_q)
        n_blocks = n_q // block
        batch_shape = q.shape[:-2]
        q2 = q.reshape(-1, n_blocks, block, q.shape[-1]).mean(axis=2)
        k2 = k.reshape(-1, n_blocks, block, k.shape[-1]).mean(axis=2)
        scores = np.matmul(q2, np.swapaxes(k2, -1, -2)) / np.sqrt(q.shape[-1])
        perm = sinkhorn_normalise(scores, self.sinkhorn_iters)
        matched = np.argmax(perm, axis=-1)  # (..., n_blocks)
        masks = np.zeros((q2.shape[0], n_q, n_k), dtype=bool)
        for b in range(q2.shape[0]):
            for qb in range(n_blocks):
                rows = slice(qb * block, (qb + 1) * block)
                masks[b, rows, rows] = True  # local block
                kb = int(matched[b, qb])
                masks[b, rows, kb * block : (kb + 1) * block] = True
        return masks.reshape(batch_shape + (n_q, n_k))

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        return self.masked_attention(q, k, v, self.attention_mask(q, k))
