"""Performer / FAVOR+ attention (Choromanski et al.).

Approximates the softmax kernel with positive orthogonal random features:

    ``phi(x) = exp(Wx / d^{1/4} - ||x||² / (2 sqrt(d)) - max(Wx / d^{1/4})) / sqrt(m)``

and computes ``phi(Q) (phi(K)ᵀ V)`` with a row normaliser, giving linear
complexity in the sequence length.  This mirrors the computation graph of
Eq. (32) in Appendix A.5.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.registry import PerformerConfig, register_mechanism
from repro.utils.seeding import new_rng


def orthogonal_random_features(num_features: int, dim: int, rng) -> np.ndarray:
    """Blocks of orthogonalised Gaussian rows, re-scaled to chi-distributed norms."""
    blocks = []
    remaining = num_features
    while remaining > 0:
        gauss = rng.normal(size=(dim, dim))
        q_mat, _ = np.linalg.qr(gauss)
        take = min(remaining, dim)
        blocks.append(q_mat[:take])
        remaining -= take
    w = np.concatenate(blocks, axis=0)
    norms = np.sqrt(rng.chisquare(df=dim, size=(num_features, 1)))
    return (w * norms).astype(np.float32)


@register_mechanism(
    "performer",
    config=PerformerConfig,
    label="Performer",
    description="FAVOR+ positive orthogonal random features (Choromanski et al.)",
    latency_model="performer",
)
@register
class PerformerAttention(AttentionMechanism):
    """FAVOR+ positive orthogonal random-feature attention."""

    name = "performer"
    produces_mask = False

    def __init__(self, num_features: int = None, seed=0, eps: float = 1e-6):
        self.num_features = num_features
        self.seed = seed
        self.eps = eps
        self._feature_cache = {}

    def _features(self, d: int) -> np.ndarray:
        if d not in self._feature_cache:
            m = self.num_features or max(1, int(round(d * np.log(max(d, 2)))))
            self._feature_cache[d] = orthogonal_random_features(m, d, new_rng(self.seed))
        return self._feature_cache[d]

    def _feature_map(self, x: np.ndarray, w: np.ndarray, per_row_stabiliser: bool) -> np.ndarray:
        """FAVOR+ positive features.

        The numerical stabiliser must be constant per attention *row* for the
        query features (it cancels in the row normaliser) but globally constant
        for the key features (a per-key constant would re-weight keys).
        """
        d = x.shape[-1]
        m = w.shape[0]
        proj = np.matmul(x, w.T) / d**0.25  # (..., n, m)
        sq_norm = np.sum(x * x, axis=-1, keepdims=True) / (2.0 * np.sqrt(d))
        shifted = proj - sq_norm
        if per_row_stabiliser:
            stab = np.max(shifted, axis=-1, keepdims=True)
        else:
            stab = np.max(shifted, axis=(-1, -2), keepdims=True)
        return np.exp(shifted - stab) / np.sqrt(m) + self.eps

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        w = self._features(q.shape[-1])
        phi_q = self._feature_map(np.asarray(q, dtype=np.float32), w, per_row_stabiliser=True)
        phi_k = self._feature_map(np.asarray(k, dtype=np.float32), w, per_row_stabiliser=False)
        v = np.asarray(v, dtype=np.float32)
        kv = np.matmul(np.swapaxes(phi_k, -1, -2), v)  # (..., m, d_v)
        out = np.matmul(phi_q, kv)
        normaliser = np.matmul(
            phi_q, np.sum(phi_k, axis=-2, keepdims=True).swapaxes(-1, -2)
        )
        return out / np.maximum(normaliser, self.eps)
