"""Dense full-quadratic attention (the paper's "Transformer" baseline)."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.core.attention import full_attention
from repro.registry import FullConfig, register_mechanism


@register_mechanism(
    "full",
    config=FullConfig,
    label="Transformer (full)",
    description="Dense full-quadratic attention (the paper's baseline)",
    aliases=("transformer", "dense"),
    produces_mask=True,
    latency_model="transformer",
)
@register
class FullAttention(AttentionMechanism):
    """``softmax(Q Kᵀ / sqrt(d)) V`` computed densely (Eq. 1)."""

    name = "full"
    produces_mask = True

    def __init__(self, dtype: str = "float32"):
        self.dtype = dtype

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        return full_attention(q, k, v, dtype=self.dtype)

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        n_q, n_k = q.shape[-2], k.shape[-2]
        return np.ones(q.shape[:-2] + (n_q, n_k), dtype=bool)
