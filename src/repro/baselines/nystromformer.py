"""Nyströmformer attention (Xiong et al.), Figure 17 of the paper.

Approximates ``softmax(Q Kᵀ / sqrt(d)) V`` with the Nyström method using
``m`` landmark rows obtained by segment means:

    ``A ≈ softmax(Q K̃ᵀ) · pinv(softmax(Q̃ K̃ᵀ)) · softmax(Q̃ Kᵀ)``

The pseudo-inverse is computed by the same Newton–Schulz iteration the
reference implementation uses.  The two ``n x m`` / ``m x n`` kernels circled
in Figure 17 are exactly the matrices DFSS compresses when the two methods
are combined (see :class:`repro.baselines.combos.DfssNystromformerAttention`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.registry import NystromformerConfig, register_mechanism
from repro.core.softmax import dense_softmax


def segment_means(x: np.ndarray, num_landmarks: int) -> np.ndarray:
    """Landmark construction: mean of each of ``num_landmarks`` contiguous segments."""
    n = x.shape[-2]
    m = min(num_landmarks, n)
    if n % m == 0:
        seg = x.reshape(x.shape[:-2] + (m, n // m, x.shape[-1]))
        return seg.mean(axis=-2)
    # ragged split: pad the tail segment by repetition of the mean
    idx = np.array_split(np.arange(n), m)
    outs = [x[..., i, :].mean(axis=-2) for i in idx]
    return np.stack(outs, axis=-2)


def newton_schulz_pinv(a: np.ndarray, iters: int = 6) -> np.ndarray:
    """Iterative Moore–Penrose pseudo-inverse of the small ``m x m`` kernel."""
    a = np.asarray(a, dtype=np.float32)
    at = np.swapaxes(a, -1, -2)
    scale = np.max(np.sum(np.abs(a), axis=-2, keepdims=True), axis=-1, keepdims=True) * np.max(
        np.sum(np.abs(a), axis=-1, keepdims=True), axis=-2, keepdims=True
    )
    z = at / np.maximum(scale, 1e-8)
    eye = np.eye(a.shape[-1], dtype=np.float32)
    for _ in range(iters):
        az = np.matmul(a, z)
        z = 0.25 * np.matmul(
            z, 13 * eye - np.matmul(az, 15 * eye - np.matmul(az, 7 * eye - az))
        )
    return z


@register_mechanism(
    "nystromformer",
    config=NystromformerConfig,
    label="Nystromformer",
    description="Nyström landmark approximation (Xiong et al.)",
    aliases=("nystrom",),
    latency_model="nystromformer",
)
@register
class NystromformerAttention(AttentionMechanism):
    """Nyström landmark approximation of softmax attention."""

    name = "nystromformer"
    produces_mask = False

    def __init__(self, num_landmarks: int = 32, pinv_iters: int = 6):
        if num_landmarks <= 0:
            raise ValueError("num_landmarks must be positive")
        self.num_landmarks = num_landmarks
        self.pinv_iters = pinv_iters

    def kernels(
        self, q: np.ndarray, k: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The three softmax kernels of the Nyström factorisation."""
        d = q.shape[-1]
        scale = 1.0 / np.sqrt(d)
        q = np.asarray(q, dtype=np.float32)
        k = np.asarray(k, dtype=np.float32)
        q_land = segment_means(q, self.num_landmarks)
        k_land = segment_means(k, self.num_landmarks)
        kernel1 = dense_softmax(np.matmul(q, np.swapaxes(k_land, -1, -2)) * scale)  # n x m
        kernel2 = dense_softmax(np.matmul(q_land, np.swapaxes(k_land, -1, -2)) * scale)  # m x m
        kernel3 = dense_softmax(np.matmul(q_land, np.swapaxes(k, -1, -2)) * scale)  # m x n
        return kernel1, kernel2, kernel3

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        kernel1, kernel2, kernel3 = self.kernels(q, k)
        v = np.asarray(v, dtype=np.float32)
        pinv = newton_schulz_pinv(kernel2, self.pinv_iters)
        return np.matmul(np.matmul(kernel1, pinv), np.matmul(kernel3, v))
