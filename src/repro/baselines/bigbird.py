"""BigBird-style block sparse attention: window + global + random blocks."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.core.blocked_ell import bigbird_mask
from repro.registry import BigBirdConfig, register_mechanism
from repro.utils.seeding import SeedLike


@register_mechanism(
    "bigbird",
    config=BigBirdConfig,
    label="BigBird",
    description="Blocked window/global/random pattern (Zaheer et al.)",
    produces_mask=True,
    compressed=True,
    batchable=True,
    static_mask=True,
    latency_model="bigbird",
)
@register
class BigBirdAttention(AttentionMechanism):
    """Blocked window/global/random pattern of Zaheer et al."""

    name = "bigbird"
    produces_mask = True

    def __init__(
        self,
        block_size: int = 64,
        window_blocks: int = 1,
        num_global_blocks: int = 1,
        num_random_blocks: int = 1,
        seed: SeedLike = 0,
    ):
        self.block_size = block_size
        self.window_blocks = window_blocks
        self.num_global_blocks = num_global_blocks
        self.num_random_blocks = num_random_blocks
        self.seed = seed

    def _mask_2d(self, n_q: int, n_k: int) -> np.ndarray:
        if n_q != n_k:
            raise ValueError("BigBird attention expects self-attention (n_q == n_k)")
        block_size = self.block_size
        if n_q % block_size != 0:
            # fall back to the largest power-of-two block that divides n
            block_size = 1
            for cand in (64, 32, 16, 8, 4, 2):
                if n_q % cand == 0:
                    block_size = cand
                    break
        mask = bigbird_mask(
            n_q,
            block_size,
            window_blocks=self.window_blocks,
            num_global_blocks=self.num_global_blocks,
            num_random_blocks=self.num_random_blocks,
            seed=self.seed,
        )
        return mask.dense_mask(n_q, n_k)

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        mask = self._mask_2d(q.shape[-2], k.shape[-2])
        return np.broadcast_to(mask, q.shape[:-2] + mask.shape)

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        return self.masked_attention(q, k, v, self._mask_2d(q.shape[-2], k.shape[-2]))
