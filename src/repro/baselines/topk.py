"""Explicit Top-K sparse attention (Zhao et al., "Explicit Sparse Transformer").

Keeps the ``k`` largest scores of every attention row.  The paper uses this
mechanism as the quality *oracle* (it maximises ``Q_p`` at a given density)
that is nevertheless impractical on GPUs (Proposition 4.3).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.core.lottery import topk_mask
from repro.core.sddmm import sddmm_dense
from repro.registry import TopKConfig, register_mechanism


@register_mechanism(
    "topk",
    config=TopKConfig,
    label="Top-K",
    description="Per-row explicit Top-K masking (oracle upper bound for DFSS)",
    produces_mask=True,
    compressed=True,
    batchable=True,
    latency_model="topk",
)
@register
class ExplicitTopKAttention(AttentionMechanism):
    """Per-row Top-K masking of the dense score matrix."""

    name = "topk"
    produces_mask = True

    def __init__(self, density: float = 0.05, k: int = None):
        if k is None and not (0.0 < density <= 1.0):
            raise ValueError("density must lie in (0, 1]")
        self.density = density
        self.k = k

    def _mask(self, scores: np.ndarray) -> np.ndarray:
        if self.k is not None:
            density = min(1.0, self.k / scores.shape[-1])
        else:
            density = self.density
        return topk_mask(scores, density)

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        scores = sddmm_dense(q, k)
        return self.masked_attention(q, k, v, self._mask(scores))

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        return self._mask(sddmm_dense(q, k))
