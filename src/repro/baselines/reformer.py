"""Reformer-style LSH attention (Kitaev et al.), expressed as a dynamic mask.

Queries and keys are bucketed by random-hyperplane LSH; each query attends to
the keys that share a bucket in at least one of the hash rounds.  The exact
Reformer additionally sorts and chunks for efficiency — irrelevant for a
NumPy accuracy reference, so the mechanism is implemented as a data-dependent
sparsity mask over the dense score matrix.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.registry import ReformerConfig, register_mechanism
from repro.utils.seeding import new_rng


def lsh_bucket_ids(x: np.ndarray, n_buckets: int, n_hashes: int, rng) -> np.ndarray:
    """Random-rotation LSH bucket ids of shape ``x.shape[:-1] + (n_hashes,)``."""
    d = x.shape[-1]
    if n_buckets % 2 != 0:
        raise ValueError("n_buckets must be even for rotation LSH")
    rotations = rng.normal(size=(n_hashes, d, n_buckets // 2)).astype(np.float32)
    # (..., n, n_hashes, n_buckets/2)
    rotated = np.einsum("...nd,hdb->...nhb", np.asarray(x, dtype=np.float32), rotations)
    full = np.concatenate([rotated, -rotated], axis=-1)
    return np.argmax(full, axis=-1)  # (..., n, n_hashes)


@register_mechanism(
    "reformer",
    config=ReformerConfig,
    label="Reformer",
    description="LSH-bucketed attention (Kitaev et al.)",
    produces_mask=True,
    compressed=True,
    batchable=True,
    latency_model="reformer",
)
@register
class ReformerAttention(AttentionMechanism):
    """LSH-bucketed attention mask (shared-bucket pairs attend to each other)."""

    name = "reformer"
    produces_mask = True

    def __init__(self, n_buckets: int = 16, n_hashes: int = 2, seed=0):
        self.n_buckets = n_buckets
        self.n_hashes = n_hashes
        self.seed = seed

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        rng = new_rng(self.seed)
        n_buckets = min(self.n_buckets, max(2, q.shape[-2] // 4))
        if n_buckets % 2:
            n_buckets += 1
        q_ids = lsh_bucket_ids(q, n_buckets, self.n_hashes, rng)
        # Reformer hashes the (normalised) queries and reuses them for keys in
        # shared-QK attention; we hash K with the same rotations for generality.
        rng2 = new_rng(self.seed)
        k_ids = lsh_bucket_ids(k, n_buckets, self.n_hashes, rng2)
        # mask[..., i, j] = any_h q_ids[..., i, h] == k_ids[..., j, h]
        same = q_ids[..., :, None, :] == k_ids[..., None, :, :]
        mask = np.any(same, axis=-1)
        # always allow self-attention so no row is empty
        n_q, n_k = q.shape[-2], k.shape[-2]
        if n_q == n_k:
            eye = np.eye(n_q, dtype=bool)
            mask = mask | eye
        return mask

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        return self.masked_attention(q, k, v, self.attention_mask(q, k))
