"""Longformer-style attention: sliding window plus a few global tokens."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.baselines.fixed import local_window_mask
from repro.registry import LongformerConfig, register_mechanism


def longformer_mask(n_q: int, n_k: int, window: int, num_global: int) -> np.ndarray:
    """Sliding-window mask with the first ``num_global`` tokens made global."""
    mask = local_window_mask(n_q, n_k, window)
    g = min(num_global, n_k)
    mask[:, :g] = True  # everyone attends to the global tokens
    mask[: min(num_global, n_q), :] = True  # global tokens attend everywhere
    return mask


@register_mechanism(
    "longformer",
    config=LongformerConfig,
    label="Longformer",
    description="Sliding window plus global tokens (Beltagy et al.)",
    produces_mask=True,
    compressed=True,
    batchable=True,
    static_mask=True,
    latency_model="longformer",
)
@register
class LongformerAttention(AttentionMechanism):
    """Fixed window + global-token pattern (Beltagy et al.)."""

    name = "longformer"
    produces_mask = True

    def __init__(self, window: int = 32, num_global: int = 1):
        self.window = window
        self.num_global = num_global

    def _mask_2d(self, n_q: int, n_k: int) -> np.ndarray:
        return longformer_mask(n_q, n_k, self.window, self.num_global)

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        mask = self._mask_2d(q.shape[-2], k.shape[-2])
        return np.broadcast_to(mask, q.shape[:-2] + mask.shape)

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        return self.masked_attention(q, k, v, self._mask_2d(q.shape[-2], k.shape[-2]))
