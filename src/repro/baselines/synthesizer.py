"""Synthesizer attention (Tay et al.): attention weights independent of QKᵀ.

The "Random Synthesizer" variant replaces the content-based score matrix with
a (per-head) random matrix that would be learned during training; at inference
it does not depend on the inputs at all.  Here the random matrix is drawn once
at construction from a seeded generator, standing in for the learned one.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.core.softmax import dense_softmax
from repro.registry import SynthesizerConfig, register_mechanism
from repro.utils.seeding import new_rng


@register_mechanism(
    "synthesizer",
    config=SynthesizerConfig,
    label="Synthesizer",
    description="Random content-independent attention weights (Tay et al.)",
)
@register
class SynthesizerAttention(AttentionMechanism):
    """Random (content-independent) attention weights."""

    name = "synthesizer"
    produces_mask = False

    def __init__(self, max_len: int = 4096, seed=0):
        self.max_len = max_len
        self._rng = new_rng(seed)
        self._matrix = self._rng.normal(size=(max_len, max_len)).astype(np.float32)

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        n_q, n_k = q.shape[-2], k.shape[-2]
        if n_q > self.max_len or n_k > self.max_len:
            raise ValueError(
                f"sequence length {max(n_q, n_k)} exceeds the synthesizer table ({self.max_len})"
            )
        weights = dense_softmax(self._matrix[:n_q, :n_k])
        return np.matmul(
            np.broadcast_to(weights, q.shape[:-2] + weights.shape),
            np.asarray(v, dtype=np.float32),
        )
