"""Common interface for attention mechanisms.

An :class:`AttentionMechanism` maps ``(Q, K, V)`` — arrays of shape
``(..., seq, head_dim)`` sharing their leading batch dimensions — to an output
of shape ``(..., seq, head_dim_v)``.  Mechanisms that operate by sparsifying
the full attention matrix can additionally report the boolean mask they
induce (:meth:`AttentionMechanism.attention_mask`), which feeds the
lottery-ticket quality analysis of Section 4.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from repro.core.softmax import masked_dense_softmax
from repro.core.sddmm import sddmm_dense


class AttentionMechanism:
    """Base class for forward-pass attention mechanisms."""

    #: Registry key; subclasses override.
    name: str = "base"

    #: Whether the mechanism induces an explicit sparsity mask over QK^T.
    produces_mask: bool = False

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> Optional[np.ndarray]:
        """Boolean mask over the dense score matrix, if the mechanism defines one."""
        return None

    # -------------------------------------------------------------- utilities
    @staticmethod
    def _validate(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> None:
        if q.shape[:-2] != k.shape[:-2] or q.shape[:-2] != v.shape[:-2]:
            raise ValueError("Q, K, V must share their leading batch dimensions")
        if q.shape[-1] != k.shape[-1]:
            raise ValueError("Q and K must share the head dimension")
        if k.shape[-2] != v.shape[-2]:
            raise ValueError("K and V must share the sequence length")

    def masked_attention(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Dense attention restricted to ``mask`` (used by all mask-based baselines)."""
        scores = sddmm_dense(q, k)
        weights = masked_dense_softmax(scores, mask)
        return np.matmul(weights, np.asarray(v, dtype=np.float32))

    def approximation_error(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray
    ) -> float:
        """Relative Frobenius error against full attention."""
        from repro.baselines.full import FullAttention

        ref = FullAttention()(q, k, v)
        out = self(q, k, v)
        denom = np.linalg.norm(ref)
        return float(np.linalg.norm(out - ref) / denom) if denom else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


#: name -> mechanism class registry, populated by ``register``.
MECHANISM_REGISTRY: Dict[str, Type[AttentionMechanism]] = {}


def register(cls: Type[AttentionMechanism]) -> Type[AttentionMechanism]:
    """Class decorator adding a mechanism to :data:`MECHANISM_REGISTRY`."""
    if not cls.name or cls.name == "base":
        raise ValueError(f"{cls.__name__} must define a unique .name")
    MECHANISM_REGISTRY[cls.name] = cls
    return cls


def create_mechanism(name: str, **kwargs) -> AttentionMechanism:
    """Instantiate a registered mechanism by name.

    .. deprecated::
        Thin wrapper over the unified registry; use
        ``repro.attention(...)`` / :class:`repro.engine.AttentionEngine` or
        :func:`repro.registry.make_mechanism` instead.
    """
    import warnings

    warnings.warn(
        "create_mechanism() is deprecated; use repro.attention(...), "
        "repro.AttentionEngine, or repro.registry.make_mechanism()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.registry import make_mechanism

    return make_mechanism(name, **kwargs)
