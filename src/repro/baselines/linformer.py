"""Linformer: low-rank projection of keys and values (Wang et al.).

``O = softmax(Q (E K)ᵀ / sqrt(d)) (F V)`` with projection matrices
``E, F ∈ R^{k x n}`` (``k << n``).  At inference the projections are fixed
(learned) matrices; here they are seeded random Gaussian projections, which is
also how Linformer initialises them.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AttentionMechanism, register
from repro.core.softmax import dense_softmax
from repro.registry import LinformerConfig, register_mechanism
from repro.utils.seeding import new_rng


@register_mechanism(
    "linformer",
    config=LinformerConfig,
    label="Linformer",
    description="Low-rank key/value projection (Wang et al.)",
)
@register
class LinformerAttention(AttentionMechanism):
    """Low-rank (n -> k) projection of the attention context."""

    name = "linformer"
    produces_mask = False

    def __init__(self, proj_dim: int = 64, seed=0):
        if proj_dim <= 0:
            raise ValueError("proj_dim must be positive")
        self.proj_dim = proj_dim
        self.seed = seed
        self._proj_cache = {}

    def _projections(self, n: int):
        if n not in self._proj_cache:
            rng = new_rng(self.seed)
            k = min(self.proj_dim, n)
            e = rng.normal(0.0, 1.0 / np.sqrt(k), size=(k, n)).astype(np.float32)
            f = rng.normal(0.0, 1.0 / np.sqrt(k), size=(k, n)).astype(np.float32)
            self._proj_cache[n] = (e, f)
        return self._proj_cache[n]

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._validate(q, k, v)
        n = k.shape[-2]
        d = q.shape[-1]
        e, f = self._projections(n)
        k_proj = np.matmul(e, np.asarray(k, dtype=np.float32))  # (..., k, d)
        v_proj = np.matmul(f, np.asarray(v, dtype=np.float32))
        scores = np.matmul(q, np.swapaxes(k_proj, -1, -2)) / np.sqrt(d)
        weights = dense_softmax(scores)
        return np.matmul(weights, v_proj)
