"""Human-readable profile reports: attribution tables and the critical path.

Consumes the artifacts of the other two layers — the op DAG and a replay
result — and renders the tables ``python -m repro.profile`` prints: per-kernel
and per-phase time attribution, the critical path with per-hop costs, the
cache statistics carried in the trace metadata, and the replay's
predicted-vs-measured summary.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Union

from repro.profile.dag import OpDag, build_dag
from repro.profile.replay import ReplayResult
from repro.utils.formatting import format_table

__all__ = ["kernel_attribution", "phase_attribution", "format_report"]


def kernel_attribution(dag: OpDag) -> List[Dict[str, object]]:
    """Per-kernel totals: count, total/mean µs, share of all kernel time."""
    totals: Dict[str, float] = defaultdict(float)
    counts: Dict[str, int] = defaultdict(int)
    for node in dag.nodes:
        totals[node.name] += node.dur_us
        counts[node.name] += 1
    grand = sum(totals.values()) or 1.0
    rows = [
        {
            "kernel": name,
            "count": counts[name],
            "total_us": totals[name],
            "mean_us": totals[name] / counts[name],
            "share": totals[name] / grand,
        }
        for name in totals
    ]
    rows.sort(key=lambda r: -r["total_us"])
    return rows


def phase_attribution(dag: OpDag) -> List[Dict[str, object]]:
    """Per-phase (fwd/bwd) totals over the DAG's kernels."""
    totals: Dict[str, float] = defaultdict(float)
    counts: Dict[str, int] = defaultdict(int)
    for node in dag.nodes:
        totals[node.phase] += node.dur_us
        counts[node.phase] += 1
    grand = sum(totals.values()) or 1.0
    return [
        {
            "phase": phase,
            "kernels": counts[phase],
            "total_us": totals[phase],
            "share": totals[phase] / grand,
        }
        for phase in sorted(totals)
    ]


def _critical_path_lines(dag: OpDag, result: ReplayResult) -> List[str]:
    by_index = {node.index: node for node in dag.nodes}
    rows = []
    for hop, index in enumerate(result.path):
        node = by_index[index]
        rows.append(
            (
                hop,
                node.name,
                node.phase,
                node.backend or "-",
                result.cost_us.get(index, node.dur_us) / 1e3,
            )
        )
    return [
        format_table(
            ("#", "kernel", "phase", "backend", "cost_ms"),
            rows,
            digits=4,
            title=f"Critical path ({result.path_us / 1e3:.4f} ms over "
            f"{len(result.path)} kernels)",
        )
    ]


def format_report(
    source: Union[OpDag, str, Mapping],
    result: Optional[ReplayResult] = None,
) -> str:
    """Render the full profile report of one recorded step as text."""
    dag = source if isinstance(source, OpDag) else build_dag(source)
    sections: List[str] = []

    step = dag.step
    if step is not None:
        sections.append(
            f"Step {step.name!r}: measured wall {step.dur_us / 1e3:.4f} ms "
            f"({len(dag.nodes)} kernels; lead {dag.lead_us / 1e3:.4f} ms, "
            f"tail {dag.tail_us / 1e3:.4f} ms)"
        )
    else:
        sections.append(f"{len(dag.nodes)} kernels (no step span recorded)")

    sections.append(
        format_table(
            ("kernel", "count", "total_ms", "mean_ms", "share"),
            [
                (
                    r["kernel"],
                    r["count"],
                    r["total_us"] / 1e3,
                    r["mean_us"] / 1e3,
                    f"{100.0 * r['share']:.1f}%",
                )
                for r in kernel_attribution(dag)
            ],
            digits=4,
            title="Per-kernel attribution",
        )
    )
    sections.append(
        format_table(
            ("phase", "kernels", "total_ms", "share"),
            [
                (
                    r["phase"],
                    r["kernels"],
                    r["total_us"] / 1e3,
                    f"{100.0 * r['share']:.1f}%",
                )
                for r in phase_attribution(dag)
            ],
            digits=4,
            title="Per-phase attribution",
        )
    )

    if result is not None:
        sections.extend(_critical_path_lines(dag, result))
        line = f"Replay: predicted step {result.predicted_us / 1e3:.4f} ms"
        if result.measured_us is not None:
            line += (
                f" vs measured {result.measured_us / 1e3:.4f} ms "
                f"(error {100.0 * (result.rel_error or 0.0):.2f}%)"
            )
        sections.append(line)

    for cache in ("plan_cache", "structure_cache"):
        stats = dag.metadata.get(cache)
        if isinstance(stats, Mapping):
            pairs = ", ".join(f"{k}={v}" for k, v in stats.items())
            sections.append(f"{cache}: {pairs}")

    return "\n\n".join(sections)
