"""Replay simulator: schedule a recorded op DAG under hypothetical costs.

Given the DAG of :mod:`repro.profile.dag`, the replayer runs a list
scheduler: every node starts when all of its predecessors have finished
(plus the recorded host gap on each edge), and the predicted step time is

    ``lead + make-span(DAG) + tail``

With the recorded costs this reconstructs the measured step wall time
exactly — the self-check behind the <10% acceptance gate in CI — and any
deviation under substituted costs is then attributable to the substitution
alone:

* ``cost_fn`` maps a node to a hypothetical duration in µs (return ``None``
  to keep the measured duration) — e.g. :func:`gpusim_cost_fn` replaces each
  kernel's measured time with the analytical A100 roofline latency of
  :mod:`repro.gpusim`, turning a CPU-recorded DAG into a GPU step-time
  prediction;
* ``phase_scale`` / ``kernel_scale`` scale the (possibly substituted) costs
  of a phase (``{"bwd": 0.5}`` — "what if the backward were twice as fast?")
  or of a named kernel (``{"sddmm_nm": 0.0}`` — "what if scoring were
  free?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.profile.dag import OpDag, OpNode, build_dag, critical_path

__all__ = ["ReplayResult", "replay", "gpusim_cost_fn"]

CostFn = Callable[[OpNode], Optional[float]]


@dataclass
class ReplayResult:
    """Outcome of one scheduled replay."""

    predicted_us: float
    #: recorded step wall time (None when the trace holds no step span).
    measured_us: Optional[float]
    makespan_us: float
    lead_us: float
    tail_us: float
    #: per-node hypothetical durations, by node index.
    cost_us: Dict[int, float] = field(default_factory=dict)
    #: node indices of the predicted critical path, in execution order.
    path: List[int] = field(default_factory=list)
    #: critical-path length (µs) under the hypothetical costs.
    path_us: float = 0.0

    @property
    def rel_error(self) -> Optional[float]:
        """|predicted − measured| / measured — the replay self-check metric."""
        if self.measured_us is None or self.measured_us <= 0.0:
            return None
        return abs(self.predicted_us - self.measured_us) / self.measured_us


def replay(
    dag: Union[OpDag, str, Mapping],
    cost_fn: Optional[CostFn] = None,
    phase_scale: Optional[Mapping[str, float]] = None,
    kernel_scale: Optional[Mapping[str, float]] = None,
) -> ReplayResult:
    """Schedule ``dag`` under hypothetical costs and predict the step time.

    ``dag`` may be an :class:`OpDag`, a trace path, or a trace payload dict.
    With no overrides the prediction equals the recorded step wall time —
    run that configuration first as a self-check before trusting any
    counterfactual.
    """
    if not isinstance(dag, OpDag):
        dag = build_dag(dag)

    cost_us: Dict[int, float] = {}
    for node in dag.nodes:
        dur = None if cost_fn is None else cost_fn(node)
        dur = node.dur_us if dur is None else float(dur)
        if phase_scale:
            dur *= float(phase_scale.get(node.phase, 1.0))
        if kernel_scale:
            dur *= float(kernel_scale.get(node.name, 1.0))
        cost_us[node.index] = dur

    incoming = dag.predecessors()
    finish: Dict[int, float] = {}
    for node in dag.nodes:  # indices are topological
        start = 0.0
        for u, gap in incoming[node.index]:
            start = max(start, finish[u] + gap)
        finish[node.index] = start + cost_us[node.index]
    makespan = max(finish.values()) if finish else 0.0
    path_us, path = critical_path(dag, cost_us)

    predicted = dag.lead_us + makespan + dag.tail_us
    return ReplayResult(
        predicted_us=predicted,
        measured_us=dag.measured_us,
        makespan_us=makespan,
        lead_us=dag.lead_us,
        tail_us=dag.tail_us,
        cost_us=cost_us,
        path=path,
        path_us=path_us,
    )


def _parse_shape(node: OpNode) -> Optional[Tuple[int, ...]]:
    shape = node.args.get("shape")
    if not isinstance(shape, str):
        return None
    try:
        return tuple(int(part) for part in shape.split("x"))
    except ValueError:
        return None


def _bhld(shape: Tuple[int, ...]) -> Optional[Tuple[int, int, int]]:
    """Collapse leading batch dims of a ``(..., L, D)`` shape to ``(b, L, D)``."""
    if len(shape) < 2:
        return None
    batch = 1
    for dim in shape[:-2]:
        batch *= dim
    return batch, shape[-2], shape[-1]


def gpusim_cost_fn(device=None, dtype: str = "float32") -> CostFn:
    """Cost function replacing measured kernel times with gpusim latencies.

    Each node's problem size is recovered from the ``shape`` its tracing
    wrapper recorded (the first array-like argument of the kernel call: Q for
    the SDDMMs and the backward, V for the SpMM, the compressed value buffer
    for the fused softmax).  Kernels without an analytical model — the
    serving fast paths, CSR-layout ops — keep their measured durations, so
    hybrid traces still replay.
    """
    from repro.gpusim import AMPERE_A100, ops

    dev = AMPERE_A100 if device is None else device

    def cost(node: OpNode) -> Optional[float]:
        parsed = _parse_shape(node)
        if parsed is None:
            return None
        dims = _bhld(parsed)
        if dims is None:
            return None
        b, rows, last = dims
        if node.name == "sddmm_nm":
            # shape is Q: (..., L, D); self-attention → n_k = n_q
            sec = ops.sddmm_nm_fused(b, rows, rows, last, dtype).latency(dev)
        elif node.name == "masked_softmax":
            # shape is the compressed value buffer: (..., L, kept); the
            # sparse softmax model counts cols/2 elements per row
            sec = ops.softmax_sparse_nm(b, rows, 2 * last, dtype).latency(dev)
        elif node.name == "spmm":
            # shape is V: (..., L, D)
            sec = ops.spmm_nm(b, rows, rows, last, dtype).latency(dev)
        elif node.name == "attention_bwd":
            # shape is Q: (..., L, D); the full five-kernel fused backward
            sec = ops.total_latency(
                ops.attention_bwd_nm_ops(b, rows, rows, last, dtype), dev
            )
        else:
            return None
        return sec * 1e6

    return cost
