"""Chrome-trace tracer: the recording half of the ``repro.profile`` subsystem.

Every instrumented site in the repository — the kernel registry dispatch,
the compiled-plan stages, the autograd backward pass, the serving executor —
asks this module for the *current tracer* and emits events only when one is
installed.  The disabled fast path is a single module-global read returning
``None``, so production runs pay essentially nothing (the acceptance bar is
<2% on the fused attention path at smoke scale; measured ~0%, see
EXPERIMENTS.md).

Events use the Chrome trace-event JSON format (the ``chrome://tracing`` /
Perfetto interchange format): complete events (``ph="X"``) carry ``name``,
``cat``, ``ts``/``dur`` in microseconds, ``pid``/``tid`` and an ``args``
payload; instant events (``ph="i"``) mark cache hits/misses.  Event
categories used by the repo:

* ``kernel`` — one registry-kernel invocation (op name, backend, shape,
  phase ``fwd``/``bwd``, plus any active labels such as the plan's mechanism
  and shape-class).  These are the nodes of the op DAG.
* ``step`` — one logical unit of work (a train step, a serving burst); the
  replayer validates its prediction against this span's wall time.
* ``serve`` — serving-engine batch flushes.
* ``cache`` — instant events for plan-cache and structure-cache outcomes.
* ``phase`` — the autograd backward region marker.

Activation, in decreasing priority: an explicit :func:`trace` context (or
:func:`start_trace`/:func:`stop_trace` pair), and the ``REPRO_TRACE=path``
environment variable, which installs a process-wide tracer at import time and
writes the trace file at interpreter exit.

This module deliberately imports nothing from the rest of ``repro`` — the
kernel registry imports *it*, so any repro import here would be a cycle.
Cross-module coupling goes through two tiny registries instead:

* session hooks (:func:`register_session_hook`) run at trace start *and*
  stop — the plan cache registers its ``clear`` so kernels resolved before
  the session get re-resolved through the tracing wrapper, and wrappers
  never outlive the session;
* metadata providers (:func:`register_metadata_provider`) are sampled at
  stop time into the trace's ``metadata`` block — cache hit/miss/eviction
  statistics travel inside the artifact they describe.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "TRACE_ENV_VAR",
    "Tracer",
    "current_tracer",
    "is_tracing",
    "start_trace",
    "stop_trace",
    "trace",
    "phase_scope",
    "register_session_hook",
    "register_metadata_provider",
]

#: Environment variable holding the trace output path for whole-process runs.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Phases an event can belong to (forward by default; the autograd engine and
#: the fused backward switch to ``bwd`` for the duration of the backward pass).
FORWARD = "fwd"
BACKWARD = "bwd"

_ACTIVE: Optional["Tracer"] = None
_SESSION_HOOKS: List[Callable[[], None]] = []
_METADATA_PROVIDERS: Dict[str, Callable[[], Any]] = {}


class Tracer:
    """Collects Chrome-trace events with microsecond timestamps.

    Thread-safe in the cheap sense: appends hold a lock, and thread idents
    are mapped to small stable ``tid`` integers in first-seen order so the
    trace (and the DAG built from it) is deterministic for single-threaded
    runs and readable for multi-threaded ones.
    """

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self._clock = clock
        self._t0 = clock()
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._tids: Dict[int, int] = {}
        self._thread_names: Dict[int, str] = {}
        self._phase = threading.local()
        self._labels = threading.local()
        self.metadata: Dict[str, Any] = {}
        self.pid = os.getpid()

    # ------------------------------------------------------------ time / ids
    def _now_us(self) -> float:
        return (self._clock() - self._t0) / 1e3

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            name = threading.current_thread().name
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
                # Stable tid → thread-name mapping, recorded at first use so
                # worker lanes stay identifiable even after the pool is gone.
                self._thread_names.setdefault(tid, name)
        return tid

    def thread_names(self) -> Dict[int, str]:
        """Snapshot of the stable ``tid -> thread name`` mapping."""
        with self._lock:
            return dict(self._thread_names)

    @property
    def phase(self) -> str:
        return getattr(self._phase, "value", FORWARD)

    def _current_labels(self) -> Dict[str, Any]:
        stack = getattr(self._labels, "stack", None)
        if not stack:
            return {}
        merged: Dict[str, Any] = {}
        for frame in stack:
            merged.update(frame)
        return merged

    # --------------------------------------------------------------- emitters
    def _append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    def emit_complete(
        self,
        name: str,
        cat: str,
        start_us: float,
        dur_us: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append a complete (``ph="X"``) event covering ``[start, start+dur]``."""
        payload = self._current_labels()
        payload["phase"] = self.phase
        if args:
            payload.update(args)
        self._append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": float(start_us),
                "dur": float(dur_us),
                "pid": self.pid,
                "tid": self._tid(),
                "args": payload,
            }
        )

    def instant(self, name: str, cat: str = "cache", **args: Any) -> None:
        """Append an instant (``ph="i"``) event at the current time."""
        payload = self._current_labels()
        payload["phase"] = self.phase
        payload.update(args)
        self._append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": self._now_us(),
                "pid": self.pid,
                "tid": self._tid(),
                "args": payload,
            }
        )

    @contextmanager
    def span(self, name: str, cat: str = "kernel", **args: Any) -> Iterator[None]:
        """Context manager timing its body as one complete event."""
        start = self._now_us()
        try:
            yield
        finally:
            self.emit_complete(name, cat, start, self._now_us() - start, args)

    @contextmanager
    def phase_scope(self, phase: str) -> Iterator[None]:
        """Set the phase (``fwd``/``bwd``) stamped on events inside the block."""
        previous = getattr(self._phase, "value", None)
        self._phase.value = phase
        try:
            yield
        finally:
            if previous is None:
                del self._phase.value
            else:
                self._phase.value = previous

    # ----------------------------------------------- cross-thread propagation
    def capture_context(self) -> Dict[str, Any]:
        """Snapshot the calling thread's phase and merged labels.

        Phase and labels are thread-local; a worker pool executing tiles on
        behalf of a submitting thread captures this on the submitter and
        re-applies it around each tile (:meth:`apply_context`), so worker-lane
        events carry the same ``fwd``/``bwd`` phase and plan labels the work
        would have carried inline.
        """
        return {
            "phase": getattr(self._phase, "value", None),
            "labels": self._current_labels(),
        }

    @contextmanager
    def apply_context(self, context: Dict[str, Any]) -> Iterator[None]:
        """Re-apply a :meth:`capture_context` snapshot on the current thread."""
        phase = context.get("phase")
        labels = context.get("labels") or {}
        if phase is None:
            if labels:
                with self.label_scope(**labels):
                    yield
            else:
                yield
        elif labels:
            with self.phase_scope(phase), self.label_scope(**labels):
                yield
        else:
            with self.phase_scope(phase):
                yield

    @contextmanager
    def label_scope(self, **labels: Any) -> Iterator[None]:
        """Merge ``labels`` into the ``args`` of every event inside the block."""
        stack = getattr(self._labels, "stack", None)
        if stack is None:
            stack = self._labels.stack = []
        stack.append(labels)
        try:
            yield
        finally:
            stack.pop()

    # ----------------------------------------------------------------- output
    @property
    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def payload(self) -> Dict[str, Any]:
        """The Chrome-trace JSON object (``traceEvents`` + ``metadata``)."""
        with self._lock:
            events = list(self._events)
            names = dict(self._thread_names)
        # ``ph="M"`` thread_name metadata events give every recorded lane a
        # human-readable label in chrome://tracing / Perfetto.  Appended after
        # the recorded events (viewers accept them anywhere), so
        # ``traceEvents[i]`` keeps indexing the i-th recorded event.
        name_events = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self.pid,
                "tid": tid,
                "args": {"name": name},
            }
            for tid, name in sorted(names.items())
        ]
        return {
            "traceEvents": events + name_events,
            "displayTimeUnit": "ms",
            "metadata": dict(self.metadata),
        }

    def write(self, path: str) -> None:
        """Write the trace as Chrome-trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.payload(), fh)
            fh.write("\n")


# ------------------------------------------------------------- global session
def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` — the disabled-path check every
    instrumented site performs first."""
    return _ACTIVE


def is_tracing() -> bool:
    return _ACTIVE is not None


def register_session_hook(hook: Callable[[], None]) -> None:
    """Run ``hook`` at every trace start and stop (idempotent per function).

    Used by caches that memoise resolved kernel functions: clearing at both
    boundaries means kernels resolved before the session are re-resolved
    through the tracing wrapper, and no wrapper survives past the session.
    """
    if hook not in _SESSION_HOOKS:
        _SESSION_HOOKS.append(hook)


def register_metadata_provider(name: str, provider: Callable[[], Any]) -> None:
    """Sample ``provider()`` into the trace metadata under ``name`` at stop."""
    _METADATA_PROVIDERS[name] = provider


def _run_session_hooks() -> None:
    for hook in _SESSION_HOOKS:
        hook()


def start_trace(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process-wide tracer."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a trace session is already active")
    _ACTIVE = tracer if tracer is not None else Tracer()
    _run_session_hooks()
    return _ACTIVE


def stop_trace(path: Optional[str] = None) -> Tracer:
    """Uninstall the tracer; collect metadata and optionally write the file."""
    global _ACTIVE
    if _ACTIVE is None:
        raise RuntimeError("no trace session is active")
    tracer = _ACTIVE
    for name, provider in _METADATA_PROVIDERS.items():
        try:
            tracer.metadata[name] = provider()
        except Exception as exc:  # metadata must never kill a recorded trace
            tracer.metadata[name] = f"<provider failed: {exc}>"
    _ACTIVE = None
    _run_session_hooks()
    if path:
        tracer.write(path)
    return tracer


@contextmanager
def trace(path: Optional[str] = None) -> Iterator[Tracer]:
    """Record a trace for the duration of the block::

        with repro.profile.trace("step.trace.json") as tracer:
            run_train_step()
    """
    tracer = start_trace()
    try:
        yield tracer
    finally:
        stop_trace(path)


@contextmanager
def phase_scope(phase: str) -> Iterator[None]:
    """Module-level phase scope: no-op when tracing is disabled."""
    tracer = _ACTIVE
    if tracer is None:
        yield
    else:
        with tracer.phase_scope(phase):
            yield


def _install_from_env() -> None:
    """``REPRO_TRACE=path`` starts a whole-process trace written at exit."""
    path = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not path or _ACTIVE is not None:
        return
    start_trace()

    def _flush() -> None:
        if _ACTIVE is not None:
            stop_trace(path)

    atexit.register(_flush)


_install_from_env()
