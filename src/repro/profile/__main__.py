"""``python -m repro.profile`` — record, analyze, and replay traces.

Subcommands:

* ``train`` — trace one fused DFSS train step (forward + backward through the
  autograd op), print the attribution report and the replay self-check, and
  optionally write the Chrome trace;
* ``serve`` — trace one serving burst over a synthetic workload;
* ``report`` — analyze a previously recorded ``.trace.json``;
* ``overhead`` — measure the tracing overhead on the fused path
  (enabled vs disabled), the number quoted in EXPERIMENTS.md.

``--check`` turns the replay self-check into a gate: exit non-zero when the
replayed prediction for the *recorded* configuration deviates from the
measured step wall time by more than ``--tolerance`` (CI runs this).
``--gpusim`` adds a counterfactual replay under the analytical A100 model;
``--scale-phase``/``--scale-kernel`` add user what-ifs.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from typing import Dict, List, Optional

from repro.profile import tracer as tracer_mod
from repro.profile.dag import build_dag
from repro.profile.replay import gpusim_cost_fn, replay
from repro.profile.report import format_report


def _parse_scales(pairs: Optional[List[str]], flag: str) -> Optional[Dict[str, float]]:
    if not pairs:
        return None
    out: Dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"{flag} expects NAME=FACTOR, got {pair!r}")
        out[name] = float(value)
    return out


def _make_train_step(args):
    import numpy as np

    from repro.nn.autograd import parameter
    from repro.nn.sparse_attention import dfss_sparse_attention

    rng = np.random.default_rng(args.seed)
    b, h, n, d = args.shape
    q = parameter(rng.standard_normal((b, h, n, d), dtype=np.float32))
    k = parameter(rng.standard_normal((b, h, n, d), dtype=np.float32))
    v = parameter(rng.standard_normal((b, h, n, d), dtype=np.float32))

    def step() -> None:
        out, _ = dfss_sparse_attention(
            q, k, v, pattern=args.pattern, backend=args.backend
        )
        out.sum().backward()
        q.grad = k.grad = v.grad = None

    return step


def _record(step, step_name: str, warmup: int):
    """Run ``step`` under a trace session, returning the tracer.

    Warm-up iterations run inside the session but outside the step span, so
    the recorded step sees compiled plans and warmed numpy caches — the
    steady state the replayer should model.
    """
    with tracer_mod.trace() as active:
        for _ in range(max(warmup, 0)):
            step()
        with active.span(step_name, "step"):
            step()
    return active


def _analyze(payload, args) -> int:
    dag = build_dag(payload, step=getattr(args, "step", None))
    self_check = replay(dag)
    print(format_report(dag, self_check))

    phase_scale = _parse_scales(args.scale_phase, "--scale-phase")
    kernel_scale = _parse_scales(args.scale_kernel, "--scale-kernel")
    if phase_scale or kernel_scale:
        what_if = replay(dag, phase_scale=phase_scale, kernel_scale=kernel_scale)
        print(
            f"\nWhat-if (phase_scale={phase_scale or {}}, "
            f"kernel_scale={kernel_scale or {}}): "
            f"predicted step {what_if.predicted_us / 1e3:.4f} ms"
        )
    if args.gpusim:
        simulated = replay(dag, cost_fn=gpusim_cost_fn())
        print(
            f"\nGpusim replay (analytical A100 kernel costs): "
            f"predicted step {simulated.predicted_us / 1e3:.4f} ms"
        )

    if args.check:
        error = self_check.rel_error
        if error is None:
            print("replay self-check FAILED: no step span recorded", file=sys.stderr)
            return 1
        if error > args.tolerance:
            print(
                f"replay self-check FAILED: predicted vs measured error "
                f"{100.0 * error:.2f}% exceeds {100.0 * args.tolerance:.0f}%",
                file=sys.stderr,
            )
            return 1
        print(
            f"\nreplay self-check OK "
            f"({100.0 * error:.4f}% <= {100.0 * args.tolerance:.0f}%)"
        )
    return 0


def _cmd_train(args) -> int:
    step = _make_train_step(args)
    active = _record(step, "train_step", args.warmup)
    if args.trace:
        active.write(args.trace)
        print(f"wrote {args.trace}")
    return _analyze(active.payload(), args)


def _cmd_serve(args) -> int:
    from repro.serve import serve
    from repro.serve.workload import synthetic_workload

    requests = synthetic_workload(args.requests, seed=args.seed)
    with tracer_mod.trace() as active:
        with active.span("serve_burst", "step"):
            serve(requests, max_batch_size=args.batch_size)
    if args.trace:
        active.write(args.trace)
        print(f"wrote {args.trace}")
    return _analyze(active.payload(), args)


def _cmd_report(args) -> int:
    return _analyze(args.trace, args)


def _cmd_overhead(args) -> int:
    step = _make_train_step(args)

    def timed() -> float:
        t0 = time.perf_counter()
        step()
        return time.perf_counter() - t0

    for _ in range(max(args.warmup, 0)):
        step()
    # Interleave disabled/enabled samples (the bench runner's idiom): paired
    # ratios cancel the machine's slow drift, which at ~10 ms/step otherwise
    # dwarfs the effect being measured.
    disabled: List[float] = []
    enabled: List[float] = []
    for i in range(args.repeats):
        # alternate the order within each pair so cache-warming asymmetry
        # does not bias one side
        if i % 2 == 0:
            disabled.append(timed())
            with tracer_mod.trace():
                enabled.append(timed())
        else:
            with tracer_mod.trace():
                enabled.append(timed())
            disabled.append(timed())
    overhead = statistics.median(
        e / d - 1.0 for e, d in zip(enabled, disabled)
    )
    print(
        f"fused train step at shape {'x'.join(map(str, args.shape))}: "
        f"disabled median {statistics.median(disabled) * 1e3:.3f} ms, "
        f"enabled median {statistics.median(enabled) * 1e3:.3f} ms, "
        f"tracing overhead {100.0 * overhead:+.2f}% "
        f"(median paired ratio over {args.repeats} repeats)"
    )
    return 0


def _add_analysis_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--check", action="store_true",
        help="fail unless the replay self-check is within --tolerance",
    )
    sub.add_argument(
        "--tolerance", type=float, default=0.10,
        help="replay self-check relative tolerance (default 0.10)",
    )
    sub.add_argument(
        "--gpusim", action="store_true",
        help="also replay under analytical A100 kernel costs",
    )
    sub.add_argument(
        "--scale-phase", action="append", metavar="PHASE=FACTOR",
        help="what-if: scale every kernel of a phase (e.g. bwd=0.5)",
    )
    sub.add_argument(
        "--scale-kernel", action="append", metavar="KERNEL=FACTOR",
        help="what-if: scale a named kernel (e.g. sddmm_nm=0.0)",
    )


def _add_shape_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--shape", type=int, nargs=4, default=(2, 4, 256, 64),
        metavar=("B", "H", "L", "D"), help="train-step tensor shape",
    )
    sub.add_argument("--pattern", default="2:4", help="N:M pattern (default 2:4)")
    sub.add_argument("--backend", default=None, help="kernel backend override")
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--warmup", type=int, default=1,
        help="warm-up steps before the recorded one (default 1)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="Chrome-trace profiler, op-DAG critical path, and replay simulator.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="trace one fused DFSS train step")
    _add_shape_flags(train)
    train.add_argument("--trace", help="write the Chrome trace JSON here")
    _add_analysis_flags(train)
    train.set_defaults(fn=_cmd_train)

    serve_cmd = commands.add_parser("serve", help="trace one serving burst")
    serve_cmd.add_argument("--requests", type=int, default=16)
    serve_cmd.add_argument("--batch-size", type=int, default=8)
    serve_cmd.add_argument("--seed", type=int, default=0)
    serve_cmd.add_argument("--trace", help="write the Chrome trace JSON here")
    _add_analysis_flags(serve_cmd)
    serve_cmd.set_defaults(fn=_cmd_serve)

    report = commands.add_parser("report", help="analyze a recorded trace file")
    report.add_argument("trace", help="path to a .trace.json file")
    report.add_argument("--step", default=None, help="step span name to analyze")
    _add_analysis_flags(report)
    report.set_defaults(fn=_cmd_report)

    overhead = commands.add_parser(
        "overhead", help="measure tracing overhead (enabled vs disabled)"
    )
    _add_shape_flags(overhead)
    overhead.add_argument("--repeats", type=int, default=9)
    overhead.set_defaults(fn=_cmd_overhead)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
