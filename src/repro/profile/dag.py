"""Op-DAG reconstruction from a recorded Chrome trace.

The tracer records what *ran*; this module recovers the structure of what ran
— the per-step operator DAG — so the critical path can be attributed and the
replayer (:mod:`repro.profile.replay`) can re-schedule it under hypothetical
costs.  The recovery follows the dPRO/byteprofile recipe adapted to a
single-process numpy runtime:

* **Nodes** are the ``cat="kernel"`` complete events, ordered by
  ``(pid, tid, ts)`` — a deterministic function of the trace, so the same
  trace always yields the same DAG.
* **Edges** connect consecutive events on the same ``(pid, tid)`` lane.
  A synchronous runtime executes each lane in program order, so the recorded
  order *is* the dependency order; the edge weight is the host-side gap
  between the two kernels (plan lookup, layout bookkeeping, autograd
  dispatch), which the replayer preserves so predicted step times account
  for non-kernel time.
* **The step span** (``cat="step"``, emitted by ``python -m repro.profile``
  around the traced unit of work) anchors the DAG in wall time: ``lead`` is
  the host time from step start to the first kernel, ``tail`` from the last
  kernel to step end.

With measured costs, scheduling this DAG reconstructs the measured step wall
time exactly (lead + chain make-span + tail); swapping costs then gives
counterfactual predictions with everything else held fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "OpNode",
    "StepSpan",
    "OpDag",
    "load_trace",
    "build_dag",
    "critical_path",
]


@dataclass(frozen=True)
class OpNode:
    """One kernel invocation recovered from the trace."""

    index: int
    name: str
    start_us: float
    dur_us: float
    pid: int
    tid: int
    backend: Optional[str] = None
    phase: str = "fwd"
    args: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us


@dataclass(frozen=True)
class StepSpan:
    """The ``cat="step"`` span anchoring the DAG in wall time."""

    name: str
    start_us: float
    dur_us: float

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us


@dataclass
class OpDag:
    """The reconstructed op DAG of one recorded step.

    ``edges[u]`` lists ``(v, gap_us)`` successors; node indices are
    topological by construction (edges only point forward in the
    ``(pid, tid, ts)`` order the nodes are stored in).
    """

    nodes: List[OpNode]
    edges: Dict[int, List[Tuple[int, float]]]
    step: Optional[StepSpan] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def lead_us(self) -> float:
        """Host time from step start to the first kernel (0 without a step)."""
        if self.step is None or not self.nodes:
            return 0.0
        first = min(node.start_us for node in self.nodes)
        return max(first - self.step.start_us, 0.0)

    @property
    def tail_us(self) -> float:
        """Host time from the last kernel end to step end (0 without a step)."""
        if self.step is None or not self.nodes:
            return 0.0
        last = max(node.end_us for node in self.nodes)
        return max(self.step.end_us - last, 0.0)

    @property
    def measured_us(self) -> Optional[float]:
        """The recorded step wall time, when a step span was traced."""
        return self.step.dur_us if self.step is not None else None

    def predecessors(self) -> Dict[int, List[Tuple[int, float]]]:
        """Reverse adjacency: ``incoming[v]`` lists ``(u, gap_us)``."""
        incoming: Dict[int, List[Tuple[int, float]]] = {
            node.index: [] for node in self.nodes
        }
        for u, successors in self.edges.items():
            for v, gap in successors:
                incoming[v].append((u, gap))
        return incoming


def load_trace(source: Union[str, Mapping[str, Any]]) -> Dict[str, Any]:
    """Load a Chrome-trace payload from a path or pass a dict through.

    Raises ``ValueError`` for payloads without a ``traceEvents`` list — the
    one structural invariant every consumer here relies on.
    """
    if isinstance(source, (str, bytes)):
        with open(source) as fh:
            payload = json.load(fh)
    else:
        payload = dict(source)
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(
            "not a Chrome trace: expected a 'traceEvents' list "
            f"(got {type(events).__name__})"
        )
    return payload


def _select_step(
    events: Sequence[Mapping[str, Any]], step: Optional[str]
) -> Optional[StepSpan]:
    spans = [
        e for e in events
        if e.get("cat") == "step" and e.get("ph") == "X"
        and (step is None or e.get("name") == step)
    ]
    if not spans:
        if step is not None:
            names = sorted({e.get("name") for e in events if e.get("cat") == "step"})
            raise ValueError(
                f"no step span named {step!r} in trace; recorded steps: "
                f"{', '.join(map(str, names)) if names else 'none'}"
            )
        return None
    first = min(spans, key=lambda e: float(e["ts"]))
    return StepSpan(
        name=str(first.get("name")),
        start_us=float(first["ts"]),
        dur_us=float(first["dur"]),
    )


def build_dag(
    source: Union[str, Mapping[str, Any]],
    step: Optional[str] = None,
    categories: Sequence[str] = ("kernel",),
) -> OpDag:
    """Reconstruct the op DAG of the (first or named) recorded step.

    Only kernels inside the step span (when one exists) become nodes, so a
    trace holding several steps yields the DAG of the selected one.
    """
    payload = load_trace(source)
    events = payload["traceEvents"]
    span = _select_step(events, step)

    raw = []
    for event in events:
        if event.get("ph") != "X" or event.get("cat") not in categories:
            continue
        ts = float(event["ts"])
        if span is not None and not (
            span.start_us <= ts <= span.end_us + 1e-9
        ):
            continue
        raw.append(event)
    raw.sort(key=lambda e: (int(e.get("pid", 0)), int(e.get("tid", 0)), float(e["ts"])))

    nodes: List[OpNode] = []
    for index, event in enumerate(raw):
        args = dict(event.get("args") or {})
        nodes.append(
            OpNode(
                index=index,
                name=str(event.get("name")),
                start_us=float(event["ts"]),
                dur_us=float(event.get("dur", 0.0)),
                pid=int(event.get("pid", 0)),
                tid=int(event.get("tid", 0)),
                backend=args.get("backend"),
                phase=str(args.get("phase", "fwd")),
                args=args,
            )
        )

    edges: Dict[int, List[Tuple[int, float]]] = {node.index: [] for node in nodes}
    for prev, node in zip(nodes, nodes[1:]):
        if (prev.pid, prev.tid) != (node.pid, node.tid):
            continue
        gap = max(node.start_us - prev.end_us, 0.0)
        edges[prev.index].append((node.index, gap))

    return OpDag(
        nodes=nodes,
        edges=edges,
        step=span,
        metadata=dict(payload.get("metadata") or {}),
    )


def critical_path(
    dag: OpDag,
    cost_us: Optional[Mapping[int, float]] = None,
) -> Tuple[float, List[int]]:
    """Longest start-to-finish path through the DAG: ``(length_us, indices)``.

    ``cost_us`` overrides node durations by index (the replayer passes its
    hypothetical costs so the *predicted* critical path is reported, not the
    recorded one).  Edge gaps always count — they are real host time.
    """
    if not dag.nodes:
        return 0.0, []
    finish: Dict[int, float] = {}
    parent: Dict[int, Optional[int]] = {}
    incoming = dag.predecessors()
    # Node indices are topological (edges point forward), so one ordered scan
    # is a full longest-path DP.
    for node in dag.nodes:
        dur = cost_us[node.index] if cost_us is not None else node.dur_us
        best_start = 0.0
        best_parent: Optional[int] = None
        for u, gap in incoming[node.index]:
            candidate = finish[u] + gap
            if candidate > best_start:
                best_start = candidate
                best_parent = u
        finish[node.index] = best_start + dur
        parent[node.index] = best_parent
    end = max(finish, key=lambda i: finish[i])
    path: List[int] = []
    cursor: Optional[int] = end
    while cursor is not None:
        path.append(cursor)
        cursor = parent[cursor]
    path.reverse()
    return finish[end], path
