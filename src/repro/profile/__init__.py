"""``repro.profile`` — Chrome-trace profiler, op DAG, and replay simulator.

Three layers, mirroring the trace→DAG→replay pipeline of dPRO-style
profilers:

1. :mod:`repro.profile.tracer` records Chrome-trace events from the kernel
   registry, compiled plans, autograd, and the serving engine
   (``REPRO_TRACE=path`` or ``with repro.profile.trace(...)``);
2. :mod:`repro.profile.dag` reconstructs the per-step fwd/bwd op DAG from a
   recorded trace and computes critical-path / per-kernel attribution;
3. :mod:`repro.profile.replay` schedules that DAG under hypothetical
   configurations (measured costs, ``repro.gpusim`` roofline costs, scaled
   phases) to predict step time.

Only the tracer is imported eagerly: ``repro.core.backend`` imports this
package for the dispatch-time hook, so pulling in :mod:`repro.profile.dag`
(and through replay, :mod:`repro.gpusim`) here would create an import cycle.
The analysis/replay layers load on first attribute access.
"""

from __future__ import annotations

from repro.profile.tracer import (
    TRACE_ENV_VAR,
    Tracer,
    current_tracer,
    is_tracing,
    phase_scope,
    register_metadata_provider,
    register_session_hook,
    start_trace,
    stop_trace,
    trace,
)

__all__ = [
    "TRACE_ENV_VAR",
    "Tracer",
    "current_tracer",
    "is_tracing",
    "phase_scope",
    "register_metadata_provider",
    "register_session_hook",
    "start_trace",
    "stop_trace",
    "trace",
    # lazy (see __getattr__)
    "OpNode",
    "OpDag",
    "build_dag",
    "load_trace",
    "critical_path",
    "replay",
    "gpusim_cost_fn",
    "ReplayResult",
    "format_report",
]

_LAZY = {
    "OpNode": "repro.profile.dag",
    "OpDag": "repro.profile.dag",
    "build_dag": "repro.profile.dag",
    "load_trace": "repro.profile.dag",
    "critical_path": "repro.profile.dag",
    "replay": "repro.profile.replay",
    "gpusim_cost_fn": "repro.profile.replay",
    "ReplayResult": "repro.profile.replay",
    "format_report": "repro.profile.report",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.profile' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    # Cache the resolved attribute: importing a submodule binds the *module*
    # under its name on this package (shadowing e.g. the replay() function
    # with the replay module), so later lookups must not fall through to it.
    globals()[name] = value
    return value
