"""Unified attention-mechanism registry: one catalogue for every construction API.

Historically the repo grew three parallel ways to build the same mechanism —
the ``dspattn`` Figure-3 shim, the numpy ``MECHANISM_REGISTRY`` baselines
surface, and the 16-branch ``if/elif`` chain in ``make_attention_core`` —
plus a fourth ad-hoc naming scheme in the experiment tables.  This module
replaces all of them with a single declarative catalogue:

* :class:`MechanismSpec` — one record per mechanism: canonical name, aliases,
  capability flags (``trainable``, ``produces_mask``, ``compressed``,
  ``supports_block_mask``, ``batchable``, ``static_mask``), a typed config
  dataclass, and constructors for both the forward-only numpy mechanism
  (:mod:`repro.baselines`) and the trainable autograd core
  (:mod:`repro.nn.attention_layer`);
* :func:`register_mechanism` — the decorator each baseline class / core
  builder registers itself with;
* :func:`find_spec` / :func:`available_mechanisms` / :func:`describe_mechanism`
  — introspection;
* :func:`make_mechanism` / :func:`make_core` — the construction entry points
  the legacy factories now delegate to.

The user-facing façade on top of this registry lives in :mod:`repro.engine`
(``repro.attention(...)`` and :class:`repro.engine.AttentionEngine`).

Per-mechanism keyword arguments are validated through frozen config
dataclasses (:class:`MechanismConfig` subclasses): unknown keys raise
``TypeError`` and out-of-range values raise ``ValueError`` at construction
time instead of surfacing deep inside a forward pass.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, fields, replace
from typing import Callable, ClassVar, Dict, Mapping, Optional, Tuple

from repro.core.blocked_ell import BlockedEllMask
from repro.core.patterns import resolve_pattern

__all__ = [
    "MechanismConfig",
    "MechanismSpec",
    "register_mechanism",
    "find_spec",
    "canonical_name",
    "available_mechanisms",
    "describe_mechanism",
    "specs",
    "make_config",
    "make_mechanism",
    "make_core",
    "apply_config_overrides",
]


# ----------------------------------------------------------------- config base
@dataclass(frozen=True)
class MechanismConfig:
    """Base class for per-mechanism typed configuration.

    Subclasses declare one field per constructor argument.  Fields consumed
    by only one side of the registry are listed in ``_MECHANISM_ONLY`` /
    ``_CORE_ONLY``; building the other side with such a field set to a
    non-default value raises ``TypeError`` (matching the strictness of the
    legacy factories, which never silently dropped keyword arguments).
    """

    #: alternate keyword spellings accepted by :meth:`from_kwargs`.
    _KW_ALIASES: ClassVar[Mapping[str, str]] = {}
    #: fields consumed only by the numpy mechanism constructor.
    _MECHANISM_ONLY: ClassVar[Tuple[str, ...]] = ()
    #: fields consumed only by the trainable core constructor.
    _CORE_ONLY: ClassVar[Tuple[str, ...]] = ()

    @classmethod
    def from_kwargs(cls, mechanism: str = "?", /, **kwargs) -> "MechanismConfig":
        """Build a config from loose kwargs; unknown keys raise ``TypeError``."""
        mapped = {cls._KW_ALIASES.get(key, key): value for key, value in kwargs.items()}
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(mapped) - valid)
        if unknown:
            raise _unexpected_kwargs_error(mechanism, unknown, valid)
        return cls(**mapped)

    # ------------------------------------------------------------- kwarg views
    def _field_dict(self, exclude: Tuple[str, ...]) -> Dict[str, object]:
        return {
            f.name: getattr(self, f.name) for f in fields(self) if f.name not in exclude
        }

    def _reject_foreign(self, side: str, foreign: Tuple[str, ...]) -> None:
        offending = sorted(
            f.name
            for f in fields(self)
            if f.name in foreign and getattr(self, f.name) != f.default
        )
        if offending:
            raise TypeError(
                f"keyword arguments {offending} are not accepted by the {side} "
                f"constructor of this mechanism"
            )

    def mechanism_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for the forward-only numpy mechanism."""
        self._reject_foreign("numpy-mechanism", self._CORE_ONLY)
        return self._field_dict(self._CORE_ONLY)

    def core_kwargs(self, seq_len_hint: int) -> Dict[str, object]:
        """Constructor kwargs for the trainable attention core."""
        self._reject_foreign("trainable-core", self._MECHANISM_ONLY)
        return self._field_dict(self._MECHANISM_ONLY)

    def describe(self) -> Dict[str, object]:
        """JSON-ish summary of the configuration (patterns as their names)."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = getattr(value, "name", value)
        return out


def _unexpected_kwargs_error(mechanism: str, unknown, accepted) -> TypeError:
    """The one ``TypeError`` every construction surface raises for bad kwargs.

    Shared by :meth:`MechanismConfig.from_kwargs` (the registry's own
    validation) and :func:`apply_config_overrides` (the engine-level
    ``backend=`` / ``path=`` / ``block_mask=`` normalisation), so a typo or an
    unsupported knob reads identically no matter which API surfaced it.
    """
    return TypeError(
        f"unexpected keyword arguments {sorted(unknown)} for attention mechanism "
        f"{mechanism!r}; accepted: {sorted(accepted)}"
    )


def _check_positive(value, name: str) -> None:
    if value is not None and value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def _check_density(value, name: str = "density") -> None:
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must lie in (0, 1], got {value!r}")


def _check_path(value) -> None:
    if value not in ("sparse", "dense"):
        raise ValueError(
            f"unknown path {value!r}; expected one of ('sparse', 'dense')"
        )


@dataclass(frozen=True)
class MaskedCoreConfig(MechanismConfig):
    """Shared core-side knobs of every mask-based mechanism.

    All mask-based trainable cores run through the compressed padded-CSR
    autograd op by default (``path="sparse"``); ``path="dense"`` keeps the
    dense masked-softmax autograd formulation as the parity oracle, and
    ``backend`` selects the kernel backend for every dispatched stage.  Both
    fields are core-only — the forward-only numpy mechanisms reject them.
    """

    backend: Optional[str] = None
    path: str = "sparse"

    _CORE_ONLY = ("backend", "path")

    def __post_init__(self) -> None:
        _check_path(self.path)


# --------------------------------------------------------- per-mechanism configs
@dataclass(frozen=True)
class FullConfig(MechanismConfig):
    """Dense ``softmax(QK^T)V`` attention."""

    dtype: str = "float32"

    _MECHANISM_ONLY = ("dtype",)


@dataclass(frozen=True)
class DfssConfig(MaskedCoreConfig):
    """Dynamic N:M structured sparse attention (the paper's mechanism).

    ``pattern=None`` defers to the hardware default: the numpy mechanism
    resolves it from ``dtype`` (1:2 for float32, 2:4 for bfloat16), the
    trainable core defaults to 2:4 (the legacy ``make_attention_core``
    behaviour).
    """

    pattern: object = None
    dtype: str = "float32"
    block_mask: Optional[BlockedEllMask] = None

    _MECHANISM_ONLY = ("dtype",)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.pattern is not None:
            resolve_pattern(self.pattern)  # raises ValueError on unknown patterns

    def core_kwargs(self, seq_len_hint: int) -> Dict[str, object]:
        kwargs = super().core_kwargs(seq_len_hint)
        if kwargs["pattern"] is None:
            kwargs["pattern"] = "2:4"
        return kwargs


@dataclass(frozen=True)
class TopKConfig(MaskedCoreConfig):
    """Per-row explicit Top-K selection (oracle upper bound for DFSS)."""

    density: float = 0.05
    k: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.k is None:
            _check_density(self.density)
        else:
            _check_positive(self.k, "k")


@dataclass(frozen=True)
class LocalConfig(MaskedCoreConfig):
    """Sliding-window local attention."""

    window: int = 32

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.window < 0:
            raise ValueError("window must be non-negative")


@dataclass(frozen=True)
class StridedConfig(MaskedCoreConfig):
    """Sparse-Transformer local + strided pattern."""

    window: int = 16
    stride: int = 64

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.stride, "stride")


@dataclass(frozen=True)
class TruncatedConfig(MaskedCoreConfig):
    """Keep a fixed leading fraction of key columns (Appendix A.4)."""

    density: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_density(self.density)


@dataclass(frozen=True)
class LongformerConfig(MaskedCoreConfig):
    """Sliding window plus global tokens."""

    window: int = 32
    num_global: int = 1


@dataclass(frozen=True)
class BigBirdConfig(MaskedCoreConfig):
    """Blocked window/global/random pattern."""

    block_size: int = 64
    window_blocks: int = 1
    num_global_blocks: int = 1
    num_random_blocks: int = 1
    seed: object = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.block_size, "block_size")


@dataclass(frozen=True)
class SynthesizerConfig(MechanismConfig):
    """Random Synthesizer (content-independent attention matrix).

    ``max_len=None`` defers to the constructor default: 4096 for the numpy
    mechanism, the layer's ``seq_len_hint`` for the trainable core.
    """

    max_len: Optional[int] = None
    seed: object = 0

    def mechanism_kwargs(self) -> Dict[str, object]:
        kwargs = super().mechanism_kwargs()
        if kwargs["max_len"] is None:
            kwargs["max_len"] = 4096
        return kwargs

    def core_kwargs(self, seq_len_hint: int) -> Dict[str, object]:
        kwargs = super().core_kwargs(seq_len_hint)
        if kwargs["max_len"] is None:
            kwargs["max_len"] = seq_len_hint
        return kwargs


@dataclass(frozen=True)
class LinformerConfig(MechanismConfig):
    """Low-rank key/value projection."""

    proj_dim: int = 64
    seed: object = 0

    def __post_init__(self) -> None:
        _check_positive(self.proj_dim, "proj_dim")


@dataclass(frozen=True)
class LinearTransformerConfig(MechanismConfig):
    """Kernelised linear attention (elu+1 feature map); no knobs."""


@dataclass(frozen=True)
class PerformerConfig(MechanismConfig):
    """FAVOR+ positive random features."""

    num_features: Optional[int] = None
    seed: object = 0
    eps: float = 1e-6

    _MECHANISM_ONLY = ("eps",)

    def __post_init__(self) -> None:
        _check_positive(self.num_features, "num_features")


@dataclass(frozen=True)
class ReformerConfig(MaskedCoreConfig):
    """LSH bucketed attention."""

    n_buckets: int = 16
    n_hashes: int = 2
    seed: object = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.n_buckets, "n_buckets")
        _check_positive(self.n_hashes, "n_hashes")


@dataclass(frozen=True)
class RoutingConfig(MaskedCoreConfig):
    """k-means routed attention."""

    n_clusters: Optional[int] = None
    kmeans_iters: int = 4
    seed: object = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.n_clusters, "n_clusters")


@dataclass(frozen=True)
class SinkhornConfig(MaskedCoreConfig):
    """Block-matched Sinkhorn attention."""

    block_size: int = 32
    sinkhorn_iters: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.block_size, "block_size")


@dataclass(frozen=True)
class NystromformerConfig(MechanismConfig):
    """Nyström landmark attention; the core optionally N:M-prunes its kernels."""

    num_landmarks: int = 32
    pinv_iters: int = 6
    dfss_pattern: object = None
    backend: Optional[str] = None

    _CORE_ONLY = ("dfss_pattern", "backend")

    def __post_init__(self) -> None:
        _check_positive(self.num_landmarks, "num_landmarks")


@dataclass(frozen=True)
class NystromDfssConfig(MechanismConfig):
    """Nyströmformer with DFSS-pruned softmax kernels (Appendix A.7 combo)."""

    num_landmarks: int = 32
    pinv_iters: int = 6
    pattern: object = "2:4"
    dtype: str = "float32"
    backend: Optional[str] = None

    _KW_ALIASES = {"dfss_pattern": "pattern"}
    _MECHANISM_ONLY = ("dtype",)
    _CORE_ONLY = ("backend",)

    def core_kwargs(self, seq_len_hint: int) -> Dict[str, object]:
        kwargs = super().core_kwargs(seq_len_hint)
        kwargs["dfss_pattern"] = kwargs.pop("pattern") or "2:4"
        return kwargs


@dataclass(frozen=True)
class BigBirdDfssConfig(MaskedCoreConfig):
    """BigBird block mask combined with N:M pruning inside the blocks."""

    pattern: object = "2:4"
    dtype: str = "float32"
    block_size: int = 64
    window_blocks: int = 1
    num_global_blocks: int = 1
    num_random_blocks: int = 1
    seed: object = 0


@dataclass(frozen=True)
class LinformerDfssConfig(MaskedCoreConfig):
    """Linformer projection with N:M pruning of the projected scores."""

    proj_dim: int = 64
    pattern: object = "2:4"
    dtype: str = "float32"
    seed: object = 0


# ------------------------------------------------------------------- the spec
@dataclass
class MechanismSpec:
    """One attention mechanism: identity, capabilities, and constructors."""

    name: str
    label: str
    description: str
    config_cls: type
    aliases: Tuple[str, ...] = ()
    produces_mask: bool = False
    compressed: bool = False
    supports_block_mask: bool = False
    #: whether the serving layer (:mod:`repro.serve`) may coalesce requests of
    #: this mechanism into one ragged padded-CSR batch.  True for mask-based
    #: mechanisms whose ``attention_mask(q, k)`` fully determines the
    #: computation; mechanisms without a mask (or whose pipeline is not the
    #: masked-softmax one, e.g. Linformer's projection) fall back to
    #: per-request execution.
    batchable: bool = False
    #: whether the mask depends only on (config, sequence lengths) — never on
    #: the request content — so the serving structure cache may reuse one
    #: compressed structure across requests.
    static_mask: bool = False
    #: key into :data:`repro.gpusim.attention_latency.ATTENTION_MECHANISMS`
    #: (and the memory model), when an analytical latency model exists.
    latency_model: Optional[str] = None
    mechanism_builder: Optional[Callable] = None
    core_builder: Optional[Callable] = None

    @property
    def trainable(self) -> bool:
        """Whether a trainable autograd core is registered for this mechanism."""
        return self.core_builder is not None

    def capabilities(self) -> Dict[str, bool]:
        return {
            "trainable": self.trainable,
            "produces_mask": self.produces_mask,
            "compressed": self.compressed,
            "supports_block_mask": self.supports_block_mask,
            "batchable": self.batchable,
            "static_mask": self.static_mask,
        }

    def build_mechanism(self, config: MechanismConfig):
        """Instantiate the forward-only numpy mechanism from ``config``."""
        if self.mechanism_builder is None:
            raise ValueError(f"mechanism {self.name!r} has no numpy implementation")
        builder = self.mechanism_builder
        if inspect.isclass(builder):
            return builder(**config.mechanism_kwargs())
        return builder(config)

    def build_core(self, config: MechanismConfig, seq_len_hint: int = 512):
        """Instantiate the trainable attention core from ``config``."""
        if self.core_builder is None:
            raise ValueError(
                f"mechanism {self.name!r} is not trainable (no attention core is "
                f"registered); trainable mechanisms: {available_mechanisms(trainable=True)}"
            )
        builder = self.core_builder
        if inspect.isclass(builder):
            return builder(**config.core_kwargs(seq_len_hint))
        return builder(config, seq_len_hint)


_REGISTRY: Dict[str, MechanismSpec] = {}
_ALIASES: Dict[str, str] = {}
_POPULATED = False


def register_mechanism(
    name: str,
    *,
    role: str = "mechanism",
    config: Optional[type] = None,
    label: Optional[str] = None,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    produces_mask: bool = False,
    compressed: bool = False,
    supports_block_mask: bool = False,
    batchable: bool = False,
    static_mask: bool = False,
    latency_model: Optional[str] = None,
):
    """Decorator registering a baseline class or core builder under ``name``.

    ``role="mechanism"`` (the default, applied to the numpy baseline class or
    a ``builder(config)`` function) creates the spec and carries the full
    metadata; ``role="core"`` (applied to the trainable core class or a
    ``builder(config, seq_len_hint)`` function) attaches the trainable
    constructor to the existing spec — core registrations therefore follow
    their mechanism registration, which the import order of
    :mod:`repro.baselines` before :mod:`repro.nn.attention_layer` guarantees.
    """

    if role not in ("mechanism", "core"):
        raise ValueError(f"unknown registration role {role!r}")

    def decorator(obj):
        key = name.lower()
        if role == "mechanism":
            if key in _REGISTRY:
                # re-registration happens when a partially-failed population
                # import is retried; replace the spec and its stale aliases
                for alias, target in list(_ALIASES.items()):
                    if target == key:
                        del _ALIASES[alias]
                del _REGISTRY[key]
            if config is None:
                raise ValueError(f"mechanism {name!r} must declare a config class")
            spec = MechanismSpec(
                name=key,
                label=label or name,
                description=description or (inspect.getdoc(obj) or "").split("\n")[0],
                config_cls=config,
                aliases=tuple(a.lower() for a in aliases),
                produces_mask=produces_mask,
                compressed=compressed,
                supports_block_mask=supports_block_mask,
                batchable=batchable,
                static_mask=static_mask,
                latency_model=latency_model,
                mechanism_builder=obj,
            )
            _REGISTRY[key] = spec
            for alias in (key, spec.label.lower(), *spec.aliases):
                existing = _ALIASES.setdefault(alias, key)
                if existing != key:
                    raise ValueError(
                        f"alias {alias!r} of mechanism {name!r} already maps to "
                        f"{existing!r}"
                    )
        else:
            if key not in _REGISTRY:
                raise ValueError(
                    f"cannot register a core for unknown mechanism {name!r}; "
                    f"register the numpy mechanism first"
                )
            # overwrite is deliberate: a retried population import re-runs the
            # decorators, and stacked decorators reuse one class for two names
            _REGISTRY[key].core_builder = obj
        return obj

    return decorator


def _ensure_populated() -> None:
    """Import the modules whose decorators populate the registry (idempotent).

    The flag is only set once both imports succeed: a transient import
    failure propagates the real error and the next lookup retries instead of
    reporting a misleading half-empty registry (the decorators tolerate the
    re-registration a retry causes).
    """
    global _POPULATED
    if _POPULATED:
        return
    import repro.baselines  # noqa: F401  registers the numpy mechanisms
    import repro.nn.attention_layer  # noqa: F401  registers the trainable cores

    _POPULATED = True


# ----------------------------------------------------------------- resolution
def _split_name(name: str) -> Tuple[str, Dict[str, object]]:
    """Normalise ``name`` and extract implied kwargs (``dfss_2:4`` shortcuts)."""
    raw = str(name).strip().lower()
    if raw in _ALIASES:
        return _ALIASES[raw], {}
    for sep in ("_", " ", "-"):
        prefix = f"dfss{sep}"
        if raw.startswith(prefix) and raw[len(prefix):]:
            return _ALIASES.get("dfss", "dfss"), {"pattern": raw[len(prefix):]}
    return raw, {}


def find_spec(name: str) -> MechanismSpec:
    """Resolve a mechanism name or alias to its spec; ``ValueError`` if unknown."""
    _ensure_populated()
    key, _ = _split_name(name)
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown attention mechanism {name!r}; available: {list(available_mechanisms())}"
        )
    return _REGISTRY[key]


def canonical_name(name: str) -> str:
    """Canonical registry name for any accepted alias (``transformer`` -> ``full``)."""
    return find_spec(name).name


def specs() -> Tuple[MechanismSpec, ...]:
    """All registered specs, in registration order."""
    _ensure_populated()
    return tuple(_REGISTRY.values())


def available_mechanisms(
    trainable: Optional[bool] = None,
    produces_mask: Optional[bool] = None,
    compressed: Optional[bool] = None,
    supports_block_mask: Optional[bool] = None,
    batchable: Optional[bool] = None,
    static_mask: Optional[bool] = None,
) -> Tuple[str, ...]:
    """Names of registered mechanisms, optionally filtered by capability flags."""
    _ensure_populated()
    out = []
    for spec in _REGISTRY.values():
        if trainable is not None and spec.trainable != trainable:
            continue
        if produces_mask is not None and spec.produces_mask != produces_mask:
            continue
        if compressed is not None and spec.compressed != compressed:
            continue
        if supports_block_mask is not None and spec.supports_block_mask != supports_block_mask:
            continue
        if batchable is not None and spec.batchable != batchable:
            continue
        if static_mask is not None and spec.static_mask != static_mask:
            continue
        out.append(spec.name)
    return tuple(out)


def describe_mechanism(name: str) -> Dict[str, object]:
    """Introspectable summary of one mechanism: identity, flags, config defaults."""
    spec = find_spec(name)
    return {
        "name": spec.name,
        "label": spec.label,
        "description": spec.description,
        "aliases": list(spec.aliases),
        **spec.capabilities(),
        "latency_model": spec.latency_model,
        "config": spec.config_cls().describe(),
    }


# --------------------------------------------------------------- construction
def make_config(name: str, **kwargs) -> Tuple[MechanismSpec, MechanismConfig]:
    """Resolve ``name`` and validate ``kwargs`` into the spec's typed config.

    Pattern-suffixed names (``dfss_1:2``) imply a ``pattern`` kwarg; an
    explicit ``pattern=`` argument wins over the suffix, mirroring the legacy
    factory.
    """
    _ensure_populated()
    key, implied = _split_name(name)
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown attention mechanism {name!r}; available: {list(available_mechanisms())}"
        )
    spec = _REGISTRY[key]
    merged = {**{k: v for k, v in implied.items() if k not in kwargs}, **kwargs}
    return spec, spec.config_cls.from_kwargs(spec.name, **merged)


def apply_config_overrides(
    spec: MechanismSpec,
    config: MechanismConfig,
    overrides: Mapping[str, object],
    lenient: Tuple[str, ...] = (),
) -> MechanismConfig:
    """Fill config fields from engine-level overrides with uniform validation.

    The one normalisation path behind ``repro.attention(backend=..., path=...,
    block_mask=...)``, ``AttentionEngine.core(...)`` and
    :class:`repro.engine.AttentionConfig`: ``overrides`` maps config field
    names to values, where ``None`` means "no override".  A non-``None``
    override of a field the mechanism's config does not declare raises the
    same ``TypeError`` as :meth:`MechanismConfig.from_kwargs` — unless the
    name is listed in ``lenient`` (knobs like ``backend`` that stay meaningful
    for every mechanism because they also scope the kernel registry).  An
    override only fills a field still at its declared default: an explicit
    per-mechanism option always wins.
    """
    field_map = {f.name: f for f in fields(type(config))}
    unknown = sorted(
        name for name, value in overrides.items()
        if value is not None and name not in field_map and name not in lenient
    )
    if unknown:
        raise _unexpected_kwargs_error(spec.name, unknown, field_map)
    updates = {
        name: value
        for name, value in overrides.items()
        if value is not None and name in field_map
        and getattr(config, name) == field_map[name].default
    }
    return replace(config, **updates) if updates else config


def make_mechanism(name: str, **kwargs):
    """Build the forward-only numpy mechanism registered under ``name``."""
    spec, config = make_config(name, **kwargs)
    return spec.build_mechanism(config)


def make_core(name: str, seq_len_hint: int = 512, **kwargs):
    """Build the trainable attention core registered under ``name``."""
    spec, config = make_config(name, **kwargs)
    return spec.build_core(config, seq_len_hint)
