"""Command-line benchmark runner: ``python -m repro.bench``.

Examples
--------
Smoke-scale run with the JSON artifact the CI perf gate consumes::

    PYTHONPATH=src python -m repro.bench --output BENCH_kernels.json

Larger problem, one kernel, more repeats::

    PYTHONPATH=src python -m repro.bench --scale default --kernels spmm --repeats 9
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.bench.report import format_table, results_to_payload, write_payload
from repro.bench.runner import (
    ALL_BENCH_KERNELS,
    BENCH_KERNELS,
    CSR_BENCH_KERNELS,
    FUSED_BENCH_KERNELS,
    MULTICORE_BENCH_KERNELS,
    SERVING_KERNEL,
    SERVING_LATENCY_KERNEL,
    TRAIN_MATRIX_KERNEL,
    SCALE_SHAPES,
    BenchShape,
    run_benchmarks,
    run_csr_benchmarks,
    run_fused_benchmarks,
    run_multicore_benchmarks,
    run_serving_benchmark,
    run_serving_open_loop,
    run_train_matrix,
)
from repro.core.backend import available_backends
from repro.core.plan import KNOWN_PIPELINES, use_pipeline


def _parse_shape(text: str) -> BenchShape:
    try:
        batch, heads, seq_len, head_dim = (int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid shape {text!r}; expected BxHxLxD, e.g. 2x4x256x64"
        )
    return BenchShape(batch=batch, heads=heads, seq_len=seq_len, head_dim=head_dim)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark DFSS kernels across backends and emit BENCH_kernels.json",
    )
    parser.add_argument("--scale", default="smoke", choices=sorted(SCALE_SHAPES),
                        help="problem size preset (default: smoke)")
    parser.add_argument("--shape", type=_parse_shape, default=None,
                        help="explicit BxHxLxD problem size overriding --scale")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per measurement (default: 5)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="discarded warmup runs per measurement (default: 1)")
    parser.add_argument("--patterns", nargs="+", default=["1:2", "2:4"],
                        help="N:M patterns to benchmark (default: 1:2 2:4)")
    parser.add_argument("--kernels", nargs="+", default=None,
                        choices=ALL_BENCH_KERNELS,
                        help="subset of kernels to benchmark (default: all; "
                             "includes the *_csr padded-CSR kernels and the "
                             "attention_train_matrix mechanism sweep)")
    parser.add_argument("--csr-window", type=int, default=16,
                        help="half-width of the Longformer-style band mask the "
                             "*_csr kernels are timed on (default: 16)")
    parser.add_argument("--mechanisms", nargs="+", default=None,
                        help="mechanism subset for the attention_train_matrix "
                             "sweep (default: every trainable mask-based "
                             "mechanism with a compressed path)")
    parser.add_argument("--multicore-workers", type=int, default=None,
                        help="pool size for the attention_multicore rows "
                             "(default: $REPRO_MULTICORE_WORKERS, else the "
                             "host cpu count)")
    parser.add_argument("--multicore-scaling", nargs="+", type=int, default=None,
                        metavar="N",
                        help="worker counts for the workers-vs-speedup "
                             "scaling sweep (emits attention_multicore_scaling "
                             "rows with a single-worker baseline; default: "
                             "no sweep)")
    parser.add_argument("--serve-requests", type=int, default=None,
                        help="request count for the serving_throughput workload "
                             "(default: 12x the shape's batch size)")
    parser.add_argument("--serve-batch-size", type=int, default=16,
                        help="max ragged batch size for the serving_throughput "
                             "batched rows (default: 16)")
    parser.add_argument("--serve-rate-rps", type=float, default=200.0,
                        help="offered Poisson arrival rate for the open-loop "
                             "serving_latency replay (default: 200)")
    parser.add_argument("--serve-deadline-ms", type=float, default=50.0,
                        help="per-request latency deadline the serving_latency "
                             "row counts misses against (default: 50 ms)")
    parser.add_argument("--pipeline", default=None, choices=sorted(KNOWN_PIPELINES),
                        help="attention pipeline scoped around every run: the "
                             "compiled fused plan or the staged three-kernel "
                             "oracle (default: the REPRO_PIPELINE env var, "
                             "else fused); the attention_fused rows always "
                             "time both arms explicitly")
    parser.add_argument("--backends", nargs="+", default=["reference", "fast"],
                        choices=available_backends(),
                        help="backends to time; the first is the speedup baseline "
                             "(attention_train_matrix rows are dense-vs-sparse "
                             "paths instead, both dispatching to the last entry)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, metavar="BENCH_kernels.json",
                        help="write the machine-readable JSON artifact here")
    parser.add_argument("--include-timings", action="store_true",
                        help="embed raw per-repeat timings in the JSON output")
    args = parser.parse_args(argv)

    selected = tuple(args.kernels) if args.kernels else ALL_BENCH_KERNELS
    classic = [k for k in selected if k in BENCH_KERNELS]
    csr = [k for k in selected if k in CSR_BENCH_KERNELS]
    fused = [k for k in selected if k in FUSED_BENCH_KERNELS]
    multicore = [k for k in selected if k in MULTICORE_BENCH_KERNELS]

    pipeline_scope = (
        use_pipeline(args.pipeline) if args.pipeline else contextlib.nullcontext()
    )
    results = []
    with pipeline_scope:
        results += _run_selected(args, classic, csr, fused, multicore, selected)
    print(format_table(results))
    if args.output:
        payload = results_to_payload(
            results, scale=args.scale, repeats=args.repeats,
            include_timings=args.include_timings,
        )
        write_payload(args.output, payload)
        print(f"\nwrote {len(payload['results'])} rows to {args.output}")
    return 0


def _run_selected(args, classic, csr, fused, multicore, selected):
    results = []
    if classic:
        results += run_benchmarks(
            scale=args.scale,
            repeats=args.repeats,
            warmup=args.warmup,
            patterns=tuple(args.patterns),
            backends=tuple(args.backends),
            kernels=classic,
            seed=args.seed,
            shape=args.shape,
        )
    if csr:
        results += run_csr_benchmarks(
            scale=args.scale,
            repeats=args.repeats,
            warmup=args.warmup,
            window=args.csr_window,
            backends=tuple(args.backends),
            kernels=csr,
            seed=args.seed,
            shape=args.shape,
        )
    if fused:
        results += run_fused_benchmarks(
            scale=args.scale,
            repeats=args.repeats,
            warmup=args.warmup,
            patterns=tuple(args.patterns),
            kernels=fused,
            seed=args.seed,
            shape=args.shape,
        )
    if multicore:
        results += run_multicore_benchmarks(
            scale=args.scale,
            repeats=args.repeats,
            warmup=args.warmup,
            patterns=tuple(args.patterns),
            kernels=multicore,
            workers=args.multicore_workers,
            scaling=args.multicore_scaling,
            seed=args.seed,
            shape=args.shape,
        )
    if TRAIN_MATRIX_KERNEL in selected:
        results += run_train_matrix(
            scale=args.scale,
            repeats=args.repeats,
            warmup=args.warmup,
            mechanisms=args.mechanisms,
            # dense/sparse is the matrix's row axis; the kernel backend both
            # paths dispatch to is the last (measured) --backends entry
            backend=args.backends[-1],
            seed=args.seed,
            shape=args.shape,
        )
    if SERVING_KERNEL in selected:
        results += run_serving_benchmark(
            scale=args.scale,
            repeats=args.repeats,
            warmup=args.warmup,
            n_requests=args.serve_requests,
            max_batch_size=args.serve_batch_size,
            seed=args.seed,
            shape=args.shape,
        )
    if SERVING_LATENCY_KERNEL in selected:
        results += run_serving_open_loop(
            scale=args.scale,
            repeats=args.repeats,
            warmup=args.warmup,
            n_requests=args.serve_requests,
            rate_rps=args.serve_rate_rps,
            deadline_s=args.serve_deadline_ms / 1e3,
            max_batch_size=args.serve_batch_size,
            seed=args.seed,
            shape=args.shape,
        )
    return results


if __name__ == "__main__":
    sys.exit(main())
