"""Serialisation and pretty-printing of benchmark results.

``BENCH_kernels.json`` schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "scale": "smoke",
      "shape": "B2xH4xL256xD64",         # without the pattern suffix
      "repeats": 5,
      "results": [
        {
          "kernel": "sddmm_nm",           # or masked_softmax|spmm|softmax_spmm|
                                          #   attention_e2e|attention_train_step|
                                          #   *_csr (padded-CSR pipeline)|
                                          #   attention_train_matrix (per-mechanism)
          "shape": "B2xH4xL256xD64/2:4",  # problem size / N:M pattern — or
                                          #   /longformer-w16 (csr rows),
                                          #   /<mechanism> (train-matrix rows)
          "backend": "fast",              # reference|fast (dense|sparse on
                                          #   attention_train_matrix rows)
          "median_s": 0.0123,             # seconds, median over repeats
          "p10_s": 0.0120,
          "p90_s": 0.0130,
          "speedup": 3.4,                 # reference median / this median
          "parity_max_rel_err": 1.2e-07   # vs reference output; null on reference rows
        },
        ...
      ]
    }

``serving_throughput`` rows (backend ``sequential``/``batched``, shape
``B2xH4xL256xD64/serve-mix12``) additionally carry ``requests_per_s`` and
``latency_p50_s``/``latency_p95_s``/``latency_p99_s`` columns; their
``speedup`` is sequential-median / batched-median, i.e. the requests/sec
ratio the CI gate floors.

The committed baseline (``benchmarks/baseline_kernels.json``) uses the same
schema, which is what lets ``scripts/check_bench_regression.py`` diff a fresh
run against it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.bench.runner import BenchResult

SCHEMA_VERSION = 1


def results_to_payload(
    results: Iterable[BenchResult],
    scale: str,
    repeats: Optional[int] = None,
    include_timings: bool = False,
) -> Dict:
    """Build the ``BENCH_kernels.json`` payload from benchmark rows."""
    results = list(results)
    rows: List[Dict] = []
    for r in results:
        row = {
            "kernel": r.kernel,
            "shape": r.shape,
            "backend": r.backend,
            "median_s": r.median_s,
            "p10_s": r.p10_s,
            "p90_s": r.p90_s,
            "speedup": r.speedup,
            "parity_max_rel_err": r.parity_max_rel_err,
        }
        if r.extra:
            # kernel-specific columns (serving_throughput: requests_per_s and
            # latency percentiles); absent on ordinary kernel rows
            row.update(r.extra)
        if include_timings:
            row["timings_s"] = r.timings_s
        rows.append(row)
    shapes = {r.shape.split("/", 1)[0] for r in results}
    return {
        "schema_version": SCHEMA_VERSION,
        "scale": scale,
        "shape": "|".join(sorted(shapes)),
        "repeats": repeats if repeats is not None else (results[0].repeats if results else 0),
        "results": rows,
    }


def write_payload(path, payload: Dict) -> None:
    """Write a payload as stable, human-diffable JSON."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_payload(path) -> Dict:
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported BENCH_kernels.json schema_version {version!r} in {path} "
            f"(expected {SCHEMA_VERSION})"
        )
    return payload


def format_table(results: Iterable[BenchResult]) -> str:
    """Human-readable fixed-width table of benchmark rows."""
    header = (
        f"{'kernel':<16} {'shape':<24} {'backend':<10} "
        f"{'median':>10} {'p10':>10} {'p90':>10} {'speedup':>8} {'parity':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        parity = f"{r.parity_max_rel_err:.1e}" if r.parity_max_rel_err is not None else "-"
        lines.append(
            f"{r.kernel:<16} {r.shape:<24} {r.backend:<10} "
            f"{r.median_s * 1e3:>8.2f}ms {r.p10_s * 1e3:>8.2f}ms {r.p90_s * 1e3:>8.2f}ms "
            f"{r.speedup:>7.2f}x {parity:>10}"
        )
    return "\n".join(lines)
