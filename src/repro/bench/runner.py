"""Timing harness comparing kernel backends at a fixed smoke/default/full scale.

Every benchmark times one registered kernel (or the end-to-end attention
pipeline) under each backend on identical inputs, reports robust order
statistics (median / p10 / p90 over repeats), the speedup of each backend
over ``reference``, and the relative Frobenius error between the backend's
output and the reference output — the parity signal the CI gate refuses to
ship without.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.attention import dfss_attention
from repro.core.backend import REFERENCE, get_kernel
from repro.core.patterns import resolve_pattern
from repro.core.sddmm import sddmm_nm
from repro.core.softmax import sparse_softmax
from repro.nn.attention_layer import DfssCore
from repro.nn.autograd import Tensor
from repro.utils.seeding import new_rng


@dataclass(frozen=True)
class BenchShape:
    """Multi-head attention problem size: ``(batch, heads, seq_len, head_dim)``."""

    batch: int
    heads: int
    seq_len: int
    head_dim: int

    def label(self, pattern: str) -> str:
        return (
            f"B{self.batch}xH{self.heads}xL{self.seq_len}xD{self.head_dim}/{pattern}"
        )


#: Problem sizes per experiment scale; smoke finishes in seconds on a laptop.
SCALE_SHAPES: Dict[str, BenchShape] = {
    "smoke": BenchShape(batch=2, heads=4, seq_len=256, head_dim=64),
    "default": BenchShape(batch=4, heads=8, seq_len=512, head_dim=64),
    "full": BenchShape(batch=8, heads=8, seq_len=1024, head_dim=64),
}

#: Benchmarked pipeline stages (registry kernels plus the end-to-end pipeline).
#: ``attention_train_step`` is the trainable fwd+bwd step; its ``reference``
#: row times the dense masked autograd path (the numerical oracle for
#: training) and its ``fast`` row the compressed sparse op, so the reported
#: speedup is exactly "sparse training step vs dense autograd".
BENCH_KERNELS = (
    "sddmm_nm",
    "masked_softmax",
    "spmm",
    "softmax_spmm",
    "attention_e2e",
    "attention_train_step",
)


@dataclass
class BenchResult:
    """One (kernel, shape, backend) timing row of ``BENCH_kernels.json``."""

    kernel: str
    shape: str
    backend: str
    median_s: float
    p10_s: float
    p90_s: float
    speedup: float = 1.0
    parity_max_rel_err: Optional[float] = None
    repeats: int = 0
    timings_s: List[float] = field(default_factory=list)


def _time(fn: Callable[[], object], repeats: int, warmup: int) -> List[float]:
    for _ in range(warmup):
        fn()
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return timings


def _rel_frobenius(candidate: np.ndarray, reference: np.ndarray) -> float:
    denom = float(np.linalg.norm(reference))
    if denom == 0.0:
        return float(np.linalg.norm(candidate))
    return float(np.linalg.norm(candidate - reference) / denom)


def _bench_cases(
    shape: BenchShape, pattern: str, rng: np.random.Generator
) -> Dict[str, Tuple[Callable[[str], object], Callable[[object], np.ndarray]]]:
    """Per-kernel ``(run(backend), densify(output))`` closures on shared inputs."""
    dims = (shape.batch, shape.heads, shape.seq_len, shape.head_dim)
    q = rng.normal(size=dims).astype(np.float32)
    k = rng.normal(size=dims).astype(np.float32)
    v = rng.normal(size=dims).astype(np.float32)
    scores = sddmm_nm(q, k, pattern=pattern)
    weights = sparse_softmax(scores)

    def train_step(backend: str) -> np.ndarray:
        """One fwd+bwd attention step; returns output and input grads for parity.

        ``reference`` runs the dense masked autograd path (``path="dense"``,
        the pre-sparse-op training path, with the reference selection
        kernel); any other backend runs the compressed sparse op end to end
        on that backend.
        """
        qt = Tensor(q, requires_grad=True)
        kt = Tensor(k, requires_grad=True)
        vt = Tensor(v, requires_grad=True)
        if backend == REFERENCE:
            core = DfssCore(pattern, backend=backend, path="dense")
        else:
            core = DfssCore(pattern, backend=backend, path="sparse")
        out = core(qt, kt, vt)
        out.sum().backward()
        return np.concatenate(
            [out.data.ravel(), qt.grad.ravel(), kt.grad.ravel(), vt.grad.ravel()]
        )

    return {
        "sddmm_nm": (
            lambda backend: sddmm_nm(q, k, pattern=pattern, backend=backend),
            lambda out: out.to_dense(0.0),
        ),
        "masked_softmax": (
            lambda backend: get_kernel("masked_softmax", backend)(scores),
            lambda out: out.to_dense(0.0),
        ),
        "spmm": (
            lambda backend: get_kernel("spmm", backend)(weights, v),
            lambda out: out,
        ),
        "softmax_spmm": (
            lambda backend: get_kernel("softmax_spmm", backend)(scores, v),
            lambda out: out,
        ),
        "attention_e2e": (
            lambda backend: dfss_attention(q, k, v, pattern=pattern, backend=backend),
            lambda out: out,
        ),
        "attention_train_step": (
            train_step,
            lambda out: out,
        ),
    }


def run_benchmarks(
    scale: str = "smoke",
    repeats: int = 5,
    warmup: int = 1,
    patterns: Sequence[str] = ("1:2", "2:4"),
    backends: Sequence[str] = (REFERENCE, "fast"),
    kernels: Optional[Sequence[str]] = None,
    seed: int = 0,
    shape: Optional[BenchShape] = None,
) -> List[BenchResult]:
    """Time every kernel x pattern x backend combination and check parity.

    Parameters
    ----------
    scale:
        One of ``smoke`` / ``default`` / ``full`` (ignored when ``shape`` is
        given explicitly).
    repeats, warmup:
        Timed repetitions per measurement and discarded warmup runs.
    patterns:
        N:M patterns to benchmark; each gets its own problem instance.
    backends:
        Backends to time.  The first is treated as the speedup/parity
        reference (``reference`` by default).
    kernels:
        Subset of :data:`BENCH_KERNELS` to run; all when omitted.
    shape:
        Explicit :class:`BenchShape` override, mainly for tests.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if shape is None:
        if scale not in SCALE_SHAPES:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {'|'.join(SCALE_SHAPES)}"
            )
        shape = SCALE_SHAPES[scale]
    selected = tuple(kernels) if kernels else BENCH_KERNELS
    unknown = set(selected) - set(BENCH_KERNELS)
    if unknown:
        raise ValueError(f"unknown kernels {sorted(unknown)}; expected {BENCH_KERNELS}")
    if not backends:
        raise ValueError("at least one backend is required")
    baseline_backend = backends[0]

    results: List[BenchResult] = []
    for pattern in patterns:
        resolve_pattern(pattern)  # fail fast on typos
        rng = new_rng(seed)
        cases = _bench_cases(shape, pattern, rng)
        for kernel in selected:
            run, densify = cases[kernel]
            baseline_out = densify(run(baseline_backend))
            baseline_median: Optional[float] = None
            for backend in backends:
                timings = _time(lambda: run(backend), repeats, warmup)
                median = float(np.median(timings))
                if backend == baseline_backend:
                    baseline_median = median
                    speedup = 1.0
                    parity = None
                else:
                    speedup = baseline_median / median if median > 0 else float("inf")
                    parity = _rel_frobenius(densify(run(backend)), baseline_out)
                results.append(
                    BenchResult(
                        kernel=kernel,
                        shape=shape.label(pattern),
                        backend=backend,
                        median_s=median,
                        p10_s=float(np.percentile(timings, 10)),
                        p90_s=float(np.percentile(timings, 90)),
                        speedup=speedup,
                        parity_max_rel_err=parity,
                        repeats=repeats,
                        timings_s=[float(t) for t in timings],
                    )
                )
    return results
