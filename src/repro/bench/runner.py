"""Timing harness comparing kernel backends at a fixed smoke/default/full scale.

Every benchmark times one registered kernel (or the end-to-end attention
pipeline) under each backend on identical inputs, reports robust order
statistics (median / p10 / p90 over repeats), the speedup of each backend
over ``reference``, and the relative Frobenius error between the backend's
output and the reference output — the parity signal the CI gate refuses to
ship without.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.longformer import longformer_mask
from repro.core.attention import dfss_attention
from repro.core.backend import REFERENCE, get_kernel
from repro.core.padded_csr import PaddedCSRMatrix
from repro.core.patterns import resolve_pattern
from repro.core.sddmm import sddmm_csr, sddmm_nm
from repro.core.softmax import sparse_softmax
from repro.nn.attention_layer import DfssCore
from repro.nn.autograd import Tensor
from repro.registry import available_mechanisms, make_core
from repro.utils.seeding import new_rng


@dataclass(frozen=True)
class BenchShape:
    """Multi-head attention problem size: ``(batch, heads, seq_len, head_dim)``."""

    batch: int
    heads: int
    seq_len: int
    head_dim: int

    def label(self, pattern: str) -> str:
        return (
            f"B{self.batch}xH{self.heads}xL{self.seq_len}xD{self.head_dim}/{pattern}"
        )


#: Problem sizes per experiment scale; smoke finishes in seconds on a laptop.
SCALE_SHAPES: Dict[str, BenchShape] = {
    "smoke": BenchShape(batch=2, heads=4, seq_len=256, head_dim=64),
    "default": BenchShape(batch=4, heads=8, seq_len=512, head_dim=64),
    "full": BenchShape(batch=8, heads=8, seq_len=1024, head_dim=64),
}

#: Benchmarked pipeline stages (registry kernels plus the end-to-end pipeline).
#: ``attention_train_step`` is the trainable fwd+bwd step; its ``reference``
#: row times the dense masked autograd path (the numerical oracle for
#: training) and its ``fast`` row the compressed sparse op, so the reported
#: speedup is exactly "sparse training step vs dense autograd".
BENCH_KERNELS = (
    "sddmm_nm",
    "masked_softmax",
    "spmm",
    "softmax_spmm",
    "attention_e2e",
    "attention_train_step",
)

#: Padded-CSR pipeline stages, timed on a Longformer-style band + global
#: mask (ragged row lengths) by :func:`run_csr_benchmarks`.
CSR_BENCH_KERNELS = (
    "sddmm_csr",
    "masked_softmax_csr",
    "spmm_csr",
    "spmm_t_csr",
)

#: Fused compiled-plan pipeline vs the staged three-kernel pipeline, both on
#: the fast backend, produced by :func:`run_fused_benchmarks`.  The ``fused``
#: row's parity against ``staged`` must be exactly 0.0 (same kernels, same
#: softmax core — the plan only pre-resolves dispatch and reuses buffers).
FUSED_BENCH_KERNELS = (
    "attention_fused",
    "attention_fused_train",
)

#: Multicore tiled backend vs the single-core fast backend, forward and
#: train, produced by :func:`run_multicore_benchmarks`.  The ``multicore``
#: row's parity against ``fast`` must be exactly 0.0 — the tiled plan runs
#: the identical kernels on slices, so any nonzero bit is a tiling bug.
MULTICORE_BENCH_KERNELS = (
    "attention_multicore",
    "attention_multicore_train",
)

#: Workers-vs-speedup scaling sweep rows (backend ``w<N>``) produced by
#: :func:`run_multicore_benchmarks` when a ``scaling`` sweep is requested.
MULTICORE_SCALING_KERNEL = "attention_multicore_scaling"

#: Per-mechanism train-step matrix (sparse compressed path vs dense masked
#: autograd path) produced by :func:`run_train_matrix`.
TRAIN_MATRIX_KERNEL = "attention_train_matrix"

#: Serving throughput on the synthetic mixed workload (batched coalescing vs
#: per-request sequential execution) produced by :func:`run_serving_benchmark`.
SERVING_KERNEL = "serving_throughput"

#: Open-loop serving latency: the synthetic workload's ``arrival_offset_s``
#: Poisson schedule replayed in real time through one batching server,
#: produced by :func:`run_serving_open_loop`.
SERVING_LATENCY_KERNEL = "serving_latency"

#: Everything ``python -m repro.bench`` runs by default.
ALL_BENCH_KERNELS = (
    BENCH_KERNELS
    + CSR_BENCH_KERNELS
    + FUSED_BENCH_KERNELS
    + MULTICORE_BENCH_KERNELS
    + (TRAIN_MATRIX_KERNEL, SERVING_KERNEL, SERVING_LATENCY_KERNEL)
)


@dataclass
class BenchResult:
    """One (kernel, shape, backend) timing row of ``BENCH_kernels.json``."""

    kernel: str
    shape: str
    backend: str
    median_s: float
    p10_s: float
    p90_s: float
    speedup: float = 1.0
    parity_max_rel_err: Optional[float] = None
    repeats: int = 0
    timings_s: List[float] = field(default_factory=list)
    #: kernel-specific extra payload columns (e.g. the serving benchmark's
    #: requests/sec and latency percentiles); merged into the JSON row.
    extra: Optional[Dict[str, float]] = None


def _time(fn: Callable[[], object], repeats: int, warmup: int) -> List[float]:
    for _ in range(warmup):
        fn()
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return timings


def _rel_frobenius(candidate: np.ndarray, reference: np.ndarray) -> float:
    denom = float(np.linalg.norm(reference))
    if denom == 0.0:
        return float(np.linalg.norm(candidate))
    return float(np.linalg.norm(candidate - reference) / denom)


def _bench_cases(
    shape: BenchShape, pattern: str, rng: np.random.Generator
) -> Dict[str, Tuple[Callable[[str], object], Callable[[object], np.ndarray]]]:
    """Per-kernel ``(run(backend), densify(output))`` closures on shared inputs."""
    dims = (shape.batch, shape.heads, shape.seq_len, shape.head_dim)
    q = rng.normal(size=dims).astype(np.float32)
    k = rng.normal(size=dims).astype(np.float32)
    v = rng.normal(size=dims).astype(np.float32)
    scores = sddmm_nm(q, k, pattern=pattern)
    weights = sparse_softmax(scores)

    def train_step(backend: str) -> np.ndarray:
        """One fwd+bwd attention step; returns output and input grads for parity.

        ``reference`` runs the dense masked autograd path (``path="dense"``,
        the pre-sparse-op training path, with the reference selection
        kernel); any other backend runs the compressed sparse op end to end
        on that backend.
        """
        qt = Tensor(q, requires_grad=True)
        kt = Tensor(k, requires_grad=True)
        vt = Tensor(v, requires_grad=True)
        if backend == REFERENCE:
            core = DfssCore(pattern, backend=backend, path="dense")
        else:
            core = DfssCore(pattern, backend=backend, path="sparse")
        out = core(qt, kt, vt)
        out.sum().backward()
        return np.concatenate(
            [out.data.ravel(), qt.grad.ravel(), kt.grad.ravel(), vt.grad.ravel()]
        )

    return {
        "sddmm_nm": (
            lambda backend: sddmm_nm(q, k, pattern=pattern, backend=backend),
            lambda out: out.to_dense(0.0),
        ),
        "masked_softmax": (
            lambda backend: get_kernel("masked_softmax", backend)(scores),
            lambda out: out.to_dense(0.0),
        ),
        "spmm": (
            lambda backend: get_kernel("spmm", backend)(weights, v),
            lambda out: out,
        ),
        "softmax_spmm": (
            lambda backend: get_kernel("softmax_spmm", backend)(scores, v),
            lambda out: out,
        ),
        "attention_e2e": (
            lambda backend: dfss_attention(q, k, v, pattern=pattern, backend=backend),
            lambda out: out,
        ),
        "attention_train_step": (
            train_step,
            lambda out: out,
        ),
    }


def run_benchmarks(
    scale: str = "smoke",
    repeats: int = 5,
    warmup: int = 1,
    patterns: Sequence[str] = ("1:2", "2:4"),
    backends: Sequence[str] = (REFERENCE, "fast"),
    kernels: Optional[Sequence[str]] = None,
    seed: int = 0,
    shape: Optional[BenchShape] = None,
) -> List[BenchResult]:
    """Time every kernel x pattern x backend combination and check parity.

    Parameters
    ----------
    scale:
        One of ``smoke`` / ``default`` / ``full`` (ignored when ``shape`` is
        given explicitly).
    repeats, warmup:
        Timed repetitions per measurement and discarded warmup runs.
    patterns:
        N:M patterns to benchmark; each gets its own problem instance.
    backends:
        Backends to time.  The first is treated as the speedup/parity
        reference (``reference`` by default).
    kernels:
        Subset of :data:`BENCH_KERNELS` to run; all when omitted.
    shape:
        Explicit :class:`BenchShape` override, mainly for tests.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if shape is None:
        if scale not in SCALE_SHAPES:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {'|'.join(SCALE_SHAPES)}"
            )
        shape = SCALE_SHAPES[scale]
    selected = tuple(kernels) if kernels else BENCH_KERNELS
    unknown = set(selected) - set(BENCH_KERNELS)
    if unknown:
        raise ValueError(f"unknown kernels {sorted(unknown)}; expected {BENCH_KERNELS}")
    if not backends:
        raise ValueError("at least one backend is required")
    baseline_backend = backends[0]

    results: List[BenchResult] = []
    for pattern in patterns:
        resolve_pattern(pattern)  # fail fast on typos
        rng = new_rng(seed)
        cases = _bench_cases(shape, pattern, rng)
        for kernel in selected:
            run, densify = cases[kernel]
            baseline_out = densify(run(baseline_backend))
            baseline_median: Optional[float] = None
            for backend in backends:
                parity = (
                    None
                    if backend == baseline_backend
                    else _rel_frobenius(densify(run(backend)), baseline_out)
                )
                row = _time_row(
                    kernel, shape.label(pattern), backend, lambda: run(backend),
                    repeats, warmup, baseline_median, parity,
                )
                if backend == baseline_backend:
                    baseline_median = row.median_s
                results.append(row)
    return results


def _resolve_shape(scale: str, shape: Optional[BenchShape]) -> BenchShape:
    if shape is not None:
        return shape
    if scale not in SCALE_SHAPES:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {'|'.join(SCALE_SHAPES)}"
        )
    return SCALE_SHAPES[scale]


def _time_row(
    kernel: str,
    shape_label: str,
    backend: str,
    fn: Callable[[], object],
    repeats: int,
    warmup: int,
    baseline_median: Optional[float],
    parity: Optional[float],
) -> BenchResult:
    timings = _time(fn, repeats, warmup)
    return _row_from_timings(
        kernel, shape_label, backend, timings, baseline_median, parity
    )


def _row_from_timings(
    kernel: str,
    shape_label: str,
    backend: str,
    timings: List[float],
    baseline_median: Optional[float],
    parity: Optional[float],
) -> BenchResult:
    median = float(np.median(timings))
    if baseline_median is None:
        speedup = 1.0
    else:
        speedup = baseline_median / median if median > 0 else float("inf")
    return BenchResult(
        kernel=kernel,
        shape=shape_label,
        backend=backend,
        median_s=median,
        p10_s=float(np.percentile(timings, 10)),
        p90_s=float(np.percentile(timings, 90)),
        speedup=speedup,
        parity_max_rel_err=parity,
        repeats=len(timings),
        timings_s=[float(t) for t in timings],
    )


def run_csr_benchmarks(
    scale: str = "smoke",
    repeats: int = 5,
    warmup: int = 1,
    window: int = 16,
    backends: Sequence[str] = (REFERENCE, "fast"),
    kernels: Optional[Sequence[str]] = None,
    seed: int = 0,
    shape: Optional[BenchShape] = None,
) -> List[BenchResult]:
    """Time the padded-CSR kernels on a Longformer-style ragged band mask.

    The mask (sliding window of half-width ``window`` plus one global token)
    exercises the layout's ragged row lengths: the global row is full-width,
    band rows are narrow.  Rows mirror :func:`run_benchmarks` — the first
    backend is the speedup/parity reference — and land in the same
    ``BENCH_kernels.json`` under the ``*_csr`` kernel names with shape labels
    like ``B2xH4xL256xD64/longformer-w16``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    shape = _resolve_shape(scale, shape)
    selected = tuple(kernels) if kernels else CSR_BENCH_KERNELS
    unknown = set(selected) - set(CSR_BENCH_KERNELS)
    if unknown:
        raise ValueError(
            f"unknown kernels {sorted(unknown)}; expected {CSR_BENCH_KERNELS}"
        )
    if not backends:
        raise ValueError("at least one backend is required")
    baseline_backend = backends[0]

    rng = new_rng(seed)
    dims = (shape.batch, shape.heads, shape.seq_len, shape.head_dim)
    q = rng.normal(size=dims).astype(np.float32)
    k = rng.normal(size=dims).astype(np.float32)
    v = rng.normal(size=dims).astype(np.float32)
    g = rng.normal(size=dims).astype(np.float32)
    mask = longformer_mask(shape.seq_len, shape.seq_len, window, 1)
    structure = PaddedCSRMatrix.from_mask(mask).broadcast_to(dims[:2])
    scores = sddmm_csr(q, k, structure)
    weights = sparse_softmax(scores)
    label = shape.label(f"longformer-w{window}")

    cases: Dict[str, Tuple[Callable[[str], object], Callable[[object], np.ndarray]]] = {
        "sddmm_csr": (
            lambda backend: sddmm_csr(q, k, structure, backend=backend),
            lambda out: out.to_dense(0.0),
        ),
        "masked_softmax_csr": (
            lambda backend: get_kernel("masked_softmax", backend)(scores),
            lambda out: out.to_dense(0.0),
        ),
        "spmm_csr": (
            lambda backend: get_kernel("spmm", backend)(weights, v),
            lambda out: out,
        ),
        "spmm_t_csr": (
            lambda backend: get_kernel("spmm_t", backend)(weights, g),
            lambda out: out,
        ),
    }

    results: List[BenchResult] = []
    for kernel in selected:
        run, densify = cases[kernel]
        baseline_out = densify(run(baseline_backend))
        baseline_median: Optional[float] = None
        for backend in backends:
            parity = (
                None
                if backend == baseline_backend
                else _rel_frobenius(densify(run(backend)), baseline_out)
            )
            row = _time_row(
                kernel, label, backend, lambda: run(backend),
                repeats, warmup, baseline_median, parity,
            )
            if backend == baseline_backend:
                baseline_median = row.median_s
            results.append(row)
    return results


def run_fused_benchmarks(
    scale: str = "smoke",
    repeats: int = 5,
    warmup: int = 1,
    patterns: Sequence[str] = ("1:2", "2:4"),
    kernels: Optional[Sequence[str]] = None,
    seed: int = 0,
    shape: Optional[BenchShape] = None,
) -> List[BenchResult]:
    """Fused compiled-plan pipeline vs the staged pipeline, forward and train.

    Both arms run the *fast* kernel backend; what differs is the execution
    pipeline: ``staged`` dispatches sddmm → masked-softmax → spmm through the
    registry per call (the parity oracle), ``fused`` executes the compiled
    :class:`~repro.core.plan.AttentionPlan` — kernels pre-resolved once per
    plan, the softmax normalising the score buffer in place.  Rows land in
    ``BENCH_kernels.json`` as ``attention_fused`` (inference forward) and
    ``attention_fused_train`` (fwd+bwd step on fresh leaf tensors) with the
    pipeline name in the backend column, mirroring the serving benchmark's
    ``sequential``/``batched`` convention.  The ``fused`` row's parity against
    ``staged`` must be exactly 0.0 — the plan runs the same kernel functions
    over the same values, so any nonzero bit is a fusion bug, never noise.

    The two arms do near-identical work, so their speedup ratio is far more
    sensitive to host drift than any other row; the repeats are therefore
    *interleaved* (staged, fused, staged, fused, ...) so a slow episode on a
    shared box lands on both arms' samples instead of skewing one of them.
    """
    from repro.core.plan import FUSED, STAGED
    from repro.nn.sparse_attention import dfss_sparse_attention

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    shape = _resolve_shape(scale, shape)
    selected = tuple(kernels) if kernels else FUSED_BENCH_KERNELS
    unknown = set(selected) - set(FUSED_BENCH_KERNELS)
    if unknown:
        raise ValueError(
            f"unknown kernels {sorted(unknown)}; expected {FUSED_BENCH_KERNELS}"
        )

    results: List[BenchResult] = []
    for pattern in patterns:
        resolve_pattern(pattern)  # fail fast on typos
        rng = new_rng(seed)
        dims = (shape.batch, shape.heads, shape.seq_len, shape.head_dim)
        q = rng.normal(size=dims).astype(np.float32)
        k = rng.normal(size=dims).astype(np.float32)
        v = rng.normal(size=dims).astype(np.float32)

        def forward(pipeline: str) -> np.ndarray:
            return dfss_attention(q, k, v, pattern=pattern, pipeline=pipeline)

        def train(pipeline: str) -> np.ndarray:
            qt = Tensor(q, requires_grad=True)
            kt = Tensor(k, requires_grad=True)
            vt = Tensor(v, requires_grad=True)
            out, _ = dfss_sparse_attention(
                qt, kt, vt, pattern=pattern, pipeline=pipeline
            )
            out.sum().backward()
            return np.concatenate(
                [out.data.ravel(), qt.grad.ravel(), kt.grad.ravel(), vt.grad.ravel()]
            )

        cases: Dict[str, Callable[[str], np.ndarray]] = {
            "attention_fused": forward,
            "attention_fused_train": train,
        }
        label = shape.label(pattern)
        for kernel in selected:
            run = cases[kernel]
            baseline_out = run(STAGED)
            parity = _rel_frobenius(run(FUSED), baseline_out)
            for _ in range(warmup):
                run(STAGED)
                run(FUSED)
            staged_timings: List[float] = []
            fused_timings: List[float] = []
            for _ in range(repeats):
                start = time.perf_counter()
                run(STAGED)
                staged_timings.append(time.perf_counter() - start)
                start = time.perf_counter()
                run(FUSED)
                fused_timings.append(time.perf_counter() - start)
            staged_row = _row_from_timings(
                kernel, label, STAGED, staged_timings, None, None
            )
            results.append(staged_row)
            results.append(
                _row_from_timings(
                    kernel, label, FUSED, fused_timings,
                    staged_row.median_s, parity,
                )
            )
    return results


@contextlib.contextmanager
def _scoped_workers(workers: Optional[int]):
    """Temporarily pin ``$REPRO_MULTICORE_WORKERS`` (the pool re-resolves it
    per run, rebuilding the executor when the count changes)."""
    from repro.core.multicore import WORKERS_ENV_VAR

    if workers is None:
        yield
        return
    old = os.environ.get(WORKERS_ENV_VAR)
    os.environ[WORKERS_ENV_VAR] = str(int(workers))
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(WORKERS_ENV_VAR, None)
        else:
            os.environ[WORKERS_ENV_VAR] = old


def _exact_parity(candidate: np.ndarray, reference: np.ndarray) -> float:
    """0.0 on bitwise-equal arrays, else the honest relative error."""
    if np.array_equal(candidate, reference):
        return 0.0
    return _rel_frobenius(candidate, reference)


def run_multicore_benchmarks(
    scale: str = "smoke",
    repeats: int = 5,
    warmup: int = 1,
    patterns: Sequence[str] = ("1:2", "2:4"),
    kernels: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    scaling: Optional[Sequence[int]] = None,
    seed: int = 0,
    shape: Optional[BenchShape] = None,
) -> List[BenchResult]:
    """Multicore tiled plan vs the single-core fast plan, forward and train.

    Both arms run the identical fused compiled-plan pipeline; what differs is
    the backend: ``fast`` executes each stage as one whole-batch numpy call,
    ``multicore`` tiles the flattened batch×head dimension over the worker
    pool (see :mod:`repro.core.multicore`).  Rows land in
    ``BENCH_kernels.json`` as ``attention_multicore`` (inference forward) and
    ``attention_multicore_train`` (fwd+bwd step on fresh leaf tensors) with
    the backend in the backend column.  The ``multicore`` row's parity
    against ``fast`` must be exactly 0.0 — the tiles run the same kernels on
    disjoint slices, so any nonzero bit is a tiling bug, never noise — and
    carries a ``workers`` extra column recording the pool size the row
    actually ran with (the CI gate only applies its speedup floor when this
    is >= 2; a single-core host cannot demonstrate a parallel speedup).

    ``workers`` pins the pool size (default: ``$REPRO_MULTICORE_WORKERS``,
    else the host cpu count).  ``scaling`` additionally sweeps the forward
    pass over the given worker counts on the first pattern, emitting
    ``attention_multicore_scaling`` rows (backend ``w<N>``) whose speedup
    baseline is the single-worker arm — the workers-vs-speedup curve.

    Like the fused benchmark's arms, the two backends do near-identical work
    per stage, so repeats are interleaved (fast, multicore, fast, ...) to
    keep host drift off the ratio.
    """
    from repro.core.backend import FAST, MULTICORE
    from repro.core.multicore import resolve_worker_count
    from repro.nn.sparse_attention import dfss_sparse_attention

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    shape = _resolve_shape(scale, shape)
    selected = tuple(kernels) if kernels else MULTICORE_BENCH_KERNELS
    unknown = set(selected) - set(MULTICORE_BENCH_KERNELS)
    if unknown:
        raise ValueError(
            f"unknown kernels {sorted(unknown)}; expected {MULTICORE_BENCH_KERNELS}"
        )

    results: List[BenchResult] = []
    with _scoped_workers(workers):
        pool_workers = resolve_worker_count()
        for pattern in patterns:
            resolve_pattern(pattern)  # fail fast on typos
            rng = new_rng(seed)
            dims = (shape.batch, shape.heads, shape.seq_len, shape.head_dim)
            q = rng.normal(size=dims).astype(np.float32)
            k = rng.normal(size=dims).astype(np.float32)
            v = rng.normal(size=dims).astype(np.float32)

            def forward(backend: str) -> np.ndarray:
                return dfss_attention(q, k, v, pattern=pattern, backend=backend)

            def train(backend: str) -> np.ndarray:
                qt = Tensor(q, requires_grad=True)
                kt = Tensor(k, requires_grad=True)
                vt = Tensor(v, requires_grad=True)
                out, _ = dfss_sparse_attention(
                    qt, kt, vt, pattern=pattern, backend=backend
                )
                out.sum().backward()
                return np.concatenate(
                    [out.data.ravel(), qt.grad.ravel(), kt.grad.ravel(), vt.grad.ravel()]
                )

            cases: Dict[str, Callable[[str], np.ndarray]] = {
                "attention_multicore": forward,
                "attention_multicore_train": train,
            }
            label = shape.label(pattern)
            for kernel in selected:
                run = cases[kernel]
                baseline_out = run(FAST)
                parity = _exact_parity(run(MULTICORE), baseline_out)
                for _ in range(warmup):
                    run(FAST)
                    run(MULTICORE)
                fast_timings: List[float] = []
                multicore_timings: List[float] = []
                for _ in range(repeats):
                    start = time.perf_counter()
                    run(FAST)
                    fast_timings.append(time.perf_counter() - start)
                    start = time.perf_counter()
                    run(MULTICORE)
                    multicore_timings.append(time.perf_counter() - start)
                fast_row = _row_from_timings(
                    kernel, label, FAST, fast_timings, None, None
                )
                results.append(fast_row)
                multicore_row = _row_from_timings(
                    kernel, label, MULTICORE, multicore_timings,
                    fast_row.median_s, parity,
                )
                multicore_row.extra = {"workers": float(pool_workers)}
                results.append(multicore_row)

    if scaling:
        pattern = patterns[0]
        rng = new_rng(seed)
        dims = (shape.batch, shape.heads, shape.seq_len, shape.head_dim)
        q = rng.normal(size=dims).astype(np.float32)
        k = rng.normal(size=dims).astype(np.float32)
        v = rng.normal(size=dims).astype(np.float32)
        label = shape.label(pattern)
        sweep = sorted({1} | {max(1, int(n)) for n in scaling})
        base_median: Optional[float] = None
        for n in sweep:
            with _scoped_workers(n):
                timings = _time(
                    lambda: dfss_attention(
                        q, k, v, pattern=pattern, backend="multicore"
                    ),
                    repeats, warmup,
                )
            row = _row_from_timings(
                MULTICORE_SCALING_KERNEL, label, f"w{n}", timings,
                base_median, None,
            )
            row.extra = {"workers": float(n)}
            if base_median is None:
                base_median = row.median_s
            results.append(row)
    return results


def run_train_matrix(
    scale: str = "smoke",
    repeats: int = 3,
    warmup: int = 1,
    mechanisms: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
    seed: int = 0,
    shape: Optional[BenchShape] = None,
) -> List[BenchResult]:
    """Per-mechanism fwd+bwd train-step matrix: compressed sparse vs dense autograd.

    Sweeps every mask-based trainable mechanism
    (``available_mechanisms(trainable=True, produces_mask=True,
    compressed=True)``) and times one full training step (forward + backward
    on fresh leaf tensors) through both execution paths of its core:

    * ``dense`` — the dense masked-softmax autograd formulation
      (``path="dense"``), the numerical oracle and speedup baseline;
    * ``sparse`` — the compressed autograd op (``path="sparse"``): the N:M
      pipeline for DFSS-family mechanisms, padded CSR for every other mask.

    Rows land in ``BENCH_kernels.json`` as kernel ``attention_train_matrix``
    with shape labels like ``B2xH4xL256xD64/local``; the ``sparse`` row's
    ``speedup`` is dense-median / sparse-median and its parity column checks
    output + input gradients between the two paths.  ``backend`` selects the
    kernel backend both paths dispatch to (default: ``$REPRO_BACKEND``,
    else "fast").
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    shape = _resolve_shape(scale, shape)
    if mechanisms is None:
        mechanisms = available_mechanisms(
            trainable=True, produces_mask=True, compressed=True
        )

    rng = new_rng(seed)
    dims = (shape.batch, shape.heads, shape.seq_len, shape.head_dim)
    q = rng.normal(size=dims).astype(np.float32)
    k = rng.normal(size=dims).astype(np.float32)
    v = rng.normal(size=dims).astype(np.float32)

    results: List[BenchResult] = []
    for mechanism in mechanisms:
        cores = {
            path: make_core(
                mechanism, seq_len_hint=shape.seq_len, path=path, backend=backend
            )
            for path in ("dense", "sparse")
        }

        def step(path: str) -> np.ndarray:
            qt = Tensor(q, requires_grad=True)
            kt = Tensor(k, requires_grad=True)
            vt = Tensor(v, requires_grad=True)
            out = cores[path](qt, kt, vt)
            out.sum().backward()
            return np.concatenate(
                [out.data.ravel(), qt.grad.ravel(), kt.grad.ravel(), vt.grad.ravel()]
            )

        label = shape.label(mechanism)
        dense_out = step("dense")
        dense_row = _time_row(
            TRAIN_MATRIX_KERNEL, label, "dense", lambda: step("dense"),
            repeats, warmup, None, None,
        )
        results.append(dense_row)
        parity = _rel_frobenius(step("sparse"), dense_out)
        results.append(
            _time_row(
                TRAIN_MATRIX_KERNEL, label, "sparse", lambda: step("sparse"),
                repeats, warmup, dense_row.median_s, parity,
            )
        )
    return results


def run_serving_benchmark(
    scale: str = "smoke",
    repeats: int = 3,
    warmup: int = 1,
    n_requests: Optional[int] = None,
    backends: Sequence[str] = ("sequential", "batched"),
    max_batch_size: int = 16,
    seed: int = 0,
    shape: Optional[BenchShape] = None,
) -> List[BenchResult]:
    """Closed-loop serving throughput: ragged coalescing vs sequential serving.

    Replays the synthetic mixed workload (static-mask mechanisms across three
    sequence lengths, see :func:`repro.serve.workload.synthetic_workload`)
    through ``repro.serve`` twice: ``sequential`` serves every request in
    isolation — a fresh single-request server per request, so no coalescing,
    no cross-request structure cache, no engine reuse, exactly what handling
    each request independently costs — and ``batched`` hands the whole stream
    to one server that coalesces up to ``max_batch_size`` requests into one
    ragged batch and shares cached structures across them.  All requests are
    enqueued up front (closed loop), so the elapsed drain time is pure
    serving work.

    Rows land in ``BENCH_kernels.json`` as kernel ``serving_throughput`` with
    extra columns ``requests_per_s`` and ``latency_p50_s``/``p95``/``p99``;
    the ``batched`` row's ``speedup`` is sequential-median / batched-median —
    identical to the requests/sec ratio, which is what the CI gate floors.
    The parity column compares the batched outputs against the sequential
    outputs and must be exactly ``0.0``: the width-invariant ragged kernels
    guarantee bitwise request-isolation.
    """
    from repro.serve import AttentionServer, serve, synthetic_workload

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    shape = _resolve_shape(scale, shape)
    if n_requests is None:
        n_requests = 12 * shape.batch
    batch_sizes = {"sequential": 1, "batched": max_batch_size}
    unknown = set(backends) - set(batch_sizes)
    if unknown:
        raise ValueError(
            f"unknown serving backends {sorted(unknown)}; "
            f"expected {tuple(batch_sizes)}"
        )
    seq_lens = tuple(
        sorted({max(16, shape.seq_len // 4), max(16, shape.seq_len // 2), shape.seq_len})
    )
    requests = synthetic_workload(
        n_requests,
        seq_lens=seq_lens,
        # single-head requests: the per-stream serving granularity, and the
        # regime where coalescing (not intra-request head grouping) pays
        heads=1,
        head_dim=shape.head_dim,
        seed=seed,
    )
    label = shape.label(f"serve-mix{n_requests}")

    results: List[BenchResult] = []
    baseline_out: Optional[np.ndarray] = None
    baseline_median: Optional[float] = None
    for backend in backends:
        batch_size = batch_sizes[backend]
        # the batched arm is one long-lived server handling the stream — its
        # structure cache persists across requests (that is the feature being
        # measured); the sequential arm spins up a fresh server per request
        server = None if batch_size == 1 else AttentionServer(
            max_batch_size=batch_size
        )

        def run():
            if server is None:
                # per-request isolation: a fresh server per request
                served = []
                for request in requests:
                    served.extend(serve([request], max_batch_size=1))
                return served
            return serve(requests, server=server)

        served = None
        for _ in range(warmup):
            served = run()
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            served = run()
            timings.append(time.perf_counter() - start)
        out = np.concatenate([r.output.ravel() for r in served])
        parity = (
            None if baseline_out is None else _rel_frobenius(out, baseline_out)
        )
        median = float(np.median(timings))
        if baseline_median is None:
            speedup = 1.0
        else:
            speedup = baseline_median / median if median > 0 else float("inf")
        latencies = np.array([r.latency_s for r in served], dtype=float)
        results.append(
            BenchResult(
                kernel=SERVING_KERNEL,
                shape=label,
                backend=backend,
                median_s=median,
                p10_s=float(np.percentile(timings, 10)),
                p90_s=float(np.percentile(timings, 90)),
                speedup=speedup,
                parity_max_rel_err=parity,
                repeats=repeats,
                timings_s=[float(t) for t in timings],
                extra={
                    "requests_per_s": (
                        n_requests / median if median > 0 else float("inf")
                    ),
                    "latency_p50_s": float(np.percentile(latencies, 50)),
                    "latency_p95_s": float(np.percentile(latencies, 95)),
                    "latency_p99_s": float(np.percentile(latencies, 99)),
                },
            )
        )
        if baseline_median is None:
            baseline_out = out
            baseline_median = median
    return results


def run_serving_open_loop(
    scale: str = "smoke",
    repeats: int = 3,
    warmup: int = 1,
    n_requests: Optional[int] = None,
    rate_rps: float = 200.0,
    deadline_s: float = 0.05,
    max_batch_size: int = 16,
    seed: int = 0,
    shape: Optional[BenchShape] = None,
) -> List[BenchResult]:
    """Open-loop serving latency: replay the Poisson arrival schedule in real time.

    Where :func:`run_serving_benchmark` enqueues everything up front (closed
    loop — a throughput number), this replays each request at its recorded
    ``arrival_offset_s`` against one long-lived batching server whose clock is
    the replay wall clock, so queueing delay, batching-deadline waits, and
    any backlog a slow batch causes all land in the measured latency — the
    number a tail-latency SLO is written against.

    Per-request open-loop latency = completion − *scheduled* arrival: the
    server-side queue+execute latency plus any lag between the scheduled
    arrival and the moment the replayer actually enqueued (backlog from a
    batch that overran the next arrival).  One ``BenchResult`` row lands in
    ``BENCH_kernels.json`` as kernel ``serving_latency`` / backend
    ``open_loop``; ``median_s``/``p10_s``/``p90_s`` are order statistics of
    the pooled per-request latencies across replays (not of replay wall
    times — those go to ``timings_s``), and ``extra`` carries the p50/p95/p99
    tail, the deadline-miss count against ``deadline_s``, and the offered
    arrival rate.
    """
    from repro.serve import AttentionServer, synthetic_workload

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    shape = _resolve_shape(scale, shape)
    if n_requests is None:
        n_requests = 12 * shape.batch
    seq_lens = tuple(
        sorted({max(16, shape.seq_len // 4), max(16, shape.seq_len // 2), shape.seq_len})
    )
    requests = synthetic_workload(
        n_requests,
        seq_lens=seq_lens,
        heads=1,
        head_dim=shape.head_dim,
        rate_rps=rate_rps,
        seed=seed,
    )
    schedule = sorted(requests, key=lambda r: r.arrival_offset_s)

    def replay() -> Tuple[List[float], float]:
        t0 = time.perf_counter()
        server = AttentionServer(
            max_batch_size=max_batch_size,
            clock=lambda: time.perf_counter() - t0,
        )
        handles = []
        for request in schedule:
            # wait out the inter-arrival gap, firing expired batching
            # deadlines so queued requests do not sit past their wait bound
            while True:
                now = time.perf_counter() - t0
                if now >= request.arrival_offset_s:
                    break
                server.step(now=now)
                remaining = request.arrival_offset_s - (time.perf_counter() - t0)
                if remaining > 0:
                    time.sleep(min(remaining, 1e-4))
            handles.append((server.enqueue(request), request.arrival_offset_s))
            server.step()
        server.drain()
        elapsed = time.perf_counter() - t0
        latencies = [
            max(pending.arrival - offset, 0.0) + pending.result.latency_s
            for pending, offset in handles
        ]
        return latencies, elapsed

    for _ in range(warmup):
        replay()
    pooled: List[float] = []
    walls: List[float] = []
    for _ in range(repeats):
        latencies, elapsed = replay()
        pooled.extend(latencies)
        walls.append(elapsed)
    samples = np.asarray(pooled, dtype=float)
    misses = int(np.sum(samples > deadline_s))
    median_wall = float(np.median(walls))
    return [
        BenchResult(
            kernel=SERVING_LATENCY_KERNEL,
            shape=shape.label(f"serve-open{n_requests}@{rate_rps:g}rps"),
            backend="open_loop",
            median_s=float(np.percentile(samples, 50)),
            p10_s=float(np.percentile(samples, 10)),
            p90_s=float(np.percentile(samples, 90)),
            speedup=1.0,
            parity_max_rel_err=None,
            repeats=repeats,
            timings_s=[float(t) for t in walls],
            extra={
                "latency_p50_s": float(np.percentile(samples, 50)),
                "latency_p95_s": float(np.percentile(samples, 95)),
                "latency_p99_s": float(np.percentile(samples, 99)),
                "deadline_s": float(deadline_s),
                "deadline_misses": float(misses),
                "deadline_miss_rate": float(misses) / float(len(samples) or 1),
                "offered_rate_rps": float(rate_rps),
                "requests_per_s": (
                    n_requests / median_wall if median_wall > 0 else float("inf")
                ),
            },
        )
    ]
