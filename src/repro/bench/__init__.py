"""Benchmark runner for the DFSS kernels and the end-to-end attention layer.

``python -m repro.bench`` times every registered kernel (``sddmm_nm``,
``masked_softmax``, ``spmm``, fused ``softmax_spmm``) plus the end-to-end
multi-head DFSS attention pipeline under both the ``reference`` and ``fast``
backends, verifies that the backends agree numerically, and emits a
machine-readable ``BENCH_kernels.json`` that the CI perf gate
(``scripts/check_bench_regression.py``) diffs against the committed baseline.
"""

from repro.bench.report import (
    SCHEMA_VERSION,
    format_table,
    load_payload,
    results_to_payload,
    write_payload,
)
from repro.bench.runner import BenchResult, BenchShape, SCALE_SHAPES, run_benchmarks

__all__ = [
    "SCHEMA_VERSION",
    "BenchResult",
    "BenchShape",
    "SCALE_SHAPES",
    "format_table",
    "load_payload",
    "results_to_payload",
    "run_benchmarks",
    "write_payload",
]
