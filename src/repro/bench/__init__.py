"""Benchmark runner for the DFSS kernels and the end-to-end attention layer.

``python -m repro.bench`` times every registered kernel (``sddmm_nm``,
``masked_softmax``, ``spmm``, fused ``softmax_spmm``) plus the end-to-end
multi-head DFSS attention pipeline under both the ``reference`` and ``fast``
backends, the padded-CSR kernel pipeline on a ragged Longformer-style mask
(``*_csr`` rows), and the per-mechanism train-step matrix
(``attention_train_matrix``: compressed sparse path vs dense masked autograd
for every mask-based trainable mechanism).  It verifies that the paths agree
numerically and emits a machine-readable ``BENCH_kernels.json`` that the CI
perf gate (``scripts/check_bench_regression.py``) diffs against the
committed baseline.
"""

from repro.bench.report import (
    SCHEMA_VERSION,
    format_table,
    load_payload,
    results_to_payload,
    write_payload,
)
from repro.bench.runner import (
    ALL_BENCH_KERNELS,
    BENCH_KERNELS,
    CSR_BENCH_KERNELS,
    TRAIN_MATRIX_KERNEL,
    BenchResult,
    BenchShape,
    SCALE_SHAPES,
    run_benchmarks,
    run_csr_benchmarks,
    run_train_matrix,
)

__all__ = [
    "SCHEMA_VERSION",
    "ALL_BENCH_KERNELS",
    "BENCH_KERNELS",
    "CSR_BENCH_KERNELS",
    "TRAIN_MATRIX_KERNEL",
    "BenchResult",
    "BenchShape",
    "SCALE_SHAPES",
    "format_table",
    "load_payload",
    "results_to_payload",
    "run_benchmarks",
    "run_csr_benchmarks",
    "run_train_matrix",
    "write_payload",
]
