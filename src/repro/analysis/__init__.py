"""Static analysis + runtime sanitizer for the compressed-attention kernels.

Three passes defend the contracts the paper's performance story rests on:

* :mod:`repro.analysis.contracts` — kernel-contract checker over every
  ``@register_kernel`` site (KC rules: backend completeness, signature
  consistency, no dense materialisation on fast paths, no deprecated staged
  entry points).
* :mod:`repro.analysis.aliasing` — may-alias dataflow pass flagging in-place
  mutation of buffers reachable from parameters or cached structures (AL
  rules), with an inventoried ``# repro: owns-buffer`` waiver syntax.
* :mod:`repro.analysis.sanitize` — runtime sanitizer (``REPRO_SANITIZE=1``):
  read-only views of user inputs, write-once guards on cached structure
  arrays, sentinel/NaN leak checks on outputs and gradients.

Run the static passes with ``python -m repro.analysis [--strict] [--json …]``;
CI gates on ``--strict`` and uploads ``analysis_report.json``.
"""

from repro.analysis.findings import AnalysisReport, Finding, WAIVER_MARKER
from repro.analysis.runner import run_analysis
from repro.analysis.sanitize import (
    SanitizerError,
    sanitize_enabled,
    check_output,
    guard_input,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "WAIVER_MARKER",
    "run_analysis",
    "SanitizerError",
    "sanitize_enabled",
    "check_output",
    "guard_input",
]
