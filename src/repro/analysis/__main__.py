"""CLI: ``python -m repro.analysis [paths…] [--strict] [--json REPORT]``.

Exit status: 0 when clean, 1 when any unwaived error remains (``--strict``
also fails on warnings).  Findings print one per line as
``file:line: [RULE] severity: message`` — the format CI surfaces directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.runner import run_analysis


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analysis for the compressed-attention kernel surface: "
            "kernel-contract checker (KC rules) and aliasing/in-place "
            "analyzer (AL rules, waived via '# repro: owns-buffer')."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=(
            "files or directories to analyze (default: the repo's src/repro "
            "tree for contracts plus the buffer-reuse hot modules for aliasing)"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (CI runs this)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        metavar="REPORT",
        help="also write the machine-readable report (analysis_report.json)",
    )
    parser.add_argument(
        "--no-waivers",
        action="store_true",
        help="omit the waiver inventory from the text output",
    )
    args = parser.parse_args(argv)

    report = run_analysis(paths=args.paths or None)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(report.to_json() + "\n")
    print(report.format(show_waivers=not args.no_waivers))
    return 1 if report.failed(strict=args.strict) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
