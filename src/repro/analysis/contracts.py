"""Kernel-contract checker: AST pass over every ``@register_kernel`` site.

The whole pipeline rests on the contract that the registry kernels honour the
same interface regardless of backend and that fast backends never fall back to
dense O(n²) intermediates.  Parity tests only cover the shapes they run; this
pass proves the contract *statically* for every registered kernel:

* **KC001 / KC002** — every kernel name must carry both a ``reference``
  backend (the loop oracle the parity suite compares against) and at least one
  fast (non-reference) backend.  A kernel with only one of the two is either
  untestable or unusable at speed.
* **KC003** — cross-backend signature consistency: all backends of one kernel
  name must accept the same parameter names in the same order, so a
  ``backend=`` switch can never change call semantics.
* **KC004** — dense materialisation in a fast-path kernel: ``np.zeros((n, n))``
  style allocations whose shape repeats one extent (the dense score-tile
  smell), ``.toarray()`` calls, and ``.to_dense()`` on a compressed operand.
  Fast kernels must touch compressed operands only through the
  :class:`~repro.core.layout.CompressedLayout` protocol
  (``gather_dense`` / ``scatter_compressed`` / ``to_scattered``).
* **KC005** — deprecated staged entry points (``softmax_spmm``,
  ``dfss_attention_bwd``) referenced by Python name outside their shim homes.
  The deprecation shims exist for external users; internal code must go
  through the compiled :class:`~repro.core.plan.AttentionPlan` or
  ``masked_attention_bwd``.
* **KC006** (warning) — kernel bodies reaching into private layout internals
  (``_shared``, ``_scatter_cache``, …) instead of the protocol surface.

The checker never imports the code it analyses — files are parsed with
:mod:`ast`, so seeded-violation fixtures can register impossible kernels
without polluting the live registry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import ERROR, WARNING, Finding

#: Python names whose use marks a deprecated staged call site.
DEPRECATED_NAMES = ("softmax_spmm", "dfss_attention_bwd")

#: Modules allowed to reference the deprecated names: the shims' own homes and
#: the re-exporting package __init__.  (Path suffixes, POSIX-style.)
DEPRECATED_ALLOWLIST = (
    "repro/core/__init__.py",
    "repro/core/spmm.py",
    "repro/core/attention_grad.py",
    "tests/core/test_deprecated_staged.py",
)

#: Backend constant names resolvable without importing the module.
_BACKEND_CONSTANTS = {"FAST": "fast", "REFERENCE": "reference"}

#: Private layout attributes a kernel body must not touch (KC006).
_PRIVATE_LAYOUT_ATTRS = (
    "_shared",
    "_shared_caches",
    "_scatter_cache",
    "_column_cache",
    "_scatter_cols",
    "_flat_scatter_indices",
    "_row_leads",
)


@dataclass
class KernelImpl:
    """One ``@register_kernel(name, backend)`` implementation site."""

    kernel: str
    backend: Optional[str]  # None when not statically resolvable
    func_name: str
    params: Tuple[str, ...]
    file: str
    line: int
    node: ast.FunctionDef = field(repr=False)


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _backend_name(node: ast.AST) -> Optional[str]:
    lit = _literal_str(node)
    if lit is not None:
        return lit
    if isinstance(node, ast.Name):
        return _BACKEND_CONSTANTS.get(node.id, node.id.lower())
    if isinstance(node, ast.Attribute):
        return _BACKEND_CONSTANTS.get(node.attr, node.attr.lower())
    return None


def _is_register_kernel(func: ast.AST) -> bool:
    return (isinstance(func, ast.Name) and func.id == "register_kernel") or (
        isinstance(func, ast.Attribute) and func.attr == "register_kernel"
    )


def _registration_args(call: ast.Call) -> Optional[Tuple[str, Optional[str]]]:
    """``(kernel, backend)`` of a ``register_kernel(...)`` call, else None."""
    if not _is_register_kernel(call.func) or not call.args:
        return None
    kernel = _literal_str(call.args[0])
    if kernel is None:
        return None
    backend = _backend_name(call.args[1]) if len(call.args) > 1 else None
    return kernel, backend


def _param_names(node: ast.FunctionDef) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    return tuple(names)


def collect_kernels(tree: ast.Module, file: str) -> List[KernelImpl]:
    """Every kernel implementation registered in one parsed module.

    Handles both the decorator form and the module-level call form
    ``register_kernel("name", BACKEND)(existing_function)``.
    """
    impls: List[KernelImpl] = []
    defs: Dict[str, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, node)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in node.decorator_list:
                if isinstance(dec, ast.Call):
                    reg = _registration_args(dec)
                    if reg is not None:
                        impls.append(
                            KernelImpl(
                                kernel=reg[0],
                                backend=reg[1],
                                func_name=node.name,
                                params=_param_names(node),
                                file=file,
                                line=node.lineno,
                                node=node,
                            )
                        )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Call):
            # register_kernel("name", BACKEND)(fn)
            reg = _registration_args(node.func)
            if reg is not None and node.args and isinstance(node.args[0], ast.Name):
                fn = defs.get(node.args[0].id)
                if fn is not None:
                    impls.append(
                        KernelImpl(
                            kernel=reg[0],
                            backend=reg[1],
                            func_name=fn.name,
                            params=_param_names(fn),
                            file=file,
                            line=node.lineno,
                            node=fn,
                        )
                    )
    return impls


# ----------------------------------------------------------------- KC004/006
def _shape_tuple_repeats_extent(shape: ast.AST) -> bool:
    """True for shape tuples like ``(n, n)`` that square one extent."""
    if not isinstance(shape, (ast.Tuple, ast.List)) or len(shape.elts) < 2:
        return False
    rendered = [ast.dump(e) for e in shape.elts]
    return len(set(rendered)) < len(rendered)


def _dense_materialization_findings(impl: KernelImpl) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(impl.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("zeros", "empty", "ones", "full")
            and node.args
            and _shape_tuple_repeats_extent(node.args[0])
        ):
            findings.append(
                Finding(
                    rule="KC004",
                    severity=ERROR,
                    file=impl.file,
                    line=node.lineno,
                    message=(
                        f"fast kernel {impl.func_name!r} ({impl.kernel}/{impl.backend}) "
                        f"allocates a dense tile whose shape repeats an extent "
                        f"(np.{func.attr}((n, n))-style O(n²) intermediate); compressed "
                        f"operands must flow through the CompressedLayout protocol"
                    ),
                )
            )
        elif isinstance(func, ast.Attribute) and func.attr in ("toarray", "to_dense"):
            findings.append(
                Finding(
                    rule="KC004",
                    severity=ERROR,
                    file=impl.file,
                    line=node.lineno,
                    message=(
                        f"fast kernel {impl.func_name!r} ({impl.kernel}/{impl.backend}) "
                        f"densifies a compressed operand via .{func.attr}(); use the "
                        f"layout's gather/scatter protocol methods instead"
                    ),
                )
            )
    return findings


def _private_access_findings(impl: KernelImpl) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(impl.node):
        if isinstance(node, ast.Attribute) and node.attr in _PRIVATE_LAYOUT_ATTRS:
            findings.append(
                Finding(
                    rule="KC006",
                    severity=WARNING,
                    file=impl.file,
                    line=node.lineno,
                    message=(
                        f"kernel {impl.func_name!r} ({impl.kernel}/{impl.backend}) reaches "
                        f"into private layout internal {node.attr!r}; only the "
                        f"CompressedLayout protocol surface is contract-stable"
                    ),
                )
            )
    return findings


# --------------------------------------------------------------------- KC005
def _deprecated_name_findings(tree: ast.Module, file: str) -> List[Finding]:
    posix = Path(file).as_posix()
    if any(posix.endswith(suffix) for suffix in DEPRECATED_ALLOWLIST):
        return []
    findings: List[Finding] = []

    def flag(line: int, name: str, how: str) -> None:
        replacement = (
            "the compiled AttentionPlan (repro.core.plan)"
            if name == "softmax_spmm"
            else "masked_attention_bwd / AttentionPlan.backward"
        )
        findings.append(
            Finding(
                rule="KC005",
                severity=ERROR,
                file=file,
                line=line,
                message=(
                    f"deprecated staged entry point {name!r} {how}; internal call "
                    f"sites must use {replacement} (the shim remains for external "
                    f"users only)"
                ),
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name.split(".")[-1] in DEPRECATED_NAMES:
                    flag(node.lineno, alias.name.split(".")[-1], "imported")
        elif isinstance(node, ast.Name) and node.id in DEPRECATED_NAMES:
            flag(node.lineno, node.id, "referenced")
        elif isinstance(node, ast.Attribute) and node.attr in DEPRECATED_NAMES:
            flag(node.lineno, node.attr, "referenced")
    return findings


# ---------------------------------------------------------------------- pass
def check_contracts(files: Sequence[Path], root: Optional[Path] = None):
    """Run the kernel-contract checks over ``files``.

    Returns ``(findings, stats)`` where ``stats`` counts kernels and
    registered backends.  ``root`` relativises paths in the findings.
    """
    findings: List[Finding] = []
    by_kernel: Dict[str, List[KernelImpl]] = {}
    parsed = 0
    for path in files:
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            findings.append(
                Finding(
                    rule="KC000",
                    severity=ERROR,
                    file=_rel(path, root),
                    line=getattr(exc, "lineno", 1) or 1,
                    message=f"could not parse file: {exc}",
                )
            )
            continue
        parsed += 1
        rel = _rel(path, root)
        for impl in collect_kernels(tree, rel):
            by_kernel.setdefault(impl.kernel, []).append(impl)
        findings.extend(_deprecated_name_findings(tree, rel))

    registrations = 0
    for kernel, impls in sorted(by_kernel.items()):
        registrations += len(impls)
        backends = {i.backend for i in impls if i.backend is not None}
        anchor = impls[0]
        if "reference" not in backends:
            findings.append(
                Finding(
                    rule="KC001",
                    severity=ERROR,
                    file=anchor.file,
                    line=anchor.line,
                    message=(
                        f"kernel {kernel!r} has no 'reference' backend — every kernel "
                        f"needs the loop oracle the parity suite compares against "
                        f"(registered: {sorted(backends) or 'none'})"
                    ),
                )
            )
        if not (backends - {"reference"}):
            findings.append(
                Finding(
                    rule="KC002",
                    severity=ERROR,
                    file=anchor.file,
                    line=anchor.line,
                    message=(
                        f"kernel {kernel!r} has no fast backend — a reference-only "
                        f"kernel cannot serve the default dispatch path"
                    ),
                )
            )
        # signature consistency: anchor on the reference backend when present
        ref = next((i for i in impls if i.backend == "reference"), anchor)
        for impl in impls:
            if impl is ref:
                continue
            if impl.params != ref.params:
                findings.append(
                    Finding(
                        rule="KC003",
                        severity=ERROR,
                        file=impl.file,
                        line=impl.line,
                        message=(
                            f"kernel {kernel!r} backend {impl.backend!r} signature "
                            f"{impl.params} differs from {ref.backend!r} backend "
                            f"{ref.params} at {ref.file}:{ref.line} — a backend= "
                            f"switch must never change call semantics"
                        ),
                    )
                )
        for impl in impls:
            if impl.backend is not None and impl.backend != "reference":
                findings.extend(_dense_materialization_findings(impl))
            findings.extend(_private_access_findings(impl))

    stats = {
        "files_scanned": parsed,
        "kernels": len(by_kernel),
        "kernel_registrations": registrations,
    }
    return findings, stats


def _rel(path: Path, root: Optional[Path]) -> str:
    path = Path(path).resolve()
    if root is not None:
        try:
            return path.relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()
