"""Finding/waiver data model shared by every analysis pass.

A *finding* is one rule violation anchored to a ``file:line``; a *waiver* is
a finding that the code explicitly acknowledges with a ``# repro: owns-buffer``
marker (see :mod:`repro.analysis.aliasing`).  Waived findings stay in the
report — the whole point of the waiver inventory is that intentional buffer
reuse is *documented*, not invisible — but they do not fail the run.

Severities
----------
``error``
    Contract violations that must never ship (missing backend, signature
    drift, dense materialisation in a fast kernel, unwaived in-place
    mutation).  Any unwaived error makes the analysis exit nonzero.
``warning``
    Smells worth reading but not blocking by default (private layout-internal
    access inside kernels).  ``--strict`` promotes warnings to failures.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

ERROR = "error"
WARNING = "warning"

#: Marker comment that waives an aliasing/in-place finding on its own line or
#: the line directly above.  Anything after the marker is kept as the note.
WAIVER_MARKER = "repro: owns-buffer"


@dataclass(frozen=True)
class Finding:
    """One rule violation (or documented waiver) at a source location."""

    rule: str
    severity: str
    file: str
    line: int
    message: str
    waived: bool = False
    waiver_note: str = ""

    def format(self) -> str:
        tag = " (waived)" if self.waived else ""
        return f"{self.file}:{self.line}: [{self.rule}] {self.severity}{tag}: {self.message}"


@dataclass
class AnalysisReport:
    """Aggregated result of every pass, serialisable to ``analysis_report.json``."""

    findings: List[Finding] = field(default_factory=list)
    #: pass-level bookkeeping (kernels seen, files scanned, …)
    stats: Dict[str, int] = field(default_factory=dict)

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    # ------------------------------------------------------------- selectors
    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def waivers(self) -> List[Finding]:
        return [f for f in self.findings if f.waived]

    def errors(self) -> List[Finding]:
        return [f for f in self.active if f.severity == ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.active if f.severity == WARNING]

    def failed(self, strict: bool = False) -> bool:
        """True when the run should exit nonzero."""
        if strict:
            return bool(self.active)
        return bool(self.errors())

    # ------------------------------------------------------------ rendering
    def summary(self) -> Dict[str, int]:
        return {
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "waived": len(self.waivers),
            **self.stats,
        }

    def to_dict(self) -> dict:
        ordered = sorted(self.findings, key=lambda f: (f.file, f.line, f.rule))
        return {
            "version": 1,
            "findings": [asdict(f) for f in ordered if not f.waived],
            "waivers": [asdict(f) for f in ordered if f.waived],
            "summary": self.summary(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def format(self, show_waivers: bool = True) -> str:
        lines = [f.format() for f in sorted(self.active, key=lambda f: (f.file, f.line))]
        if show_waivers and self.waivers:
            lines.append("")
            lines.append(f"waiver inventory ({len(self.waivers)} documented buffer-reuse sites):")
            for f in sorted(self.waivers, key=lambda x: (x.file, x.line)):
                note = f" — {f.waiver_note}" if f.waiver_note else ""
                lines.append(f"  {f.file}:{f.line}: [{f.rule}] {f.message}{note}")
        s = self.summary()
        lines.append("")
        lines.append(
            f"{s['errors']} error(s), {s['warnings']} warning(s), "
            f"{s['waived']} waived finding(s)"
        )
        return "\n".join(lines)
