"""Pass orchestration: file discovery, pass dispatch, report assembly.

The default scope mirrors CI:

* the **kernel-contract** pass scans every module under ``src/repro`` (tests
  register probe kernels and fixtures seed violations on purpose, so they are
  excluded unless named explicitly);
* the **aliasing** pass runs over :data:`~repro.analysis.aliasing.ALIASING_SCOPE`
  — the modules that orchestrate buffer reuse around kernel inputs.

Explicit paths (files or directories) replace the default scope for *both*
passes — that is how the seeded-violation fixtures under ``tests/analysis``
are checked to fail.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.aliasing import ALIASING_SCOPE, check_aliasing
from repro.analysis.contracts import check_contracts
from repro.analysis.findings import AnalysisReport


def repo_root(start: Optional[Path] = None) -> Path:
    """The repository root: nearest ancestor holding ``src/repro``."""
    here = Path(start or __file__).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    # installed without a src tree: fall back to the package's grandparent
    return Path(__file__).resolve().parents[3]


def _expand(paths: Iterable[Path]) -> List[Path]:
    out: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        else:
            out.append(path)
    return out


def default_contract_files(root: Path) -> List[Path]:
    return sorted((root / "src" / "repro").rglob("*.py"))


def default_aliasing_files(root: Path) -> List[Path]:
    return [root / rel for rel in ALIASING_SCOPE if (root / rel).is_file()]


def run_analysis(
    paths: Optional[Sequence[Path]] = None,
    root: Optional[Path] = None,
) -> AnalysisReport:
    """Run every pass; returns the aggregated :class:`AnalysisReport`.

    ``paths`` — explicit files/directories for both passes; ``None`` selects
    the default repo scope described in the module docstring.
    """
    root = repo_root() if root is None else Path(root).resolve()
    if paths:
        contract_files = aliasing_files = _expand(paths)
    else:
        contract_files = default_contract_files(root)
        aliasing_files = default_aliasing_files(root)

    report = AnalysisReport()
    findings, stats = check_contracts(contract_files, root=root)
    report.extend(findings)
    report.stats.update(stats)
    findings, stats = check_aliasing(aliasing_files, root=root)
    report.extend(findings)
    report.stats.update(stats)
    return report
