"""Aliasing/in-place analyzer: may-alias taint pass over the hot modules.

PR 7's fused :class:`~repro.core.plan.AttentionPlan` reuses the compressed
score buffer as the probability buffer, and the softmax cores write through
caller-provided ``out=`` arrays — *intentional* in-place reuse that is
bit-exact by construction.  The failure mode this pass defends against is the
*unintentional* version: an in-place op that mutates an array still reachable
from a function parameter (the caller's data) or from a cached structure (the
LRU'd ``PaddedCSRMatrix``/``NMSparseMatrix`` index tables shared across
``with_values`` siblings), corrupting state that outlives the call.

Semantics — a deliberately simple *may-alias* taint pass per function scope:

* Sources: every function parameter, plus anything reached from one through
  attribute access (``scores.values``), subscripts (``values[valid]``), and
  view-returning methods (``reshape``/``ravel``/…).  ``np.asarray`` and
  friends propagate taint (they may return their argument); ``np.array``
  copies and does not.
* Kill: a *top-level* assignment ``name = <fresh expr>`` (binary op, copying
  call) removes the taint.  Assignments nested under ``if``/``for``/… only
  ever *add* taint — they may not execute, so the old binding may survive.
* Nested functions are separate scopes seeded from their own parameters;
  closure variables are not tainted (the enclosing scope is analyzed on its
  own lines).

Sinks (each against a tainted target):

* **AL001** — augmented assignment (``buf += …``, ``tile *= …``).
* **AL002** — subscript/slice assignment (``out[valid] = …``).
* **AL003** — a ``out=`` keyword argument (the numpy ufunc write-through
  convention).

A site is *waived* by a ``# repro: owns-buffer`` comment on the same line or
the line directly above; text after the marker is kept as the waiver note and
inventoried in the report.  Waivers document intent — they never hide a site.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import ERROR, Finding, WAIVER_MARKER

#: Default scope of the aliasing pass: the modules that orchestrate buffer
#: reuse around kernel inputs and cached structures (repo-relative).
ALIASING_SCOPE = (
    "src/repro/core/plan.py",
    "src/repro/core/attention.py",
    "src/repro/core/multicore.py",
    "src/repro/core/softmax.py",
    "src/repro/nn/sparse_attention.py",
)

#: ndarray methods that (may) return a view of the receiver.
_VIEW_METHODS = {
    "reshape",
    "view",
    "transpose",
    "swapaxes",
    "squeeze",
    "ravel",
    "diagonal",
    "real",
    "imag",
}

#: Module-level functions that may return (a view of) their first argument.
_PROPAGATING_FUNCS = {
    "asarray",
    "ascontiguousarray",
    "asfortranarray",
    "atleast_1d",
    "atleast_2d",
    "atleast_3d",
    "broadcast_to",
    "expand_dims",
    "moveaxis",
    "swapaxes",
    "transpose",
    "ravel",
    "reshape",
    "squeeze",
}

_BRANCHING = (ast.If, ast.For, ast.While, ast.With, ast.Try)


class _Waivers:
    """Waiver lookup against the raw source (ast drops comments)."""

    def __init__(self, source: str) -> None:
        self._lines = source.splitlines()

    def note(self, line: int) -> Optional[str]:
        """The waiver note covering ``line`` (same line or the line above)."""
        for lineno in (line, line - 1):
            if 1 <= lineno <= len(self._lines):
                text = self._lines[lineno - 1]
                idx = text.find(WAIVER_MARKER)
                if idx >= 0 and "#" in text[:idx]:
                    return text[idx + len(WAIVER_MARKER):].strip(" -—:\t")
        return None


def _call_func_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _Scope:
    """Taint state and sink detection for one function body."""

    def __init__(
        self,
        func: ast.FunctionDef,
        file: str,
        qualname: str,
        waivers: _Waivers,
    ) -> None:
        self.func = func
        self.file = file
        self.qualname = qualname
        self.waivers = waivers
        args = func.args
        self.tainted: Set[str] = {
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        if args.vararg:
            self.tainted.add(args.vararg.arg)
        if args.kwarg:
            self.tainted.add(args.kwarg.arg)
        self.findings: List[Finding] = []

    # -------------------------------------------------------------- taint
    def expr_tainted(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Subscript):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.IfExp):
            return self.expr_tainted(node.body) or self.expr_tainted(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self.expr_tainted(e) for e in node.elts)
        if isinstance(node, ast.NamedExpr):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Call):
            name = _call_func_name(node.func)
            if isinstance(node.func, ast.Attribute) and name in _VIEW_METHODS:
                # tainted.reshape(...) is still the same memory
                return self.expr_tainted(node.func.value)
            if name in _PROPAGATING_FUNCS and node.args:
                return self.expr_tainted(node.args[0])
            return False  # fresh allocation (np.array, np.zeros, arithmetic…)
        return False  # literals, BinOp/UnaryOp/Compare allocate fresh arrays

    def _bind(self, target: ast.AST, tainted: bool, top_level: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            elif top_level:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                # element-level taint is unknowable statically: may-add only
                self._bind(elt, tainted, top_level=False)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tainted, top_level=False)
        # Attribute/Subscript targets mutate, they don't bind — handled as sinks

    # --------------------------------------------------------------- sinks
    def _flag(self, rule: str, line: int, message: str) -> None:
        note = self.waivers.note(line)
        self.findings.append(
            Finding(
                rule=rule,
                severity=ERROR,
                file=self.file,
                line=line,
                message=message,
                waived=note is not None,
                waiver_note=note or "",
            )
        )

    def _describe(self, node: ast.AST) -> str:
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "<expr>"

    def _check_call(self, call: ast.Call) -> None:
        for kw in call.keywords:
            if kw.arg == "out" and self.expr_tainted(kw.value):
                self._flag(
                    "AL003",
                    call.lineno,
                    f"{self.qualname}: out={self._describe(kw.value)} writes "
                    f"through a buffer that may alias a parameter or cached "
                    f"structure",
                )

    # ---------------------------------------------------------------- walk
    def run(self) -> List[Finding]:
        self._walk(self.func.body, depth=0)
        return self.findings

    def _walk(self, body: Sequence[ast.stmt], depth: int) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scope, analyzed separately
            self._visit_stmt(stmt, depth)

    def _visit_stmt(self, stmt: ast.stmt, depth: int) -> None:
        if isinstance(stmt, ast.Assign):
            tainted = self.expr_tainted(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    if self.expr_tainted(target.value):
                        self._flag(
                            "AL002",
                            stmt.lineno,
                            f"{self.qualname}: subscript assignment "
                            f"{self._describe(target)} = … mutates a buffer that "
                            f"may alias a parameter or cached structure",
                        )
                else:
                    self._bind(target, tainted, top_level=(depth == 0))
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                self._bind(
                    stmt.target, self.expr_tainted(stmt.value), top_level=(depth == 0)
                )
        elif isinstance(stmt, ast.AugAssign):
            target = stmt.target
            base = target.value if isinstance(target, (ast.Subscript, ast.Attribute)) else target
            if self.expr_tainted(base):
                self._flag(
                    "AL001",
                    stmt.lineno,
                    f"{self.qualname}: augmented assignment to "
                    f"{self._describe(target)} mutates a buffer that may alias "
                    f"a parameter or cached structure",
                )

        if isinstance(stmt, _BRANCHING):
            # header expressions only — body statements get their own visit
            for expr in self._header_exprs(stmt):
                self._scan_calls(expr)
            if isinstance(stmt, ast.For):
                self._bind(stmt.target, self.expr_tainted(stmt.iter), top_level=False)
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._bind(
                            item.optional_vars,
                            self.expr_tainted(item.context_expr),
                            top_level=False,
                        )
            for field in ("body", "orelse", "finalbody"):
                self._walk(getattr(stmt, field, []) or [], depth + 1)
            for handler in getattr(stmt, "handlers", []) or []:
                self._walk(handler.body, depth + 1)
        else:
            self._scan_calls(stmt)

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> List[ast.AST]:
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, ast.For):
            return [stmt.iter]
        if isinstance(stmt, ast.With):
            return [item.context_expr for item in stmt.items]
        return []

    def _scan_calls(self, node: ast.AST) -> None:
        """Check every call in ``node``'s subtree, pruning nested scopes."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            self._check_call(node)
        for child in ast.iter_child_nodes(node):
            self._scan_calls(child)


def _iter_scopes(tree: ast.Module) -> List[Tuple[str, ast.FunctionDef]]:
    scopes: List[Tuple[str, ast.FunctionDef]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                scopes.append((qual, child))
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return scopes


def check_aliasing(files: Sequence[Path], root: Optional[Path] = None):
    """Run the aliasing pass over ``files``; returns ``(findings, stats)``."""
    findings: List[Finding] = []
    functions = 0
    parsed = 0
    for path in files:
        try:
            source = Path(path).read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            findings.append(
                Finding(
                    rule="AL000",
                    severity=ERROR,
                    file=_rel(path, root),
                    line=getattr(exc, "lineno", 1) or 1,
                    message=f"could not parse file: {exc}",
                )
            )
            continue
        parsed += 1
        rel = _rel(path, root)
        waivers = _Waivers(source)
        for qualname, func in _iter_scopes(tree):
            functions += 1
            findings.extend(_Scope(func, rel, qualname, waivers).run())
    stats: Dict[str, int] = {
        "aliasing_files": parsed,
        "functions_analyzed": functions,
    }
    return findings, stats


def _rel(path: Path, root: Optional[Path]) -> str:
    path = Path(path).resolve()
    if root is not None:
        try:
            return path.relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()
