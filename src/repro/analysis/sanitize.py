"""Runtime sanitizer: read-only inputs, write-once structures, leak checks.

Enabled by ``REPRO_SANITIZE=1`` (any of ``1/true/yes/on``).  The static
aliasing pass (:mod:`repro.analysis.aliasing`) proves what it can at the AST
level; this module makes the same contracts *fail loudly at runtime* on the
paths the type system cannot see:

* :func:`guard_input` — hands kernels a read-only **view** of a user input,
  so any in-place mutation of caller data raises immediately at the faulting
  statement (``ValueError: assignment destination is read-only``) instead of
  corrupting the caller's tensors.
* :func:`freeze_structure` — write-once guard on cached structure arrays
  (padded-CSR ``cols``/``lengths``, N:M ``indices``, and the memoised index
  tables shared across ``with_values`` siblings): the array's ``writeable``
  flag is dropped after construction, so the LRU'd structures can never be
  silently rewritten by a later request.  Value buffers are *never* frozen —
  the fused plan's in-place softmax owns its score buffer by design (the
  waived ``# repro: owns-buffer`` sites).
* :func:`check_output` — asserts the ``MASKED_SCORE`` sentinel and NaN/inf
  never leak into outputs or gradients.

All helpers are no-ops when the mode is off, so production paths pay one env
lookup per entry point and nothing else.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

#: Environment variable that switches the sanitizer on.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

_TRUTHY = ("1", "true", "yes", "on")

#: Leak threshold for the masked-logit sentinel.  Kept numerically identical
#: to :data:`repro.core.softmax.MASKED_LOGIT_THRESHOLD` (asserted by the test
#: suite) but defined locally so the sanitizer stays import-cycle-free —
#: the layout containers import this module at class-definition time.
MASKED_SENTINEL_THRESHOLD = -1e29


class SanitizerError(RuntimeError):
    """A runtime contract violation caught under ``REPRO_SANITIZE=1``."""


def sanitize_enabled() -> bool:
    """True when the sanitizer mode is switched on via ``$REPRO_SANITIZE``."""
    return os.environ.get(SANITIZE_ENV_VAR, "").strip().lower() in _TRUTHY


def guard_input(arr):
    """A read-only view of ``arr`` (sanitize mode), else ``arr`` unchanged.

    The view shares memory with the caller's array, so a kernel that writes
    "through" its input faults at the mutating statement itself — the
    strongest possible localisation of an aliasing bug.  Non-array inputs
    pass through untouched.
    """
    if not sanitize_enabled() or not isinstance(arr, np.ndarray):
        return arr
    view = arr.view()
    view.flags.writeable = False
    return view


def freeze_structure(arr, label: str = ""):
    """Drop the ``writeable`` flag of a cached structure array (sanitize mode).

    Clearing the flag is always legal (unlike setting it), so this works for
    views and broadcast results too.  Returns ``arr`` for chaining.
    """
    if sanitize_enabled() and isinstance(arr, np.ndarray) and arr.flags.writeable:
        arr.flags.writeable = False
    return arr


def check_output(arr, context: str, check_sentinel: bool = True):
    """Assert no NaN/inf and no masked-score sentinel leaked into ``arr``.

    Returns ``arr`` unchanged so call sites can wrap producer expressions.
    ``context`` names the tensor in the error (e.g. ``"attention output"``).
    """
    if not sanitize_enabled() or not isinstance(arr, np.ndarray):
        return arr
    if arr.size == 0 or not np.issubdtype(arr.dtype, np.floating):
        return arr
    if not np.all(np.isfinite(arr)):
        bad = int(np.size(arr) - np.count_nonzero(np.isfinite(arr)))
        raise SanitizerError(
            f"sanitizer: {context} contains {bad} non-finite value(s) "
            f"(NaN/inf leaked out of the masked pipeline)"
        )
    if check_sentinel and float(arr.min()) <= MASKED_SENTINEL_THRESHOLD:
        raise SanitizerError(
            f"sanitizer: {context} contains the MASKED_SCORE sentinel "
            f"(min={float(arr.min()):.3e} <= {MASKED_SENTINEL_THRESHOLD:.0e}); "
            f"a masked logit escaped the softmax normalisation"
        )
    return arr


def check_grads(grads, context: str):
    """Apply :func:`check_output` to a tuple of gradients."""
    if sanitize_enabled():
        for i, g in enumerate(grads):
            check_output(g, f"{context}[{i}]")
    return grads


def private_copy(arr: np.ndarray, dtype: Optional[np.dtype] = None) -> np.ndarray:
    """A private copy severing any aliasing with caller arrays.

    Used by structure constructors in sanitize mode before freezing: the
    caller keeps its writable array, the structure keeps a frozen private
    copy, and neither can corrupt the other.
    """
    return np.array(arr, dtype=dtype)
