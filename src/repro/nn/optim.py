"""Optimisers and learning-rate schedules for the numpy transformer stack."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.autograd import Tensor


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``."""
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimiser: step over registered parameters, zero their grads."""

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, vel in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (the BERT finetuning default)."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.parameters:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class WarmupInverseSquareRoot:
    """Linear warmup followed by inverse-square-root decay of the learning rate."""

    def __init__(self, optimizer: Optimizer, base_lr: float, warmup_steps: int = 100):
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.warmup_steps = max(1, warmup_steps)
        self.step_num = 0

    def step(self) -> float:
        self.step_num += 1
        if self.step_num <= self.warmup_steps:
            lr = self.base_lr * self.step_num / self.warmup_steps
        else:
            lr = self.base_lr * np.sqrt(self.warmup_steps / self.step_num)
        self.optimizer.lr = float(lr)
        return float(lr)
