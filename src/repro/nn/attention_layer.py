"""Trainable multi-head self-attention with pluggable attention mechanisms.

This is the layer the accuracy experiments swap mechanisms inside: the same
projection weights can be evaluated (or finetuned) under full attention,
DFSS 1:2 / 2:4, and every baseline of Table 4.  Mechanisms come in two
flavours:

* *mask-based* — a boolean mask over the dense score matrix is computed from
  the (detached) scores or from the sequence structure, and attention is a
  masked softmax.  DFSS, Top-K, local/strided/Longformer/BigBird, Reformer
  (LSH buckets), Routing (k-means clusters) and Sinkhorn (block matching)
  fall in this class.  The mask itself is treated as a constant of the graph,
  exactly as the paper's kernel does (the N:M selection is not differentiated
  through).  Every mask-based core dispatches the whole trainable
  computation — forward and backward — through a compressed sparse op of
  :mod:`repro.nn.sparse_attention` by default: DFSS through the N:M layout
  (:func:`dfss_sparse_attention`), every other mask through the padded-CSR
  layout (:func:`masked_sparse_attention`).  The dense masked-softmax
  formulation remains available on all of them as the ``path="dense"``
  parity oracle.
* *kernel / low-rank* — the attention output is computed through a different
  differentiable computation graph: Linformer, Linear Transformer, Performer,
  Nyströmformer and the DFSS + Nyströmformer combination.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

import repro.baselines  # noqa: F401  populate the mechanism registry first
from repro.baselines.fixed import local_window_mask, strided_mask, truncated_mask
from repro.baselines.longformer import longformer_mask
from repro.baselines.reformer import ReformerAttention
from repro.baselines.routing import RoutingTransformerAttention
from repro.baselines.sinkhorn import SinkhornAttention
from repro.core.backend import get_kernel
from repro.core.blocked_ell import BlockedEllMask, bigbird_mask
from repro.core.lottery import topk_mask
from repro.core.padded_csr import PaddedCSRMatrix
from repro.core.patterns import resolve_pattern
from repro.core.pruning import global_column_indices
from repro.core.sddmm import MASKED_SCORE
from repro.nn import functional as F
from repro.nn.autograd import Tensor
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.sparse_attention import dfss_sparse_attention, masked_sparse_attention
from repro.registry import _check_path, make_core, register_mechanism
from repro.utils.seeding import attention_dropout_keep, draw_dropout_seed, new_rng


# --------------------------------------------------------------------- cores
class AttentionCore:
    """Strategy object mapping per-head (q, k, v) Tensors to the attention output."""

    name = "core"

    #: Dropout module applied to the attention probabilities (not the output);
    #: attached by :class:`MultiHeadSelfAttention`, ``None`` for bare cores.
    attn_dropout: Optional[Dropout] = None

    #: True for cores that consume ``attn_dropout`` themselves (on their
    #: probability matrix).  Kernel/low-rank cores have no probability matrix;
    #: for those the layer applies ``attn_dropout`` to the core output instead,
    #: so ``dropout=`` regularises every mechanism.
    handles_prob_dropout = False

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        raise NotImplementedError

    def _apply_prob_dropout(self, weights: Tensor) -> Tensor:
        drop = self.attn_dropout
        return drop(weights) if drop is not None else weights

    # mask-based cores also expose their mask for analysis
    def last_mask(self) -> Optional[np.ndarray]:
        return getattr(self, "_last_mask", None)


@register_mechanism("full", role="core")
class FullCore(AttentionCore):
    name = "full"

    handles_prob_dropout = True

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        d = q.shape[-1]
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
        weights = self._apply_prob_dropout(F.softmax(scores, axis=-1))
        return weights @ v


def _nm_selection_mask(
    indices: np.ndarray, pattern, dense_cols: int
) -> np.ndarray:
    """Dense boolean mask of an N:M selection from its compressed metadata."""
    cols = global_column_indices(indices, pattern, dense_cols)
    mask = np.zeros(indices.shape[:-1] + (dense_cols,), dtype=bool)
    np.put_along_axis(mask, cols, True, axis=-1)
    return mask


def _positional_prob_dropout(drop, weights: Tensor) -> Tensor:
    """Seeded attention dropout on dense weights, layout-independently derived.

    Hashes the dense position of every weight with a per-call seed instead of
    consuming a layout-shaped stream from the generator, so a compressed-path
    run can reproduce the identical keep mask on its compressed
    representation (see :func:`repro.utils.seeding.attention_dropout_keep`).
    """
    if drop is None or not drop.training or drop.p <= 0.0:
        return weights
    seed = draw_dropout_seed(drop.rng)
    positions = np.arange(weights.data.size, dtype=np.uint64).reshape(weights.shape)
    return weights * Tensor(attention_dropout_keep(seed, drop.p, positions))


class MaskedScoreCore(AttentionCore):
    """Shared implementation for all mask-based mechanisms.

    By default (``path="sparse"``) the trainable computation runs through the
    compressed padded-CSR autograd op
    (:func:`repro.nn.sparse_attention.masked_sparse_attention`): the boolean
    mask is derived outside the graph (from the detached scores when the
    mechanism needs them, from the sequence structure otherwise), compressed
    into a :class:`~repro.core.padded_csr.PaddedCSRMatrix`, and forward +
    backward run on the compressed representation.  ``path="dense"`` is the
    escape hatch used for parity testing: the score matrix is materialised
    densely and autograd differentiates a masked softmax.  Both paths treat
    the mask as a constant of the graph.

    Attention dropout is derived layout-independently on both paths: one
    seed per forward call, hashed with the *dense* position of every
    attention weight (:func:`repro.utils.seeding.attention_dropout_keep`),
    so seeded ``path="sparse"`` and ``path="dense"`` runs drop the same
    (row, column) entries and stay comparable under ``dropout > 0``.
    """

    handles_prob_dropout = True

    PATHS = ("sparse", "dense")

    #: whether :meth:`_mask` reads the score matrix (Top-K, DFSS) or only the
    #: sequence structure / detached Q and K (static and clustering masks) —
    #: the sparse path skips the detached score GEMM when it can.
    mask_needs_scores = True

    def __init__(self, backend: Optional[str] = None, path: str = "sparse"):
        _check_path(path)
        self.backend = backend
        self.path = path

    def _mask(self, scores: Optional[np.ndarray], q: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Boolean mask over the dense score matrix.

        ``scores`` is ``None`` on the sparse path when
        ``mask_needs_scores`` is ``False``.
        """
        raise NotImplementedError

    def _detached_scores(self, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        scale = np.float32(1.0 / np.sqrt(q.shape[-1]))
        return np.matmul(q, np.swapaxes(k, -1, -2)) * scale

    def _sparse_structure(self, q: np.ndarray, k: np.ndarray) -> PaddedCSRMatrix:
        """Compress this call's mask into a padded-CSR structure (no scores)."""
        return PaddedCSRMatrix.from_mask(self._mask(None, q, k))

    def _sparse_inputs(
        self, q: np.ndarray, k: np.ndarray
    ) -> Tuple[PaddedCSRMatrix, Optional[PaddedCSRMatrix]]:
        """``(structure, prescored)`` for the compressed op.

        Score-dependent masks (Top-K) already paid the O(n²d) score GEMM to
        choose their columns, so the detached scores are compressed straight
        into the structure (padding lanes stamped with the masked-score
        sentinel) and the op skips its SDDMM; ``prescored`` is ``None`` for
        masks derived from the sequence structure or detached Q/K alone.
        """
        if not self.mask_needs_scores:
            return self._sparse_structure(q, k), None
        scores = self._detached_scores(q, k)
        mask = self._mask(scores, q, k)
        prescored = PaddedCSRMatrix.from_dense(
            scores, mask, pad_value=float(MASKED_SCORE)
        )
        return prescored, prescored

    def _dense_forward(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        d = q.shape[-1]
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
        mask = self._mask(scores.data, q.data, k.data)
        self._last_mask = mask
        self._last_structure_csr = None
        weights = self._apply_prob_dropout(F.masked_softmax(scores, mask, axis=-1))
        return weights @ v

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        if self.path == "dense":
            return self._dense_forward(q, k, v)
        structure, prescored = self._sparse_inputs(q.data, k.data)
        # keep only the compressed structure for mask introspection —
        # retaining the dense boolean mask would pin O(n²) memory per head
        # between training steps; last_mask() re-derives it on demand
        self._last_structure_csr = structure
        self._last_mask = None
        drop = self.attn_dropout
        out, _ = masked_sparse_attention(
            q,
            k,
            v,
            structure,
            scores=prescored,
            backend=self.backend,
            dropout_p=drop.p if drop is not None else 0.0,
            dropout_rng=drop.rng if drop is not None else None,
            training=bool(drop.training) if drop is not None else False,
        )
        return out

    def last_mask(self) -> Optional[np.ndarray]:
        structure = getattr(self, "_last_structure_csr", None)
        if structure is not None:
            return structure.to_mask()
        return super().last_mask()

    def _apply_prob_dropout(self, weights: Tensor) -> Tensor:
        return _positional_prob_dropout(self.attn_dropout, weights)


@register_mechanism("dfss", role="core")
class DfssCore(MaskedScoreCore):
    """Dynamic N:M pruning of the score matrix (the paper's mechanism).

    By default (``path="sparse"``) the whole trainable computation — forward
    *and* backward — runs through the compressed pipeline of
    :func:`repro.nn.sparse_attention.dfss_sparse_attention`: fused SDDMM +
    prune, sparse softmax and SpMM over the stored nonzeros, with analytic
    gradients on the compressed representation.  ``path="dense"`` is the
    escape hatch used for parity testing: the score matrix is materialised
    densely and autograd differentiates a masked softmax, with only the N:M
    selection dispatched through the kernel registry.  Both paths treat the
    selection as a constant of the graph, exactly as the paper's kernel does.

    ``block_mask`` optionally adds the hybrid blocked-ELL coarse sparsity on
    top of the N:M selection, on both paths.

    Attention dropout is derived layout-independently: both paths draw one
    seed per forward call from the layer's dropout generator and hash it with
    the *dense* position of every attention weight
    (:func:`repro.utils.seeding.attention_dropout_keep`), so seeded
    ``path="sparse"`` and ``path="dense"`` runs drop the same (row, column)
    entries and stay comparable under ``dropout > 0``.
    """

    name = "dfss"

    def __init__(
        self,
        pattern="2:4",
        backend: Optional[str] = None,
        path: str = "sparse",
        block_mask: Optional[BlockedEllMask] = None,
    ):
        super().__init__(backend=backend, path=path)
        self.pattern = resolve_pattern(pattern)
        self.block_mask = block_mask
        self._last_structure = None

    def _mask(self, scores, q, k):
        if self.block_mask is not None:
            # exclude blocked scores BEFORE the N:M selection, exactly like
            # the sddmm_nm epilogue, so a group straddling a block boundary
            # promotes allowed runners-up instead of keeping excluded columns
            from repro.core.sddmm import MASKED_SCORE

            allowed = self.block_mask.dense_mask(scores.shape[-2], scores.shape[-1])
            scores = np.where(allowed, scores, MASKED_SCORE)
            return get_kernel("nm_prune_mask", self.backend)(scores, self.pattern) & allowed
        return get_kernel("nm_prune_mask", self.backend)(scores, self.pattern)

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        if self.path == "dense":
            self._last_structure = None
            return self._dense_forward(q, k, v)
        drop = self.attn_dropout
        out, probs = dfss_sparse_attention(
            q,
            k,
            v,
            pattern=self.pattern,
            backend=self.backend,
            block_mask=self.block_mask,
            dropout_p=drop.p if drop is not None else 0.0,
            dropout_rng=drop.rng if drop is not None else None,
            training=bool(drop.training) if drop is not None else False,
        )
        # keep only the int8 metadata for mask introspection — retaining the
        # probs object would pin its values (and the fast backend's scattered
        # dense tile) in memory between steps
        self._last_structure = (probs.indices, probs.pattern, probs.dense_cols)
        self._last_mask = None
        return out

    def last_mask(self) -> Optional[np.ndarray]:
        if self._last_structure is not None:
            mask = _nm_selection_mask(*self._last_structure)
            if self.block_mask is not None:
                # sentinel entries of fully-masked groups carry zero weight
                # but are present in the compressed structure; drop them
                mask &= self.block_mask.dense_mask(mask.shape[-2], mask.shape[-1])
            return mask
        return super().last_mask()


@register_mechanism("topk", role="core")
class TopKCore(MaskedScoreCore):
    name = "topk"

    def __init__(self, density: float = 0.05, k: Optional[int] = None,
                 backend: Optional[str] = None, path: str = "sparse"):
        super().__init__(backend=backend, path=path)
        self.density = density
        self.k = k

    def _mask(self, scores, q, k):
        if self.k is not None:
            return topk_mask(scores, min(1.0, self.k / scores.shape[-1]))
        return topk_mask(scores, self.density)


class StaticMaskCore(MaskedScoreCore):
    """Mechanisms whose mask only depends on the sequence length.

    Both the boolean mask and its padded-CSR compression are cached per
    ``(n_q, n_k)``: the sparse path compresses the 2-D mask once and
    broadcasts the structure over the batch/head dimensions on every call.
    """

    mask_needs_scores = False

    def __init__(self, mask_fn: Callable[[int, int], np.ndarray], name: str,
                 backend: Optional[str] = None, path: str = "sparse"):
        super().__init__(backend=backend, path=path)
        self._mask_fn = mask_fn
        self.name = name
        self._cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._csr_cache: Dict[Tuple[Tuple[int, ...], int, int], PaddedCSRMatrix] = {}

    def _mask_2d(self, n_q: int, n_k: int) -> np.ndarray:
        key = (n_q, n_k)
        if key not in self._cache:
            self._cache[key] = self._mask_fn(n_q, n_k)
        return self._cache[key]

    def _mask(self, scores, q, k):
        n_q, n_k = q.shape[-2], k.shape[-2]
        return np.broadcast_to(self._mask_2d(n_q, n_k), q.shape[:-2] + (n_q, n_k))

    def _sparse_structure(self, q, k):
        # cache the batch-broadcast structure (not just the 2-D one) so its
        # flat gather/scatter index caches persist across training steps
        key = (q.shape[:-2], q.shape[-2], k.shape[-2])
        if key not in self._csr_cache:
            structure = PaddedCSRMatrix.from_mask(self._mask_2d(*key[1:]))
            self._csr_cache[key] = structure.broadcast_to(q.shape[:-2])
        return self._csr_cache[key]


class ClusteringMaskCore(MaskedScoreCore):
    """Reformer / Routing / Sinkhorn masks derived from the (detached) Q and K."""

    mask_needs_scores = False

    def __init__(self, mechanism, name: str,
                 backend: Optional[str] = None, path: str = "sparse"):
        super().__init__(backend=backend, path=path)
        self.mechanism = mechanism
        self.name = name

    def _mask(self, scores, q, k):
        return self.mechanism.attention_mask(q, k)


@register_mechanism("linformer", role="core")
class LinformerCore(AttentionCore):
    """Low-rank projection of keys/values with a fixed random projection."""

    name = "linformer"

    def __init__(self, proj_dim: int = 64, seed=0):
        self.proj_dim = proj_dim
        self.seed = seed
        self._proj: Dict[int, np.ndarray] = {}

    def _projection(self, n: int) -> np.ndarray:
        if n not in self._proj:
            rng = new_rng(self.seed)
            kdim = min(self.proj_dim, n)
            self._proj[n] = rng.normal(0.0, 1.0 / np.sqrt(kdim), size=(kdim, n)).astype(
                np.float32
            )
        return self._proj[n]

    handles_prob_dropout = True

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        n = k.shape[-2]
        d = q.shape[-1]
        e = Tensor(self._projection(n))
        k_proj = e @ k
        v_proj = e @ v
        scores = (q @ k_proj.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
        weights = self._apply_prob_dropout(F.softmax(scores, axis=-1))
        return weights @ v_proj


@register_mechanism("linear_transformer", role="core")
class LinearTransformerCore(AttentionCore):
    """Kernelised linear attention with the elu+1 feature map."""

    name = "linear_transformer"

    @staticmethod
    def _feature(x: Tensor) -> Tensor:
        # elu(x) + 1 expressed with differentiable primitives:
        # relu(x) + exp(x - relu(x))  ==  x + 1 for x > 0,  exp(x) for x <= 0
        return x.relu() + (x - x.relu()).exp()

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        phi_q = self._feature(q)
        phi_k = self._feature(k)
        kv = phi_k.swapaxes(-1, -2) @ v
        out = phi_q @ kv
        normaliser = phi_q @ phi_k.sum(axis=-2, keepdims=True).swapaxes(-1, -2)
        return out / (normaliser + 1e-6)


@register_mechanism("performer", role="core")
class PerformerCore(AttentionCore):
    """FAVOR+ positive random features (features fixed, not trained)."""

    name = "performer"

    def __init__(self, num_features: Optional[int] = None, seed=0):
        self.num_features = num_features
        self.seed = seed
        self._w: Dict[int, np.ndarray] = {}

    def _features(self, d: int) -> np.ndarray:
        if d not in self._w:
            from repro.baselines.performer import orthogonal_random_features

            m = self.num_features or max(1, int(round(d * np.log(max(d, 2)))))
            self._w[d] = orthogonal_random_features(m, d, new_rng(self.seed))
        return self._w[d]

    def _phi(self, x: Tensor, w: np.ndarray, per_row: bool) -> Tensor:
        d = x.shape[-1]
        m = w.shape[0]
        proj = x @ Tensor(w.T / d**0.25)
        sq = (x * x).sum(axis=-1, keepdims=True) * (1.0 / (2.0 * np.sqrt(d)))
        shifted = proj - sq
        if per_row:
            stab = shifted.max(axis=-1, keepdims=True).detach()
        else:
            stab = Tensor(np.max(shifted.data, axis=(-1, -2), keepdims=True))
        return (shifted - stab).exp() * (1.0 / np.sqrt(m)) + 1e-6

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        w = self._features(q.shape[-1])
        phi_q = self._phi(q, w, per_row=True)
        phi_k = self._phi(k, w, per_row=False)
        kv = phi_k.swapaxes(-1, -2) @ v
        out = phi_q @ kv
        normaliser = phi_q @ phi_k.sum(axis=-2, keepdims=True).swapaxes(-1, -2)
        return out / (normaliser + 1e-6)


@register_mechanism("nystromformer", role="core")
@register_mechanism("nystromformer_dfss", role="core")
class NystromformerCore(AttentionCore):
    """Differentiable Nyström attention with segment-mean landmarks."""

    name = "nystromformer"

    def __init__(self, num_landmarks: int = 32, pinv_iters: int = 6, dfss_pattern=None,
                 backend: Optional[str] = None):
        self.num_landmarks = num_landmarks
        self.pinv_iters = pinv_iters
        self.dfss_pattern = resolve_pattern(dfss_pattern) if dfss_pattern else None
        self.backend = backend

    def _landmarks(self, x: Tensor) -> Tensor:
        n = x.shape[-2]
        m = min(self.num_landmarks, n)
        if n % m != 0:
            # truncate the tail so segments are equal; acceptable for landmarks
            n_trunc = (n // m) * m
            x = x[..., :n_trunc, :]
            n = n_trunc
        seg = x.reshape(x.shape[:-2] + (m, n // m, x.shape[-1]))
        return seg.mean(axis=-2)

    def _pinv(self, a: Tensor) -> Tensor:
        at = a.swapaxes(-1, -2)
        scale = float(
            np.max(np.sum(np.abs(a.data), axis=-2)) * np.max(np.sum(np.abs(a.data), axis=-1))
        )
        z = at * (1.0 / max(scale, 1e-8))
        eye = Tensor(np.eye(a.shape[-1], dtype=np.float32))
        for _ in range(self.pinv_iters):
            az = a @ z
            z = (z @ (eye * 13.0 - az @ (eye * 15.0 - az @ (eye * 7.0 - az)))) * 0.25
        return z

    def _softmax_kernel(self, a: Tensor, b: Tensor, scale: float, prune: bool) -> Tensor:
        scores = (a @ b.swapaxes(-1, -2)) * scale
        if prune and self.dfss_pattern is not None:
            mask = get_kernel("nm_prune_mask", self.backend)(scores.data, self.dfss_pattern)
            return F.masked_softmax(scores, mask, axis=-1)
        return F.softmax(scores, axis=-1)

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        d = q.shape[-1]
        scale = 1.0 / np.sqrt(d)
        q_land = self._landmarks(q)
        k_land = self._landmarks(k)
        kernel1 = self._softmax_kernel(q, k_land, scale, prune=True)   # n x m
        kernel2 = self._softmax_kernel(q_land, k_land, scale, prune=False)  # m x m
        kernel3 = self._softmax_kernel(q_land, k, scale, prune=True)   # m x n
        pinv = self._pinv(kernel2)
        return (kernel1 @ pinv) @ (kernel3 @ v)


@register_mechanism("synthesizer", role="core")
class SynthesizerCore(AttentionCore):
    """Random Synthesizer: a trainable content-independent attention matrix."""

    name = "synthesizer"

    def __init__(self, max_len: int = 512, seed=0):
        from repro.nn.autograd import parameter

        rng = new_rng(seed)
        self.max_len = max_len
        self.weight = parameter(rng.normal(0.0, 0.02, size=(max_len, max_len)), name="synth")

    handles_prob_dropout = True

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        n = q.shape[-2]
        if n > self.max_len:
            raise ValueError(f"sequence length {n} exceeds synthesizer table {self.max_len}")
        weights = self._apply_prob_dropout(F.softmax(self.weight[:n, :n], axis=-1))
        return weights @ v


# -------------------------------------------------- registered core builders
# Mechanisms whose core is a parameterised StaticMaskCore / ClusteringMaskCore
# rather than a dedicated class register small builder functions; class-shaped
# cores are decorated directly.  Together these replace the legacy 16-branch
# ``if/elif`` factory — the registry is the single name -> constructor map.
@register_mechanism("local", role="core")
def _local_core(cfg, seq_len_hint: int) -> AttentionCore:
    return StaticMaskCore(
        lambda nq, nk: local_window_mask(nq, nk, cfg.window), "local",
        backend=cfg.backend, path=cfg.path,
    )


@register_mechanism("sparse_transformer", role="core")
def _strided_core(cfg, seq_len_hint: int) -> AttentionCore:
    return StaticMaskCore(
        lambda nq, nk: strided_mask(nq, nk, cfg.window, cfg.stride),
        "sparse_transformer", backend=cfg.backend, path=cfg.path,
    )


@register_mechanism("fixed_truncated", role="core")
def _truncated_core(cfg, seq_len_hint: int) -> AttentionCore:
    return StaticMaskCore(
        lambda nq, nk: truncated_mask(nq, nk, cfg.density), "fixed_truncated",
        backend=cfg.backend, path=cfg.path,
    )


@register_mechanism("longformer", role="core")
def _longformer_core(cfg, seq_len_hint: int) -> AttentionCore:
    return StaticMaskCore(
        lambda nq, nk: longformer_mask(nq, nk, cfg.window, cfg.num_global),
        "longformer", backend=cfg.backend, path=cfg.path,
    )


def _fitted_bigbird_mask(nq: int, cfg) -> BlockedEllMask:
    """BigBird blocked-ELL mask with the block size halved until it divides ``nq``."""
    bs = cfg.block_size
    while nq % bs != 0 and bs > 1:
        bs //= 2
    return bigbird_mask(
        nq,
        bs,
        window_blocks=cfg.window_blocks,
        num_global_blocks=cfg.num_global_blocks,
        num_random_blocks=cfg.num_random_blocks,
        seed=cfg.seed,
    )


@register_mechanism("bigbird", role="core")
def _bigbird_core(cfg, seq_len_hint: int) -> AttentionCore:
    return StaticMaskCore(
        lambda nq, nk: _fitted_bigbird_mask(nq, cfg).dense_mask(nq, nk), "bigbird",
        backend=cfg.backend, path=cfg.path,
    )


@register_mechanism("reformer", role="core")
def _reformer_core(cfg, seq_len_hint: int) -> AttentionCore:
    mech = ReformerAttention(n_buckets=cfg.n_buckets, n_hashes=cfg.n_hashes,
                             seed=cfg.seed)
    return ClusteringMaskCore(mech, "reformer", backend=cfg.backend, path=cfg.path)


@register_mechanism("routing", role="core")
def _routing_core(cfg, seq_len_hint: int) -> AttentionCore:
    mech = RoutingTransformerAttention(
        n_clusters=cfg.n_clusters, kmeans_iters=cfg.kmeans_iters, seed=cfg.seed
    )
    return ClusteringMaskCore(mech, "routing", backend=cfg.backend, path=cfg.path)


@register_mechanism("sinkhorn", role="core")
def _sinkhorn_core(cfg, seq_len_hint: int) -> AttentionCore:
    mech = SinkhornAttention(
        block_size=cfg.block_size, sinkhorn_iters=cfg.sinkhorn_iters
    )
    return ClusteringMaskCore(mech, "sinkhorn", backend=cfg.backend, path=cfg.path)


# ------------------------------------------------- Appendix A.7 combo cores
class BigBirdDfssCore(DfssCore):
    """BigBird block sparsity with dynamic N:M pruning inside the blocks.

    The trainable counterpart of
    :class:`repro.baselines.combos.DfssBigBirdAttention`: the BigBird
    window/global/random pattern becomes a blocked-ELL coarse mask fed to the
    compressed DFSS op (the mask excludes score blocks *before* the N:M
    selection, exactly like the fused epilogue), so forward and backward run
    on the compressed N:M representation.  The blocked-ELL mask is built
    lazily per observed sequence length — the block size is halved until it
    divides the sequence — and cached.
    """

    name = "bigbird_dfss"

    def __init__(self, cfg, pattern="2:4", backend: Optional[str] = None,
                 path: str = "sparse"):
        super().__init__(pattern, backend=backend, path=path)
        self._cfg = cfg
        self._block_masks: Dict[int, BlockedEllMask] = {}

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        nq = q.shape[-2]
        if nq not in self._block_masks:
            self._block_masks[nq] = _fitted_bigbird_mask(nq, self._cfg)
        self.block_mask = self._block_masks[nq]
        return super().__call__(q, k, v)


@register_mechanism("bigbird_dfss", role="core")
def _bigbird_dfss_core(cfg, seq_len_hint: int) -> AttentionCore:
    return BigBirdDfssCore(cfg, pattern=cfg.pattern or "2:4",
                           backend=cfg.backend, path=cfg.path)


class LinformerDfssCore(AttentionCore):
    """Linformer projection with the projected scores pruned to N:M on the fly.

    The trainable counterpart of
    :class:`repro.baselines.combos.DfssLinformerAttention`: keys and values
    are projected with the fixed random map ``E`` (a constant of the graph,
    shared with :class:`LinformerCore`'s seeding), then the whole attention
    over the projected length runs through the compressed N:M op —
    ``sddmm_nm(Q, (EK)) → sparse softmax → SpMM`` with analytic gradients on
    the compressed representation.  ``path="dense"`` differentiates the
    equivalent dense masked softmax for parity testing.

    The projected length is rounded down to a multiple of the N:M group size
    so the pattern applies cleanly.
    """

    name = "linformer_dfss"

    handles_prob_dropout = True

    PATHS = ("sparse", "dense")

    def __init__(self, proj_dim: int = 64, pattern="2:4", seed=0,
                 backend: Optional[str] = None, path: str = "sparse"):
        _check_path(path)
        self.proj_dim = proj_dim
        self.pattern = resolve_pattern(pattern)
        self.seed = seed
        self.backend = backend
        self.path = path
        self._proj: Dict[int, np.ndarray] = {}
        self._last_structure = None

    def _projection(self, n: int) -> np.ndarray:
        if n not in self._proj:
            rng = new_rng(self.seed)
            kdim = min(self.proj_dim, n)
            # round the projected length down to a whole number of M-groups
            kdim = max(self.pattern.m, kdim - kdim % self.pattern.m)
            self._proj[n] = rng.normal(
                0.0, 1.0 / np.sqrt(kdim), size=(kdim, n)
            ).astype(np.float32)
        return self._proj[n]

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        e = Tensor(self._projection(k.shape[-2]))
        k_proj = e @ k
        v_proj = e @ v
        drop = self.attn_dropout
        if self.path == "dense":
            scale = 1.0 / np.sqrt(q.shape[-1])
            scores = (q @ k_proj.swapaxes(-1, -2)) * scale
            mask = get_kernel("nm_prune_mask", self.backend)(scores.data, self.pattern)
            self._last_mask = mask
            self._last_structure = None
            weights = _positional_prob_dropout(
                drop, F.masked_softmax(scores, mask, axis=-1)
            )
            return weights @ v_proj
        out, probs = dfss_sparse_attention(
            q,
            k_proj,
            v_proj,
            pattern=self.pattern,
            backend=self.backend,
            dropout_p=drop.p if drop is not None else 0.0,
            dropout_rng=drop.rng if drop is not None else None,
            training=bool(drop.training) if drop is not None else False,
        )
        # store only the int8 metadata; last_mask() re-derives the dense mask
        self._last_structure = (probs.indices, probs.pattern, probs.dense_cols)
        self._last_mask = None
        return out

    def last_mask(self) -> Optional[np.ndarray]:
        if self._last_structure is not None:
            return _nm_selection_mask(*self._last_structure)
        return super().last_mask()


@register_mechanism("linformer_dfss", role="core")
def _linformer_dfss_core(cfg, seq_len_hint: int) -> AttentionCore:
    return LinformerDfssCore(
        proj_dim=cfg.proj_dim, pattern=cfg.pattern or "2:4", seed=cfg.seed,
        backend=cfg.backend, path=cfg.path,
    )


# ----------------------------------------------------------------- factory
def make_attention_core(mechanism: str, seq_len_hint: int = 512, **kwargs) -> AttentionCore:
    """Build an :class:`AttentionCore` by mechanism name.

    .. deprecated::
        Thin wrapper over the unified registry; use
        :func:`repro.registry.make_core` or
        :meth:`repro.engine.AttentionEngine.core` instead.

    ``mechanism`` accepts the registry names and aliases plus ``dfss_1:2`` /
    ``dfss_2:4`` shortcuts; extra keyword arguments are validated against the
    mechanism's config dataclass — unknown ones raise ``TypeError`` instead of
    being silently dropped.
    """
    import warnings

    warnings.warn(
        "make_attention_core() is deprecated; use repro.registry.make_core() "
        "or repro.AttentionEngine(...).core()",
        DeprecationWarning,
        stacklevel=2,
    )
    return make_core(mechanism, seq_len_hint=seq_len_hint, **kwargs)


# ------------------------------------------------------------- the nn layer
class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with a swappable attention core.

    The core can be replaced after construction (and after training) with
    :meth:`set_mechanism`, which is how the "replace full attention by DFSS
    without finetuning" experiments are run.
    """

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        mechanism: str = "full",
        dropout: float = 0.0,
        resid_dropout: float = 0.0,
        seed=0,
        max_len: int = 512,
        **mechanism_kwargs,
    ):
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError("model_dim must be divisible by num_heads")
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.max_len = max_len
        rng = new_rng(seed)
        self.q_proj = Linear(model_dim, model_dim, seed=rng.integers(1 << 31))
        self.k_proj = Linear(model_dim, model_dim, seed=rng.integers(1 << 31))
        self.v_proj = Linear(model_dim, model_dim, seed=rng.integers(1 << 31))
        self.out_proj = Linear(model_dim, model_dim, seed=rng.integers(1 << 31))
        #: applied to the attention probabilities inside the core (``dropout``)
        self.attn_dropout = Dropout(dropout, seed=rng.integers(1 << 31))
        #: applied to the projected output (the residual branch)
        self.resid_dropout = Dropout(resid_dropout, seed=rng.integers(1 << 31))
        self.core = make_core(mechanism, seq_len_hint=max_len, **mechanism_kwargs)
        self.mechanism = mechanism
        self._register_core_parameters()
        self.core.attn_dropout = self.attn_dropout

    def _register_core_parameters(self) -> None:
        """Expose trainable tensors owned by the core (e.g. the Synthesizer matrix)."""
        self._parameters.pop("core_weight", None)
        core_weight = getattr(self.core, "weight", None)
        if isinstance(core_weight, Tensor) and core_weight.requires_grad:
            self._parameters["core_weight"] = core_weight

    def set_mechanism(self, mechanism: str, **mechanism_kwargs) -> None:
        """Swap the attention mechanism in place (weights are untouched)."""
        self.core = make_core(mechanism, seq_len_hint=self.max_len, **mechanism_kwargs)
        self.mechanism = mechanism
        self._register_core_parameters()
        self.core.attn_dropout = self.attn_dropout

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.model_dim)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)
        out = self.core(q, k, v)
        if not self.core.handles_prob_dropout:
            # kernel/low-rank cores have no probability matrix to drop; apply
            # the attention dropout to the per-head context instead
            out = self.attn_dropout(out)
        out = self._merge_heads(out, batch, seq)
        return self.resid_dropout(self.out_proj(out))
