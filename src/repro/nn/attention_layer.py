"""Trainable multi-head self-attention with pluggable attention mechanisms.

This is the layer the accuracy experiments swap mechanisms inside: the same
projection weights can be evaluated (or finetuned) under full attention,
DFSS 1:2 / 2:4, and every baseline of Table 4.  Mechanisms come in two
flavours:

* *mask-based* — a boolean mask over the dense score matrix is computed from
  the (detached) scores or from the sequence structure, and attention is a
  masked softmax.  DFSS, Top-K, local/strided/Longformer/BigBird, Reformer
  (LSH buckets), Routing (k-means clusters) and Sinkhorn (block matching)
  fall in this class.  The mask itself is treated as a constant of the graph,
  exactly as the paper's kernel does (the N:M selection is not differentiated
  through).
* *kernel / low-rank* — the attention output is computed through a different
  differentiable computation graph: Linformer, Linear Transformer, Performer,
  Nyströmformer and the DFSS + Nyströmformer combination.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.baselines.fixed import local_window_mask, strided_mask, truncated_mask
from repro.baselines.longformer import longformer_mask
from repro.baselines.reformer import ReformerAttention
from repro.baselines.routing import RoutingTransformerAttention
from repro.baselines.sinkhorn import SinkhornAttention
from repro.core.backend import get_kernel
from repro.core.blocked_ell import bigbird_mask
from repro.core.lottery import topk_mask
from repro.core.patterns import resolve_pattern
from repro.nn import functional as F
from repro.nn.autograd import Tensor
from repro.nn.layers import Dropout, Linear, Module
from repro.utils.seeding import new_rng


# --------------------------------------------------------------------- cores
class AttentionCore:
    """Strategy object mapping per-head (q, k, v) Tensors to the attention output."""

    name = "core"

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        raise NotImplementedError

    # mask-based cores also expose their mask for analysis
    def last_mask(self) -> Optional[np.ndarray]:
        return getattr(self, "_last_mask", None)


class FullCore(AttentionCore):
    name = "full"

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        d = q.shape[-1]
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
        weights = F.softmax(scores, axis=-1)
        return weights @ v


class MaskedScoreCore(AttentionCore):
    """Shared implementation for all mask-based mechanisms."""

    def _mask(self, scores: np.ndarray, q: np.ndarray, k: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        d = q.shape[-1]
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
        mask = self._mask(scores.data, q.data, k.data)
        self._last_mask = mask
        weights = F.masked_softmax(scores, mask, axis=-1)
        return weights @ v


class DfssCore(MaskedScoreCore):
    """Dynamic N:M pruning of the score matrix (the paper's mechanism).

    The N:M selection (which the graph treats as a constant) is dispatched
    through the kernel registry, so training and evaluation transparently use
    the fast selection-network kernel unless ``backend`` pins a specific one.
    """

    name = "dfss"

    def __init__(self, pattern="2:4", backend: Optional[str] = None):
        self.pattern = resolve_pattern(pattern)
        self.backend = backend

    def _mask(self, scores, q, k):
        return get_kernel("nm_prune_mask", self.backend)(scores, self.pattern)


class TopKCore(MaskedScoreCore):
    name = "topk"

    def __init__(self, density: float = 0.05):
        self.density = density

    def _mask(self, scores, q, k):
        return topk_mask(scores, self.density)


class StaticMaskCore(MaskedScoreCore):
    """Mechanisms whose mask only depends on the sequence length."""

    def __init__(self, mask_fn: Callable[[int, int], np.ndarray], name: str):
        self._mask_fn = mask_fn
        self.name = name
        self._cache: Dict[int, np.ndarray] = {}

    def _mask(self, scores, q, k):
        n_q, n_k = scores.shape[-2], scores.shape[-1]
        key = (n_q, n_k)
        if key not in self._cache:
            self._cache[key] = self._mask_fn(n_q, n_k)
        return np.broadcast_to(self._cache[key], scores.shape)


class ClusteringMaskCore(MaskedScoreCore):
    """Reformer / Routing / Sinkhorn masks derived from the (detached) Q and K."""

    def __init__(self, mechanism, name: str):
        self.mechanism = mechanism
        self.name = name

    def _mask(self, scores, q, k):
        return self.mechanism.attention_mask(q, k)


class LinformerCore(AttentionCore):
    """Low-rank projection of keys/values with a fixed random projection."""

    name = "linformer"

    def __init__(self, proj_dim: int = 64, seed=0):
        self.proj_dim = proj_dim
        self.seed = seed
        self._proj: Dict[int, np.ndarray] = {}

    def _projection(self, n: int) -> np.ndarray:
        if n not in self._proj:
            rng = new_rng(self.seed)
            kdim = min(self.proj_dim, n)
            self._proj[n] = rng.normal(0.0, 1.0 / np.sqrt(kdim), size=(kdim, n)).astype(
                np.float32
            )
        return self._proj[n]

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        n = k.shape[-2]
        d = q.shape[-1]
        e = Tensor(self._projection(n))
        k_proj = e @ k
        v_proj = e @ v
        scores = (q @ k_proj.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
        weights = F.softmax(scores, axis=-1)
        return weights @ v_proj


class LinearTransformerCore(AttentionCore):
    """Kernelised linear attention with the elu+1 feature map."""

    name = "linear_transformer"

    @staticmethod
    def _feature(x: Tensor) -> Tensor:
        # elu(x) + 1 expressed with differentiable primitives:
        # relu(x) + exp(x - relu(x))  ==  x + 1 for x > 0,  exp(x) for x <= 0
        return x.relu() + (x - x.relu()).exp()

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        phi_q = self._feature(q)
        phi_k = self._feature(k)
        kv = phi_k.swapaxes(-1, -2) @ v
        out = phi_q @ kv
        normaliser = phi_q @ phi_k.sum(axis=-2, keepdims=True).swapaxes(-1, -2)
        return out / (normaliser + 1e-6)


class PerformerCore(AttentionCore):
    """FAVOR+ positive random features (features fixed, not trained)."""

    name = "performer"

    def __init__(self, num_features: Optional[int] = None, seed=0):
        self.num_features = num_features
        self.seed = seed
        self._w: Dict[int, np.ndarray] = {}

    def _features(self, d: int) -> np.ndarray:
        if d not in self._w:
            from repro.baselines.performer import orthogonal_random_features

            m = self.num_features or max(1, int(round(d * np.log(max(d, 2)))))
            self._w[d] = orthogonal_random_features(m, d, new_rng(self.seed))
        return self._w[d]

    def _phi(self, x: Tensor, w: np.ndarray, per_row: bool) -> Tensor:
        d = x.shape[-1]
        m = w.shape[0]
        proj = x @ Tensor(w.T / d**0.25)
        sq = (x * x).sum(axis=-1, keepdims=True) * (1.0 / (2.0 * np.sqrt(d)))
        shifted = proj - sq
        if per_row:
            stab = shifted.max(axis=-1, keepdims=True).detach()
        else:
            stab = Tensor(np.max(shifted.data, axis=(-1, -2), keepdims=True))
        return (shifted - stab).exp() * (1.0 / np.sqrt(m)) + 1e-6

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        w = self._features(q.shape[-1])
        phi_q = self._phi(q, w, per_row=True)
        phi_k = self._phi(k, w, per_row=False)
        kv = phi_k.swapaxes(-1, -2) @ v
        out = phi_q @ kv
        normaliser = phi_q @ phi_k.sum(axis=-2, keepdims=True).swapaxes(-1, -2)
        return out / (normaliser + 1e-6)


class NystromformerCore(AttentionCore):
    """Differentiable Nyström attention with segment-mean landmarks."""

    name = "nystromformer"

    def __init__(self, num_landmarks: int = 32, pinv_iters: int = 6, dfss_pattern=None,
                 backend: Optional[str] = None):
        self.num_landmarks = num_landmarks
        self.pinv_iters = pinv_iters
        self.dfss_pattern = resolve_pattern(dfss_pattern) if dfss_pattern else None
        self.backend = backend

    def _landmarks(self, x: Tensor) -> Tensor:
        n = x.shape[-2]
        m = min(self.num_landmarks, n)
        if n % m != 0:
            # truncate the tail so segments are equal; acceptable for landmarks
            n_trunc = (n // m) * m
            x = x[..., :n_trunc, :]
            n = n_trunc
        seg = x.reshape(x.shape[:-2] + (m, n // m, x.shape[-1]))
        return seg.mean(axis=-2)

    def _pinv(self, a: Tensor) -> Tensor:
        at = a.swapaxes(-1, -2)
        scale = float(
            np.max(np.sum(np.abs(a.data), axis=-2)) * np.max(np.sum(np.abs(a.data), axis=-1))
        )
        z = at * (1.0 / max(scale, 1e-8))
        eye = Tensor(np.eye(a.shape[-1], dtype=np.float32))
        for _ in range(self.pinv_iters):
            az = a @ z
            z = (z @ (eye * 13.0 - az @ (eye * 15.0 - az @ (eye * 7.0 - az)))) * 0.25
        return z

    def _softmax_kernel(self, a: Tensor, b: Tensor, scale: float, prune: bool) -> Tensor:
        scores = (a @ b.swapaxes(-1, -2)) * scale
        if prune and self.dfss_pattern is not None:
            mask = get_kernel("nm_prune_mask", self.backend)(scores.data, self.dfss_pattern)
            return F.masked_softmax(scores, mask, axis=-1)
        return F.softmax(scores, axis=-1)

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        d = q.shape[-1]
        scale = 1.0 / np.sqrt(d)
        q_land = self._landmarks(q)
        k_land = self._landmarks(k)
        kernel1 = self._softmax_kernel(q, k_land, scale, prune=True)   # n x m
        kernel2 = self._softmax_kernel(q_land, k_land, scale, prune=False)  # m x m
        kernel3 = self._softmax_kernel(q_land, k, scale, prune=True)   # m x n
        pinv = self._pinv(kernel2)
        return (kernel1 @ pinv) @ (kernel3 @ v)


class SynthesizerCore(AttentionCore):
    """Random Synthesizer: a trainable content-independent attention matrix."""

    name = "synthesizer"

    def __init__(self, max_len: int = 512, seed=0):
        from repro.nn.autograd import parameter

        rng = new_rng(seed)
        self.max_len = max_len
        self.weight = parameter(rng.normal(0.0, 0.02, size=(max_len, max_len)), name="synth")

    def __call__(self, q: Tensor, k: Tensor, v: Tensor) -> Tensor:
        n = q.shape[-2]
        if n > self.max_len:
            raise ValueError(f"sequence length {n} exceeds synthesizer table {self.max_len}")
        weights = F.softmax(self.weight[:n, :n], axis=-1)
        return weights @ v


# ----------------------------------------------------------------- factory
def make_attention_core(mechanism: str, seq_len_hint: int = 512, **kwargs) -> AttentionCore:
    """Build an :class:`AttentionCore` by mechanism name.

    ``mechanism`` accepts the Table-4 names plus ``dfss_1:2`` / ``dfss_2:4``
    shortcuts; extra keyword arguments are forwarded to the core.
    """
    mech = mechanism.lower()
    if mech in ("full", "transformer", "dense"):
        return FullCore()
    if mech.startswith("dfss"):
        pattern = kwargs.pop("pattern", None)
        if pattern is None:
            pattern = mech.split("_", 1)[1] if "_" in mech else "2:4"
        return DfssCore(pattern=pattern)
    if mech == "topk":
        return TopKCore(**kwargs)
    if mech == "local":
        window = kwargs.pop("window", 32)
        return StaticMaskCore(lambda nq, nk: local_window_mask(nq, nk, window), "local")
    if mech == "sparse_transformer":
        window = kwargs.pop("window", 16)
        stride = kwargs.pop("stride", 64)
        return StaticMaskCore(
            lambda nq, nk: strided_mask(nq, nk, window, stride), "sparse_transformer"
        )
    if mech == "fixed_truncated":
        density = kwargs.pop("density", 0.5)
        return StaticMaskCore(
            lambda nq, nk: truncated_mask(nq, nk, density), "fixed_truncated"
        )
    if mech == "longformer":
        window = kwargs.pop("window", 32)
        num_global = kwargs.pop("num_global", 1)
        return StaticMaskCore(
            lambda nq, nk: longformer_mask(nq, nk, window, num_global), "longformer"
        )
    if mech == "bigbird":
        block = kwargs.pop("block_size", 64)
        seed = kwargs.pop("seed", 0)

        def _bb(nq, nk):
            bs = block
            while nq % bs != 0 and bs > 1:
                bs //= 2
            return bigbird_mask(nq, bs, seed=seed).dense_mask(nq, nk)

        return StaticMaskCore(_bb, "bigbird")
    if mech == "reformer":
        return ClusteringMaskCore(ReformerAttention(**kwargs), "reformer")
    if mech == "routing":
        return ClusteringMaskCore(RoutingTransformerAttention(**kwargs), "routing")
    if mech == "sinkhorn":
        return ClusteringMaskCore(SinkhornAttention(**kwargs), "sinkhorn")
    if mech == "linformer":
        return LinformerCore(**kwargs)
    if mech == "linear_transformer":
        return LinearTransformerCore()
    if mech == "performer":
        return PerformerCore(**kwargs)
    if mech == "nystromformer":
        return NystromformerCore(**kwargs)
    if mech in ("nystromformer_dfss", "nystrom_dfss"):
        kwargs.setdefault("dfss_pattern", "2:4")
        return NystromformerCore(**kwargs)
    if mech == "synthesizer":
        kwargs.setdefault("max_len", seq_len_hint)
        return SynthesizerCore(**kwargs)
    raise ValueError(f"unknown attention mechanism {mechanism!r}")


# ------------------------------------------------------------- the nn layer
class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with a swappable attention core.

    The core can be replaced after construction (and after training) with
    :meth:`set_mechanism`, which is how the "replace full attention by DFSS
    without finetuning" experiments are run.
    """

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        mechanism: str = "full",
        dropout: float = 0.0,
        seed=0,
        max_len: int = 512,
        **mechanism_kwargs,
    ):
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError("model_dim must be divisible by num_heads")
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.max_len = max_len
        rng = new_rng(seed)
        self.q_proj = Linear(model_dim, model_dim, seed=rng.integers(1 << 31))
        self.k_proj = Linear(model_dim, model_dim, seed=rng.integers(1 << 31))
        self.v_proj = Linear(model_dim, model_dim, seed=rng.integers(1 << 31))
        self.out_proj = Linear(model_dim, model_dim, seed=rng.integers(1 << 31))
        self.attn_dropout = Dropout(dropout, seed=rng.integers(1 << 31))
        self.core = make_attention_core(mechanism, seq_len_hint=max_len, **mechanism_kwargs)
        self.mechanism = mechanism
        self._register_core_parameters()

    def _register_core_parameters(self) -> None:
        """Expose trainable tensors owned by the core (e.g. the Synthesizer matrix)."""
        self._parameters.pop("core_weight", None)
        core_weight = getattr(self.core, "weight", None)
        if isinstance(core_weight, Tensor) and core_weight.requires_grad:
            self._parameters["core_weight"] = core_weight

    def set_mechanism(self, mechanism: str, **mechanism_kwargs) -> None:
        """Swap the attention mechanism in place (weights are untouched)."""
        self.core = make_attention_core(
            mechanism, seq_len_hint=self.max_len, **mechanism_kwargs
        )
        self.mechanism = mechanism
        self._register_core_parameters()

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.model_dim)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)
        out = self.core(q, k, v)
        out = self._merge_heads(out, batch, seq)
        return self.attn_dropout(self.out_proj(out))
