"""Module system and basic layers (Linear, Embedding, LayerNorm, Dropout)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.autograd import Tensor, parameter
from repro.utils.seeding import new_rng


class Module:
    """Base class with parameter registration, train/eval mode and state dicts."""

    def __init__(self):
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------ registration
    def __setattr__(self, key, value):
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ----------------------------------------------------------------- access
    def parameters(self) -> List[Tensor]:
        return [t for _, t in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ modes
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------- state dict
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}"
                )
            p.data = np.asarray(state[name], dtype=np.float32).copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``x W + b`` with Xavier-uniform initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed=None):
        super().__init__()
        rng = new_rng(seed)
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = parameter(
            rng.uniform(-bound, bound, size=(in_features, out_features)), name="weight"
        )
        self.bias = parameter(np.zeros(out_features), name="bias") if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int, seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.weight = parameter(
            rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)), name="weight"
        )
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.max(initial=0) >= self.num_embeddings or ids.min(initial=0) < 0:
            raise ValueError("token id out of range for the embedding table")
        return F.embedding(self.weight, ids)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.weight = parameter(np.ones(dim), name="weight")
        self.bias = parameter(np.zeros(dim), name="bias")
        self.eps = eps
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, self.eps)


class Dropout(Module):
    """Inverted dropout driven by a module-owned RNG (deterministic under a seed)."""

    def __init__(self, p: float = 0.1, seed=0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must lie in [0, 1)")
        self.p = p
        self.rng = new_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered: List[Module] = []
        for i, m in enumerate(modules):
            self.register_module(f"layer{i}", m)
            self._ordered.append(m)

    def forward(self, x):
        for m in self._ordered:
            x = m(x)
        return x
