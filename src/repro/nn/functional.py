"""Differentiable functional building blocks on top of the autograd Tensor."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.autograd import Tensor

#: Large negative number used to mask logits (kept finite for fp32 stability).
NEG_INF = -1e9


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax that assigns zero probability where ``mask`` is False.

    ``mask`` is a plain boolean ndarray (it is data-dependent but treated as a
    constant of the graph, exactly like the DFSS pruning decision which is not
    differentiated through).

    A row whose mask is entirely False gets *zero* attention everywhere: the
    finite ``NEG_INF`` fill alone would make such a row a uniform ``1/n``
    distribution, silently leaking weight onto pruned positions.  The zeroing
    multiplies by a 0/1 constant, so gradients stay finite.
    """
    mask = np.asarray(mask, dtype=bool)
    filled = x.masked_fill(~mask, NEG_INF)
    weights = softmax(filled, axis=axis)
    row_alive = np.any(mask, axis=axis, keepdims=True)
    if not row_alive.all():
        weights = weights * row_alive.astype(np.float32)
    return weights


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def relu(x: Tensor) -> Tensor:
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (erf form, as in BERT)."""
    return x * ((x * float(1.0 / np.sqrt(2.0))).erf() + 1.0) * 0.5


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    var = (centred * centred).mean(axis=-1, keepdims=True)
    normed = centred / (var + eps).sqrt()
    return normed * weight + bias


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    keep = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * keep


def embedding(weight: Tensor, ids: np.ndarray) -> Tensor:
    """Row lookup ``weight[ids]`` with scatter-add gradient."""
    ids = np.asarray(ids)
    if not np.issubdtype(ids.dtype, np.integer):
        raise TypeError("embedding ids must be integers")
    return weight[ids]


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: Optional[int] = None) -> Tensor:
    """Mean cross-entropy between ``logits`` (..., C) and integer ``targets`` (...)."""
    targets = np.asarray(targets)
    log_probs = log_softmax(logits, axis=-1)
    flat_logp = log_probs.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        valid = flat_targets != ignore_index
        safe_targets = np.where(valid, flat_targets, 0)
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
        safe_targets = flat_targets
    picked = flat_logp[np.arange(flat_targets.shape[0]), safe_targets]
    weights = valid.astype(np.float32) / max(1, int(valid.sum()))
    return -(picked * weights).sum()


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Classification accuracy of argmax predictions (plain ndarray helper)."""
    preds = np.argmax(np.asarray(logits), axis=-1)
    targets = np.asarray(targets)
    return float((preds == targets).mean()) if targets.size else 0.0


def perplexity_from_loss(nll: float) -> float:
    """Perplexity ``exp(nll)`` with overflow protection."""
    return float(np.exp(min(nll, 30.0)))
