"""Trainable DFSS attention as a single compressed-pipeline autograd op.

:func:`dfss_sparse_attention` runs the paper's N:M attention through the
kernel registry in *both* directions: the forward pass is the fused SDDMM +
prune epilogue followed by the sparse softmax and SpMM over the compressed
nonzeros, and the backward pass is the analytic gradient of
:mod:`repro.core.attention_grad`, computed entirely on the compressed
representation (``dV = Pᵀ dO``, masked SDDMM for ``dP``, the row-wise softmax
Jacobian on compressed rows, then ``dQ``/``dK`` via SpMM and its transpose).

The N:M selection is treated as a constant of the graph, exactly as the CUDA
kernels do — the pruning decision is not differentiated through.  The dense
score matrix is never materialised by autograd; the graph holds a single node
whose saved state is the compressed probability matrix.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.attention_grad import dfss_attention_bwd
from repro.core.backend import REFERENCE, resolve_backend
from repro.core.blocked_ell import BlockedEllMask
from repro.core.patterns import resolve_pattern
from repro.core.sddmm import sddmm_nm
from repro.core.softmax import sparse_softmax
from repro.core.sparse import NMSparseMatrix
from repro.core.spmm import spmm
from repro.nn.autograd import Tensor
from repro.utils.seeding import attention_dropout_keep, draw_dropout_seed


def _dense_positions(probs: NMSparseMatrix) -> np.ndarray:
    """Linear index into the dense weight tensor of every stored nonzero."""
    cols = probs.column_indices().astype(np.uint64)
    lead = np.arange(
        int(np.prod(cols.shape[:-1], dtype=np.int64)), dtype=np.uint64
    ).reshape(cols.shape[:-1] + (1,))
    return lead * np.uint64(probs.dense_cols) + cols


def dfss_sparse_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    pattern="2:4",
    scale: Optional[float] = None,
    backend: Optional[str] = None,
    block_mask: Optional[BlockedEllMask] = None,
    dropout_p: float = 0.0,
    dropout_rng: Optional[np.random.Generator] = None,
    training: bool = False,
) -> Tuple[Tensor, NMSparseMatrix]:
    """Differentiable DFSS attention on the compressed pipeline.

    Parameters
    ----------
    q, k, v:
        ``(..., seq, d)`` Tensors sharing their leading batch shape.
    pattern:
        N:M pattern of the dynamic pruning (default 2:4).
    scale:
        Score scale; defaults to ``1/sqrt(d)``.
    backend:
        Kernel backend for every dispatched stage, forward and backward
        ("reference" or "fast"; default ``$REPRO_BACKEND``, else "fast").
    block_mask:
        Optional hybrid blocked-ELL coarse mask (the same argument the
        inference-path :func:`repro.core.attention.dfss_attention` takes):
        score blocks outside the mask are excluded before the N:M selection
        and carry exactly zero probability; the backward kernels already zero
        the sentinel entries of fully-masked groups.
    dropout_p, dropout_rng, training:
        Optional inverted dropout applied to the compressed attention
        probabilities (the masked analogue of dropout on the dense attention
        weights).  Active only when ``training`` is true and ``p > 0``, in
        which case ``dropout_rng`` (a seeded Generator) is required —
        dropout in this repo is deterministic under a seed.  The mask is
        derived layout-independently: one seed is drawn from ``dropout_rng``
        per call and hashed with the *dense* position of each stored nonzero
        (:func:`repro.utils.seeding.attention_dropout_keep`), so a seeded run
        through this op and one through the dense escape hatch drop the same
        (row, column) entries.

    Returns
    -------
    ``(out, probs)`` where ``out`` is the ``(..., seq, d)`` output Tensor and
    ``probs`` the compressed (pre-dropout) probability matrix, useful for
    mask/weight introspection.
    """
    pattern = resolve_pattern(pattern)
    d = q.shape[-1]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    scale = float(scale)

    scores = sddmm_nm(
        q.data, k.data, pattern=pattern, scale=scale, block_mask=block_mask,
        backend=backend,
    )
    probs = sparse_softmax(scores, backend=backend)
    if resolve_backend(backend) != REFERENCE:
        # one metadata walk per step: the forward SpMM and the backward
        # kernels share the scattered tile (the reference loops never use it)
        probs.to_scattered(cache=True)

    drop_keep: Optional[np.ndarray] = None
    if training and dropout_p > 0.0:
        if dropout_p >= 1.0:
            raise ValueError("dropout probability must be < 1")
        if dropout_rng is None:
            # dropout in this repo is deterministic under a seed (see
            # nn.layers.Dropout); an implicit unseeded generator would
            # silently break experiment reproducibility
            raise ValueError("dropout_p > 0 requires an explicit dropout_rng")
        drop_keep = attention_dropout_keep(
            draw_dropout_seed(dropout_rng), dropout_p, _dense_positions(probs)
        )
        applied = probs.with_values(probs.values * drop_keep)
    else:
        applied = probs
    out_data = spmm(applied, v.data, backend=backend)

    def backward(out):
        def fn():
            d_q, d_k, d_v = dfss_attention_bwd(
                probs, q.data, k.data, v.data, out.grad, scale,
                drop_keep=drop_keep, out=out.data, backend=backend,
            )
            if q.requires_grad:
                q._accumulate(d_q)
            if k.requires_grad:
                k._accumulate(d_k)
            if v.requires_grad:
                v._accumulate(d_v)

        return fn

    out = q._make(out_data, (q, k, v), backward, "dfss_attention")
    return out, probs
