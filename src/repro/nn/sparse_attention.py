"""Trainable compressed sparse attention as single-node autograd ops.

Two entry points share one compressed pipeline (SDDMM into a compressed
structure → sparse softmax → SpMM forward; the analytic backward of
:mod:`repro.core.attention_grad` on the compressed representation — ``dV =
Pᵀ dO``, masked SDDMM for ``dP``, the row-wise softmax Jacobian on compressed
rows, then ``dQ``/``dK`` via SpMM and its transpose):

* :func:`dfss_sparse_attention` — the N:M specialisation: the structure is
  chosen *dynamically* by the fused SDDMM + prune epilogue
  (:class:`~repro.core.sparse.NMSparseMatrix`), exactly the paper's kernel;
* :func:`masked_sparse_attention` — the layout-generic op every mask-based
  mechanism (TopK, local/strided, Longformer, BigBird, Reformer, Routing,
  Sinkhorn, …) trains through: an arbitrary boolean mask is compressed into
  a :class:`~repro.core.padded_csr.PaddedCSRMatrix` and the same kernels run
  on the per-row variable-nnz layout.

In both cases the sparsity selection is treated as a constant of the graph,
exactly as the CUDA kernels do — the pruning/masking decision is not
differentiated through.  The dense score matrix is never materialised by
autograd; the graph holds a single node whose saved state is the compressed
probability matrix.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.analysis.sanitize import check_grads, check_output, guard_input
from repro.core.attention_grad import masked_attention_bwd
from repro.core.backend import REFERENCE, resolve_backend
from repro.core.blocked_ell import BlockedEllMask
from repro.core.layout import CompressedLayout, dense_positions
from repro.core.padded_csr import PaddedCSRMatrix
from repro.core.patterns import resolve_pattern
from repro.core.plan import (
    FUSED,
    AttentionPlan,
    plan_for_nm,
    plan_for_structure,
    resolve_pipeline,
)
from repro.core.sddmm import sddmm_csr, sddmm_nm
from repro.core.softmax import sparse_softmax
from repro.core.sparse import NMSparseMatrix
from repro.core.spmm import spmm
from repro.nn.autograd import Tensor
from repro.profile.tracer import phase_scope
from repro.utils.seeding import attention_dropout_keep, draw_dropout_seed


def _compressed_attention_node(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: CompressedLayout,
    scale: float,
    backend: Optional[str],
    dropout_p: float,
    dropout_rng: Optional[np.random.Generator],
    training: bool,
    name: str,
    plan: Optional[AttentionPlan] = None,
) -> Tensor:
    """Finish the pipeline from compressed probabilities: dropout, SpMM, backward.

    This is the layout-independent half shared by the N:M and padded-CSR
    ops; ``probs`` is the compressed (pre-dropout) probability matrix.  When
    ``plan`` is given the SpMM and the backward dispatch through its
    pre-resolved kernels (bitwise-identical functions — the registry would
    resolve to the same objects) instead of per-call registry lookups.
    """
    if resolve_backend(backend) != REFERENCE:
        # one metadata walk per step: the forward SpMM and the backward
        # kernels share the scattered tile (the reference loops never use it)
        probs.to_scattered(cache=True)

    drop_keep: Optional[np.ndarray] = None
    if training and dropout_p > 0.0:
        if dropout_p >= 1.0:
            raise ValueError("dropout probability must be < 1")
        if dropout_rng is None:
            # dropout in this repo is deterministic under a seed (see
            # nn.layers.Dropout); an implicit unseeded generator would
            # silently break experiment reproducibility
            raise ValueError("dropout_p > 0 requires an explicit dropout_rng")
        drop_keep = attention_dropout_keep(
            draw_dropout_seed(dropout_rng), dropout_p, dense_positions(probs)
        )
    if plan is not None:
        out_data = plan.contract(probs, v.data, drop_keep=drop_keep)
    else:
        applied = (
            probs if drop_keep is None
            else probs.with_values(probs.values * drop_keep)
        )
        out_data = check_output(
            spmm(applied, guard_input(v.data), backend=backend), "attention output"
        )

    def backward(out):
        def fn():
            # Tensor.backward already runs inside a bwd phase scope; the
            # explicit scope here keeps attribution correct when the closure
            # is driven directly (e.g. gradcheck harnesses).
            with phase_scope("bwd"):
                if plan is not None:
                    d_q, d_k, d_v = plan.backward(
                        probs, q.data, k.data, v.data, out.grad, scale,
                        drop_keep=drop_keep, out=out.data,
                    )
                else:
                    d_q, d_k, d_v = check_grads(
                        masked_attention_bwd(
                            probs,
                            guard_input(q.data), guard_input(k.data),
                            guard_input(v.data), guard_input(out.grad), scale,
                            drop_keep=drop_keep, out=out.data, backend=backend,
                        ),
                        "attention gradient",
                    )
            if q.requires_grad:
                q._accumulate(d_q)
            if k.requires_grad:
                k._accumulate(d_k)
            if v.requires_grad:
                v._accumulate(d_v)

        return fn

    return q._make(out_data, (q, k, v), backward, name)


def dfss_sparse_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    pattern="2:4",
    scale: Optional[float] = None,
    backend: Optional[str] = None,
    block_mask: Optional[BlockedEllMask] = None,
    dropout_p: float = 0.0,
    dropout_rng: Optional[np.random.Generator] = None,
    training: bool = False,
    pipeline: Optional[str] = None,
) -> Tuple[Tensor, NMSparseMatrix]:
    """Differentiable DFSS attention on the compressed N:M pipeline.

    Parameters
    ----------
    q, k, v:
        ``(..., seq, d)`` Tensors sharing their leading batch shape.
    pattern:
        N:M pattern of the dynamic pruning (default 2:4).
    scale:
        Score scale; defaults to ``1/sqrt(d)``.
    backend:
        Kernel backend for every dispatched stage, forward and backward
        ("reference" or "fast"; default ``$REPRO_BACKEND``, else "fast").
    block_mask:
        Optional hybrid blocked-ELL coarse mask (the same argument the
        inference-path :func:`repro.core.attention.dfss_attention` takes):
        score blocks outside the mask are excluded before the N:M selection
        and carry exactly zero probability; the backward kernels already zero
        the sentinel entries of fully-masked groups.
    dropout_p, dropout_rng, training:
        Optional inverted dropout applied to the compressed attention
        probabilities (the masked analogue of dropout on the dense attention
        weights).  Active only when ``training`` is true and ``p > 0``, in
        which case ``dropout_rng`` (a seeded Generator) is required —
        dropout in this repo is deterministic under a seed.  The mask is
        derived layout-independently: one seed is drawn from ``dropout_rng``
        per call and hashed with the *dense* position of each stored nonzero
        (:func:`repro.utils.seeding.attention_dropout_keep`), so a seeded run
        through this op and one through the dense escape hatch drop the same
        (row, column) entries.
    pipeline:
        "fused" (default) executes through a compiled cached
        :class:`~repro.core.plan.AttentionPlan` — pre-resolved kernels, score
        buffer reused in place; "staged" dispatches the three registry
        kernels per call (the bitwise parity oracle).

    Returns
    -------
    ``(out, probs)`` where ``out`` is the ``(..., seq, d)`` output Tensor and
    ``probs`` the compressed (pre-dropout) probability matrix, useful for
    mask/weight introspection.
    """
    pattern = resolve_pattern(pattern)
    d = q.shape[-1]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    scale = float(scale)

    plan: Optional[AttentionPlan] = None
    if resolve_pipeline(pipeline) == FUSED:
        plan = plan_for_nm(pattern, q.shape[-2], k.shape[-2], backend=backend)
        scores = plan.compute_scores(
            q.data, k.data, scale=scale, block_mask=block_mask
        )
        probs = plan.compute_probs(scores)
    else:
        scores = sddmm_nm(
            guard_input(q.data), guard_input(k.data), pattern=pattern, scale=scale,
            block_mask=block_mask, backend=backend,
        )
        probs = sparse_softmax(scores, backend=backend)
    out = _compressed_attention_node(
        q, k, v, probs, scale, backend,
        dropout_p, dropout_rng, training, "dfss_attention", plan=plan,
    )
    return out, probs


def masked_sparse_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    mask: Union[np.ndarray, PaddedCSRMatrix],
    scale: Optional[float] = None,
    backend: Optional[str] = None,
    dropout_p: float = 0.0,
    dropout_rng: Optional[np.random.Generator] = None,
    training: bool = False,
    scores: Optional[PaddedCSRMatrix] = None,
    pipeline: Optional[str] = None,
) -> Tuple[Tensor, PaddedCSRMatrix]:
    """Differentiable masked attention on the compressed padded-CSR pipeline.

    The layout-generic sibling of :func:`dfss_sparse_attention`: instead of
    the fused N:M epilogue choosing the structure, an arbitrary boolean
    attention mask is compressed into a per-row variable-nnz
    :class:`~repro.core.padded_csr.PaddedCSRMatrix`, and the same kernel
    pipeline (``sddmm_csr`` → sparse softmax → SpMM, analytic backward on the
    compressed representation) runs on that structure.  The mask is treated
    as a constant of the graph — gradients flow through the surviving score
    entries only, which is exactly what the dense masked-softmax formulation
    computes, without ever materialising the dense score matrix in autograd.

    Parameters
    ----------
    q, k, v:
        ``(..., seq, d)`` Tensors sharing their leading batch shape.
    mask:
        Boolean mask over the dense score matrix — either an ndarray
        broadcastable to ``(..., seq_q, seq_k)`` or an already-compressed
        :class:`PaddedCSRMatrix` structure (mechanisms with static masks
        compress once and reuse).  Fully masked rows receive exactly zero
        attention everywhere, matching ``F.masked_softmax``.
    scale:
        Score scale; defaults to ``1/sqrt(d)``.
    backend:
        Kernel backend for every dispatched stage ("reference" or "fast").
    dropout_p, dropout_rng, training:
        Seeded inverted dropout on the compressed probabilities, derived
        layout-independently from dense positions exactly as in
        :func:`dfss_sparse_attention` — a seeded run through this op and one
        through the dense masked path drop the same (row, column) entries.
    scores:
        Optional precomputed *scaled* compressed scores sharing ``mask``'s
        structure (padding lanes carrying the masked-score sentinel).
        Mechanisms that already computed the dense score matrix to choose
        their mask (Top-K) pass it here so the op skips its SDDMM instead of
        paying the score GEMM a second time.
    pipeline:
        "fused" (default) executes through a compiled cached
        :class:`~repro.core.plan.AttentionPlan`; "staged" dispatches the
        registry kernels per call (the bitwise parity oracle).

    Returns
    -------
    ``(out, probs)`` where ``out`` is the ``(..., seq, d)`` output Tensor and
    ``probs`` the compressed (pre-dropout) probability matrix.
    """
    d = q.shape[-1]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    scale = float(scale)
    batch_shape = q.shape[:-2]

    if isinstance(mask, PaddedCSRMatrix):
        structure = mask.broadcast_to(batch_shape)
    else:
        mask = np.asarray(mask, dtype=bool)
        seq = (q.shape[-2], k.shape[-2])
        if mask.shape[-2:] != seq:
            mask = np.broadcast_to(mask, mask.shape[:-2] + seq)
        # compress the mask as given and broadcast the *structure* over the
        # remaining batch dims — compressing an already-broadcast mask would
        # re-run the argsort on every identical leading slice
        structure = PaddedCSRMatrix.from_mask(mask).broadcast_to(batch_shape)

    plan: Optional[AttentionPlan] = None
    if resolve_pipeline(pipeline) == FUSED:
        plan = plan_for_structure(structure, backend=backend)
    prescored = scores is not None
    if not prescored:
        if plan is not None:
            scores = plan.compute_scores(q.data, k.data, structure, scale=scale)
        else:
            scores = sddmm_csr(
                guard_input(q.data), guard_input(k.data), structure,
                scale=scale, backend=backend,
            )
    elif scores.values.shape != structure.values.shape:
        raise ValueError(
            f"precomputed scores shape {scores.values.shape} does not share "
            f"the mask structure {structure.values.shape}"
        )
    if plan is not None:
        # caller-provided score buffers must survive: owned=False copies once
        probs = plan.compute_probs(scores, owned=not prescored)
    else:
        probs = sparse_softmax(scores, backend=backend)
    out = _compressed_attention_node(
        q, k, v, probs, scale, backend,
        dropout_p, dropout_rng, training, "masked_attention", plan=plan,
    )
    return out, probs
