"""Transformer encoder models with task heads (classification, span QA, MLM).

These are the models the accuracy experiments train: small BERT-style
encoders whose attention mechanism can be swapped (full / DFSS / any baseline)
before or after training.  The architecture follows the LRA reference setup:
token embedding + sinusoidal positions, pre-norm encoder layers with GELU
feed-forward blocks, and a task head on top.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn import functional as F
from repro.nn.attention_layer import MultiHeadSelfAttention
from repro.nn.autograd import Tensor
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module
from repro.utils.seeding import new_rng


def sinusoidal_positions(max_len: int, dim: int) -> np.ndarray:
    """Standard sinusoidal positional encodings (not trained)."""
    positions = np.arange(max_len)[:, None].astype(np.float64)
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    table = np.zeros((max_len, dim), dtype=np.float32)
    table[:, 0::2] = np.sin(positions * div)
    table[:, 1::2] = np.cos(positions * div[: (dim // 2 + dim % 2)])[:, : table[:, 1::2].shape[1]]
    return table


class TransformerEncoderLayer(Module):
    """Pre-norm encoder layer: MHSA + GELU feed-forward, both with residuals."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        ffn_dim: int,
        mechanism: str = "full",
        dropout: float = 0.0,
        seed=0,
        max_len: int = 512,
        **mechanism_kwargs,
    ):
        super().__init__()
        rng = new_rng(seed)
        self.attention = MultiHeadSelfAttention(
            model_dim,
            num_heads,
            mechanism=mechanism,
            dropout=dropout,
            seed=rng.integers(1 << 31),
            max_len=max_len,
            **mechanism_kwargs,
        )
        self.norm1 = LayerNorm(model_dim)
        self.norm2 = LayerNorm(model_dim)
        self.ffn_in = Linear(model_dim, ffn_dim, seed=rng.integers(1 << 31))
        self.ffn_out = Linear(ffn_dim, model_dim, seed=rng.integers(1 << 31))
        self.dropout = Dropout(dropout, seed=rng.integers(1 << 31))

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        hidden = F.gelu(self.ffn_in(self.norm2(x)))
        return x + self.dropout(self.ffn_out(hidden))


class TransformerEncoder(Module):
    """Token embedding + positional encoding + a stack of encoder layers."""

    def __init__(
        self,
        vocab_size: int,
        max_len: int,
        model_dim: int = 64,
        num_heads: int = 4,
        num_layers: int = 2,
        ffn_dim: int = 128,
        mechanism: str = "full",
        dropout: float = 0.0,
        seed=0,
        **mechanism_kwargs,
    ):
        super().__init__()
        rng = new_rng(seed)
        self.vocab_size = vocab_size
        self.max_len = max_len
        self.model_dim = model_dim
        self.embedding = Embedding(vocab_size, model_dim, seed=rng.integers(1 << 31))
        self.positions = sinusoidal_positions(max_len, model_dim)
        self.final_norm = LayerNorm(model_dim)
        self.layers: List[TransformerEncoderLayer] = []
        for i in range(num_layers):
            layer = TransformerEncoderLayer(
                model_dim,
                num_heads,
                ffn_dim,
                mechanism=mechanism,
                dropout=dropout,
                seed=rng.integers(1 << 31),
                max_len=max_len,
                **mechanism_kwargs,
            )
            self.register_module(f"layer_{i}", layer)
            self.layers.append(layer)

    def set_mechanism(self, mechanism: str, **mechanism_kwargs) -> None:
        """Swap the attention mechanism of every layer (weights untouched)."""
        for layer in self.layers:
            layer.attention.set_mechanism(mechanism, **mechanism_kwargs)

    @property
    def mechanism(self) -> str:
        return self.layers[0].attention.mechanism if self.layers else "full"

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError("token_ids must have shape (batch, seq)")
        seq = token_ids.shape[1]
        if seq > self.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.max_len}")
        x = self.embedding(token_ids) + Tensor(self.positions[:seq])
        for layer in self.layers:
            x = layer(x)
        return self.final_norm(x)

    def attention_weight_matrices(self, token_ids: np.ndarray) -> List[np.ndarray]:
        """Dense attention-weight matrices of the first layer (Figure-19 style).

        Returns one ``(batch, heads, seq, seq)`` array per mask-producing layer;
        non-mask mechanisms return the dense softmax weights.
        """
        token_ids = np.asarray(token_ids)
        x = self.embedding(token_ids) + Tensor(self.positions[: token_ids.shape[1]])
        maps = []
        for layer in self.layers:
            attn = layer.attention
            normed = layer.norm1(x)
            batch, seq, _ = normed.shape
            q = attn._split_heads(attn.q_proj(normed), batch, seq).data
            k = attn._split_heads(attn.k_proj(normed), batch, seq).data
            scores = np.matmul(q, np.swapaxes(k, -1, -2)) / np.sqrt(attn.head_dim)
            mask_core = getattr(attn.core, "_mask", None)
            from repro.core.softmax import dense_softmax, masked_dense_softmax

            if mask_core is not None:
                mask = attn.core._mask(scores, q, k)
                maps.append(masked_dense_softmax(scores, mask))
            else:
                maps.append(dense_softmax(scores))
            x = layer(x)
        return maps


# -------------------------------------------------------------------- heads
class SequenceClassifier(Module):
    """Mean-pooled sequence classification head (LRA-style tasks)."""

    def __init__(self, encoder: TransformerEncoder, num_classes: int, seed=0):
        super().__init__()
        self.encoder = encoder
        self.head = Linear(encoder.model_dim, num_classes, seed=seed)
        self.num_classes = num_classes

    def forward(self, token_ids: np.ndarray) -> Tensor:
        hidden = self.encoder(token_ids)
        pooled = hidden.mean(axis=1)
        return self.head(pooled)

    def loss(self, token_ids: np.ndarray, labels: np.ndarray) -> Tensor:
        return F.cross_entropy(self.forward(token_ids), labels)

    def predict(self, token_ids: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(token_ids).data, axis=-1)


class DualSequenceClassifier(Module):
    """Two-tower classifier for the LRA document-retrieval task.

    Both documents are encoded by the *same* encoder; the pooled vectors are
    combined as ``[u, v, u*v, |u-v|]`` and classified.
    """

    def __init__(self, encoder: TransformerEncoder, num_classes: int = 2, seed=0):
        super().__init__()
        self.encoder = encoder
        self.head = Linear(4 * encoder.model_dim, num_classes, seed=seed)
        self.num_classes = num_classes

    def forward(self, token_ids_pair: np.ndarray) -> Tensor:
        from repro.nn.autograd import concatenate

        token_ids_pair = np.asarray(token_ids_pair)
        if token_ids_pair.ndim != 3 or token_ids_pair.shape[1] != 2:
            raise ValueError("expected token ids of shape (batch, 2, seq)")
        u = self.encoder(token_ids_pair[:, 0]).mean(axis=1)
        v = self.encoder(token_ids_pair[:, 1]).mean(axis=1)
        diff = u - v
        abs_diff = (diff * diff + 1e-12).sqrt()
        features = concatenate([u, v, u * v, abs_diff], axis=-1)
        return self.head(features)

    def loss(self, token_ids_pair: np.ndarray, labels: np.ndarray) -> Tensor:
        return F.cross_entropy(self.forward(token_ids_pair), labels)

    def predict(self, token_ids_pair: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(token_ids_pair).data, axis=-1)


class SpanQAModel(Module):
    """Span-extraction QA head (start / end logits), the SQuAD-style task."""

    def __init__(self, encoder: TransformerEncoder, seed=0):
        super().__init__()
        self.encoder = encoder
        self.span_head = Linear(encoder.model_dim, 2, seed=seed)

    def forward(self, token_ids: np.ndarray):
        hidden = self.encoder(token_ids)
        logits = self.span_head(hidden)  # (batch, seq, 2)
        start = logits[..., 0]
        end = logits[..., 1]
        return start, end

    def loss(self, token_ids: np.ndarray, spans: np.ndarray) -> Tensor:
        spans = np.asarray(spans)
        start_logits, end_logits = self.forward(token_ids)
        return (
            F.cross_entropy(start_logits, spans[:, 0])
            + F.cross_entropy(end_logits, spans[:, 1])
        ) * 0.5

    def predict(self, token_ids: np.ndarray) -> np.ndarray:
        start_logits, end_logits = self.forward(token_ids)
        starts = np.argmax(start_logits.data, axis=-1)
        ends = np.argmax(end_logits.data, axis=-1)
        ends = np.maximum(starts, ends)  # enforce a valid span
        return np.stack([starts, ends], axis=1)


class MaskedLanguageModel(Module):
    """Masked-token prediction head (the Wikitext MLM stand-in)."""

    def __init__(self, encoder: TransformerEncoder, seed=0):
        super().__init__()
        self.encoder = encoder
        self.lm_head = Linear(encoder.model_dim, encoder.vocab_size, seed=seed)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        return self.lm_head(self.encoder(token_ids))

    def loss(self, token_ids: np.ndarray, targets: np.ndarray, ignore_index: int = -100) -> Tensor:
        logits = self.forward(token_ids)
        return F.cross_entropy(logits, targets, ignore_index=ignore_index)
