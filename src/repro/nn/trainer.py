"""Training / finetuning / evaluation loops and task metrics.

The accuracy experiments all follow the same recipe:

1. train a model from scratch (or reuse a "pretrained" checkpoint) under one
   attention mechanism;
2. optionally swap the mechanism (``encoder.set_mechanism``) — the "w/o
   finetune" rows of Tables 1-3;
3. optionally finetune for a small number of steps — the "w/ finetune" rows;
4. evaluate: classification accuracy, span-F1 for QA, perplexity for MLM.

Everything is deterministic under a seed, and the paper's practice of
averaging over several seeds is supported by :func:`run_seeded_trials`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.functional import perplexity_from_loss
from repro.nn.layers import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.utils.seeding import SeedLike, new_rng


# ------------------------------------------------------------------ batching
def iterate_minibatches(
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
    """Yield (inputs, targets) minibatches, shuffled when an RNG is given."""
    n = len(inputs)
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        yield inputs[idx], targets[idx]


# ------------------------------------------------------------------- metrics
def span_f1(pred_spans: np.ndarray, true_spans: np.ndarray) -> float:
    """Mean token-level F1 between predicted and gold answer spans (SQuAD style)."""
    pred_spans = np.asarray(pred_spans)
    true_spans = np.asarray(true_spans)
    scores = []
    for (ps, pe), (ts, te) in zip(pred_spans, true_spans):
        pred_tokens = set(range(int(ps), int(pe) + 1))
        true_tokens = set(range(int(ts), int(te) + 1))
        overlap = len(pred_tokens & true_tokens)
        if overlap == 0:
            scores.append(0.0)
            continue
        precision = overlap / len(pred_tokens)
        recall = overlap / len(true_tokens)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores)) if scores else 0.0


def exact_match(pred_spans: np.ndarray, true_spans: np.ndarray) -> float:
    """Fraction of exactly matching spans."""
    pred_spans = np.asarray(pred_spans)
    true_spans = np.asarray(true_spans)
    return float(np.mean(np.all(pred_spans == true_spans, axis=-1))) if len(pred_spans) else 0.0


# ------------------------------------------------------------------- trainer
@dataclass
class TrainingResult:
    """History and final metrics of one training run."""

    losses: List[float] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    steps: int = 0


class Trainer:
    """Minimal gradient-descent training loop around a task model.

    The model must expose ``loss(inputs, targets) -> Tensor``; metric
    evaluation is task specific and passed as a callable.
    """

    def __init__(
        self,
        model: Module,
        lr: float = 1e-3,
        batch_size: int = 16,
        max_grad_norm: float = 1.0,
        weight_decay: float = 0.0,
        seed: SeedLike = 0,
    ):
        self.model = model
        self.batch_size = batch_size
        self.max_grad_norm = max_grad_norm
        self.rng = new_rng(seed)
        self.optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)

    def train_steps(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        max_steps: int,
        log_every: int = 0,
    ) -> TrainingResult:
        """Run up to ``max_steps`` optimisation steps over shuffled minibatches."""
        result = TrainingResult()
        self.model.train()
        steps = 0
        while steps < max_steps:
            for xb, yb in iterate_minibatches(inputs, targets, self.batch_size, self.rng):
                if steps >= max_steps:
                    break
                loss = self.model.loss(xb, yb)
                self.optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.model.parameters(), self.max_grad_norm)
                self.optimizer.step()
                result.losses.append(float(loss.item()))
                steps += 1
                if log_every and steps % log_every == 0:  # pragma: no cover - logging
                    print(f"step {steps}: loss {result.losses[-1]:.4f}")
        result.steps = steps
        self.model.eval()
        return result

    def train_epochs(
        self, inputs: np.ndarray, targets: np.ndarray, epochs: int
    ) -> TrainingResult:
        steps_per_epoch = int(np.ceil(len(inputs) / self.batch_size))
        return self.train_steps(inputs, targets, epochs * steps_per_epoch)


# --------------------------------------------------------------- evaluation
def evaluate_classification(model, inputs: np.ndarray, labels: np.ndarray,
                            batch_size: int = 32) -> float:
    """Accuracy of a model exposing ``predict``."""
    model.eval()
    correct = 0
    for start in range(0, len(inputs), batch_size):
        preds = model.predict(inputs[start : start + batch_size])
        correct += int((preds == labels[start : start + batch_size]).sum())
    return correct / max(1, len(labels))


def evaluate_span_qa(model, inputs: np.ndarray, spans: np.ndarray,
                     batch_size: int = 32) -> Dict[str, float]:
    """F1 / exact-match of a span-QA model."""
    model.eval()
    all_preds = []
    for start in range(0, len(inputs), batch_size):
        all_preds.append(model.predict(inputs[start : start + batch_size]))
    preds = np.concatenate(all_preds, axis=0)
    return {"f1": span_f1(preds, spans), "exact_match": exact_match(preds, spans)}


def evaluate_mlm(model, inputs: np.ndarray, targets: np.ndarray,
                 batch_size: int = 16, ignore_index: int = -100) -> Dict[str, float]:
    """Masked-LM loss and perplexity over the masked positions."""
    model.eval()
    losses, weights = [], []
    for start in range(0, len(inputs), batch_size):
        xb = inputs[start : start + batch_size]
        yb = targets[start : start + batch_size]
        loss = model.loss(xb, yb, ignore_index=ignore_index)
        n_masked = int((yb != ignore_index).sum())
        if n_masked:
            losses.append(float(loss.item()))
            weights.append(n_masked)
    if not losses:
        return {"loss": 0.0, "perplexity": 1.0}
    mean_loss = float(np.average(losses, weights=weights))
    return {"loss": mean_loss, "perplexity": perplexity_from_loss(mean_loss)}


def run_seeded_trials(run_fn: Callable[[int], float], seeds: Sequence[int]) -> Dict[str, float]:
    """Run an experiment for several seeds and report mean / std / 95% CI.

    Mirrors the paper's reporting convention ("averaged over 8 runs under
    different random seeds", confidence level 95%).
    """
    values = np.array([run_fn(int(s)) for s in seeds], dtype=np.float64)
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
    ci95 = 1.96 * std / np.sqrt(len(values)) if len(values) > 1 else 0.0
    return {"mean": mean, "std": std, "ci95": float(ci95), "n": len(values)}
