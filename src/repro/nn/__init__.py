"""NumPy autograd + transformer stack used by the accuracy experiments.

* :mod:`repro.nn.autograd` — reverse-mode autodiff Tensor;
* :mod:`repro.nn.functional` — softmax / gelu / layer-norm / cross-entropy;
* :mod:`repro.nn.layers` — Module, Linear, Embedding, LayerNorm, Dropout;
* :mod:`repro.nn.attention_layer` — multi-head attention with swappable
  mechanism (full / DFSS / all Table-4 baselines);
* :mod:`repro.nn.sparse_attention` — the compressed DFSS attention autograd
  op (sparse forward *and* analytic sparse backward);
* :mod:`repro.nn.transformer` — encoder models and task heads;
* :mod:`repro.nn.optim`, :mod:`repro.nn.trainer` — optimisers and loops.
"""

from repro.nn.autograd import Tensor, parameter
from repro.nn.attention_layer import MultiHeadSelfAttention, make_attention_core
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module, Sequential
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.sparse_attention import dfss_sparse_attention
from repro.nn.trainer import Trainer, evaluate_classification, evaluate_mlm, evaluate_span_qa
from repro.nn.transformer import (
    DualSequenceClassifier,
    MaskedLanguageModel,
    SequenceClassifier,
    SpanQAModel,
    TransformerEncoder,
    TransformerEncoderLayer,
)

__all__ = [
    "Tensor",
    "parameter",
    "MultiHeadSelfAttention",
    "make_attention_core",
    "dfss_sparse_attention",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Module",
    "Sequential",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "Trainer",
    "evaluate_classification",
    "evaluate_mlm",
    "evaluate_span_qa",
    "DualSequenceClassifier",
    "MaskedLanguageModel",
    "SequenceClassifier",
    "SpanQAModel",
    "TransformerEncoder",
    "TransformerEncoderLayer",
]
