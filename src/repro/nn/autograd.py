"""Minimal reverse-mode automatic differentiation over NumPy arrays.

The accuracy experiments (Tables 1-4, 6) need trainable transformers, so this
module provides a small, dependency-free autograd engine: a :class:`Tensor`
wrapping a float32 ``ndarray`` plus the backward rules for the operations the
transformer stack uses (broadcasted arithmetic, matmul, reductions, indexing,
exp/log/tanh/erf, softmax building blocks).

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` (a plain ndarray).
* Graphs are built eagerly; :meth:`Tensor.backward` topologically sorts the
  graph and runs the stored backward closures.
* Broadcasting is handled by summing gradients back onto the original shape
  (:func:`_unbroadcast`).
* Only float32 data participates in differentiation; integer arrays (token
  ids, gather indices) stay plain ndarrays.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.profile.tracer import phase_scope

ArrayLike = Union[np.ndarray, float, int, "Tensor"]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcasted dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # remove leading added dims
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over dims that were size-1 in the original
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A float32 array with gradient tracking."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 1000  # make `ndarray + Tensor` dispatch to Tensor

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _prev: Sequence["Tensor"] = (),
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[], None]] = None
        self._prev: Tuple["Tensor", ...] = tuple(_prev)
        self.name = name

    # ------------------------------------------------------------- properties
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, name={self.name!r})"

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _wrap(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float32)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def _make(self, data: np.ndarray, parents: Iterable["Tensor"], backward, name="") -> "Tensor":
        parents = tuple(parents)
        out = Tensor(
            data,
            requires_grad=any(p.requires_grad for p in parents),
            _prev=parents,
            name=name,
        )
        if out.requires_grad:
            out._backward = backward(out)
        return out

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))

            return fn

        return self._make(self.data + other.data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(-out.grad)

            return fn

        return self._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

            return fn

        return self._make(self.data * other.data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(
                        _unbroadcast(-out.grad * self.data / (other.data**2), other.shape)
                    )

            return fn

        return self._make(self.data / other.data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            return fn

        return self._make(self.data**exponent, (self,), backward, "pow")

    # --------------------------------------------------------------- matmul
    def matmul(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(out):
            def fn():
                if self.requires_grad:
                    grad = np.matmul(out.grad, np.swapaxes(other.data, -1, -2))
                    self._accumulate(_unbroadcast(grad, self.shape))
                if other.requires_grad:
                    grad = np.matmul(np.swapaxes(self.data, -1, -2), out.grad)
                    other._accumulate(_unbroadcast(grad, other.shape))

            return fn

        return self._make(np.matmul(self.data, other.data), (self, other), backward, "matmul")

    __matmul__ = matmul

    # ------------------------------------------------------------ unary ops
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * data)

            return fn

        return self._make(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad / self.data)

            return fn

        return self._make(np.log(self.data), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * (1.0 - data**2))

            return fn

        return self._make(data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * data * (1.0 - data))

            return fn

        return self._make(data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad * mask)

            return fn

        return self._make(self.data * mask, (self,), backward, "relu")

    def erf(self) -> "Tensor":
        from scipy.special import erf as _erf

        data = _erf(self.data).astype(np.float32)

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(
                        out.grad * (2.0 / np.sqrt(np.pi)) * np.exp(-self.data**2)
                    )

            return fn

        return self._make(data, (self,), backward, "erf")

    # ------------------------------------------------------------ reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(out):
            def fn():
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                self._accumulate(np.broadcast_to(grad, self.shape).copy())

            return fn

        return self._make(data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=True)
        argmax_mask = (self.data == data).astype(np.float32)
        # distribute ties equally to keep the gradient well defined
        argmax_mask /= np.maximum(argmax_mask.sum(axis=axis, keepdims=True), 1.0)
        out_data = data if keepdims else np.squeeze(data, axis=axis)

        def backward(out):
            def fn():
                if not self.requires_grad:
                    return
                grad = out.grad
                if not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                self._accumulate(grad * argmax_mask)

            return fn

        return self._make(out_data, (self,), backward, "max")

    # ------------------------------------------------------------ shape ops
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(original))

            return fn

        return self._make(self.data.reshape(shape), (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(out.grad.transpose(inverse))

            return fn

        return self._make(self.data.transpose(axes), (self,), backward, "transpose")

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        def backward(out):
            def fn():
                if self.requires_grad:
                    grad = np.zeros_like(self.data)
                    np.add.at(grad, index, out.grad)
                    self._accumulate(grad)

            return fn

        return self._make(self.data[index], (self,), backward, "getitem")

    # ----------------------------------------------------------- composites
    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Set entries where ``mask`` is True to ``value`` (no gradient there)."""
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, np.float32(value), self.data)

        def backward(out):
            def fn():
                if self.requires_grad:
                    self._accumulate(
                        _unbroadcast(out.grad * (~mask), self.shape)
                    )

            return fn

        return self._make(data, (self,), backward, "masked_fill")

    # ------------------------------------------------------------- backward
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor (default seed gradient: ones)."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float32).copy()

        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor"):
            stack = [(node, iter(node._prev))]
            visited.add(id(node))
            while stack:
                current, it = stack[-1]
                advanced = False
                for child in it:
                    if id(child) not in visited and child.requires_grad:
                        visited.add(id(child))
                        stack.append((child, iter(child._prev)))
                        advanced = True
                        break
                if not advanced:
                    topo.append(current)
                    stack.pop()

        visit(self)
        # Kernels dispatched from inside backward closures are attributed to
        # the bwd phase on the trace timeline (no-op when tracing is off).
        with phase_scope("bwd"):
            for node in reversed(topo):
                if node._backward is not None and node.grad is not None:
                    node._backward()


def parameter(data, name: str = "") -> Tensor:
    """Create a trainable tensor."""
    return Tensor(data, requires_grad=True, name=name)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._wrap(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]

    def backward(out):
        def fn():
            splits = np.cumsum(sizes)[:-1]
            grads = np.split(out.grad, splits, axis=axis)
            for t, g in zip(tensors, grads):
                if t.requires_grad:
                    t._accumulate(g)

        return fn

    parents = tuple(tensors)
    out = Tensor(data, requires_grad=any(t.requires_grad for t in tensors), _prev=parents)
    if out.requires_grad:
        out._backward = backward(out)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [Tensor._wrap(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(out):
        def fn():
            grads = np.split(out.grad, len(tensors), axis=axis)
            for t, g in zip(tensors, grads):
                if t.requires_grad:
                    t._accumulate(np.squeeze(g, axis=axis))

        return fn

    out = Tensor(data, requires_grad=any(t.requires_grad for t in tensors), _prev=tuple(tensors))
    if out.requires_grad:
        out._backward = backward(out)
    return out
