"""`repro.engine` — the user-facing façade over the unified mechanism registry.

One call::

    import repro
    out = repro.attention(q, k, v, mechanism="dfss_2:4")

or an engine object when the mechanism is reused::

    engine = repro.AttentionEngine("dfss", pattern="2:4", backend="fast")
    out = engine(q, k, v)                      # numpy forward pass
    core = engine.core(seq_len_hint=512)       # trainable autograd core
    engine.describe()                          # name, flags, config
    with engine:                               # scope the backend for a block
        other_code_dispatching_kernels()

Engines are declarative: construction resolves the mechanism through
:mod:`repro.registry` and validates every keyword argument against the
mechanism's typed config dataclass, so a typo fails immediately with a
``TypeError`` instead of deep inside a forward pass.  ``backend=`` scopes the
kernel-registry backend (reusing :func:`repro.core.backend.use_backend`) around
every call the engine makes, and is forwarded into the mechanism config when
the mechanism itself takes a ``backend`` argument (DFSS, Nyströmformer).
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import List, Mapping, Optional

import numpy as np

from repro import registry
from repro.core.backend import use_backend

__all__ = ["AttentionConfig", "AttentionEngine", "attention", "available_mechanisms"]

#: Introspection re-export so ``repro.available_mechanisms()`` is the one
#: enumeration point for every registered mechanism.
available_mechanisms = registry.available_mechanisms


@dataclass(frozen=True)
class AttentionConfig:
    """Declarative engine configuration (``AttentionEngine.from_config``).

    ``options`` holds the mechanism-specific keyword arguments and is
    validated against the mechanism's typed config dataclass at engine
    construction.
    """

    mechanism: str = "dfss_2:4"
    backend: Optional[str] = None
    path: Optional[str] = None
    block_mask: Optional[object] = None
    seq_len_hint: int = 512
    options: Mapping[str, object] = field(default_factory=dict)


class AttentionEngine:
    """Façade constructing and running one attention mechanism.

    Parameters
    ----------
    mechanism:
        Canonical name, alias, or pattern-suffixed shortcut (``dfss_1:2``).
    backend:
        Optional kernel backend scoped around every engine call; also
        forwarded to mechanisms that accept a ``backend=`` config field.
    seq_len_hint:
        Default sequence-length hint used when building trainable cores
        (mechanisms with length-dependent state, e.g. the Synthesizer table).
    **options:
        Mechanism-specific keyword arguments, validated against the
        mechanism's config dataclass.
    """

    def __init__(
        self,
        mechanism: str = "dfss_2:4",
        backend: Optional[str] = None,
        seq_len_hint: int = 512,
        _options: Optional[Mapping[str, object]] = None,
        *,
        path: Optional[str] = None,
        block_mask: Optional[object] = None,
        **options,
    ):
        # _options carries a pre-assembled mechanism-option mapping (used by
        # from_config, whose options may legitimately contain a "backend"
        # config field that would collide with the engine-level parameter)
        merged = {**dict(_options or {}), **options}
        self.spec, self.config = registry.make_config(mechanism, **merged)
        # path= / block_mask= are accepted uniformly by every construction
        # surface and validated through the registry's shared override
        # validator: mechanisms without the config field raise the same
        # TypeError a bad **options key does (an explicit option always wins
        # over the engine-level override)
        self.config = registry.apply_config_overrides(
            self.spec, self.config, {"path": path, "block_mask": block_mask}
        )
        self.backend = backend
        self.seq_len_hint = int(seq_len_hint)
        self._mechanism = None
        self._scopes: List[ExitStack] = []

    # ------------------------------------------------------------ construction
    @classmethod
    def from_config(cls, config: AttentionConfig) -> "AttentionEngine":
        """Build an engine from a declarative :class:`AttentionConfig`."""
        return cls(
            config.mechanism,
            backend=config.backend,
            seq_len_hint=config.seq_len_hint,
            _options=config.options,
            path=config.path,
            block_mask=config.block_mask,
        )

    # -------------------------------------------------------------- properties
    @property
    def name(self) -> str:
        """Canonical mechanism name."""
        return self.spec.name

    @property
    def trainable(self) -> bool:
        return self.spec.trainable

    # ------------------------------------------------------------------ pieces
    def mechanism(self):
        """The forward-only numpy mechanism (constructed lazily, cached)."""
        if self._mechanism is None:
            self._mechanism = self.spec.build_mechanism(self.config)
        return self._mechanism

    def core(
        self,
        seq_len_hint: Optional[int] = None,
        *,
        backend: Optional[str] = None,
        path: Optional[str] = None,
        block_mask: Optional[object] = None,
    ):
        """Build a trainable :class:`~repro.nn.attention_layer.AttentionCore`.

        ``backend=`` / ``path=`` / ``block_mask=`` override the engine-level
        settings for this core only, through the same shared validator as
        engine construction.  ``backend`` is lenient — mechanisms without a
        ``backend`` config field still honour it as a kernel-registry scope on
        the numpy path, so it never raises — while an inapplicable ``path`` or
        ``block_mask`` raises the registry's uniform ``TypeError``.  Raises
        ``ValueError`` for mechanisms without a registered core
        (``spec.trainable`` is ``False``).
        """
        config = registry.apply_config_overrides(
            self.spec,
            self.config,
            {
                "backend": self.backend if backend is None else backend,
                "path": path,
                "block_mask": block_mask,
            },
            lenient=("backend",),
        )
        return self.spec.build_core(
            config, self.seq_len_hint if seq_len_hint is None else int(seq_len_hint)
        )

    # ----------------------------------------------------------------- running
    def _backend_scope(self) -> ExitStack:
        stack = ExitStack()
        if self.backend is not None:
            stack.enter_context(use_backend(self.backend))
        return stack

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Numpy forward pass through the mechanism, under the engine backend."""
        with self._backend_scope():
            return self.mechanism()(q, k, v)

    def attention_mask(self, q: np.ndarray, k: np.ndarray) -> Optional[np.ndarray]:
        """Boolean mask over the dense score matrix, if the mechanism defines one."""
        with self._backend_scope():
            return self.mechanism().attention_mask(q, k)

    def plan(self, n_q: Optional[int] = None, n_k: Optional[int] = None, structure=None):
        """Compiled :class:`~repro.core.plan.AttentionPlan` for this mechanism.

        The plan is the fused sddmm → masked-softmax → spmm executable the
        autograd ops, the serving executor, and the bench runner share; this
        method exposes it for introspection and direct execution.  ``n_q`` /
        ``n_k`` default to ``seq_len_hint``.  Mechanisms that choose their
        structure from the data (Top-K, Routing, …) cannot be planned from
        shapes alone — pass their compressed ``structure=`` explicitly.
        Raises ``ValueError`` for mechanisms with no compressed path.
        """
        from repro.core.padded_csr import PaddedCSRMatrix
        from repro.core.plan import plan_for_nm, plan_for_structure

        if structure is not None:
            return plan_for_structure(
                structure, backend=self.backend, mechanism=self.name
            )
        if not self.spec.compressed:
            raise ValueError(
                f"mechanism {self.name!r} has no compressed execution plan"
            )
        n_q = self.seq_len_hint if n_q is None else int(n_q)
        n_k = n_q if n_k is None else int(n_k)
        pattern = getattr(self.config, "pattern", None)
        if pattern is not None and not self.spec.static_mask:
            return plan_for_nm(pattern, n_q, n_k, backend=self.backend)
        if not self.spec.static_mask:
            raise ValueError(
                f"mechanism {self.name!r} chooses its structure from the data; "
                f"pass the compressed structure= explicitly"
            )
        with self._backend_scope():
            # static masks depend only on the sequence geometry, so a zero
            # feature dimension of one is enough to realise the mask
            mask = self.mechanism().attention_mask(
                np.zeros((n_q, 1), dtype=np.float32),
                np.zeros((n_k, 1), dtype=np.float32),
            )
        if mask is None:
            raise ValueError(
                f"mechanism {self.name!r} produced no attention mask to plan from"
            )
        csr = PaddedCSRMatrix.from_mask(np.asarray(mask, dtype=bool))
        return plan_for_structure(csr, backend=self.backend, mechanism=self.name)

    # ----------------------------------------------------------- introspection
    def describe(self) -> dict:
        """Identity, capability flags, and resolved configuration."""
        return {
            "name": self.spec.name,
            "label": self.spec.label,
            "description": self.spec.description,
            "aliases": list(self.spec.aliases),
            **self.spec.capabilities(),
            "backend": self.backend,
            "seq_len_hint": self.seq_len_hint,
            "config": self.config.describe(),
        }

    # ------------------------------------------------- backend context manager
    def __enter__(self) -> "AttentionEngine":
        """Scope the engine backend over a block (reuses :func:`use_backend`)."""
        self._scopes.append(self._backend_scope())
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._scopes.pop().close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = f", backend={self.backend!r}" if self.backend else ""
        return f"AttentionEngine({self.spec.name!r}{backend})"


def attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mechanism: str = "dfss_2:4",
    backend: Optional[str] = None,
    path: Optional[str] = None,
    block_mask: Optional[object] = None,
    **options,
) -> np.ndarray:
    """One-shot attention through any registered mechanism.

    ``repro.attention(q, k, v)`` is the paper's drop-in replacement; pass
    ``mechanism="full"`` for the dense reference or any name from
    :func:`repro.available_mechanisms` for a baseline.  ``backend=`` /
    ``path=`` / ``block_mask=`` are accepted uniformly with
    :meth:`AttentionEngine.core` and :class:`AttentionConfig`; a knob the
    mechanism does not support raises the registry's uniform ``TypeError``.
    """
    return AttentionEngine(
        mechanism, backend=backend, path=path, block_mask=block_mask, **options
    )(q, k, v)
