"""``dspattn`` compatibility shim — the package name used in Figure 3 of the paper.

The paper's usage example imports a package called ``dspattn`` and swaps three
lines of an attention implementation:

    from dspattn import GEMM, Softmax, SpMM          # (paper, Figure 3)
    nonzeros, metadata = GEMM(query, key)
    attn = Softmax(nonzeros)
    out = SpMM(attn, metadata, value)

This module exposes the same three-step API on top of :mod:`repro.core` so
code written against the paper's snippet runs unchanged.  The compressed
attention matrix travels between the calls as an
:class:`~repro.core.sparse.NMSparseMatrix`; ``metadata`` in the signature is
kept for drop-in compatibility (the object already carries its metadata).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.patterns import default_pattern_for_dtype, resolve_pattern
from repro.core.sddmm import sddmm_nm
from repro.core.softmax import sparse_softmax
from repro.core.sparse import NMSparseMatrix
from repro.core.spmm import spmm


def GEMM(
    query: np.ndarray,
    key: np.ndarray,
    pattern=None,
    dtype: str = "float32",
    scale: Optional[float] = None,
) -> Tuple[NMSparseMatrix, np.ndarray]:
    """Fused ``Q Kᵀ`` + N:M prune, returning ``(nonzeros, metadata)`` as in Figure 3.

    ``nonzeros`` is the compressed score matrix (an
    :class:`~repro.core.sparse.NMSparseMatrix`); ``metadata`` is the packed
    uint16 metadata stream the hardware kernel would write to DRAM.
    """
    sparse_scores = sddmm_nm(query, key, pattern=pattern, dtype=dtype, scale=scale)
    return sparse_scores, sparse_scores.packed_metadata()


def Softmax(nonzeros: NMSparseMatrix) -> NMSparseMatrix:
    """Row softmax over the compressed nonzeros."""
    if not isinstance(nonzeros, NMSparseMatrix):
        raise TypeError("dspattn.Softmax expects the compressed matrix returned by dspattn.GEMM")
    return sparse_softmax(nonzeros)


def SpMM(attn: NMSparseMatrix, metadata: np.ndarray, value: np.ndarray) -> np.ndarray:
    """Sparse attention-weight matrix times dense ``value``.

    ``metadata`` is accepted (and sanity-checked) for signature compatibility
    with the paper's snippet; the compressed matrix already carries it.
    """
    if not isinstance(attn, NMSparseMatrix):
        raise TypeError("dspattn.SpMM expects the compressed matrix returned by dspattn.Softmax")
    if metadata is not None:
        expected = attn.packed_metadata()
        metadata = np.asarray(metadata)
        if metadata.shape != expected.shape:
            raise ValueError(
                f"metadata shape {metadata.shape} does not match the compressed matrix "
                f"(expected {expected.shape})"
            )
    return spmm(attn, value)


class DynamicSparseAttention:
    """Object-style wrapper over the three-call API (one line to construct, one to call).

    A thin veneer over :class:`repro.engine.AttentionEngine` with
    ``mechanism="dfss"`` — the Figure-3 spelling of the same registry entry.
    """

    def __init__(self, pattern=None, dtype: str = "float32"):
        from repro.engine import AttentionEngine

        self.dtype = dtype
        self.pattern = (
            default_pattern_for_dtype(dtype) if pattern is None else resolve_pattern(pattern)
        )
        self._engine = AttentionEngine("dfss", pattern=self.pattern, dtype=dtype)

    def __call__(self, query: np.ndarray, key: np.ndarray, value: np.ndarray) -> np.ndarray:
        return self._engine(query, key, value)
