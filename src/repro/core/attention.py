"""Public attention API: full attention and the DFSS drop-in replacement.

Figure 3 of the paper shows the intended usage — replacing three lines of a
standard attention implementation:

    ``A = softmax(Q @ K.T / sqrt(d)); O = A @ V``

becomes

    ``attn = DfssAttention("2:4", dtype="bfloat16"); O = attn(Q, K, V)``

The functional entry points :func:`full_attention` and :func:`dfss_attention`
operate on arrays with any number of leading batch dimensions, e.g.
``(batch, heads, seq, head_dim)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.blocked_ell import BlockedEllMask
from repro.core.patterns import default_pattern_for_dtype, resolve_pattern
from repro.core.plan import FUSED, plan_for_nm, resolve_pipeline
from repro.core.sddmm import sddmm_dense, sddmm_nm
from repro.core.softmax import dense_softmax, masked_dense_softmax, sparse_softmax
from repro.core.spmm import spmm


def full_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: Optional[float] = None,
    dtype: str = "float32",
    mask: Optional[np.ndarray] = None,
    return_weights: bool = False,
):
    """Full quadratic attention ``softmax(Q Kᵀ / sqrt(d)) V`` (Eq. 1).

    Parameters
    ----------
    q, k, v:
        ``(..., seq, d)`` arrays sharing their leading batch shape.
    scale:
        Score scale; defaults to ``1/sqrt(d)``.
    dtype:
        "float32" or "bfloat16"; controls the emulated tensor-core precision.
    mask:
        Optional boolean mask broadcastable to ``(..., seq_q, seq_k)``;
        ``False`` positions receive zero attention weight.
    return_weights:
        Also return the dense attention-weight matrix.
    """
    scores = sddmm_dense(q, k, scale=scale, dtype=dtype)
    if mask is not None:
        weights = masked_dense_softmax(scores, mask)
    else:
        weights = dense_softmax(scores)
    out = np.matmul(weights, np.asarray(v, dtype=np.float32))
    if return_weights:
        return out, weights
    return out


def dfss_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    pattern=None,
    scale: Optional[float] = None,
    dtype: str = "float32",
    criterion: str = "value",
    block_mask: Optional[BlockedEllMask] = None,
    return_weights: bool = False,
    backend: Optional[str] = None,
    pipeline: Optional[str] = None,
):
    """Dynamic N:M fine-grained structured sparse attention (the paper's method).

    Pipeline: fused SDDMM + N:M prune epilogue -> sparse softmax -> SpMM,
    executed through a compiled :class:`~repro.core.plan.AttentionPlan` by
    default — the plan is built once per (pattern, backend, dtype, geometry)
    and runs the chain in a single pass that reuses the score buffer as the
    probability buffer.

    Parameters mirror :func:`full_attention`; ``pattern`` defaults to the
    hardware pattern for ``dtype`` (1:2 for float32, 2:4 for bfloat16) and
    ``block_mask`` optionally adds the hybrid blocked-ELL coarse sparsity.
    When ``return_weights`` is true the compressed
    :class:`~repro.core.sparse.NMSparseMatrix` of attention weights is returned
    alongside the output.  ``backend`` selects the kernel implementations
    ("reference" or "fast"; default ``$REPRO_BACKEND``, else "fast");
    ``pipeline`` selects the fused plan vs the staged three-kernel oracle
    ("fused" or "staged"; default ``$REPRO_PIPELINE``, else "fused").
    """
    pattern = (
        default_pattern_for_dtype(dtype) if pattern is None else resolve_pattern(pattern)
    )
    if resolve_pipeline(pipeline) == FUSED:
        plan = plan_for_nm(
            pattern, q.shape[-2], k.shape[-2], backend=backend, dtype=dtype
        )
        scores = plan.compute_scores(
            q, k, scale=scale, criterion=criterion, block_mask=block_mask
        )
        weights = plan.compute_probs(scores)
        out = plan.contract(weights, v)
    else:
        scores = sddmm_nm(
            q,
            k,
            pattern=pattern,
            scale=scale,
            dtype=dtype,
            criterion=criterion,
            block_mask=block_mask,
            backend=backend,
        )
        weights = sparse_softmax(scores, backend=backend)
        out = spmm(weights, v, backend=backend)
    if return_weights:
        return out, weights
    return out


@dataclass
class DfssAttention:
    """Drop-in replacement object for a full-attention call site (Figure 3).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.attention import DfssAttention
    >>> attn = DfssAttention(pattern="2:4", dtype="bfloat16")
    >>> q = np.random.randn(2, 4, 64, 32).astype(np.float32)
    >>> out = attn(q, q, q)
    >>> out.shape
    (2, 4, 64, 32)
    """

    pattern: object = None
    dtype: str = "float32"
    criterion: str = "value"
    scale: Optional[float] = None
    block_mask: Optional[BlockedEllMask] = None
    backend: Optional[str] = None
    pipeline: Optional[str] = None

    def __post_init__(self) -> None:
        if self.pattern is None:
            self.pattern = default_pattern_for_dtype(self.dtype)
        else:
            self.pattern = resolve_pattern(self.pattern)

    def __call__(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray, return_weights: bool = False
    ):
        return dfss_attention(
            q,
            k,
            v,
            pattern=self.pattern,
            scale=self.scale,
            dtype=self.dtype,
            criterion=self.criterion,
            block_mask=self.block_mask,
            return_weights=return_weights,
            backend=self.backend,
            pipeline=self.pipeline,
        )

    def approximation_error(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> float:
        """Relative Frobenius error of DFSS output vs full attention on a batch."""
        ref = full_attention(q, k, v, scale=self.scale, dtype=self.dtype)
        approx = self(q, k, v)
        denom = np.linalg.norm(ref)
        if denom == 0:
            return 0.0
        return float(np.linalg.norm(approx - ref) / denom)


def attention_weight_matrices(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    pattern="2:4",
    dtype: str = "float32",
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense attention-weight matrices of full attention and DFSS.

    Used by the Figure-19 style visualisation experiment; returns
    ``(A_full, A_dfss_dense)`` where the DFSS matrix has zeros at pruned
    positions and its rows re-normalised over the survivors (exactly what the
    sparse softmax computes).
    """
    _, full_w = full_attention(q, k, v, dtype=dtype, return_weights=True)
    _, sparse_w = dfss_attention(q, k, v, pattern=pattern, dtype=dtype, return_weights=True)
    return full_w, sparse_w.to_dense(0.0)
