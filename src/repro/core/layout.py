"""The :class:`CompressedLayout` protocol shared by every sparse score layout.

The attention pipeline never cares *which* compressed layout carries the
scores/probabilities — only that the layout can answer four questions:

* what are the stored values (``values``, a ``(..., rows, width)`` array)?
* which dense column does each stored lane address (``column_indices``)?
* how many lanes of each row are real (``row_lengths`` / ``valid_lanes`` —
  layouts with a fixed per-row width, like N:M, have no padding at all)?
* how do the stored values scatter back into a dense tile
  (``scatter_compressed`` / ``to_scattered``)?

Two layouts implement the protocol:

* :class:`repro.core.sparse.NMSparseMatrix` — the hardware N:M layout with a
  constant ``kept = cols // M * N`` lanes per row (the DFSS epilogue output);
* :class:`repro.core.padded_csr.PaddedCSRMatrix` — per-row *variable* nnz
  padded to the widest row, the layout every mask-based mechanism (TopK,
  local/strided, Longformer, BigBird, Reformer, Routing, Sinkhorn) compresses
  its boolean mask into.

The registry kernels (``spmm``, ``spmm_t``, ``sddmm_masked``,
``masked_softmax``) and the analytic attention backward dispatch on this
protocol, so one fused training pipeline serves every layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np


@runtime_checkable
class CompressedLayout(Protocol):
    """Structural protocol of a compressed (row-major, padded) sparse matrix."""

    #: ``(..., rows, width)`` float32 array of stored entries.
    values: np.ndarray
    #: number of columns of the dense matrix this layout compresses.
    dense_cols: int

    @property
    def batch_shape(self) -> Tuple[int, ...]: ...

    @property
    def rows(self) -> int: ...

    @property
    def dense_shape(self) -> Tuple[int, ...]: ...

    def column_indices(self) -> np.ndarray:
        """In-range absolute dense column of every lane (padding lanes clamped).

        Padding lanes are guaranteed to carry a value that contributes nothing
        (exactly zero after softmax), so gather-style kernels may address the
        clamped column without affecting the result.
        """
        ...

    def row_lengths(self) -> np.ndarray:
        """``(..., rows)`` int32 count of *valid* lanes per row."""
        ...

    def valid_lanes(self) -> Optional[np.ndarray]:
        """Boolean ``(..., rows, width)`` lane-validity mask, or ``None``.

        ``None`` means every lane is valid (fixed-width layouts such as N:M);
        scatter/masking fast paths use this to skip the select entirely.
        """
        ...

    def scatter_compressed(self, values: np.ndarray) -> np.ndarray:
        """Scatter compressed ``values`` (sharing this structure) into a dense
        zero-filled ``(..., rows, dense_cols)`` tile.  Padding lanes are
        discarded, never written over a real column."""
        ...

    def gather_dense(self, dense: np.ndarray) -> np.ndarray:
        """Gather every stored lane's entry out of a dense array of
        ``dense_shape`` size; padding lanes read their clamped column (callers
        overwrite them with a sentinel or zero)."""
        ...

    def to_scattered(self, cache: bool = False) -> np.ndarray:
        """Dense scatter of the layout's own values, optionally memoised."""
        ...

    def with_values(self, new_values: np.ndarray) -> "CompressedLayout":
        """Same structure, new values."""
        ...

    def to_dense(self, fill_value: float = 0.0) -> np.ndarray: ...

    def to_mask(self) -> np.ndarray: ...


@dataclass(frozen=True)
class SequenceSegments:
    """Row/key extents of each sequence inside one ragged concatenated batch.

    The bookkeeping companion of
    :meth:`repro.core.padded_csr.PaddedCSRMatrix.concat_ragged`: when per-
    sequence structures are block-diagonally concatenated, this records where
    each sequence's query rows and key columns live in the flat batch, so the
    serving layer can slice per-sequence outputs back out without carrying
    the original structures around.

    ``row_offsets`` and ``key_offsets`` are cumulative, with a trailing total
    (``n_segments + 1`` entries each, starting at 0).
    """

    row_offsets: Tuple[int, ...]
    key_offsets: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.row_offsets) != len(self.key_offsets):
            raise ValueError(
                f"row/key offset lengths differ: {len(self.row_offsets)} != "
                f"{len(self.key_offsets)}"
            )
        if len(self.row_offsets) < 1 or self.row_offsets[0] != 0 or self.key_offsets[0] != 0:
            raise ValueError("offsets must start at 0")

    @classmethod
    def from_lengths(
        cls, row_lengths: Sequence[int], key_lengths: Optional[Sequence[int]] = None
    ) -> "SequenceSegments":
        """Build from per-sequence row counts (and key counts, default equal)."""
        rows = [int(n) for n in row_lengths]
        keys = rows if key_lengths is None else [int(n) for n in key_lengths]
        if len(keys) != len(rows):
            raise ValueError(
                f"row/key length counts differ: {len(rows)} != {len(keys)}"
            )
        row_offsets = (0, *np.cumsum(rows).tolist()) if rows else (0,)
        key_offsets = (0, *np.cumsum(keys).tolist()) if keys else (0,)
        return cls(row_offsets=row_offsets, key_offsets=key_offsets)

    def __len__(self) -> int:
        return len(self.row_offsets) - 1

    @property
    def total_rows(self) -> int:
        return self.row_offsets[-1]

    @property
    def total_keys(self) -> int:
        return self.key_offsets[-1]

    def row_slice(self, i: int) -> slice:
        return slice(self.row_offsets[i], self.row_offsets[i + 1])

    def key_slice(self, i: int) -> slice:
        return slice(self.key_offsets[i], self.key_offsets[i + 1])

    def split_rows(self, array: np.ndarray) -> List[np.ndarray]:
        """Split an array whose leading axis is the concatenated row axis."""
        if array.shape[0] != self.total_rows:
            raise ValueError(
                f"array leading dim {array.shape[0]} != total rows {self.total_rows}"
            )
        return [array[self.row_slice(i)] for i in range(len(self))]


def dense_positions(layout: CompressedLayout) -> np.ndarray:
    """Linear index into the dense weight tensor of every stored lane.

    This is the layout-independent key the seeded attention dropout hashes
    (:func:`repro.utils.seeding.attention_dropout_keep`): a compressed run and
    a dense run derive identical keep decisions for the same (row, column)
    entry.  Padding lanes alias the position of their clamped column, which is
    harmless — their stored value is exactly zero either way.
    """
    cols = layout.column_indices().astype(np.uint64)
    lead = np.arange(
        int(np.prod(cols.shape[:-1], dtype=np.int64)), dtype=np.uint64
    ).reshape(cols.shape[:-1] + (1,))
    return lead * np.uint64(layout.dense_cols) + cols
