"""Compiled plan/execute layer: one fused sddmm → masked-softmax → spmm pass.

The paper's pipeline wins only when the whole chain — score computation,
masked softmax, and the value contraction — runs on the compressed
representation without materialising dense intermediates.  Executing the
chain as three separately-dispatched registry kernels pays the dispatch and
an extra full-size probability tensor between every pair of stages.  This
module compiles the chain once instead:

* :class:`PlanKey` — the cache key: (mechanism, layout, backend, dtype,
  shape-class).  Everything that changes which kernels run or how buffers are
  sized, and nothing that doesn't (batch shape is deliberately absent — one
  plan serves every batch of the same per-slice geometry).
* :class:`AttentionPlan` — the compiled object: every registry lookup is
  resolved at construction, the forward runs sddmm → softmax → spmm in a
  single pass that reuses the score buffer as the probability buffer (the
  intermediate dense score tensor is never materialised — scores live only in
  the compressed value array, which the softmax overwrites in place), and the
  matching fused backward dispatches straight into the resolved
  ``attention_bwd`` kernel.
* :func:`plan_for_nm` / :func:`plan_for_structure` — the cached constructors
  every layer shares: the autograd ops, ``engine.AttentionEngine``, the
  serving executor, and the bench runner.

Backends provide plans through :func:`~repro.core.backend.register_plan_builder`
(the seam a future multicore-tiling backend plugs into): ``fast`` builds
fused plans, ``reference`` builds staged plans that dispatch the ordinary
kernels stage by stage and act as the parity oracle.

Bitwise parity with the staged pipeline is by construction, not by accident:
the fused plan calls the *same* registered kernel functions and the same
softmax core (:func:`~repro.core.softmax.masked_softmax_values`) as the
staged path; it differs only in pre-resolved dispatch and in-place buffer
reuse, both of which are bit-exact transformations.

Pipeline selection mirrors backend selection, in decreasing priority: the
``pipeline=...`` argument on entry points that accept one, an active
:func:`use_pipeline` context, the ``REPRO_PIPELINE`` environment variable,
and the default ``"fused"``.  ``pipeline="staged"`` keeps the pre-plan
three-kernel path runnable as the parity oracle.
"""

from __future__ import annotations

import os
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import ContextManager, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.analysis.sanitize import check_grads, check_output, guard_input
from repro.core.backend import (
    FAST,
    REFERENCE,
    get_kernel,
    get_plan_builder,
    register_plan_builder,
    resolve_backend,
)
from repro.core.patterns import resolve_pattern
from repro.core.plan_cache import PlanCache
from repro.core.softmax import masked_softmax_values
from repro.profile.tracer import (
    current_tracer,
    register_metadata_provider,
    register_session_hook,
)

#: Canonical pipeline names.
FUSED = "fused"
STAGED = "staged"
KNOWN_PIPELINES = (FUSED, STAGED)

#: Pipeline used when neither an argument, a context, nor the environment
#: variable selects one.
DEFAULT_PIPELINE = FUSED

#: Environment variable consulted by :func:`resolve_pipeline`.
PIPELINE_ENV_VAR = "REPRO_PIPELINE"

_PIPELINE_OVERRIDE: Optional[str] = None


def resolve_pipeline(pipeline: Optional[str] = None) -> str:
    """Resolve a pipeline name from argument, context, environment, or default."""
    if pipeline is None:
        pipeline = _PIPELINE_OVERRIDE
    if pipeline is None:
        pipeline = os.environ.get(PIPELINE_ENV_VAR) or DEFAULT_PIPELINE
    name = str(pipeline).strip().lower()
    if name not in KNOWN_PIPELINES:
        raise ValueError(
            f"unknown pipeline {pipeline!r}; expected one of "
            f"{'|'.join(KNOWN_PIPELINES)} (selectable via a pipeline= argument "
            f"or ${PIPELINE_ENV_VAR})"
        )
    return name


@contextmanager
def use_pipeline(pipeline: str) -> Iterator[None]:
    """Context manager selecting the execution pipeline inside the block.

    Explicit ``pipeline=`` arguments still win; the environment variable is
    shadowed for the duration of the block.
    """
    global _PIPELINE_OVERRIDE
    name = str(pipeline).strip().lower()
    if name not in KNOWN_PIPELINES:
        raise ValueError(
            f"unknown pipeline {pipeline!r}; expected one of "
            f"{'|'.join(KNOWN_PIPELINES)}"
        )
    previous = _PIPELINE_OVERRIDE
    _PIPELINE_OVERRIDE = name
    try:
        yield
    finally:
        _PIPELINE_OVERRIDE = previous


@dataclass(frozen=True)
class PlanKey:
    """Cache key of a compiled plan.

    ``mechanism`` names the structure source (``"dfss_1:2"``-style for the
    dynamic N:M epilogue, the mechanism name for mask-based layouts),
    ``layout`` is ``"nm"`` or ``"csr"``, and ``shape_class`` is the
    batch-agnostic per-slice geometry ``(rows, dense_cols, lane_width)`` —
    one plan serves every batch shape over the same geometry.
    """

    mechanism: str
    layout: str
    backend: str
    dtype: str
    shape_class: Tuple[int, int, int]


class AttentionPlan:
    """A compiled sddmm → masked-softmax → spmm chain with fused backward.

    Every registry lookup happens once, at construction.  ``fused=True``
    (the fast builder) runs the softmax in place on the compressed score
    buffer — the probabilities overwrite the scores, so no intermediate
    tensor is ever allocated between the stages; ``fused=False`` (the
    reference builder) dispatches the registered staged kernels and is the
    oracle the parity suite compares against.
    """

    def __init__(self, key: PlanKey, fused: bool) -> None:
        self.key = key
        self.fused = fused
        backend = key.backend
        if key.layout == "nm":
            self._sddmm = get_kernel("sddmm_nm", backend)
            self._pattern = resolve_pattern(key.mechanism.split("_", 1)[1])
        elif key.layout == "csr":
            self._sddmm = get_kernel("sddmm_csr", backend)
            self._pattern = None
        else:
            raise ValueError(f"unknown plan layout {key.layout!r}")
        self._softmax = get_kernel("masked_softmax", backend)
        self._spmm = get_kernel("spmm", backend)
        self._bwd = get_kernel("attention_bwd", backend)

    def _trace_labels(self) -> ContextManager[None]:
        """Label scope stamping this plan's identity onto nested trace events."""
        tracer = current_tracer()
        if tracer is None:
            return nullcontext()
        return tracer.label_scope(
            mechanism=self.key.mechanism,
            layout=self.key.layout,
            shape_class="x".join(str(d) for d in self.key.shape_class),
            pipeline=FUSED if self.fused else STAGED,
        )

    # ------------------------------------------------------------------ fwd
    def compute_scores(
        self,
        q: np.ndarray,
        k: np.ndarray,
        structure=None,
        scale: Optional[float] = None,
        criterion: str = "value",
        block_mask=None,
    ):
        """Stage 1: compressed scores (fused SDDMM + prune, or masked SDDMM)."""
        q = guard_input(q)
        k = guard_input(k)
        with self._trace_labels():
            if self.key.layout == "nm":
                return self._sddmm(
                    q,
                    k,
                    pattern=self._pattern,
                    scale=scale,
                    dtype=self.key.dtype,
                    criterion=criterion,
                    block_mask=block_mask,
                )
            if structure is None:
                raise ValueError(
                    "csr plans need the compressed structure to score into"
                )
            return self._sddmm(q, k, structure, scale=scale)

    def compute_probs(self, scores, owned: bool = True):
        """Stage 2: masked softmax over the stored nonzeros.

        Fused plans normalise *in place*, reusing the score value buffer as
        the probability buffer; pass ``owned=False`` when the caller still
        needs the score values (e.g. precomputed Top-K scores), in which case
        exactly one copy is taken first.  Bitwise-identical to the staged
        softmax kernel either way — same core, different buffer.
        """
        if not self.fused:
            with self._trace_labels():
                return self._softmax(scores)
        buf = scores.values
        if not owned or not buf.flags.writeable or not buf.flags.c_contiguous:
            buf = np.array(buf, dtype=np.float32)
        valid = scores.valid_lanes()
        lengths = None if valid is None else scores.row_lengths()
        tracer = current_tracer()
        # The fused path bypasses registry dispatch (it calls the softmax core
        # directly), so the kernel span the wrapper would have emitted is
        # emitted by hand here.
        span = (
            nullcontext()
            if tracer is None
            else tracer.span(
                "masked_softmax",
                backend=self.key.backend,
                shape="x".join(str(d) for d in buf.shape),
            )
        )
        with self._trace_labels(), span:
            # repro: owns-buffer — fused plan reuses the score buffer it owns (or just copied)
            masked_softmax_values(buf, valid, lengths, out=buf)
        return scores.with_values(buf)

    def contract(
        self,
        probs,
        v: np.ndarray,
        drop_keep: Optional[np.ndarray] = None,
        save_scatter: bool = False,
    ) -> np.ndarray:
        """Stage 3: the value contraction ``P @ V`` (after optional dropout).

        ``save_scatter=True`` caches the scattered dense probability tile on
        the layout so the fused backward reuses it — one metadata walk per
        training step.
        """
        if save_scatter:
            probs.to_scattered(cache=True)
        applied = (
            probs if drop_keep is None else probs.with_values(probs.values * drop_keep)
        )
        with self._trace_labels():
            return check_output(
                self._spmm(applied, guard_input(v)), "attention output"
            )

    # ------------------------------------------------------------------ bwd
    def backward(
        self,
        probs,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        d_out: np.ndarray,
        scale: float,
        drop_keep: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused backward: ``(dQ, dK, dV)`` via the resolved ``attention_bwd``."""
        with self._trace_labels():
            grads = self._bwd(
                probs,
                guard_input(q),
                guard_input(k),
                guard_input(v),
                guard_input(d_out),
                scale,
                drop_keep,
                guard_input(out),
            )
        return check_grads(grads, "attention gradient")

    # ------------------------------------------------------------ end-to-end
    def forward(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        structure=None,
        scale: Optional[float] = None,
        criterion: str = "value",
        block_mask=None,
        return_probs: bool = False,
    ):
        """Single-pass fused forward over the whole chain."""
        scores = self.compute_scores(
            q, k, structure=structure, scale=scale,
            criterion=criterion, block_mask=block_mask,
        )
        probs = self.compute_probs(scores)
        out = self.contract(probs, v)
        if return_probs:
            return out, probs
        return out

    def __call__(self, q, k, v, **kwargs):
        return self.forward(q, k, v, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "fused" if self.fused else "staged"
        return f"AttentionPlan({self.key!r}, {mode})"


@register_plan_builder(FAST)
def _build_fast_plan(key: PlanKey) -> AttentionPlan:
    """Fast backend: fused single-pass plan with in-place softmax."""
    return AttentionPlan(key, fused=True)


@register_plan_builder(REFERENCE)
def _build_reference_plan(key: PlanKey) -> AttentionPlan:
    """Reference backend: staged plan dispatching the loop-oracle kernels."""
    return AttentionPlan(key, fused=False)


# --------------------------------------------------------------------- cache
_PLAN_CACHE_MAX = 64


def build_plan(key: PlanKey) -> AttentionPlan:
    """Compile a plan for ``key`` via its backend's registered builder (uncached)."""
    return get_plan_builder(key.backend)(key)


#: Process-wide LRU of compiled plans (see :class:`repro.core.plan_cache.PlanCache`).
PLAN_CACHE: PlanCache[PlanKey, AttentionPlan] = PlanCache(
    build_plan, max_entries=_PLAN_CACHE_MAX
)


def get_plan(key: PlanKey) -> AttentionPlan:
    """Cached plan lookup: compile once per key, LRU-evict beyond the cap."""
    return PLAN_CACHE.get(key)


def plan_for_nm(
    pattern,
    rows: int,
    dense_cols: int,
    backend: Optional[str] = None,
    dtype: str = "float32",
) -> AttentionPlan:
    """Cached plan for the dynamic N:M pipeline on a given per-slice geometry."""
    pattern = resolve_pattern(pattern)
    key = PlanKey(
        mechanism=f"dfss_{pattern.name}",
        layout="nm",
        backend=resolve_backend(backend),
        dtype=dtype,
        shape_class=(int(rows), int(dense_cols), pattern.kept(int(dense_cols))),
    )
    return get_plan(key)


def plan_for_structure(
    structure,
    backend: Optional[str] = None,
    mechanism: str = "masked",
    dtype: str = "float32",
) -> AttentionPlan:
    """Cached plan for a mask-based compressed structure (padded CSR)."""
    key = PlanKey(
        mechanism=str(mechanism),
        layout="csr",
        backend=resolve_backend(backend),
        dtype=dtype,
        shape_class=(
            int(structure.rows),
            int(structure.dense_cols),
            int(structure.values.shape[-1]),
        ),
    )
    return get_plan(key)


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the hit/miss/eviction counters."""
    PLAN_CACHE.clear()


def plan_cache_stats() -> Dict[str, int]:
    """Snapshot of the plan cache: ``{"size", "hits", "misses", "evictions"}``."""
    return PLAN_CACHE.stats()


# Plans bake resolved kernel functions at construction, so the cache is
# cleared at trace start (kernels re-resolve through the tracing wrapper) and
# at trace stop (no wrapper outlives its session); the closing stats snapshot
# is embedded in the trace metadata before the stop-side clear runs.
register_session_hook(clear_plan_cache)
register_metadata_provider("plan_cache", plan_cache_stats)
