"""Compressed N:M sparse matrix container.

:class:`NMSparseMatrix` is the in-memory equivalent of the (nonzeros,
metadata) pair that the DFSS epilogue writes to DRAM: the surviving values in
row-major order plus, for every value, its offset within its M-group.  It
supports arbitrary leading batch dimensions (batch, heads, ...).

The container also knows how to materialise the hardware metadata stream
(:meth:`NMSparseMatrix.packed_metadata`) and how to account for its own memory
footprint, which feeds the performance model in :mod:`repro.gpusim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.sanitize import freeze_structure, private_copy, sanitize_enabled
from repro.core import metadata as meta
from repro.core import pruning
from repro.core.patterns import NMPattern, resolve_pattern
from repro.core.precision import dtype_bytes, quantize


@dataclass
class NMSparseMatrix:
    """An N:M-pruned matrix stored as compressed values + per-group indices.

    Attributes
    ----------
    values:
        ``(..., rows, kept)`` float32 array of surviving entries, where
        ``kept = cols // M * N``.
    indices:
        ``(..., rows, kept)`` int8 array giving each surviving entry's offset
        within its M-group (the logical content of the hardware metadata).
    pattern:
        The :class:`~repro.core.patterns.NMPattern` used for pruning.
    dense_cols:
        Number of columns of the original dense matrix.
    dtype:
        Logical element dtype ("float32" or "bfloat16"); determines storage
        bytes and the default hardware pattern.
    """

    values: np.ndarray
    indices: np.ndarray
    pattern: NMPattern
    dense_cols: int
    dtype: str = "float32"

    def __post_init__(self) -> None:
        self.pattern = resolve_pattern(self.pattern)
        self.values = np.asarray(self.values, dtype=np.float32)
        self.indices = np.asarray(self.indices, dtype=np.int8)
        if self.values.shape != self.indices.shape:
            raise ValueError(
                f"values shape {self.values.shape} != indices shape {self.indices.shape}"
            )
        expected_kept = self.pattern.kept(self.dense_cols)
        if self.values.shape[-1] != expected_kept:
            raise ValueError(
                f"compressed width {self.values.shape[-1]} does not match "
                f"kept({self.dense_cols}) = {expected_kept} for pattern {self.pattern.name}"
            )
        if np.any(self.indices < 0) or np.any(self.indices >= self.pattern.m):
            raise ValueError("indices must lie in [0, M)")
        if sanitize_enabled():
            # write-once guard: the metadata stream is immutable by convention
            self.indices = freeze_structure(private_copy(self.indices, np.int8))

    # ------------------------------------------------------------------ shape
    @property
    def batch_shape(self) -> Tuple[int, ...]:
        return self.values.shape[:-2]

    @property
    def rows(self) -> int:
        return self.values.shape[-2]

    @property
    def kept_cols(self) -> int:
        return self.values.shape[-1]

    @property
    def dense_shape(self) -> Tuple[int, ...]:
        return self.batch_shape + (self.rows, self.dense_cols)

    @property
    def density(self) -> float:
        return self.pattern.density

    # ------------------------------------------------------------ conversion
    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        pattern,
        criterion: str = "value",
        dtype: str = "float32",
    ) -> "NMSparseMatrix":
        """Prune a dense matrix to N:M sparsity and compress it."""
        pattern = resolve_pattern(pattern)
        dense = quantize(dense, dtype)
        values, indices = pruning.nm_compress(dense, pattern, criterion)
        return cls(
            values=values,
            indices=indices,
            pattern=pattern,
            dense_cols=dense.shape[-1],
            dtype=dtype,
        )

    def to_dense(self, fill_value: float = 0.0) -> np.ndarray:
        """Materialise the dense matrix with pruned entries set to ``fill_value``."""
        return pruning.nm_decompress(
            self.values, self.indices, self.pattern, self.dense_cols, fill_value
        )

    def to_mask(self) -> np.ndarray:
        """Boolean dense mask of surviving positions."""
        ones = NMSparseMatrix(
            values=np.ones_like(self.values),
            indices=self.indices,
            pattern=self.pattern,
            dense_cols=self.dense_cols,
            dtype=self.dtype,
        )
        return ones.to_dense(0.0).astype(bool)

    def column_indices(self) -> np.ndarray:
        """Absolute dense-column index of every stored value.

        The expanded index array is cached on first use (the structure is
        immutable by convention) — the forward SpMM and every backward-pass
        kernel walk the same metadata, so the expansion happens once.
        """
        cached = self.__dict__.get("_column_cache")
        if cached is None or cached.shape != self.indices.shape:
            cached = pruning.global_column_indices(
                self.indices, self.pattern, self.dense_cols
            )
            self.__dict__["_column_cache"] = freeze_structure(cached)
        return cached

    def row_lengths(self) -> np.ndarray:
        """Valid lane count per row — constant ``kept`` for the N:M layout."""
        return np.full(
            self.batch_shape + (self.rows,), self.kept_cols, dtype=np.int32
        )

    def valid_lanes(self):
        """Lane-validity mask; ``None`` because every N:M lane is valid."""
        return None

    def gather_dense(self, dense: np.ndarray) -> np.ndarray:
        """Gather every stored lane's entry out of a dense ``dense_shape`` array."""
        dense = np.asarray(dense, dtype=np.float32)
        return np.take_along_axis(
            dense.reshape(self.dense_shape), self.column_indices(), axis=-1
        )

    def scatter_compressed(self, values: np.ndarray) -> np.ndarray:
        """Scatter compressed ``values`` (sharing this structure) into a dense
        zero-filled tile — the CompressedLayout scatter primitive."""
        values = np.asarray(values, dtype=np.float32)
        if values.shape != self.values.shape:
            raise ValueError(
                f"compressed values shape {values.shape} != {self.values.shape}"
            )
        dense = np.zeros(values.shape[:-1] + (self.dense_cols,), dtype=np.float32)
        np.put_along_axis(dense, self.column_indices(), values, axis=-1)
        return dense

    def to_scattered(self, cache: bool = False) -> np.ndarray:
        """Dense zero-filled scatter of the stored values.

        This is the CPU stand-in for the sparse tensor core's metadata walk:
        the ``fast`` kernels scatter the compressed nonzeros into a dense tile
        and hand the contraction to BLAS.  With ``cache=True`` the tile is
        memoised against the current values array, letting a forward SpMM and
        the backward-pass kernels of one training step share a single walk;
        an existing memo is always reused.  The returned array must be
        treated as read-only.
        """
        cached = self.__dict__.get("_scatter_cache")
        if cached is not None and cached[0] is self.values:
            return cached[1]
        dense = self.scatter_compressed(self.values)
        if cache:
            self.__dict__["_scatter_cache"] = (self.values, freeze_structure(dense))
        return dense

    def with_values(self, new_values: np.ndarray) -> "NMSparseMatrix":
        """Return a new matrix with the same sparsity structure but new values."""
        new_values = np.asarray(new_values, dtype=np.float32)
        if new_values.shape != self.values.shape:
            raise ValueError(
                f"replacement values shape {new_values.shape} != {self.values.shape}"
            )
        out = NMSparseMatrix(
            values=new_values,
            indices=self.indices.copy(),
            pattern=self.pattern,
            dense_cols=self.dense_cols,
            dtype=self.dtype,
        )
        cached = self.__dict__.get("_column_cache")
        if cached is not None:
            out.__dict__["_column_cache"] = cached
        return out

    # -------------------------------------------------------------- metadata
    def group_nibbles(self) -> np.ndarray:
        """Per-group 4-bit metadata codes, shape ``(..., rows, groups)``."""
        groups = self.pattern.groups(self.dense_cols)
        kept_idx = self.indices.reshape(
            self.indices.shape[:-1] + (groups, self.pattern.n)
        )
        return meta.encode_group_nibbles(kept_idx, self.pattern)

    def packed_metadata(self, reorder: bool = True) -> np.ndarray:
        """Hardware metadata stream (uint16 blocks) for a 2-D (or batched) matrix.

        Rows are padded to a multiple of 32 and groups to a multiple of 8 with
        the identity pattern (keep the first N entries) so every matrix can be
        packed; the padding convention matches zero-padding the dense matrix.
        """
        nib = self.group_nibbles()
        flat = nib.reshape(-1, nib.shape[-1])
        rows, groups = flat.shape
        pad_rows = (-rows) % meta.TILE_ROWS
        pad_groups = (-groups) % 8
        if pad_rows or pad_groups:
            if self.pattern.n == 1:
                pad_nibble = 0x4
            else:
                pad_nibble = 0x4  # keep indices (0, 1)
            flat = np.pad(
                flat, ((0, pad_rows), (0, pad_groups)), constant_values=pad_nibble
            )
        packed = meta.pack_metadata(flat, reorder=reorder)
        return packed

    # ------------------------------------------------------------------ size
    def nonzeros_nbytes(self) -> int:
        """Bytes occupied by the compressed nonzero values."""
        return int(np.prod(self.values.shape)) * dtype_bytes(self.dtype)

    def metadata_nbytes(self) -> int:
        """Bytes occupied by the metadata stream."""
        batch = int(np.prod(self.batch_shape)) if self.batch_shape else 1
        return batch * meta.metadata_nbytes(self.rows, self.dense_cols, self.pattern)

    def nbytes(self) -> int:
        """Total compressed footprint (nonzeros + metadata)."""
        return self.nonzeros_nbytes() + self.metadata_nbytes()

    def dense_nbytes(self) -> int:
        """Footprint the dense matrix would have occupied."""
        batch = int(np.prod(self.batch_shape)) if self.batch_shape else 1
        return batch * self.rows * self.dense_cols * dtype_bytes(self.dtype)

    def compression_ratio(self) -> float:
        """Dense bytes / compressed bytes (≈1.78x for 2:4 bf16, ≈1.88x for 1:2 fp32)."""
        return self.dense_nbytes() / self.nbytes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NMSparseMatrix(pattern={self.pattern.name}, dtype={self.dtype}, "
            f"dense_shape={self.dense_shape}, kept_cols={self.kept_cols})"
        )
