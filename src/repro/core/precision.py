"""Reduced-precision emulation (bfloat16 / tensorfloat-32) on top of float32.

The DFSS kernels behave differently per data type: float32 inputs use the 1:2
pattern (and are internally converted to tensorfloat-32 before the tensor-core
multiply), while bfloat16 inputs use 2:4.  NumPy has no native bfloat16, so we
emulate the value grid by rounding a float32 array to the nearest representable
bfloat16 / tf32 value.  The emulation is exact for the value set (same exponent
range as float32, truncated mantissa), which is all the algorithm depends on.
"""

from __future__ import annotations

import numpy as np

#: Supported logical data types for the attention kernels.
SUPPORTED_DTYPES = ("float32", "bfloat16", "tfloat32", "float16")

#: Bytes occupied per element in device memory for each logical dtype.
DTYPE_BYTES = {
    "float32": 4,
    "tfloat32": 4,  # tf32 is stored as 32-bit, only the multiply is truncated
    "bfloat16": 2,
    "float16": 2,
}


def _round_mantissa(x: np.ndarray, kept_mantissa_bits: int) -> np.ndarray:
    """Round float32 values to ``kept_mantissa_bits`` mantissa bits (ties to even-ish).

    Implemented via integer bit manipulation with round-to-nearest on the
    dropped bits, which matches hardware conversion behaviour closely enough
    for algorithm-level experiments.
    """
    x = np.asarray(x, dtype=np.float32)
    drop = 23 - kept_mantissa_bits
    if drop <= 0:
        return x.copy()
    bits = x.view(np.uint32)
    # round-to-nearest: add half of the dropped ULP before truncating
    half = np.uint32(1 << (drop - 1))
    rounded = (bits + half) & np.uint32(~((1 << drop) - 1) & 0xFFFFFFFF)
    out = rounded.view(np.float32).copy()
    # preserve NaN/Inf exactly
    special = ~np.isfinite(x)
    if np.any(special):
        out[special] = x[special]
    return out


def to_bfloat16(x: np.ndarray) -> np.ndarray:
    """Emulate float32 -> bfloat16 -> float32 round-trip (8-bit mantissa -> 7 bits)."""
    return _round_mantissa(x, 7)


def to_tfloat32(x: np.ndarray) -> np.ndarray:
    """Emulate the tensorfloat-32 mantissa truncation used by Ampere tensor cores."""
    return _round_mantissa(x, 10)


def to_float16(x: np.ndarray) -> np.ndarray:
    """Round-trip through IEEE float16 (native in NumPy)."""
    return np.asarray(x, dtype=np.float32).astype(np.float16).astype(np.float32)


_CASTS = {
    "float32": lambda x: np.asarray(x, dtype=np.float32).copy(),
    "tfloat32": to_tfloat32,
    "bfloat16": to_bfloat16,
    "float16": to_float16,
}


def quantize(x: np.ndarray, dtype: str) -> np.ndarray:
    """Snap ``x`` onto the value grid of ``dtype`` (result stored as float32)."""
    if dtype not in _CASTS:
        raise ValueError(f"unsupported dtype {dtype!r}; expected one of {SUPPORTED_DTYPES}")
    return _CASTS[dtype](x)


def dtype_bytes(dtype: str) -> int:
    """Storage bytes per element for a logical dtype."""
    if dtype not in DTYPE_BYTES:
        raise ValueError(f"unsupported dtype {dtype!r}; expected one of {SUPPORTED_DTYPES}")
    return DTYPE_BYTES[dtype]


def simulate_tensor_core_matmul(a: np.ndarray, b: np.ndarray, dtype: str = "float32") -> np.ndarray:
    """Matrix multiply with operand precision matching the Ampere tensor core.

    float32 operands are truncated to tensorfloat-32 before the multiply
    (Appendix A.1.2: "float data will be converted to tensorfloat-32 before
    wmma"); bfloat16 operands are rounded to bfloat16.  Accumulation is always
    performed in float32, as on the hardware.
    """
    if dtype in ("float32", "tfloat32"):
        a_q, b_q = to_tfloat32(a), to_tfloat32(b)
    elif dtype == "bfloat16":
        a_q, b_q = to_bfloat16(a), to_bfloat16(b)
    elif dtype == "float16":
        a_q, b_q = to_float16(a), to_float16(b)
    else:
        raise ValueError(f"unsupported dtype {dtype!r}")
    return np.matmul(a_q.astype(np.float32), b_q.astype(np.float32))
