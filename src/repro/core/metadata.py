"""Sparse-tensor-core metadata encoding (Appendix A.1.1, Figure 6).

The A100 sparse tensor core consumes the pruned matrix as two buffers:

* **nonzeros** — the surviving values, ``N/M`` of the dense width, row-major;
* **metadata** — 4 bits per 2:4 (or 1:2) group recording *which* entries
  survived, packed 4-groups-to-a-16-bit-block, with the rows of each
  32-row tile interleaved (Eq. 9), the 2x2 sub-blocks swapped along the
  sub-diagonal, and the result written column-major with a 4-byte stride.

This module reproduces that encoding bit-for-bit in NumPy so that the
compressed representation produced by :func:`repro.core.sddmm.sddmm_nm`
is byte-compatible with what CUTLASS-style SpMM kernels expect, and so the
layout transformations can be property-tested (the packing is a bijection).
"""

from __future__ import annotations

import numpy as np

from repro.core.patterns import PATTERN_1_2, PATTERN_2_4, resolve_pattern

#: Metadata nibble for each ordered pair of kept 2-byte slots in a group of 4
#: (Figure 6(b)): code = first_index | (second_index << 2).
PAIR_TO_NIBBLE = {
    (0, 1): 0x4,
    (0, 2): 0x8,
    (0, 3): 0xC,
    (1, 2): 0x9,
    (1, 3): 0xD,
    (2, 3): 0xE,
}

NIBBLE_TO_PAIR = {v: k for k, v in PAIR_TO_NIBBLE.items()}

#: With float32 data each value occupies two 2-byte slots, so only the
#: "keep slots (0,1)" and "keep slots (2,3)" patterns are legal (0x4 and 0xE).
FLOAT32_LEGAL_NIBBLES = (0x4, 0xE)

#: Basic tile pruned by the epilogue: 32 rows x 64 bytes (32x32 bf16, 32x16 fp32).
TILE_ROWS = 32
TILE_BYTES = 64


def encode_group_nibbles(kept_indices: np.ndarray, pattern) -> np.ndarray:
    """Encode per-group kept indices as 4-bit metadata nibbles.

    Parameters
    ----------
    kept_indices:
        Integer array of shape ``(..., groups, N)`` with ascending per-group
        offsets (as produced by :func:`repro.core.pruning.nm_group_topn_indices`).
    pattern:
        1:2 or 2:4.  For 1:2 the group offsets index 32-bit values, which are
        mapped onto the pairs of 2-byte slots ``(0,1)`` / ``(2,3)`` used by the
        hardware.

    Returns
    -------
    ``uint8`` array of shape ``(..., groups)`` holding one nibble per group.
    """
    pattern = resolve_pattern(pattern)
    kept_indices = np.asarray(kept_indices)
    if pattern == PATTERN_2_4:
        if kept_indices.shape[-1] != 2:
            raise ValueError("2:4 metadata expects two kept indices per group")
        first = kept_indices[..., 0].astype(np.uint8)
        second = kept_indices[..., 1].astype(np.uint8)
        if np.any(first >= second):
            raise ValueError("kept indices must be strictly ascending within each group")
        if np.any(second > 3):
            raise ValueError("2:4 kept indices must lie in [0, 4)")
        return (first | (second << 2)).astype(np.uint8)
    if pattern == PATTERN_1_2:
        if kept_indices.shape[-1] != 1:
            raise ValueError("1:2 metadata expects one kept index per group")
        idx = kept_indices[..., 0].astype(np.uint8)
        if np.any(idx > 1):
            raise ValueError("1:2 kept indices must lie in {0, 1}")
        # index 0 keeps 2-byte slots (0,1) -> 0x4; index 1 keeps (2,3) -> 0xE
        return np.where(idx == 0, np.uint8(0x4), np.uint8(0xE)).astype(np.uint8)
    raise ValueError(
        f"hardware metadata encoding is defined for 1:2 and 2:4 only, got {pattern.name}"
    )


def decode_group_nibbles(nibbles: np.ndarray, pattern) -> np.ndarray:
    """Inverse of :func:`encode_group_nibbles`; returns kept indices ``(..., groups, N)``."""
    pattern = resolve_pattern(pattern)
    nibbles = np.asarray(nibbles).astype(np.uint8)
    if pattern == PATTERN_2_4:
        first = (nibbles & 0x3).astype(np.int8)
        second = ((nibbles >> 2) & 0x3).astype(np.int8)
        if np.any(first >= second):
            raise ValueError("invalid 2:4 metadata nibble encountered")
        return np.stack([first, second], axis=-1)
    if pattern == PATTERN_1_2:
        legal = np.isin(nibbles, FLOAT32_LEGAL_NIBBLES)
        if not np.all(legal):
            raise ValueError("invalid 1:2 metadata nibble encountered (only 0x4/0xE legal)")
        idx = np.where(nibbles == 0x4, 0, 1).astype(np.int8)
        return idx[..., None]
    raise ValueError(f"unsupported pattern {pattern.name}")


def pack_nibbles_to_blocks(nibbles: np.ndarray) -> np.ndarray:
    """Concatenate consecutive groups of four nibbles into 16-bit metadata blocks.

    ``nibbles`` has shape ``(rows, groups)`` with ``groups`` divisible by 4;
    the result has shape ``(rows, groups // 4)`` and dtype ``uint16``.  Nibble
    ``k`` within a block occupies bits ``[4k, 4k+4)`` (thread ``4t+k`` places
    its nibble at ``[k*4 : k*4+3]`` in the kernel).
    """
    nibbles = np.asarray(nibbles, dtype=np.uint16)
    if nibbles.ndim != 2:
        raise ValueError("expected a 2-D (rows, groups) nibble array")
    rows, groups = nibbles.shape
    if groups % 4 != 0:
        raise ValueError(f"number of groups ({groups}) must be divisible by 4")
    quads = nibbles.reshape(rows, groups // 4, 4)
    shifts = np.array([0, 4, 8, 12], dtype=np.uint16)
    return np.bitwise_or.reduce(quads << shifts, axis=-1).astype(np.uint16)


def unpack_blocks_to_nibbles(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_nibbles_to_blocks`."""
    blocks = np.asarray(blocks, dtype=np.uint16)
    if blocks.ndim != 2:
        raise ValueError("expected a 2-D (rows, blocks) array")
    shifts = np.array([0, 4, 8, 12], dtype=np.uint16)
    nibbles = (blocks[..., None] >> shifts) & 0xF
    return nibbles.reshape(blocks.shape[0], blocks.shape[1] * 4).astype(np.uint8)


def interleave_rows(row: np.ndarray) -> np.ndarray:
    """Destination row for each source row under Eq. (9) of the paper.

    ``dst_row = (row // 32) * 32 + (row % 8) * 4 + (row % 32) // 8``.
    """
    row = np.asarray(row, dtype=np.int64)
    return (row // 32) * 32 + (row % 8) * 4 + (row % 32) // 8


def _swap_subdiagonal(blocks: np.ndarray) -> np.ndarray:
    """Swap the upper-right and lower-left blocks of every 2x2 grid (step 2)."""
    rows, cols = blocks.shape
    if rows % 2 != 0 or cols % 2 != 0:
        raise ValueError("sub-diagonal swap requires even block-grid dimensions")
    out = blocks.copy()
    # views of the 2x2 grids: (r, c) with r%2==0 upper, c%2==1 right etc.
    upper_right = out[0::2, 1::2].copy()
    lower_left = out[1::2, 0::2].copy()
    out[0::2, 1::2] = lower_left
    out[1::2, 0::2] = upper_right
    return out


def reorder_metadata_tile(blocks: np.ndarray) -> np.ndarray:
    """Apply steps 1-2 of Figure 6 to one 32-row tile of 16-bit metadata blocks.

    ``blocks`` is the naturally-ordered ``(32, B)`` block matrix from
    :func:`pack_nibbles_to_blocks`; the result is the reordered ``(32, B)``
    matrix whose column-major bytes are what the kernel writes to DRAM.
    """
    blocks = np.asarray(blocks, dtype=np.uint16)
    rows, _ = blocks.shape
    if rows != TILE_ROWS:
        raise ValueError(f"a metadata tile has {TILE_ROWS} rows, got {rows}")
    dst = interleave_rows(np.arange(rows))
    interleaved = np.empty_like(blocks)
    interleaved[dst] = blocks
    return _swap_subdiagonal(interleaved)


def restore_metadata_tile(reordered: np.ndarray) -> np.ndarray:
    """Inverse of :func:`reorder_metadata_tile`."""
    reordered = np.asarray(reordered, dtype=np.uint16)
    rows, _ = reordered.shape
    if rows != TILE_ROWS:
        raise ValueError(f"a metadata tile has {TILE_ROWS} rows, got {rows}")
    unswapped = _swap_subdiagonal(reordered)
    dst = interleave_rows(np.arange(rows))
    return unswapped[dst]


def pack_metadata(nibbles: np.ndarray, reorder: bool = True) -> np.ndarray:
    """Pack per-group nibbles for a whole matrix into the DRAM metadata layout.

    Parameters
    ----------
    nibbles:
        ``(rows, groups)`` nibble matrix; ``rows`` must be a multiple of 32 and
        ``groups`` a multiple of 4 (pad the attention matrix accordingly).
    reorder:
        Apply the tile interleaving / sub-diagonal swap.  Disabling it gives
        the "naive" layout, useful for ablation of the encoding cost.

    Returns
    -------
    ``uint16`` array of shape ``(rows, groups // 4)`` in the (possibly
    reordered) block layout.  Writing it column-major reproduces the byte
    stream of step 3 in Figure 6.
    """
    blocks = pack_nibbles_to_blocks(nibbles)
    if not reorder:
        return blocks
    rows = blocks.shape[0]
    if rows % TILE_ROWS != 0:
        raise ValueError(f"rows ({rows}) must be a multiple of {TILE_ROWS} to reorder")
    if blocks.shape[1] % 2 != 0:
        raise ValueError(
            "the reordered layout needs an even number of 16-bit metadata blocks "
            f"per row (got {blocks.shape[1]}); pad the groups to a multiple of 8"
        )
    out = np.empty_like(blocks)
    for start in range(0, rows, TILE_ROWS):
        out[start : start + TILE_ROWS] = reorder_metadata_tile(
            blocks[start : start + TILE_ROWS]
        )
    return out


def unpack_metadata(blocks: np.ndarray, reordered: bool = True) -> np.ndarray:
    """Inverse of :func:`pack_metadata`; returns the ``(rows, groups)`` nibble matrix."""
    blocks = np.asarray(blocks, dtype=np.uint16)
    if reordered:
        rows = blocks.shape[0]
        if rows % TILE_ROWS != 0:
            raise ValueError(f"rows ({rows}) must be a multiple of {TILE_ROWS}")
        restored = np.empty_like(blocks)
        for start in range(0, rows, TILE_ROWS):
            restored[start : start + TILE_ROWS] = restore_metadata_tile(
                blocks[start : start + TILE_ROWS]
            )
        blocks = restored
    return unpack_blocks_to_nibbles(blocks)


def metadata_nbytes(rows: int, cols: int, pattern) -> int:
    """Bytes of metadata for a ``rows x cols`` matrix under ``pattern``."""
    pattern = resolve_pattern(pattern)
    groups = pattern.groups(cols)
    return rows * groups * pattern.metadata_bits_per_group // 8
