"""SpMM: multiply an N:M-compressed attention-weight matrix with dense V.

On the A100 this is the ``mma.sp`` sparse-tensor-core instruction consuming
the (nonzeros, metadata) pair produced by the SDDMM epilogue.  Here the same
contraction is expressed as a vectorised gather-and-matmul in NumPy; the
performance benefit of the sparse tensor core is carried by the device model
in :mod:`repro.gpusim`, while this module provides the exact numerics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.sparse import NMSparseMatrix
from repro.utils.shapes import as_batched_3d, restore_batch_shape


def spmm(weights: NMSparseMatrix, v: np.ndarray) -> np.ndarray:
    """Compute ``A_sparse @ V`` where ``A_sparse`` is N:M compressed.

    Parameters
    ----------
    weights:
        Compressed attention-weight matrix of dense shape ``(..., n_q, n_k)``.
    v:
        Dense value matrix of shape ``(..., n_k, d_v)`` with a matching batch
        shape.

    Returns
    -------
    Dense ``(..., n_q, d_v)`` output.
    """
    v = np.asarray(v, dtype=np.float32)
    if v.shape[:-2] != weights.batch_shape:
        raise ValueError(
            f"V batch shape {v.shape[:-2]} != sparse batch shape {weights.batch_shape}"
        )
    if v.shape[-2] != weights.dense_cols:
        raise ValueError(
            f"V rows ({v.shape[-2]}) must equal the dense column count "
            f"({weights.dense_cols}) of the sparse matrix"
        )

    vals3, batch_shape = as_batched_3d(weights.values)
    cols = weights.column_indices()
    cols3, _ = as_batched_3d(cols)
    v3, _ = as_batched_3d(v)

    batch, n_q, kept = vals3.shape
    d_v = v3.shape[-1]
    out = np.empty((batch, n_q, d_v), dtype=np.float32)
    for b in range(batch):
        # gather the rows of V addressed by the metadata: (n_q, kept, d_v)
        gathered = v3[b][cols3[b]]
        out[b] = np.einsum("qk,qkd->qd", vals3[b], gathered, optimize=True)
    return restore_batch_shape(out, batch_shape)


def spmm_dense_reference(weights: NMSparseMatrix, v: np.ndarray) -> np.ndarray:
    """Reference implementation: densify the sparse matrix and matmul.

    Used in tests to pin the semantics of :func:`spmm`.
    """
    dense = weights.to_dense(0.0)
    return np.matmul(dense, np.asarray(v, dtype=np.float32))


def spmm_row_blocked(
    weights: NMSparseMatrix, v: np.ndarray, row_block: int = 128
) -> np.ndarray:
    """Row-blocked SpMM that bounds the size of the gathered V slices.

    Matches the thread-block tiling of the CUTLASS SpMM kernel; useful when
    ``n_q * kept * d_v`` would not fit in memory as a single gathered tensor.
    """
    v = np.asarray(v, dtype=np.float32)
    vals3, batch_shape = as_batched_3d(weights.values)
    cols3, _ = as_batched_3d(weights.column_indices())
    v3, _ = as_batched_3d(v)
    batch, n_q, _ = vals3.shape
    d_v = v3.shape[-1]
    out = np.empty((batch, n_q, d_v), dtype=np.float32)
    for b in range(batch):
        for r0 in range(0, n_q, row_block):
            r1 = min(r0 + row_block, n_q)
            gathered = v3[b][cols3[b, r0:r1]]
            out[b, r0:r1] = np.einsum(
                "qk,qkd->qd", vals3[b, r0:r1], gathered, optimize=True
            )
    return restore_batch_shape(out, batch_shape)
