"""SpMM: multiply a compressed attention-weight matrix with dense V.

On the A100 this is the ``mma.sp`` sparse-tensor-core instruction consuming
the (nonzeros, metadata) pair produced by the SDDMM epilogue.  Every kernel
in this module dispatches on the :class:`~repro.core.layout.CompressedLayout`
protocol, so the same registry entries serve the N:M layout
(:class:`~repro.core.sparse.NMSparseMatrix`) and the per-row variable-nnz
padded-CSR layout (:class:`~repro.core.padded_csr.PaddedCSRMatrix`) — padding
lanes carry exactly-zero probabilities and clamped in-range columns, so the
gather formulations contribute nothing there and the scatter formulations
redirect them to a trash column.  Two backends carry the same contraction:

* ``reference`` — a per-slice Python loop that gathers the addressed rows of
  V and contracts them with an einsum, mirroring how each thread block walks
  its metadata;
* ``fast`` — a single batched pass that scatters the compressed nonzeros into
  a zeroed dense tile and hands the contraction to BLAS, the CPU stand-in for
  the sparse tensor core.  The scatter touches only the ``N/M`` stored
  entries, and the performance benefit of skipping the pruned half on real
  hardware is carried by the device model in :mod:`repro.gpusim`.

The fused ``softmax_spmm`` kernel additionally folds the sparse softmax into
the SpMM: the value contraction runs on the unnormalised exponentials and the
row denominators are divided out of the (much smaller) output, so the
normalised probability matrix is never materialised.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.backend import FAST, REFERENCE, get_kernel, register_kernel
from repro.core.layout import CompressedLayout
from repro.core.softmax import masked_exp_terms
from repro.utils.shapes import as_batched_3d, restore_batch_shape


def _check_operands(weights: CompressedLayout, v: np.ndarray) -> np.ndarray:
    """Validate the sparse/dense operand pair and return V as float32."""
    v = np.asarray(v, dtype=np.float32)
    if v.shape[:-2] != weights.batch_shape:
        raise ValueError(
            f"V batch shape {v.shape[:-2]} != sparse batch shape {weights.batch_shape}"
        )
    if v.shape[-2] != weights.dense_cols:
        raise ValueError(
            f"V rows ({v.shape[-2]}) must equal the dense column count "
            f"({weights.dense_cols}) of the sparse matrix"
        )
    return v


def spmm(weights: CompressedLayout, v: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
    """Compute ``A_sparse @ V`` for any compressed-layout ``A_sparse``.

    Parameters
    ----------
    weights:
        Compressed attention-weight matrix of dense shape ``(..., n_q, n_k)``.
    v:
        Dense value matrix of shape ``(..., n_k, d_v)`` with a matching batch
        shape.
    backend:
        Kernel backend ("reference" or "fast"); defaults to the value of
        ``$REPRO_BACKEND``, else "fast".

    Returns
    -------
    Dense ``(..., n_q, d_v)`` output.
    """
    return get_kernel("spmm", backend)(weights, v)


@register_kernel("spmm", REFERENCE)
def _spmm_reference(weights: CompressedLayout, v: np.ndarray) -> np.ndarray:
    """Per-slice gather + einsum, one Python iteration per batch/head slice."""
    v = _check_operands(weights, v)
    vals3, batch_shape = as_batched_3d(weights.values)
    cols3, _ = as_batched_3d(weights.column_indices())
    v3, _ = as_batched_3d(v)

    batch, n_q, _ = vals3.shape
    d_v = v3.shape[-1]
    out = np.empty((batch, n_q, d_v), dtype=np.float32)
    for b in range(batch):
        # gather the rows of V addressed by the metadata: (n_q, kept, d_v)
        gathered = v3[b][cols3[b]]
        out[b] = np.einsum("qk,qkd->qd", vals3[b], gathered, optimize=True)
    return restore_batch_shape(out, batch_shape)


def _scatter_matmul(values: np.ndarray, structure: CompressedLayout, v3: np.ndarray) -> np.ndarray:
    """Scatter compressed ``values`` into a dense tile and contract with BLAS.

    ``values`` shares the sparsity ``structure`` (column metadata and dense
    width); ``v3`` is the already-flattened ``(B, n_k, d_v)`` value matrix.
    When ``values`` is the structure's own value array the cached scatter is
    reused (one metadata walk per (values, structure) pair).
    """
    if values is structure.values:
        dense, _ = as_batched_3d(structure.to_scattered())
    else:
        # the layout owns the scatter: N:M writes every lane, padded CSR
        # redirects padding lanes to its trash column
        dense, _ = as_batched_3d(structure.scatter_compressed(values))
    return np.matmul(dense, v3)


@register_kernel("spmm", FAST)
def _spmm_fast(weights: CompressedLayout, v: np.ndarray) -> np.ndarray:
    """Batched scatter + BLAS contraction, no Python-level loops."""
    v = _check_operands(weights, v)
    v3, batch_shape = as_batched_3d(v)
    out = _scatter_matmul(weights.values, weights, v3)
    return restore_batch_shape(out, batch_shape)


def softmax_spmm(
    scores: CompressedLayout, v: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """Sparse softmax over compressed ``scores`` fused with the SpMM against ``v``.

    Numerically identical to ``spmm(sparse_softmax(scores), v)``; the fast
    backend never materialises the normalised probability matrix.
    """
    return get_kernel("softmax_spmm", backend)(scores, v)


@register_kernel("softmax_spmm", REFERENCE)
def _softmax_spmm_reference(scores: CompressedLayout, v: np.ndarray) -> np.ndarray:
    """Unfused oracle: chunked sparse softmax followed by the loop SpMM."""
    weights = get_kernel("masked_softmax", REFERENCE)(scores)
    return _spmm_reference(weights, v)


@register_kernel("softmax_spmm", FAST)
def _softmax_spmm_fast(scores: CompressedLayout, v: np.ndarray) -> np.ndarray:
    """Fused path: contract the unnormalised exponentials, then divide once.

    ``softmax(s) @ V == (exp(s - max) @ V) / rowsum(exp(s - max))`` row by
    row, so the division moves from the ``(..., n_q, kept)`` probability
    matrix to the ``(..., n_q, d_v)`` output.
    """
    v = _check_operands(scores, v)
    v3, batch_shape = as_batched_3d(v)
    exp, denom = masked_exp_terms(scores.values)
    out = _scatter_matmul(exp, scores, v3)
    return restore_batch_shape(out, batch_shape) / denom


def spmm_t(
    weights: CompressedLayout, g: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """Transposed SpMM ``A_sparseᵀ @ G`` for any compressed-layout ``A_sparse``.

    This is the backward-pass sibling of :func:`spmm`: with ``A`` the
    compressed attention weights of dense shape ``(..., n_q, n_k)`` and ``G``
    a dense ``(..., n_q, d)`` gradient, the result is the dense
    ``(..., n_k, d)`` product ``Aᵀ G`` (e.g. ``dV = Pᵀ dO``).  The contraction
    touches only the stored nonzeros; the sparsity structure is never
    transposed or re-encoded.
    """
    return get_kernel("spmm_t", backend)(weights, g)


def _check_transposed_operands(weights: CompressedLayout, g: np.ndarray) -> np.ndarray:
    g = np.asarray(g, dtype=np.float32)
    if g.shape[:-2] != weights.batch_shape:
        raise ValueError(
            f"G batch shape {g.shape[:-2]} != sparse batch shape {weights.batch_shape}"
        )
    if g.shape[-2] != weights.rows:
        raise ValueError(
            f"G rows ({g.shape[-2]}) must equal the sparse row count ({weights.rows})"
        )
    return g


@register_kernel("spmm_t", REFERENCE)
def _spmm_t_reference(weights: CompressedLayout, g: np.ndarray) -> np.ndarray:
    """Per-slice scatter-add, one Python iteration per batch/head slice."""
    g = _check_transposed_operands(weights, g)
    vals3, batch_shape = as_batched_3d(weights.values)
    cols3, _ = as_batched_3d(weights.column_indices())
    g3, _ = as_batched_3d(g)

    batch, n_q, _ = vals3.shape
    d = g3.shape[-1]
    out = np.zeros((batch, weights.dense_cols, d), dtype=np.float32)
    for b in range(batch):
        # each stored (row, col) nonzero contributes vals * g[row] to out[col]
        contrib = vals3[b][..., None] * g3[b][:, None, :]  # (n_q, kept, d)
        np.add.at(out[b], cols3[b].reshape(-1), contrib.reshape(-1, d))
    return restore_batch_shape(out, batch_shape)


@register_kernel("spmm_t", FAST)
def _spmm_t_fast(weights: CompressedLayout, g: np.ndarray) -> np.ndarray:
    """Batched scatter into a dense tile, then one transposed BLAS contraction."""
    g = _check_transposed_operands(weights, g)
    g3, batch_shape = as_batched_3d(g)
    dense, _ = as_batched_3d(weights.to_scattered())
    out = np.matmul(np.swapaxes(dense, -1, -2), g3)
    return restore_batch_shape(out, batch_shape)


def spmm_dense_reference(weights: CompressedLayout, v: np.ndarray) -> np.ndarray:
    """Reference implementation: densify the sparse matrix and matmul.

    Used in tests to pin the semantics of :func:`spmm`.
    """
    dense = weights.to_dense(0.0)
    return np.matmul(dense, np.asarray(v, dtype=np.float32))


def spmm_row_blocked(
    weights: CompressedLayout, v: np.ndarray, row_block: int = 128
) -> np.ndarray:
    """Row-blocked SpMM that bounds the size of the gathered V slices.

    Matches the thread-block tiling of the CUTLASS SpMM kernel; useful when
    ``n_q * kept * d_v`` would not fit in memory as a single gathered tensor.
    """
    v = np.asarray(v, dtype=np.float32)
    vals3, batch_shape = as_batched_3d(weights.values)
    cols3, _ = as_batched_3d(weights.column_indices())
    v3, _ = as_batched_3d(v)
    batch, n_q, _ = vals3.shape
    d_v = v3.shape[-1]
    out = np.empty((batch, n_q, d_v), dtype=np.float32)
    for b in range(batch):
        for r0 in range(0, n_q, row_block):
            r1 = min(r0 + row_block, n_q)
            gathered = v3[b][cols3[b, r0:r1]]
            out[b, r0:r1] = np.einsum(
                "qk,qkd->qd", vals3[b, r0:r1], gathered, optimize=True
            )
    return restore_batch_shape(out, batch_shape)
