"""N:M fine-grained structured sparsity pattern descriptions.

An N:M pattern keeps the N entries of largest importance out of every M
consecutive entries along the last axis of a matrix.  The paper focuses on
1:2 (float32, one 32-bit value kept per pair) and 2:4 (bfloat16, two 16-bit
values kept per group of four) because they map onto the A100 sparse tensor
core, but the selection logic itself works for any N < M.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class NMPattern:
    """Description of an N:M fine-grained structured sparsity pattern.

    Attributes
    ----------
    n:
        Number of entries kept per group.
    m:
        Group size (entries are grouped along the last matrix axis).
    """

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.n <= 0 or self.m <= 0:
            raise ValueError(f"N and M must be positive, got {self.n}:{self.m}")
        if self.n >= self.m:
            raise ValueError(
                f"N:M sparsity requires N < M, got {self.n}:{self.m}"
            )

    @property
    def density(self) -> float:
        """Fraction of entries that survive pruning (``N / M``)."""
        return self.n / self.m

    @property
    def sparsity(self) -> float:
        """Fraction of entries removed by pruning (``1 - N / M``)."""
        return 1.0 - self.density

    @property
    def name(self) -> str:
        return f"{self.n}:{self.m}"

    @property
    def metadata_bits_per_group(self) -> int:
        """Bits of index metadata per group in the hardware encoding.

        The A100 encoding spends 4 bits for every 1:2 or 2:4 group decision
        (Section 2.3 of the paper).  For general N:M we charge
        ``ceil(log2(C(M, N)))`` rounded up to a multiple of 4 to stay
        nibble-aligned, which reduces to 4 for 1:2 and 2:4.
        """
        from math import comb, ceil, log2

        raw = max(1, ceil(log2(comb(self.m, self.n))))
        return ((raw + 3) // 4) * 4

    def metadata_fraction(self, element_bits: int = 32) -> float:
        """Metadata size as a fraction of the dense matrix (in bits).

        For 2:4 with 16-bit elements and 1:2 with 32-bit elements this is
        1/16, matching the paper ("the metadata is only 1/16 of the original
        dense matrix in terms of bits").
        """
        return self.metadata_bits_per_group / (self.m * element_bits)

    def validate_length(self, length: int) -> None:
        """Raise if a row of ``length`` entries cannot be grouped into M-groups."""
        if length % self.m != 0:
            raise ValueError(
                f"last-axis length {length} is not divisible by M={self.m} "
                f"for pattern {self.name}; pad the sequence length"
            )

    def groups(self, length: int) -> int:
        """Number of M-groups in a row of ``length`` entries."""
        self.validate_length(length)
        return length // self.m

    def kept(self, length: int) -> int:
        """Number of surviving entries per row of ``length`` entries."""
        return self.groups(length) * self.n


#: The two patterns with off-the-shelf A100 sparse-tensor-core support.
PATTERN_1_2 = NMPattern(1, 2)
PATTERN_2_4 = NMPattern(2, 4)

_ALIASES = {
    "1:2": PATTERN_1_2,
    "2:4": PATTERN_2_4,
    "1_2": PATTERN_1_2,
    "2_4": PATTERN_2_4,
}


def resolve_pattern(pattern) -> NMPattern:
    """Coerce a pattern-like value into an :class:`NMPattern`.

    Accepts an :class:`NMPattern`, a ``(n, m)`` tuple, or a string such as
    ``"2:4"``.
    """
    if isinstance(pattern, NMPattern):
        return pattern
    if isinstance(pattern, str):
        key = pattern.strip()
        if key in _ALIASES:
            return _ALIASES[key]
        if ":" in key:
            n_str, m_str = key.split(":", 1)
            return NMPattern(int(n_str), int(m_str))
        raise ValueError(f"unrecognised N:M pattern string: {pattern!r}")
    if isinstance(pattern, (tuple, list)) and len(pattern) == 2:
        return NMPattern(int(pattern[0]), int(pattern[1]))
    raise TypeError(f"cannot interpret {pattern!r} as an N:M pattern")


def default_pattern_for_dtype(dtype: str) -> NMPattern:
    """Hardware-default pattern for a data type (Figure 1 of the paper).

    float32 uses 1:2 (each kept value occupies two 2-byte slots); bfloat16 and
    float16 use 2:4.
    """
    dtype = str(dtype)
    if dtype in ("float32", "float", "f32", "tf32"):
        return PATTERN_1_2
    if dtype in ("bfloat16", "bf16", "float16", "f16", "half"):
        return PATTERN_2_4
    raise ValueError(f"no default N:M pattern for dtype {dtype!r}")


def pattern_pair_shapes(rows: int, cols: int, pattern: NMPattern) -> Tuple[int, int]:
    """Shape ``(rows, kept_cols)`` of the compressed nonzero matrix."""
    return rows, pattern.kept(cols)
