"""Memory-traffic and speedup models (Section 4.3, Appendix A.3 / A.5).

The paper argues that on tensor-core GPUs the attention stages are memory
bound, so the latency of each stage is proportional to its global-memory
traffic.  This module implements:

* the per-stage memory-access counts of Table 5 (full attention and explicit
  Top-K attention), plus the corresponding counts for fixed sparsity and the
  dynamic 1:2 / 2:4 sparsity used to derive Eqs. (5) and (6);
* the closed-form speedup expressions of Proposition 4.3 and Eqs. (5)-(6),
  both the exact ratios and the ``n >> d`` asymptotic forms quoted in the
  paper;
* the efficiency-matched density crossovers of Eqs. (7)-(8);
* the Performer traffic model of Eq. (33) in Appendix A.5.

Default parameter values are the paper's "typical" ones: head dimension
``d = 64`` and GPU tiling size ``T = 128``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DEFAULT_HEAD_DIM = 64
DEFAULT_TILE = 128


@dataclass(frozen=True)
class StageTraffic:
    """Memory accesses (in elements) of the three attention stages."""

    qk: float
    softmax: float
    av: float

    @property
    def total(self) -> float:
        return self.qk + self.softmax + self.av


# ------------------------------------------------------------------ Table 5 rows
def full_attention_traffic(n: int, d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE) -> StageTraffic:
    """Memory accesses of full attention (Table 5, row "Full Attention")."""
    qk = n * n * (2.0 * d / t + 1.0)
    softmax = 2.0 * n * n
    av = n * d * (2.0 * n / t + 1.0)
    return StageTraffic(qk, softmax, av)


def topk_attention_traffic(
    n: int, density: float, d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE
) -> StageTraffic:
    """Memory accesses of explicit Top-K attention (Table 5, row "Explicit Top-k")."""
    s = density
    qk = n * n * (2.0 * d / t + 1.0)  # the dense QK^T must still be computed
    softmax = 2.0 * n * n * s
    av = n * d * (s * n + s * n / t + 1.0)
    return StageTraffic(qk, softmax, av)


def fixed_attention_traffic(
    n: int, density: float, d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE
) -> StageTraffic:
    """Memory accesses of a GPU-friendly fixed sparse pattern at density ``s`` (Eq. 5)."""
    s = density
    qk = s * n * n * (2.0 * d / t + 1.0)
    softmax = 2.0 * n * n * s
    av = n * d * ((1.0 + s) * n / t + 1.0)
    return StageTraffic(qk, softmax, av)


def dfss_attention_traffic(
    n: int, d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE
) -> StageTraffic:
    """Memory accesses of dynamic 1:2 / 2:4 sparsity (numerator of Eq. 6).

    The SDDMM reads the same operands as the dense GEMM but writes only the
    compressed nonzeros (n²/2) plus metadata (n²/16); softmax touches the
    compressed matrix twice (n²/2 read + n²/2 write -> n²); the SpMM reads the
    compressed weights, the metadata and V with the usual tiling reuse.
    """
    qk = n * n * (2.0 * d / t + 0.5 + 1.0 / 16.0)
    softmax = n * n
    av = n * d * (n / t + n / (2.0 * t) + n / (16.0 * t) + 1.0)
    return StageTraffic(qk, softmax, av)


# ------------------------------------------------------------------- speedups
def speedup_topk_bound(
    density: float, d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE
) -> float:
    """Asymptotic (n >> d) upper bound of the Top-K speedup (Proposition 4.3, Eq. 4)."""
    s = density
    return (4.0 * d + 3.0 * t) / (2.0 * d + t + (d + 2.0 * t + d * t) * s)


def speedup_fixed(density: float, d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE) -> float:
    """Asymptotic fixed-sparsity speedup at density ``s`` (Eq. 5)."""
    s = density
    return (4.0 * d + 3.0 * t) / ((1.0 + 3.0 * s) * d + 3.0 * s * t)


def speedup_dfss(d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE) -> float:
    """Asymptotic dynamic 1:2 / 2:4 speedup (Eq. 6): ``(64d + 48T) / (57d + 25T)``."""
    return (64.0 * d + 48.0 * t) / (57.0 * d + 25.0 * t)


def speedup_exact(n: int, traffic: StageTraffic, d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE) -> float:
    """Exact (finite-n) speedup of a mechanism vs full attention from traffic counts."""
    full = full_attention_traffic(n, d, t)
    return full.total / traffic.total


def speedup_topk_exact(
    n: int, density: float, d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE
) -> float:
    """Exact Top-K speedup at sequence length ``n`` (pre-asymptotic form of Eq. 27)."""
    return speedup_exact(n, topk_attention_traffic(n, density, d, t), d, t)


def speedup_fixed_exact(
    n: int, density: float, d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE
) -> float:
    """Exact fixed-sparsity speedup at sequence length ``n`` (pre-asymptotic Eq. 5)."""
    return speedup_exact(n, fixed_attention_traffic(n, density, d, t), d, t)


def speedup_dfss_exact(n: int, d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE) -> float:
    """Exact DFSS speedup at sequence length ``n`` (pre-asymptotic Eq. 6)."""
    return speedup_exact(n, dfss_attention_traffic(n, d, t), d, t)


# ----------------------------------------------------------- efficiency crossovers
def topk_equal_efficiency_density(d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE) -> float:
    """Density at which Top-K matches the DFSS speedup (Eq. 7); ≈0.02 for d=64, T=128."""
    num = (4.0 * d + 3.0 * t) * (57.0 * d + 25.0 * t)
    den = (64.0 * d + 48.0 * t) * (d + 2.0 * t + d * t)
    return num / den - (2.0 * d + t) / (d + 2.0 * t + d * t)


def fixed_equal_efficiency_density(d: int = DEFAULT_HEAD_DIM, t: int = DEFAULT_TILE) -> float:
    """Density at which fixed sparsity matches the DFSS speedup (Eq. 8); ≈0.63.

    Note: the preprint's Eq. (8) has the two speedup factors transposed (as
    printed it evaluates to ≈1.55, which is not a density).  Solving
    ``speedup_fixed(s) = speedup_dfss`` directly gives the form below, which
    reproduces the quoted s ≈ 0.63.
    """
    num = (4.0 * d + 3.0 * t) * (57.0 * d + 25.0 * t)
    den = (64.0 * d + 48.0 * t) * (3.0 * d + 3.0 * t)
    return num / den - d / (3.0 * d + 3.0 * t)


# -------------------------------------------------------------------- Performer
def performer_traffic(
    n: int,
    d: int = DEFAULT_HEAD_DIM,
    m: int = None,
    t: int = DEFAULT_TILE,
) -> float:
    """Total memory accesses of the Performer pipeline (Eq. 33 numerator terms).

    ``m`` is the number of random features; the paper uses ``m = d * ln(d)``
    (≈266 for d=64) following Theorem 4 of the Performer paper.
    """
    if m is None:
        m = int(round(d * np.log(d)))
    phi = (
        n * m * (2.0 * d / t + 1.0)  # T1 / T4 projections
        + n * (d + 1.0)  # T2 / T5 squared-norm reductions
        + n * (m + 1.0)  # T3 / T6 row maxima
        + n * (m + 3.0)  # phi assembly (read T1, T2, T3 broadcast, write phi)
    )
    total = (
        2.0 * phi  # phi(Q) and phi(K)
        + m * (n + 1.0)  # T7 column sum of phi(K)
        + n * (m / t + m + 1.0)  # T8 normaliser
        + m * d * (2.0 * n / t + 1.0)  # T9 = phi(K)^T V
        + n * d * (2.0 * m / t + 1.0)  # T10 = phi(Q) T9
        + n  # final elementwise scale by T8
    )
    return total


def speedup_performer(
    n: int, d: int = DEFAULT_HEAD_DIM, m: int = None, t: int = DEFAULT_TILE
) -> float:
    """Performer speedup over full attention at sequence length ``n`` (Eq. 33)."""
    full = full_attention_traffic(n, d, t).total
    return full / performer_traffic(n, d, m, t)


def performer_breakeven_length(
    d: int = DEFAULT_HEAD_DIM, m: int = None, t: int = DEFAULT_TILE, n_max: int = 1 << 16
) -> int:
    """Smallest sequence length at which the Performer model predicts speedup > 1.

    The paper quotes ``n > 672`` for d=64, T=128, m=266.
    """
    lo, hi = 2, n_max
    if speedup_performer(hi, d, m, t) <= 1.0:
        raise ValueError("Performer never reaches speedup > 1 within n_max")
    while lo < hi:
        mid = (lo + hi) // 2
        if speedup_performer(mid, d, m, t) > 1.0:
            hi = mid
        else:
            lo = mid + 1
    return lo


def dfss_performer_crossover_length(
    d: int = DEFAULT_HEAD_DIM, m: int = None, t: int = DEFAULT_TILE, n_max: int = 1 << 20
) -> int:
    """Smallest ``n`` at which the Performer speedup exceeds the DFSS speedup.

    The paper quotes ``n > 1002`` for the default parameters.
    """
    lo, hi = 2, n_max
    if speedup_performer(hi, d, m, t) <= speedup_dfss_exact(hi, d, t):
        raise ValueError("Performer never overtakes DFSS within n_max")
    while lo < hi:
        mid = (lo + hi) // 2
        if speedup_performer(mid, d, m, t) > speedup_dfss_exact(mid, d, t):
            hi = mid
        else:
            lo = mid + 1
    return lo
