"""Padded-CSR compressed layout for per-row variable-nnz sparse attention.

:class:`PaddedCSRMatrix` is the general-purpose sibling of
:class:`repro.core.sparse.NMSparseMatrix`: where the N:M layout stores a fixed
``cols // M * N`` lanes per row (the shape the sparse tensor core consumes),
padded CSR stores each row's surviving columns in ascending order and pads
every row to the width of the widest row.  That keeps the arrays rectangular —
one batched gather/scatter serves the whole tensor, exactly like the blocked
CSR kernels real sparse-attention libraries ship — while representing *any*
boolean attention mask: sliding windows, global tokens, Top-K selections, LSH
buckets, k-means clusters, Sinkhorn block matches.

Padding convention
------------------
``lengths`` records the valid lane count of each row; lanes at or beyond a
row's length are padding.  Padding lanes store column ``0`` in
:meth:`column_indices` (clamped in-range so gather kernels never fault) and
are redirected to a trash column by the scatter kernels so they can never
overwrite a real entry.  Score-valued matrices mark padding lanes with the
``MASKED_SCORE`` sentinel so the shared sparse softmax assigns them exactly
zero weight; probability-valued matrices carry exact zeros there.  A fully
masked row is simply ``length == 0`` — every lane padding, zero attention
everywhere, matching the dense masked softmax's no-uniform-leak rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sanitize import freeze_structure, private_copy, sanitize_enabled
from repro.core.precision import dtype_bytes

#: int32 column-index bytes plus the amortised per-row length counter are the
#: metadata cost of the layout, mirroring NMSparseMatrix's nibble accounting.
_INDEX_BYTES = 4


@dataclass
class PaddedCSRMatrix:
    """A sparse matrix stored as row-major padded-CSR: values + columns + lengths.

    Attributes
    ----------
    values:
        ``(..., rows, width)`` float32 array of stored entries; lanes past a
        row's length are padding.
    cols:
        ``(..., rows, width)`` int32 absolute dense-column indices, strictly
        ascending within each row's valid prefix; padding lanes are clamped
        to ``0``.
    lengths:
        ``(..., rows)`` int32 count of valid lanes per row.
    dense_cols:
        Number of columns of the original dense matrix.
    dtype:
        Logical element dtype ("float32" or "bfloat16"); determines the
        storage bytes reported by the memory accounting.
    """

    values: np.ndarray
    cols: np.ndarray
    lengths: np.ndarray
    dense_cols: int
    dtype: str = "float32"

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float32)
        self.cols = np.asarray(self.cols, dtype=np.int32)
        self.lengths = np.asarray(self.lengths, dtype=np.int32)
        if self.values.shape != self.cols.shape:
            raise ValueError(
                f"values shape {self.values.shape} != cols shape {self.cols.shape}"
            )
        if self.lengths.shape != self.values.shape[:-1]:
            raise ValueError(
                f"lengths shape {self.lengths.shape} does not match row shape "
                f"{self.values.shape[:-1]}"
            )
        width = self.values.shape[-1]
        if np.any(self.lengths < 0) or np.any(self.lengths > width):
            raise ValueError(f"row lengths must lie in [0, width={width}]")
        if np.any(self.cols < 0) or np.any(self.cols >= self.dense_cols):
            raise ValueError(f"columns must lie in [0, dense_cols={self.dense_cols})")
        # structure-derived caches (validity mask, flat gather/scatter indices)
        # are shared by reference across every values-sibling of one structure,
        # so a cache computed during any training step serves all later steps
        self.__dict__.setdefault("_shared_caches", {})
        if sanitize_enabled():
            # write-once guard: the structure keeps frozen private copies, so
            # neither a kernel writing "through" the structure nor a caller
            # mutating its original arrays can corrupt the cached layout
            self.cols = freeze_structure(private_copy(self.cols, np.int32))
            self.lengths = freeze_structure(private_copy(self.lengths, np.int32))

    # ------------------------------------------------------------------ shape
    @property
    def batch_shape(self) -> Tuple[int, ...]:
        return self.values.shape[:-2]

    @property
    def rows(self) -> int:
        return self.values.shape[-2]

    @property
    def width(self) -> int:
        """Padded lane count (the widest row's nnz)."""
        return self.values.shape[-1]

    @property
    def dense_shape(self) -> Tuple[int, ...]:
        return self.batch_shape + (self.rows, self.dense_cols)

    @property
    def density(self) -> float:
        """Mean fraction of stored (valid) entries per row."""
        if self.lengths.size == 0 or self.dense_cols == 0:
            return 0.0
        return float(self.lengths.mean()) / self.dense_cols

    # ------------------------------------------------------------ conversion
    @classmethod
    def from_mask(cls, mask: np.ndarray, dtype: str = "float32") -> "PaddedCSRMatrix":
        """Compress a boolean mask into a structure-only matrix (values zero).

        The mask may carry arbitrary leading batch dimensions; the padded
        width is the global maximum row nnz (at least one lane so downstream
        reductions never see a zero-width axis).  Ragged rows and fully
        masked rows (``length == 0``) are both first-class.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim < 2:
            raise ValueError("mask must be at least 2-D (rows, cols)")
        lengths = mask.sum(axis=-1, dtype=np.int32)
        width = max(int(lengths.max()) if lengths.size else 0, 1)
        # stable sort floats the True columns to the front in ascending order
        order = np.argsort((~mask).astype(np.uint8), axis=-1, kind="stable")
        cols = order[..., :width].astype(np.int32)
        valid = np.arange(width, dtype=np.int32) < lengths[..., None]
        cols = np.where(valid, cols, np.int32(0))
        return cls(
            values=np.zeros(cols.shape, dtype=np.float32),
            cols=cols,
            lengths=lengths,
            dense_cols=mask.shape[-1],
            dtype=dtype,
        )

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, mask: np.ndarray, pad_value: float = 0.0,
        dtype: str = "float32",
    ) -> "PaddedCSRMatrix":
        """Compress ``dense`` restricted to ``mask``; padding lanes get ``pad_value``."""
        structure = cls.from_mask(mask, dtype=dtype)
        dense = np.asarray(dense, dtype=np.float32)
        if dense.shape != np.asarray(mask).shape:
            raise ValueError(
                f"dense shape {dense.shape} != mask shape {np.asarray(mask).shape}"
            )
        vals = np.take_along_axis(dense, structure.cols.astype(np.int64), axis=-1)
        valid = structure.valid_lanes()
        return structure.with_values(np.where(valid, vals, np.float32(pad_value)))

    @classmethod
    def concat_ragged(
        cls,
        structures: "Sequence[PaddedCSRMatrix]",
        key_offsets: Optional[Sequence[int]] = None,
    ) -> "PaddedCSRMatrix":
        """Block-diagonally concatenate per-sequence structures into one batch.

        The per-*sequence* extension of the per-row raggedness: each input is
        a 2-D ``(rows_i, width_i)`` structure over its own ``dense_cols_i``
        key range, and the result is a single 2-D structure whose rows are the
        concatenation of all inputs and whose dense columns are the disjoint
        union of their key ranges (input ``i``'s columns shifted by the
        cumulative key offset).  A batch can therefore mix L=128 and L=512
        sequences without padding anyone to the longest sequence — only the
        *lane width* is padded, to the global maximum row nnz, and the new
        padding lanes follow the layout convention (clamped to column 0,
        ``lengths`` unchanged).  Values are zero-filled; callers stamp scores
        through :meth:`valid_lanes` exactly as for a fresh :meth:`from_mask`
        structure.

        ``key_offsets`` overrides the dense-column offset of each input —
        sequences *sharing* a key range (e.g. several heads of one sequence
        attending to one shared memory) pass explicit offsets; the default is
        the disjoint block-diagonal placement.
        """
        structures = list(structures)
        if not structures:
            raise ValueError("concat_ragged needs at least one structure")
        for s in structures:
            if s.batch_shape != ():
                raise ValueError(
                    "concat_ragged expects 2-D (rows, width) structures; got "
                    f"batch shape {s.batch_shape}"
                )
        if key_offsets is None:
            offsets = np.concatenate(
                [[0], np.cumsum([s.dense_cols for s in structures])]
            )
            dense_cols = int(offsets[-1])
            offsets = offsets[:-1]
        else:
            offsets = np.asarray(list(key_offsets), dtype=np.int64)
            if offsets.shape != (len(structures),):
                raise ValueError(
                    f"key_offsets must give one offset per structure; got "
                    f"{offsets.shape[0]} for {len(structures)} structures"
                )
            if np.any(offsets < 0):
                raise ValueError("key_offsets must be non-negative")
            dense_cols = int(max(o + s.dense_cols for o, s in zip(offsets, structures)))
        width = max(s.width for s in structures)
        cols_parts, length_parts = [], []
        for s, off in zip(structures, offsets):
            cols = np.zeros((s.rows, width), dtype=np.int32)
            cols[:, : s.width] = np.where(
                s.valid_lanes(), s.cols + np.int32(off), np.int32(0)
            )
            cols_parts.append(cols)
            length_parts.append(s.lengths)
        cols = np.concatenate(cols_parts, axis=0)
        return cls(
            values=np.zeros(cols.shape, dtype=np.float32),
            cols=cols,
            lengths=np.concatenate(length_parts),
            dense_cols=dense_cols,
            dtype=structures[0].dtype,
        )

    def broadcast_to(self, batch_shape: Tuple[int, ...]) -> "PaddedCSRMatrix":
        """View of this structure broadcast to new leading batch dimensions.

        The broadcast arrays are read-only views; callers replace the values
        via :meth:`with_values` (e.g. the SDDMM writing per-head scores into
        one shared static-mask structure).
        """
        batch_shape = tuple(batch_shape)
        if batch_shape == self.batch_shape:
            return self
        target = batch_shape + (self.rows, self.width)
        return PaddedCSRMatrix(
            values=np.broadcast_to(self.values, target),
            cols=np.broadcast_to(self.cols, target),
            lengths=np.broadcast_to(self.lengths, batch_shape + (self.rows,)),
            dense_cols=self.dense_cols,
            dtype=self.dtype,
        )

    def to_dense(self, fill_value: float = 0.0) -> np.ndarray:
        """Materialise the dense matrix with absent entries set to ``fill_value``."""
        if fill_value == 0.0:
            return self.scatter_compressed(self.values)
        dense = np.full(self.dense_shape, np.float32(fill_value), dtype=np.float32)
        extended = np.concatenate(
            [dense, np.zeros(self.batch_shape + (self.rows, 1), np.float32)], axis=-1
        )
        np.put_along_axis(extended, self._scatter_cols(), self.values, axis=-1)
        return extended[..., :-1]

    def to_mask(self) -> np.ndarray:
        """Boolean dense mask of stored (valid) positions."""
        ones = np.where(self.valid_lanes(), np.float32(1.0), np.float32(0.0))
        return self.scatter_compressed(ones).astype(bool)

    # ------------------------------------------------------- protocol methods
    def column_indices(self) -> np.ndarray:
        """Absolute dense column of every lane (padding clamped in-range)."""
        return self.cols

    def row_lengths(self) -> np.ndarray:
        return self.lengths

    def valid_lanes(self) -> Optional[np.ndarray]:
        """Boolean lane-validity mask (cached; treat as read-only)."""
        cached = self._shared.get("valid")
        if cached is None:
            cached = np.arange(self.width, dtype=np.int32) < self.lengths[..., None]
            self._shared["valid"] = freeze_structure(cached)
        return cached

    def _scatter_cols(self) -> np.ndarray:
        """int64 scatter targets: valid lanes keep their column, padding lanes
        address the trash column ``dense_cols`` (sliced off after the scatter)."""
        cached = self._shared.get("scatter_cols")
        if cached is None:
            cached = np.where(
                self.valid_lanes(), self.cols, np.int32(self.dense_cols)
            ).astype(np.int64)
            self._shared["scatter_cols"] = freeze_structure(cached)
        return cached

    def _row_leads(self, row_width: int) -> np.ndarray:
        """Flat offset of each row's slot 0 in a ``(..., rows, row_width)`` ravel."""
        n_rows = int(np.prod(self.batch_shape, dtype=np.int64)) * self.rows
        return (
            np.arange(n_rows, dtype=np.int64) * row_width
        ).reshape(self.batch_shape + (self.rows, 1))

    def flat_gather_indices(self) -> np.ndarray:
        """Raveled-dense gather index of every lane (cached).

        ``dense.ravel().take(flat_gather_indices())`` is the fast-path gather
        the kernels use — a single flat ``take`` is several times faster than
        ``np.take_along_axis`` at attention sizes.  Treat as read-only.
        """
        cached = self._shared.get("flat_gather")
        if cached is None:
            cached = self.cols + self._row_leads(self.dense_cols)
            self._shared["flat_gather"] = freeze_structure(cached)
        return cached

    def _flat_scatter_indices(self) -> np.ndarray:
        """Raveled scatter index into the trash-column-extended tile (cached)."""
        cached = self._shared.get("flat_scatter")
        if cached is None:
            cached = self._scatter_cols() + self._row_leads(self.dense_cols + 1)
            self._shared["flat_scatter"] = freeze_structure(cached)
        return cached

    @property
    def _shared(self) -> dict:
        return self.__dict__["_shared_caches"]

    def scatter_compressed(self, values: np.ndarray) -> np.ndarray:
        """Scatter compressed ``values`` into a dense zero tile, dropping padding.

        The tile is allocated one column wider than the dense matrix; padding
        lanes all land in that trash column, so they can never clobber a real
        entry that shares their clamped column index.  The scatter is one
        flat fancy assignment with cached indices — within a row the valid
        columns are unique, so no write races exist outside the trash column.
        """
        values = np.asarray(values, dtype=np.float32)
        if values.shape != self.values.shape:
            raise ValueError(
                f"compressed values shape {values.shape} != {self.values.shape}"
            )
        extended = np.zeros(
            values.shape[:-1] + (self.dense_cols + 1,), dtype=np.float32
        )
        extended.ravel()[self._flat_scatter_indices().ravel()] = values.ravel()
        return extended[..., :-1]

    def gather_dense(self, dense: np.ndarray) -> np.ndarray:
        """Gather every stored lane's entry out of a dense ``dense_shape`` array.

        The inverse of :meth:`scatter_compressed` (padding lanes read their
        clamped column — callers overwrite them with a sentinel or zero).
        """
        dense = np.asarray(dense, dtype=np.float32)
        if dense.size != int(np.prod(self.dense_shape, dtype=np.int64)):
            raise ValueError(
                f"dense size {dense.size} does not match shape {self.dense_shape}"
            )
        flat = self.flat_gather_indices().ravel()
        return dense.ravel().take(flat).reshape(self.values.shape)

    def to_scattered(self, cache: bool = False) -> np.ndarray:
        """Dense zero-filled scatter of the stored values.

        Mirrors :meth:`NMSparseMatrix.to_scattered`: with ``cache=True`` the
        tile is memoised against the current values array so a forward SpMM
        and the backward kernels of one training step share a single scatter;
        an existing memo is always reused.  Treat the result as read-only.
        """
        cached = self.__dict__.get("_scatter_cache")
        if cached is not None and cached[0] is self.values:
            return cached[1]
        dense = self.scatter_compressed(self.values)
        if cache:
            self.__dict__["_scatter_cache"] = (self.values, freeze_structure(dense))
        return dense

    def with_values(self, new_values: np.ndarray) -> "PaddedCSRMatrix":
        """Return a new matrix with the same sparsity structure but new values."""
        new_values = np.asarray(new_values, dtype=np.float32)
        if new_values.shape != self.values.shape:
            raise ValueError(
                f"replacement values shape {new_values.shape} != {self.values.shape}"
            )
        # bypass __post_init__: the structure arrays were validated when this
        # instance was built, and re-checking them on every training step is
        # measurable; the shared cache store is carried by reference so an
        # index cache computed on any sibling serves all of them
        out = object.__new__(PaddedCSRMatrix)
        out.values = new_values
        out.cols = self.cols
        out.lengths = self.lengths
        out.dense_cols = self.dense_cols
        out.dtype = self.dtype
        out.__dict__["_shared_caches"] = self.__dict__["_shared_caches"]
        return out

    # ------------------------------------------------------------------ size
    def nonzeros_nbytes(self) -> int:
        """Bytes occupied by the stored (padded) values."""
        return int(np.prod(self.values.shape)) * dtype_bytes(self.dtype)

    def metadata_nbytes(self) -> int:
        """Bytes occupied by the column indices and per-row lengths."""
        return (
            int(np.prod(self.cols.shape)) + int(np.prod(self.lengths.shape))
        ) * _INDEX_BYTES

    def nbytes(self) -> int:
        return self.nonzeros_nbytes() + self.metadata_nbytes()

    def dense_nbytes(self) -> int:
        batch = int(np.prod(self.batch_shape)) if self.batch_shape else 1
        return batch * self.rows * self.dense_cols * dtype_bytes(self.dtype)

    def compression_ratio(self) -> float:
        """Dense bytes / compressed bytes (>1 only for masks much narrower
        than the dense width; padding and int32 columns both count)."""
        return self.dense_nbytes() / self.nbytes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PaddedCSRMatrix(dense_shape={self.dense_shape}, width={self.width}, "
            f"density={self.density:.3f}, dtype={self.dtype})"
        )
