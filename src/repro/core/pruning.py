"""Dynamic N:M selection of attention scores.

The pruning rule is the one implemented by the CUDA epilogue in the paper:
for every group of M consecutive entries along the last axis keep the N
largest ones.  For attention scores "largest" means largest *value* (softmax
is monotonically increasing, so the largest scores carry the largest attention
weights); for static weight pruning the conventional criterion is largest
*absolute* value.  Both are supported via ``criterion``.

All functions are fully vectorised over arbitrary leading batch dimensions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.backend import FAST, REFERENCE, register_kernel
from repro.core.patterns import NMPattern, resolve_pattern

#: Selection criteria supported by :func:`nm_group_topn_indices`.
CRITERIA = ("value", "magnitude")


def _group_view(x: np.ndarray, pattern: NMPattern) -> np.ndarray:
    """Reshape the last axis of ``x`` into ``(groups, M)`` groups."""
    x = np.asarray(x, dtype=np.float32)
    pattern.validate_length(x.shape[-1])
    new_shape = x.shape[:-1] + (x.shape[-1] // pattern.m, pattern.m)
    return x.reshape(new_shape)


def _selection_key(groups: np.ndarray, criterion: str) -> np.ndarray:
    if criterion == "value":
        return groups
    if criterion == "magnitude":
        return np.abs(groups)
    raise ValueError(f"unknown criterion {criterion!r}; expected one of {CRITERIA}")


def nm_group_topn_indices(
    x: np.ndarray, pattern, criterion: str = "value"
) -> np.ndarray:
    """Indices (within each M-group) of the N kept entries.

    Returns an integer array of shape ``x.shape[:-1] + (groups, N)`` whose
    entries are in ``[0, M)`` and sorted ascending within each group, matching
    the hardware metadata convention (lower index stored first).  Ties are
    broken towards the lower index, which is what a left-to-right register
    comparison produces.
    """
    pattern = resolve_pattern(pattern)
    groups = _group_view(x, pattern)
    key = _selection_key(groups, criterion)
    # stable argsort of the negated key keeps the lower index on ties
    order = np.argsort(-key, axis=-1, kind="stable")
    kept = order[..., : pattern.n]
    kept.sort(axis=-1)
    return kept


def nm_prune_mask(x: np.ndarray, pattern, criterion: str = "value") -> np.ndarray:
    """Boolean mask of the same shape as ``x``: ``True`` where the entry survives."""
    pattern = resolve_pattern(pattern)
    x = np.asarray(x, dtype=np.float32)
    kept = nm_group_topn_indices(x, pattern, criterion)
    groups_shape = x.shape[:-1] + (x.shape[-1] // pattern.m, pattern.m)
    mask = np.zeros(groups_shape, dtype=bool)
    np.put_along_axis(mask, kept, True, axis=-1)
    return mask.reshape(x.shape)


def nm_prune_dense(
    x: np.ndarray,
    pattern,
    criterion: str = "value",
    fill_value: float = 0.0,
) -> np.ndarray:
    """Dense copy of ``x`` with pruned entries replaced by ``fill_value``.

    ``fill_value=-inf`` is the right choice when the result feeds a dense
    softmax (pruned logits must not contribute); ``0.0`` matches the dense
    representation of the compressed matrix after softmax.
    """
    mask = nm_prune_mask(x, pattern, criterion)
    out = np.array(x, dtype=np.float32, copy=True)
    out[~mask] = fill_value
    return out


def nm_compress(
    x: np.ndarray, pattern, criterion: str = "value"
) -> Tuple[np.ndarray, np.ndarray]:
    """Compress ``x`` to ``(values, indices)`` under an N:M pattern.

    ``values`` has shape ``x.shape[:-1] + (kept,)`` with ``kept = cols // M * N``
    and holds the surviving entries in row order.  ``indices`` (same shape,
    ``int8``) holds each surviving entry's offset within its M-group, i.e. the
    information carried by the hardware metadata.
    """
    pattern = resolve_pattern(pattern)
    groups = _group_view(x, pattern)
    kept_idx = nm_group_topn_indices(x, pattern, criterion)
    values = np.take_along_axis(groups, kept_idx, axis=-1)
    flat_shape = x.shape[:-1] + (pattern.kept(x.shape[-1]),)
    return (
        values.reshape(flat_shape).astype(np.float32),
        kept_idx.reshape(flat_shape).astype(np.int8),
    )


# --------------------------------------------------------------- fast kernels
#
# The hardware patterns (1:2 and 2:4) admit branch-free selection networks
# that replace the generic per-group argsort with a handful of vectorised
# comparisons.  Tie-breaking matches :func:`nm_group_topn_indices` exactly
# (equal keys keep the lower index), so the fast path is bit-identical to the
# reference on any input with a defined ordering (ties, blocked-ELL
# sentinels, and infinities included; only NaN scores are unspecified, as
# they already are for the argsort reference).
#
# Values are re-assembled by multiplying the *bit patterns* (viewed as
# uint32) with the boolean selection masks instead of ``np.where``, which
# avoids both np.where's slow multi-operand buffering and any float
# arithmetic on the selected values (``0 * inf`` would poison a float
# formulation).


def _group_columns(groups: np.ndarray):
    """Contiguous copies of the M columns of ``(..., G, M)`` groups."""
    return tuple(np.ascontiguousarray(groups[..., i]) for i in range(groups.shape[-1]))


def _keep_bools_24(key_cols):
    """Per-column survival masks for a 2:4 pattern from the 4 key columns.

    Element ``i`` "beats" element ``j`` when it wins the reference tie-break:
    ``key_i >= key_j`` for ``i < j`` and ``key_i > key_j`` for ``i > j``.  The
    beats relation is a total order, so counting wins ranks the group and the
    top-2 are exactly the entries with at least two wins.
    """
    a, b, c, d = key_cols
    ab = a >= b
    ac = a >= c
    ad = a >= d
    bc = b >= c
    bd = b >= d
    cd = c >= d
    one = np.uint8(1)
    keep_a = (ab.view(np.uint8) + ac + ad) >= 2
    keep_b = ((one - ab) + bc + bd) >= 2
    keep_c = ((one - ac) + (one - bc) + cd) >= 2
    keep_d = ((one - ad) + (one - bd) + (one - cd)) >= 2
    return keep_a, keep_b, keep_c, keep_d


def _compress_fast_12(groups: np.ndarray, key: np.ndarray):
    take_second = key[..., 1] > key[..., 0]
    a, b = _group_columns(groups)
    bits = b.view(np.uint32) * take_second + a.view(np.uint32) * ~take_second
    return bits.view(np.float32)[..., None], take_second.view(np.int8)[..., None]


def _compress_fast_24(groups: np.ndarray, key: np.ndarray):
    group_cols = _group_columns(groups)
    # the "value" criterion keys on the group entries themselves — reuse the
    # contiguous column copies instead of materialising them twice
    key_cols = group_cols if key is groups else _group_columns(key)
    keep_a, keep_b, keep_c, keep_d = _keep_bools_24(key_cols)
    # kept indices in ascending order: the first kept entry is a if a
    # survives, else b if b survives, else it must be c; symmetrically for
    # the second kept entry from the high end.
    first_b = keep_b & ~keep_a
    first_c = ~(keep_a | keep_b)
    last_c = keep_c & ~keep_d
    last_b = ~(keep_c | keep_d)
    a, b, c, d = (col.view(np.uint32) for col in group_cols)
    v0 = (a * keep_a + b * first_b + c * first_c).view(np.float32)
    v1 = (d * keep_d + c * last_c + b * last_b).view(np.float32)
    i0 = (~keep_a).view(np.uint8) + first_c
    i1 = np.uint8(1) + (keep_d.view(np.uint8) << 1) + last_c
    values = np.stack([v0, v1], axis=-1)
    indices = np.stack([i0, i1], axis=-1).view(np.int8)
    return values, indices


def nm_compress_fast(
    x: np.ndarray, pattern, criterion: str = "value"
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop-in replacement for :func:`nm_compress` using selection networks.

    Specialised for the hardware 1:2 and 2:4 patterns; any other pattern
    falls back to the generic argsort-based :func:`nm_compress`.
    """
    pattern = resolve_pattern(pattern)
    if (pattern.n, pattern.m) not in ((1, 2), (2, 4)):
        return nm_compress(x, pattern, criterion)
    groups = _group_view(x, pattern)
    key = _selection_key(groups, criterion)
    if pattern.m == 2:
        values, indices = _compress_fast_12(groups, key)
    else:
        values, indices = _compress_fast_24(groups, key)
    flat_shape = x.shape[:-1] + (pattern.kept(x.shape[-1]),)
    return values.reshape(flat_shape), indices.reshape(flat_shape)


@register_kernel("nm_prune_mask", FAST)
def nm_prune_mask_fast(x: np.ndarray, pattern, criterion: str = "value") -> np.ndarray:
    """Drop-in replacement for :func:`nm_prune_mask` using selection networks."""
    pattern = resolve_pattern(pattern)
    if (pattern.n, pattern.m) not in ((1, 2), (2, 4)):
        return nm_prune_mask(x, pattern, criterion)
    x = np.asarray(x, dtype=np.float32)
    groups = _group_view(x, pattern)
    key = _selection_key(groups, criterion)
    mask = np.empty(groups.shape, dtype=bool)
    if pattern.m == 2:
        take_second = key[..., 1] > key[..., 0]
        mask[..., 0] = ~take_second
        mask[..., 1] = take_second
    else:
        keep_a, keep_b, keep_c, keep_d = _keep_bools_24(_group_columns(key))
        mask[..., 0] = keep_a
        mask[..., 1] = keep_b
        mask[..., 2] = keep_c
        mask[..., 3] = keep_d
    return mask.reshape(x.shape)


register_kernel("nm_prune_mask", REFERENCE)(nm_prune_mask)


def nm_decompress(
    values: np.ndarray, indices: np.ndarray, pattern, cols: int, fill_value: float = 0.0
) -> np.ndarray:
    """Inverse of :func:`nm_compress`: scatter compressed values back to dense."""
    pattern = resolve_pattern(pattern)
    pattern.validate_length(cols)
    values = np.asarray(values, dtype=np.float32)
    indices = np.asarray(indices)
    if values.shape != indices.shape:
        raise ValueError(
            f"values shape {values.shape} and indices shape {indices.shape} differ"
        )
    expected_kept = pattern.kept(cols)
    if values.shape[-1] != expected_kept:
        raise ValueError(
            f"compressed width {values.shape[-1]} does not match kept({cols})={expected_kept}"
        )
    groups = cols // pattern.m
    g_vals = values.reshape(values.shape[:-1] + (groups, pattern.n))
    g_idx = indices.reshape(indices.shape[:-1] + (groups, pattern.n)).astype(np.int64)
    dense_groups = np.full(values.shape[:-1] + (groups, pattern.m), fill_value, dtype=np.float32)
    np.put_along_axis(dense_groups, g_idx, g_vals, axis=-1)
    return dense_groups.reshape(values.shape[:-1] + (cols,))


def global_column_indices(indices: np.ndarray, pattern, cols: int) -> np.ndarray:
    """Convert within-group offsets to absolute column indices in the dense matrix."""
    pattern = resolve_pattern(pattern)
    pattern.validate_length(cols)
    indices = np.asarray(indices)
    groups = cols // pattern.m
    kept = groups * pattern.n
    if indices.shape[-1] != kept:
        raise ValueError(
            f"indices width {indices.shape[-1]} does not match kept({cols})={kept}"
        )
    # int32 offsets: half the expansion cost of int64, and sequence lengths
    # are far below 2**31 columns
    group_base = np.repeat(np.arange(groups, dtype=np.int32) * pattern.m, pattern.n)
    return indices.astype(np.int32) + group_base


def density_of_mask(mask: np.ndarray) -> float:
    """Fraction of ``True`` entries in a boolean mask (the paper's density ``s``)."""
    mask = np.asarray(mask, dtype=bool)
    return float(mask.mean()) if mask.size else 0.0
