"""Dynamic N:M selection of attention scores.

The pruning rule is the one implemented by the CUDA epilogue in the paper:
for every group of M consecutive entries along the last axis keep the N
largest ones.  For attention scores "largest" means largest *value* (softmax
is monotonically increasing, so the largest scores carry the largest attention
weights); for static weight pruning the conventional criterion is largest
*absolute* value.  Both are supported via ``criterion``.

All functions are fully vectorised over arbitrary leading batch dimensions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.patterns import NMPattern, resolve_pattern

#: Selection criteria supported by :func:`nm_group_topn_indices`.
CRITERIA = ("value", "magnitude")


def _group_view(x: np.ndarray, pattern: NMPattern) -> np.ndarray:
    """Reshape the last axis of ``x`` into ``(groups, M)`` groups."""
    x = np.asarray(x, dtype=np.float32)
    pattern.validate_length(x.shape[-1])
    new_shape = x.shape[:-1] + (x.shape[-1] // pattern.m, pattern.m)
    return x.reshape(new_shape)


def _selection_key(groups: np.ndarray, criterion: str) -> np.ndarray:
    if criterion == "value":
        return groups
    if criterion == "magnitude":
        return np.abs(groups)
    raise ValueError(f"unknown criterion {criterion!r}; expected one of {CRITERIA}")


def nm_group_topn_indices(
    x: np.ndarray, pattern, criterion: str = "value"
) -> np.ndarray:
    """Indices (within each M-group) of the N kept entries.

    Returns an integer array of shape ``x.shape[:-1] + (groups, N)`` whose
    entries are in ``[0, M)`` and sorted ascending within each group, matching
    the hardware metadata convention (lower index stored first).  Ties are
    broken towards the lower index, which is what a left-to-right register
    comparison produces.
    """
    pattern = resolve_pattern(pattern)
    groups = _group_view(x, pattern)
    key = _selection_key(groups, criterion)
    # stable argsort of the negated key keeps the lower index on ties
    order = np.argsort(-key, axis=-1, kind="stable")
    kept = order[..., : pattern.n]
    kept.sort(axis=-1)
    return kept


def nm_prune_mask(x: np.ndarray, pattern, criterion: str = "value") -> np.ndarray:
    """Boolean mask of the same shape as ``x``: ``True`` where the entry survives."""
    pattern = resolve_pattern(pattern)
    x = np.asarray(x, dtype=np.float32)
    kept = nm_group_topn_indices(x, pattern, criterion)
    groups_shape = x.shape[:-1] + (x.shape[-1] // pattern.m, pattern.m)
    mask = np.zeros(groups_shape, dtype=bool)
    np.put_along_axis(mask, kept, True, axis=-1)
    return mask.reshape(x.shape)


def nm_prune_dense(
    x: np.ndarray,
    pattern,
    criterion: str = "value",
    fill_value: float = 0.0,
) -> np.ndarray:
    """Dense copy of ``x`` with pruned entries replaced by ``fill_value``.

    ``fill_value=-inf`` is the right choice when the result feeds a dense
    softmax (pruned logits must not contribute); ``0.0`` matches the dense
    representation of the compressed matrix after softmax.
    """
    mask = nm_prune_mask(x, pattern, criterion)
    out = np.array(x, dtype=np.float32, copy=True)
    out[~mask] = fill_value
    return out


def nm_compress(
    x: np.ndarray, pattern, criterion: str = "value"
) -> Tuple[np.ndarray, np.ndarray]:
    """Compress ``x`` to ``(values, indices)`` under an N:M pattern.

    ``values`` has shape ``x.shape[:-1] + (kept,)`` with ``kept = cols // M * N``
    and holds the surviving entries in row order.  ``indices`` (same shape,
    ``int8``) holds each surviving entry's offset within its M-group, i.e. the
    information carried by the hardware metadata.
    """
    pattern = resolve_pattern(pattern)
    groups = _group_view(x, pattern)
    kept_idx = nm_group_topn_indices(x, pattern, criterion)
    values = np.take_along_axis(groups, kept_idx, axis=-1)
    flat_shape = x.shape[:-1] + (pattern.kept(x.shape[-1]),)
    return (
        values.reshape(flat_shape).astype(np.float32),
        kept_idx.reshape(flat_shape).astype(np.int8),
    )


def nm_decompress(
    values: np.ndarray, indices: np.ndarray, pattern, cols: int, fill_value: float = 0.0
) -> np.ndarray:
    """Inverse of :func:`nm_compress`: scatter compressed values back to dense."""
    pattern = resolve_pattern(pattern)
    pattern.validate_length(cols)
    values = np.asarray(values, dtype=np.float32)
    indices = np.asarray(indices)
    if values.shape != indices.shape:
        raise ValueError(
            f"values shape {values.shape} and indices shape {indices.shape} differ"
        )
    expected_kept = pattern.kept(cols)
    if values.shape[-1] != expected_kept:
        raise ValueError(
            f"compressed width {values.shape[-1]} does not match kept({cols})={expected_kept}"
        )
    groups = cols // pattern.m
    g_vals = values.reshape(values.shape[:-1] + (groups, pattern.n))
    g_idx = indices.reshape(indices.shape[:-1] + (groups, pattern.n)).astype(np.int64)
    dense_groups = np.full(values.shape[:-1] + (groups, pattern.m), fill_value, dtype=np.float32)
    np.put_along_axis(dense_groups, g_idx, g_vals, axis=-1)
    return dense_groups.reshape(values.shape[:-1] + (cols,))


def global_column_indices(indices: np.ndarray, pattern, cols: int) -> np.ndarray:
    """Convert within-group offsets to absolute column indices in the dense matrix."""
    pattern = resolve_pattern(pattern)
    pattern.validate_length(cols)
    indices = np.asarray(indices)
    groups = cols // pattern.m
    kept = groups * pattern.n
    if indices.shape[-1] != kept:
        raise ValueError(
            f"indices width {indices.shape[-1]} does not match kept({cols})={kept}"
        )
    group_base = np.repeat(np.arange(groups, dtype=np.int64) * pattern.m, pattern.n)
    return indices.astype(np.int64) + group_base


def density_of_mask(mask: np.ndarray) -> float:
    """Fraction of ``True`` entries in a boolean mask (the paper's density ``s``)."""
    mask = np.asarray(mask, dtype=bool)
    return float(mask.mean()) if mask.size else 0.0
